# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(fixy_cli_end_to_end "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/fixy_cli" "-P" "/root/repo/tools/cli_test.cmake")
set_tests_properties(fixy_cli_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
