file(REMOVE_RECURSE
  "CMakeFiles/fixy_cli.dir/fixy_cli.cc.o"
  "CMakeFiles/fixy_cli.dir/fixy_cli.cc.o.d"
  "fixy_cli"
  "fixy_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
