# Empty compiler generated dependencies file for fixy_cli.
# This may be replaced when dependencies are built.
