file(REMOVE_RECURSE
  "CMakeFiles/find_label_errors.dir/find_label_errors.cpp.o"
  "CMakeFiles/find_label_errors.dir/find_label_errors.cpp.o.d"
  "find_label_errors"
  "find_label_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_label_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
