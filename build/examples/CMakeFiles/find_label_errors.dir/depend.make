# Empty dependencies file for find_label_errors.
# This may be replaced when dependencies are built.
