file(REMOVE_RECURSE
  "CMakeFiles/custom_features.dir/custom_features.cpp.o"
  "CMakeFiles/custom_features.dir/custom_features.cpp.o.d"
  "custom_features"
  "custom_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
