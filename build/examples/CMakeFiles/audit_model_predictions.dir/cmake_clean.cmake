file(REMOVE_RECURSE
  "CMakeFiles/audit_model_predictions.dir/audit_model_predictions.cpp.o"
  "CMakeFiles/audit_model_predictions.dir/audit_model_predictions.cpp.o.d"
  "audit_model_predictions"
  "audit_model_predictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_model_predictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
