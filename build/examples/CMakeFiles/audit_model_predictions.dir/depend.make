# Empty dependencies file for audit_model_predictions.
# This may be replaced when dependencies are built.
