file(REMOVE_RECURSE
  "CMakeFiles/proposal_io_test.dir/proposal_io_test.cc.o"
  "CMakeFiles/proposal_io_test.dir/proposal_io_test.cc.o.d"
  "proposal_io_test"
  "proposal_io_test.pdb"
  "proposal_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proposal_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
