# Empty dependencies file for proposal_io_test.
# This may be replaced when dependencies are built.
