file(REMOVE_RECURSE
  "CMakeFiles/dataset_stats_test.dir/dataset_stats_test.cc.o"
  "CMakeFiles/dataset_stats_test.dir/dataset_stats_test.cc.o.d"
  "dataset_stats_test"
  "dataset_stats_test.pdb"
  "dataset_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
