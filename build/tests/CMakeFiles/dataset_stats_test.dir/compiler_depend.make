# Empty compiler generated dependencies file for dataset_stats_test.
# This may be replaced when dependencies are built.
