
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/factor_graph.cc" "src/graph/CMakeFiles/fixy_graph.dir/factor_graph.cc.o" "gcc" "src/graph/CMakeFiles/fixy_graph.dir/factor_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fixy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fixy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/fixy_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/fixy_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fixy_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
