# Empty compiler generated dependencies file for fixy_graph.
# This may be replaced when dependencies are built.
