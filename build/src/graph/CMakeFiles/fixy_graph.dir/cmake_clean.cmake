file(REMOVE_RECURSE
  "CMakeFiles/fixy_graph.dir/factor_graph.cc.o"
  "CMakeFiles/fixy_graph.dir/factor_graph.cc.o.d"
  "libfixy_graph.a"
  "libfixy_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
