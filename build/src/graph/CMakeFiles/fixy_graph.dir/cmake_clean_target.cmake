file(REMOVE_RECURSE
  "libfixy_graph.a"
)
