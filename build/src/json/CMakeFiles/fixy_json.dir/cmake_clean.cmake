file(REMOVE_RECURSE
  "CMakeFiles/fixy_json.dir/json.cc.o"
  "CMakeFiles/fixy_json.dir/json.cc.o.d"
  "libfixy_json.a"
  "libfixy_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
