file(REMOVE_RECURSE
  "libfixy_json.a"
)
