# Empty compiler generated dependencies file for fixy_json.
# This may be replaced when dependencies are built.
