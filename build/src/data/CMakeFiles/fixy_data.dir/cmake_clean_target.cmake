file(REMOVE_RECURSE
  "libfixy_data.a"
)
