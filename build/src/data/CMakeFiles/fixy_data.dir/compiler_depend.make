# Empty compiler generated dependencies file for fixy_data.
# This may be replaced when dependencies are built.
