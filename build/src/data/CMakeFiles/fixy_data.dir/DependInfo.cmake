
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/observation.cc" "src/data/CMakeFiles/fixy_data.dir/observation.cc.o" "gcc" "src/data/CMakeFiles/fixy_data.dir/observation.cc.o.d"
  "/root/repo/src/data/scene.cc" "src/data/CMakeFiles/fixy_data.dir/scene.cc.o" "gcc" "src/data/CMakeFiles/fixy_data.dir/scene.cc.o.d"
  "/root/repo/src/data/track.cc" "src/data/CMakeFiles/fixy_data.dir/track.cc.o" "gcc" "src/data/CMakeFiles/fixy_data.dir/track.cc.o.d"
  "/root/repo/src/data/types.cc" "src/data/CMakeFiles/fixy_data.dir/types.cc.o" "gcc" "src/data/CMakeFiles/fixy_data.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fixy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/fixy_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
