file(REMOVE_RECURSE
  "CMakeFiles/fixy_data.dir/observation.cc.o"
  "CMakeFiles/fixy_data.dir/observation.cc.o.d"
  "CMakeFiles/fixy_data.dir/scene.cc.o"
  "CMakeFiles/fixy_data.dir/scene.cc.o.d"
  "CMakeFiles/fixy_data.dir/track.cc.o"
  "CMakeFiles/fixy_data.dir/track.cc.o.d"
  "CMakeFiles/fixy_data.dir/types.cc.o"
  "CMakeFiles/fixy_data.dir/types.cc.o.d"
  "libfixy_data.a"
  "libfixy_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
