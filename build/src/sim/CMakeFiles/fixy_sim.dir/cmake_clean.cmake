file(REMOVE_RECURSE
  "CMakeFiles/fixy_sim.dir/detector.cc.o"
  "CMakeFiles/fixy_sim.dir/detector.cc.o.d"
  "CMakeFiles/fixy_sim.dir/generate.cc.o"
  "CMakeFiles/fixy_sim.dir/generate.cc.o.d"
  "CMakeFiles/fixy_sim.dir/ground_truth.cc.o"
  "CMakeFiles/fixy_sim.dir/ground_truth.cc.o.d"
  "CMakeFiles/fixy_sim.dir/labeler.cc.o"
  "CMakeFiles/fixy_sim.dir/labeler.cc.o.d"
  "CMakeFiles/fixy_sim.dir/ledger.cc.o"
  "CMakeFiles/fixy_sim.dir/ledger.cc.o.d"
  "CMakeFiles/fixy_sim.dir/object_priors.cc.o"
  "CMakeFiles/fixy_sim.dir/object_priors.cc.o.d"
  "CMakeFiles/fixy_sim.dir/profiles.cc.o"
  "CMakeFiles/fixy_sim.dir/profiles.cc.o.d"
  "CMakeFiles/fixy_sim.dir/sensor.cc.o"
  "CMakeFiles/fixy_sim.dir/sensor.cc.o.d"
  "CMakeFiles/fixy_sim.dir/world.cc.o"
  "CMakeFiles/fixy_sim.dir/world.cc.o.d"
  "libfixy_sim.a"
  "libfixy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
