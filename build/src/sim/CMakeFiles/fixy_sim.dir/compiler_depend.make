# Empty compiler generated dependencies file for fixy_sim.
# This may be replaced when dependencies are built.
