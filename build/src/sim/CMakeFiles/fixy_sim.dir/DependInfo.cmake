
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/detector.cc" "src/sim/CMakeFiles/fixy_sim.dir/detector.cc.o" "gcc" "src/sim/CMakeFiles/fixy_sim.dir/detector.cc.o.d"
  "/root/repo/src/sim/generate.cc" "src/sim/CMakeFiles/fixy_sim.dir/generate.cc.o" "gcc" "src/sim/CMakeFiles/fixy_sim.dir/generate.cc.o.d"
  "/root/repo/src/sim/ground_truth.cc" "src/sim/CMakeFiles/fixy_sim.dir/ground_truth.cc.o" "gcc" "src/sim/CMakeFiles/fixy_sim.dir/ground_truth.cc.o.d"
  "/root/repo/src/sim/labeler.cc" "src/sim/CMakeFiles/fixy_sim.dir/labeler.cc.o" "gcc" "src/sim/CMakeFiles/fixy_sim.dir/labeler.cc.o.d"
  "/root/repo/src/sim/ledger.cc" "src/sim/CMakeFiles/fixy_sim.dir/ledger.cc.o" "gcc" "src/sim/CMakeFiles/fixy_sim.dir/ledger.cc.o.d"
  "/root/repo/src/sim/object_priors.cc" "src/sim/CMakeFiles/fixy_sim.dir/object_priors.cc.o" "gcc" "src/sim/CMakeFiles/fixy_sim.dir/object_priors.cc.o.d"
  "/root/repo/src/sim/profiles.cc" "src/sim/CMakeFiles/fixy_sim.dir/profiles.cc.o" "gcc" "src/sim/CMakeFiles/fixy_sim.dir/profiles.cc.o.d"
  "/root/repo/src/sim/sensor.cc" "src/sim/CMakeFiles/fixy_sim.dir/sensor.cc.o" "gcc" "src/sim/CMakeFiles/fixy_sim.dir/sensor.cc.o.d"
  "/root/repo/src/sim/world.cc" "src/sim/CMakeFiles/fixy_sim.dir/world.cc.o" "gcc" "src/sim/CMakeFiles/fixy_sim.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fixy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fixy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/fixy_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
