file(REMOVE_RECURSE
  "libfixy_sim.a"
)
