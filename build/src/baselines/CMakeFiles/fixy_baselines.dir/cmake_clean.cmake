file(REMOVE_RECURSE
  "CMakeFiles/fixy_baselines.dir/model_assertions.cc.o"
  "CMakeFiles/fixy_baselines.dir/model_assertions.cc.o.d"
  "CMakeFiles/fixy_baselines.dir/uncertainty.cc.o"
  "CMakeFiles/fixy_baselines.dir/uncertainty.cc.o.d"
  "libfixy_baselines.a"
  "libfixy_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
