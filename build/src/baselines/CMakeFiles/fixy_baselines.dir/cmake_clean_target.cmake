file(REMOVE_RECURSE
  "libfixy_baselines.a"
)
