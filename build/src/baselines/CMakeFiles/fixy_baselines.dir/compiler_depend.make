# Empty compiler generated dependencies file for fixy_baselines.
# This may be replaced when dependencies are built.
