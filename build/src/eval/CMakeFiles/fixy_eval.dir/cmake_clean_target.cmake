file(REMOVE_RECURSE
  "libfixy_eval.a"
)
