# Empty dependencies file for fixy_eval.
# This may be replaced when dependencies are built.
