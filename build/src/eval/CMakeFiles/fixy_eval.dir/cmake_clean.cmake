file(REMOVE_RECURSE
  "CMakeFiles/fixy_eval.dir/audit.cc.o"
  "CMakeFiles/fixy_eval.dir/audit.cc.o.d"
  "CMakeFiles/fixy_eval.dir/dataset_stats.cc.o"
  "CMakeFiles/fixy_eval.dir/dataset_stats.cc.o.d"
  "CMakeFiles/fixy_eval.dir/matching.cc.o"
  "CMakeFiles/fixy_eval.dir/matching.cc.o.d"
  "CMakeFiles/fixy_eval.dir/metrics.cc.o"
  "CMakeFiles/fixy_eval.dir/metrics.cc.o.d"
  "CMakeFiles/fixy_eval.dir/report.cc.o"
  "CMakeFiles/fixy_eval.dir/report.cc.o.d"
  "libfixy_eval.a"
  "libfixy_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
