# Empty dependencies file for fixy_common.
# This may be replaced when dependencies are built.
