file(REMOVE_RECURSE
  "libfixy_common.a"
)
