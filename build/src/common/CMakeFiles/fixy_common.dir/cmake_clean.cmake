file(REMOVE_RECURSE
  "CMakeFiles/fixy_common.dir/logging.cc.o"
  "CMakeFiles/fixy_common.dir/logging.cc.o.d"
  "CMakeFiles/fixy_common.dir/random.cc.o"
  "CMakeFiles/fixy_common.dir/random.cc.o.d"
  "CMakeFiles/fixy_common.dir/status.cc.o"
  "CMakeFiles/fixy_common.dir/status.cc.o.d"
  "CMakeFiles/fixy_common.dir/string_util.cc.o"
  "CMakeFiles/fixy_common.dir/string_util.cc.o.d"
  "libfixy_common.a"
  "libfixy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
