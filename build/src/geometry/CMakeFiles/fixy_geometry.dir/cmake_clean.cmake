file(REMOVE_RECURSE
  "CMakeFiles/fixy_geometry.dir/box.cc.o"
  "CMakeFiles/fixy_geometry.dir/box.cc.o.d"
  "CMakeFiles/fixy_geometry.dir/iou.cc.o"
  "CMakeFiles/fixy_geometry.dir/iou.cc.o.d"
  "CMakeFiles/fixy_geometry.dir/polygon.cc.o"
  "CMakeFiles/fixy_geometry.dir/polygon.cc.o.d"
  "libfixy_geometry.a"
  "libfixy_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
