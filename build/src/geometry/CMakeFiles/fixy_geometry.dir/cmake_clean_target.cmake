file(REMOVE_RECURSE
  "libfixy_geometry.a"
)
