# Empty compiler generated dependencies file for fixy_geometry.
# This may be replaced when dependencies are built.
