# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geometry")
subdirs("stats")
subdirs("json")
subdirs("data")
subdirs("io")
subdirs("dsl")
subdirs("graph")
subdirs("sim")
subdirs("baselines")
subdirs("core")
subdirs("eval")
