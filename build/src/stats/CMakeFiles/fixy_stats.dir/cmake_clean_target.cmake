file(REMOVE_RECURSE
  "libfixy_stats.a"
)
