
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/discrete.cc" "src/stats/CMakeFiles/fixy_stats.dir/discrete.cc.o" "gcc" "src/stats/CMakeFiles/fixy_stats.dir/discrete.cc.o.d"
  "/root/repo/src/stats/gaussian.cc" "src/stats/CMakeFiles/fixy_stats.dir/gaussian.cc.o" "gcc" "src/stats/CMakeFiles/fixy_stats.dir/gaussian.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/fixy_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/fixy_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/kde.cc" "src/stats/CMakeFiles/fixy_stats.dir/kde.cc.o" "gcc" "src/stats/CMakeFiles/fixy_stats.dir/kde.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/stats/CMakeFiles/fixy_stats.dir/summary.cc.o" "gcc" "src/stats/CMakeFiles/fixy_stats.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fixy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
