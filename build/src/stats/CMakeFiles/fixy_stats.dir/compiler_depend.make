# Empty compiler generated dependencies file for fixy_stats.
# This may be replaced when dependencies are built.
