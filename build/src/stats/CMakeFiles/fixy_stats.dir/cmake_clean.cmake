file(REMOVE_RECURSE
  "CMakeFiles/fixy_stats.dir/discrete.cc.o"
  "CMakeFiles/fixy_stats.dir/discrete.cc.o.d"
  "CMakeFiles/fixy_stats.dir/gaussian.cc.o"
  "CMakeFiles/fixy_stats.dir/gaussian.cc.o.d"
  "CMakeFiles/fixy_stats.dir/histogram.cc.o"
  "CMakeFiles/fixy_stats.dir/histogram.cc.o.d"
  "CMakeFiles/fixy_stats.dir/kde.cc.o"
  "CMakeFiles/fixy_stats.dir/kde.cc.o.d"
  "CMakeFiles/fixy_stats.dir/summary.cc.o"
  "CMakeFiles/fixy_stats.dir/summary.cc.o.d"
  "libfixy_stats.a"
  "libfixy_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
