file(REMOVE_RECURSE
  "libfixy_dsl.a"
)
