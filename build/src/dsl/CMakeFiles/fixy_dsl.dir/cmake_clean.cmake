file(REMOVE_RECURSE
  "CMakeFiles/fixy_dsl.dir/aof.cc.o"
  "CMakeFiles/fixy_dsl.dir/aof.cc.o.d"
  "CMakeFiles/fixy_dsl.dir/bundler.cc.o"
  "CMakeFiles/fixy_dsl.dir/bundler.cc.o.d"
  "CMakeFiles/fixy_dsl.dir/feature.cc.o"
  "CMakeFiles/fixy_dsl.dir/feature.cc.o.d"
  "CMakeFiles/fixy_dsl.dir/feature_distribution.cc.o"
  "CMakeFiles/fixy_dsl.dir/feature_distribution.cc.o.d"
  "CMakeFiles/fixy_dsl.dir/track_builder.cc.o"
  "CMakeFiles/fixy_dsl.dir/track_builder.cc.o.d"
  "libfixy_dsl.a"
  "libfixy_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
