# Empty compiler generated dependencies file for fixy_dsl.
# This may be replaced when dependencies are built.
