
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/aof.cc" "src/dsl/CMakeFiles/fixy_dsl.dir/aof.cc.o" "gcc" "src/dsl/CMakeFiles/fixy_dsl.dir/aof.cc.o.d"
  "/root/repo/src/dsl/bundler.cc" "src/dsl/CMakeFiles/fixy_dsl.dir/bundler.cc.o" "gcc" "src/dsl/CMakeFiles/fixy_dsl.dir/bundler.cc.o.d"
  "/root/repo/src/dsl/feature.cc" "src/dsl/CMakeFiles/fixy_dsl.dir/feature.cc.o" "gcc" "src/dsl/CMakeFiles/fixy_dsl.dir/feature.cc.o.d"
  "/root/repo/src/dsl/feature_distribution.cc" "src/dsl/CMakeFiles/fixy_dsl.dir/feature_distribution.cc.o" "gcc" "src/dsl/CMakeFiles/fixy_dsl.dir/feature_distribution.cc.o.d"
  "/root/repo/src/dsl/track_builder.cc" "src/dsl/CMakeFiles/fixy_dsl.dir/track_builder.cc.o" "gcc" "src/dsl/CMakeFiles/fixy_dsl.dir/track_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fixy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fixy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/fixy_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fixy_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
