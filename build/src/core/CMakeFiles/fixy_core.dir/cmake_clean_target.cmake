file(REMOVE_RECURSE
  "libfixy_core.a"
)
