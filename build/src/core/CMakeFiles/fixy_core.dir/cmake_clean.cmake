file(REMOVE_RECURSE
  "CMakeFiles/fixy_core.dir/applications.cc.o"
  "CMakeFiles/fixy_core.dir/applications.cc.o.d"
  "CMakeFiles/fixy_core.dir/engine.cc.o"
  "CMakeFiles/fixy_core.dir/engine.cc.o.d"
  "CMakeFiles/fixy_core.dir/features_std.cc.o"
  "CMakeFiles/fixy_core.dir/features_std.cc.o.d"
  "CMakeFiles/fixy_core.dir/learner.cc.o"
  "CMakeFiles/fixy_core.dir/learner.cc.o.d"
  "CMakeFiles/fixy_core.dir/model_io.cc.o"
  "CMakeFiles/fixy_core.dir/model_io.cc.o.d"
  "CMakeFiles/fixy_core.dir/proposal.cc.o"
  "CMakeFiles/fixy_core.dir/proposal.cc.o.d"
  "CMakeFiles/fixy_core.dir/proposal_io.cc.o"
  "CMakeFiles/fixy_core.dir/proposal_io.cc.o.d"
  "CMakeFiles/fixy_core.dir/ranker.cc.o"
  "CMakeFiles/fixy_core.dir/ranker.cc.o.d"
  "libfixy_core.a"
  "libfixy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
