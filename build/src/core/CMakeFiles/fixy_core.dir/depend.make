# Empty dependencies file for fixy_core.
# This may be replaced when dependencies are built.
