
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/applications.cc" "src/core/CMakeFiles/fixy_core.dir/applications.cc.o" "gcc" "src/core/CMakeFiles/fixy_core.dir/applications.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/fixy_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/fixy_core.dir/engine.cc.o.d"
  "/root/repo/src/core/features_std.cc" "src/core/CMakeFiles/fixy_core.dir/features_std.cc.o" "gcc" "src/core/CMakeFiles/fixy_core.dir/features_std.cc.o.d"
  "/root/repo/src/core/learner.cc" "src/core/CMakeFiles/fixy_core.dir/learner.cc.o" "gcc" "src/core/CMakeFiles/fixy_core.dir/learner.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/fixy_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/fixy_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/proposal.cc" "src/core/CMakeFiles/fixy_core.dir/proposal.cc.o" "gcc" "src/core/CMakeFiles/fixy_core.dir/proposal.cc.o.d"
  "/root/repo/src/core/proposal_io.cc" "src/core/CMakeFiles/fixy_core.dir/proposal_io.cc.o" "gcc" "src/core/CMakeFiles/fixy_core.dir/proposal_io.cc.o.d"
  "/root/repo/src/core/ranker.cc" "src/core/CMakeFiles/fixy_core.dir/ranker.cc.o" "gcc" "src/core/CMakeFiles/fixy_core.dir/ranker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fixy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fixy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/fixy_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fixy_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/fixy_json.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fixy_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/fixy_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
