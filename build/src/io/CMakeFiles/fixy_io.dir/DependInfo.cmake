
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/scene_io.cc" "src/io/CMakeFiles/fixy_io.dir/scene_io.cc.o" "gcc" "src/io/CMakeFiles/fixy_io.dir/scene_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fixy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fixy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/fixy_json.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/fixy_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
