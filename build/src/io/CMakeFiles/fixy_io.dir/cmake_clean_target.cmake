file(REMOVE_RECURSE
  "libfixy_io.a"
)
