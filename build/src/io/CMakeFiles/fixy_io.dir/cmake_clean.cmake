file(REMOVE_RECURSE
  "CMakeFiles/fixy_io.dir/scene_io.cc.o"
  "CMakeFiles/fixy_io.dir/scene_io.cc.o.d"
  "libfixy_io.a"
  "libfixy_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixy_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
