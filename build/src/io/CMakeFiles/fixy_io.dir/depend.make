# Empty dependencies file for fixy_io.
# This may be replaced when dependencies are built.
