# Empty dependencies file for bench_missing_observations.
# This may be replaced when dependencies are built.
