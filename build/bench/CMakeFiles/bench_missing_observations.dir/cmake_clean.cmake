file(REMOVE_RECURSE
  "CMakeFiles/bench_missing_observations.dir/bench_missing_observations.cc.o"
  "CMakeFiles/bench_missing_observations.dir/bench_missing_observations.cc.o.d"
  "bench_missing_observations"
  "bench_missing_observations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_missing_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
