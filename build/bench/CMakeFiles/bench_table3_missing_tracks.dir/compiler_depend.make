# Empty compiler generated dependencies file for bench_table3_missing_tracks.
# This may be replaced when dependencies are built.
