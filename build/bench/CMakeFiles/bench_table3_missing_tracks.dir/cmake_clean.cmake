file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_missing_tracks.dir/bench_table3_missing_tracks.cc.o"
  "CMakeFiles/bench_table3_missing_tracks.dir/bench_table3_missing_tracks.cc.o.d"
  "bench_table3_missing_tracks"
  "bench_table3_missing_tracks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_missing_tracks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
