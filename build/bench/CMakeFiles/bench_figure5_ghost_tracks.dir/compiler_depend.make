# Empty compiler generated dependencies file for bench_figure5_ghost_tracks.
# This may be replaced when dependencies are built.
