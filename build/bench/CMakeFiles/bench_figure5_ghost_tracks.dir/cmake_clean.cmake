file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_ghost_tracks.dir/bench_figure5_ghost_tracks.cc.o"
  "CMakeFiles/bench_figure5_ghost_tracks.dir/bench_figure5_ghost_tracks.cc.o.d"
  "bench_figure5_ghost_tracks"
  "bench_figure5_ghost_tracks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_ghost_tracks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
