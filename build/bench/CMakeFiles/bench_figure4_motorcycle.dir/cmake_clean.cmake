file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_motorcycle.dir/bench_figure4_motorcycle.cc.o"
  "CMakeFiles/bench_figure4_motorcycle.dir/bench_figure4_motorcycle.cc.o.d"
  "bench_figure4_motorcycle"
  "bench_figure4_motorcycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_motorcycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
