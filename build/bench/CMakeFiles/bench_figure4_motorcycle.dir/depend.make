# Empty dependencies file for bench_figure4_motorcycle.
# This may be replaced when dependencies are built.
