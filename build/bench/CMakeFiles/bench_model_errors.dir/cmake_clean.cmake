file(REMOVE_RECURSE
  "CMakeFiles/bench_model_errors.dir/bench_model_errors.cc.o"
  "CMakeFiles/bench_model_errors.dir/bench_model_errors.cc.o.d"
  "bench_model_errors"
  "bench_model_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
