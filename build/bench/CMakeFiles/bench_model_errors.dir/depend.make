# Empty dependencies file for bench_model_errors.
# This may be replaced when dependencies are built.
