# Empty dependencies file for bench_figure2_factor_graph.
# This may be replaced when dependencies are built.
