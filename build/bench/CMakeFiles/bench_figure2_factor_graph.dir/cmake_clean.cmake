file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_factor_graph.dir/bench_figure2_factor_graph.cc.o"
  "CMakeFiles/bench_figure2_factor_graph.dir/bench_figure2_factor_graph.cc.o.d"
  "bench_figure2_factor_graph"
  "bench_figure2_factor_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_factor_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
