// Monitoring ML model predictions for errors without any human labels
// (the Section 8.4 use case): Fixy's inverted-AOF ranking surfaces ghost
// tracks, misclassifications, and localization failures that the classic
// ad-hoc model assertions (appear / flicker / multibox) stay silent on —
// including errors the model is highly confident about.
//
// Usage: audit_model_predictions
#include <cstdio>

#include "baselines/model_assertions.h"
#include "baselines/uncertainty.h"
#include "core/engine.h"
#include "core/ranker.h"
#include "eval/metrics.h"
#include "sim/generate.h"

int main() {
  using namespace fixy;

  const sim::SimProfile profile = sim::LyftLikeProfile();
  Fixy fixy;
  {
    const auto training =
        sim::GenerateDataset(profile, "training", /*count=*/8, /*seed=*/42);
    if (const Status s = fixy.Learn(training.dataset); !s.ok()) {
      std::fprintf(stderr, "learning failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // A deployment scene: model predictions only (no labels exist yet).
  const auto generated = sim::GenerateScene(profile, "deployment", 4242);
  const auto ledger_errors = eval::ClaimableErrors(
      generated.ledger, ProposalKind::kModelError, generated.scene.name());
  std::printf("deployment scene: %zu model predictions, %zu true model "
              "errors\n\n",
              generated.scene.CountBySource(ObservationSource::kModel),
              ledger_errors.size());

  // What the classic assertions find.
  const auto appear = baselines::AppearAssertion(generated.scene).value();
  const auto flicker = baselines::FlickerAssertion(generated.scene).value();
  const auto multibox = baselines::MultiboxAssertion(generated.scene).value();
  std::printf("ad-hoc assertions flag: appear=%zu flicker=%zu multibox=%zu\n",
              appear.size(), flicker.size(), multibox.size());

  // What Fixy finds, ranked.
  const auto proposals = fixy.FindModelErrors(generated.scene).value();
  std::printf("Fixy ranks %zu candidate tracks; top 10:\n\n",
              proposals.size());
  int rank = 1;
  for (const ErrorProposal& p : TopK(proposals, 10)) {
    const sim::GtError* match = nullptr;
    for (const sim::GtError* error : ledger_errors) {
      if (eval::ProposalMatchesError(p, *error)) {
        match = error;
        break;
      }
    }
    std::printf("  #%2d score=%7.3f %-10s frames [%3d..%3d] conf=%.2f  %s\n",
                rank++, p.score, ObjectClassToString(p.object_class),
                p.first_frame, p.last_frame, p.model_confidence,
                match != nullptr ? sim::GtErrorTypeToString(match->type)
                                 : "(clean track)");
  }

  // The paper's headline: errors found at high model confidence, which
  // uncertainty sampling structurally cannot surface.
  double max_conf = 0.0;
  for (const ErrorProposal& p : TopK(proposals, 10)) {
    for (const sim::GtError* error : ledger_errors) {
      if (eval::ProposalMatchesError(p, *error)) {
        max_conf = std::max(max_conf, p.model_confidence);
      }
    }
  }
  const auto uncertain =
      baselines::UncertaintySampling(generated.scene).value();
  std::printf("\nhighest-confidence true error in Fixy's top 10: %.0f%%\n",
              100.0 * max_conf);
  if (!uncertain.empty()) {
    std::printf("uncertainty sampling would inspect confidences near %.2f "
                "first and miss it\n",
                uncertain.front().model_confidence);
  }
  return 0;
}
