// An auditing workflow over a labeled dataset (the Figure 1 / Figure 8 use
// case): rank likely missing labels in every scene of a vendor-labeled
// dataset and print the audit worklist an expert would review, cheapest
// errors first.
//
// Also demonstrates dataset persistence: the generated dataset is written
// to disk in the .fixy format and read back before auditing, as a real
// deployment would consume ingested data.
//
// Usage: find_label_errors [output_dir]
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/engine.h"
#include "core/ranker.h"
#include "eval/metrics.h"
#include "io/scene_io.h"
#include "sim/generate.h"

int main(int argc, char** argv) {
  using namespace fixy;
  const std::string dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "fixy_example")
                     .string();

  // --- Ingest: a vendor-labeled dataset with model predictions. ---
  const sim::SimProfile profile = sim::LyftLikeProfile();
  const sim::GeneratedDataset incoming =
      sim::GenerateDataset(profile, "batch42", /*count=*/6, /*seed=*/777);
  const Status saved = io::SaveDataset(incoming.dataset, dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  const Result<Dataset> loaded = io::LoadDataset(dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested dataset '%s': %zu scenes, %zu observations (from "
              "%s)\n\n",
              loaded->name.c_str(), loaded->scenes.size(),
              loaded->TotalObservations(), dir.c_str());

  // --- Offline: learn feature distributions from existing labels. ---
  const sim::GeneratedDataset historical =
      sim::GenerateDataset(profile, "historical", /*count=*/8, /*seed=*/42);
  Fixy fixy;
  if (const Status s = fixy.Learn(historical.dataset); !s.ok()) {
    std::fprintf(stderr, "learning failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- Online: build the audit worklist. ---
  std::printf("audit worklist (top 3 suspected missing labels per scene):\n");
  size_t verified = 0;
  size_t proposed = 0;
  for (const Scene& scene : loaded->scenes) {
    const auto proposals = fixy.FindMissingTracks(scene);
    if (!proposals.ok()) {
      std::fprintf(stderr, "ranking failed for %s: %s\n",
                   scene.name().c_str(),
                   proposals.status().ToString().c_str());
      return 1;
    }
    const auto claimable = eval::ClaimableErrors(
        incoming.ledger, ProposalKind::kMissingTrack, scene.name());
    for (const ErrorProposal& p : TopK(*proposals, 3)) {
      ++proposed;
      bool real = false;
      for (const sim::GtError* error : claimable) {
        if (eval::ProposalMatchesError(p, *error)) {
          real = true;
          break;
        }
      }
      if (real) ++verified;
      std::printf("  %-12s frame %3d: unlabeled %-10s %.1f m from the AV, "
                  "score %.3f  [%s]\n",
                  scene.name().c_str(), p.frame_index,
                  ObjectClassToString(p.object_class),
                  p.box.BevCenterDistance(
                      scene.frames()[static_cast<size_t>(p.frame_index)]
                          .ego_position),
                  p.score, real ? "verified real" : "auditor rejects");
    }
  }
  std::printf("\n%zu of %zu proposals verified against ground truth "
              "(%.0f%% audit yield)\n",
              verified, proposed,
              proposed > 0 ? 100.0 * verified / proposed : 0.0);
  return 0;
}
