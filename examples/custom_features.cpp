// Extending Fixy with user-defined features and association rules — the
// C++ equivalent of the paper's Section 3 Python snippets:
//
//   class TrackBundler(Bundler):
//     def is_associated(self, box1, box2):
//       return compute_iou(box1, box2) > 0.5
//
//   class VolumeDistribution(KDEObsDistribution):
//     def feature(self, box):
//       return box.width * box.height * box.length
//
// This example defines (1) a custom aspect-ratio observation feature, (2)
// a custom heading-change transition feature, and (3) a center-distance
// bundler, wires them into the engine via FixyOptions::extra_features, and
// shows they participate in ranking.
#include <cmath>
#include <cstdio>

#include "core/engine.h"
#include "core/ranker.h"
#include "sim/generate.h"

namespace {

using namespace fixy;

// (1) An observation feature: footprint aspect ratio (length / width),
// class-conditional. Anomalously proportioned boxes (e.g. a "car" twice as
// long as usual) become unlikely under the learned distribution.
class AspectRatioFeature final : public ObservationFeature {
 public:
  std::string name() const override { return "aspect_ratio"; }
  bool class_conditional() const override { return true; }
  std::optional<double> Compute(const Observation& obs,
                                const FeatureContext&) const override {
    if (obs.box.width <= 0.0) return std::nullopt;
    return obs.box.length / obs.box.width;
  }
};

// (2) A transition feature: absolute heading change between adjacent
// bundles in degrees. Real vehicles turn smoothly; ghosts spin.
class HeadingChangeFeature final : public TransitionFeature {
 public:
  std::string name() const override { return "heading_change"; }
  std::optional<double> Compute(const ObservationBundle& from,
                                const ObservationBundle& to,
                                const FeatureContext&) const override {
    if (from.observations.empty() || to.observations.empty()) {
      return std::nullopt;
    }
    double delta =
        to.observations.front().box.yaw - from.observations.front().box.yaw;
    while (delta > M_PI) delta -= 2.0 * M_PI;
    while (delta < -M_PI) delta += 2.0 * M_PI;
    return std::abs(delta) * 180.0 / M_PI;
  }
};

// (3) A custom bundler: associate observations whose box centers are
// within a radius, instead of the default IoU rule.
class CenterDistanceBundler final : public Bundler {
 public:
  explicit CenterDistanceBundler(double radius_m) : radius_m_(radius_m) {}
  bool IsAssociated(const Observation& a,
                    const Observation& b) const override {
    return (a.box.center.Xy() - b.box.center.Xy()).Norm() < radius_m_;
  }

 private:
  double radius_m_;
};

}  // namespace

int main() {
  const sim::SimProfile profile = sim::LyftLikeProfile();
  const auto training =
      sim::GenerateDataset(profile, "training", /*count=*/6, /*seed=*/42);

  // Wire the custom pieces into the engine.
  FixyOptions options;
  options.extra_features.push_back(std::make_shared<AspectRatioFeature>());
  options.extra_features.push_back(std::make_shared<HeadingChangeFeature>());
  options.application.track_builder.bundler =
      std::make_shared<CenterDistanceBundler>(1.5);
  options.learner.track_builder.bundler =
      std::make_shared<CenterDistanceBundler>(1.5);

  Fixy fixy(std::move(options));
  if (const Status s = fixy.Learn(training.dataset); !s.ok()) {
    std::fprintf(stderr, "learning failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("learned feature distributions:\n");
  for (const FeatureDistribution& fd : fixy.learned_features()) {
    std::printf("  %-16s (%s feature%s)\n", fd.feature().name().c_str(),
                FeatureKindToString(fd.feature().kind()),
                fd.feature().class_conditional() ? ", class-conditional"
                                                 : "");
  }

  // Rank a fresh scene with the extended feature set.
  const auto scene = sim::GenerateScene(profile, "validation", 9001);
  const auto proposals = fixy.FindMissingTracks(scene.scene);
  if (!proposals.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 proposals.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop 5 missing-track candidates under the custom DSL "
              "configuration:\n");
  int rank = 1;
  for (const ErrorProposal& p : TopK(*proposals, 5)) {
    std::printf("  #%d %s\n", rank++, p.ToString().c_str());
  }
  return 0;
}
