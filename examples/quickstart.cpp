// Quickstart: the full Fixy workflow on synthetic data in ~50 lines.
//
//   1. Generate a training dataset (existing organizational labels) and a
//      validation scene containing injected label errors.
//   2. Learn feature distributions from the training labels (offline
//      phase).
//   3. Rank potential missing tracks in the validation scene (online
//      phase) and check the top proposals against the ground-truth error
//      ledger.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "core/ranker.h"
#include "eval/matching.h"
#include "eval/metrics.h"
#include "sim/generate.h"

int main() {
  using namespace fixy;

  // 1. Simulate the organizational resources: 8 training scenes and one
  //    validation scene, all in the noisy "Lyft-like" style.
  const sim::SimProfile profile = sim::LyftLikeProfile();
  const sim::GeneratedDataset training =
      sim::GenerateDataset(profile, "train", /*count=*/8, /*seed=*/42);
  const sim::GeneratedScene validation =
      sim::GenerateScene(profile, "validation", /*seed=*/7);

  std::printf("training: %d scenes, %zu observations\n",
              static_cast<int>(training.dataset.scenes.size()),
              training.dataset.TotalObservations());
  std::printf("validation scene: %zu frames, %zu observations, %zu injected "
              "missing tracks\n",
              validation.scene.frame_count(),
              validation.scene.TotalObservations(),
              validation.ledger.CountByType(sim::GtErrorType::kMissingTrack));

  // 2. Offline phase: learn volume/velocity distributions from the
  //    training labels.
  Fixy fixy;
  const Status learn_status = fixy.Learn(training.dataset);
  if (!learn_status.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 learn_status.ToString().c_str());
    return 1;
  }
  for (const FeatureDistribution& fd : fixy.learned_features()) {
    std::printf("learned feature: %s\n", fd.feature().name().c_str());
  }

  // 3. Online phase: rank potential missing tracks.
  const Result<std::vector<ErrorProposal>> proposals =
      fixy.FindMissingTracks(validation.scene);
  if (!proposals.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 proposals.status().ToString().c_str());
    return 1;
  }

  const auto claimable = eval::ClaimableErrors(
      validation.ledger, ProposalKind::kMissingTrack, "validation");
  std::printf("\ntop 10 ranked proposals (of %zu):\n", proposals->size());
  int rank = 1;
  for (const ErrorProposal& p : TopK(*proposals, 10)) {
    bool real = false;
    for (const sim::GtError* error : claimable) {
      if (eval::ProposalMatchesError(p, *error)) {
        real = true;
        break;
      }
    }
    std::printf("  #%2d score=%7.3f %-10s frames [%3d..%3d]  %s\n", rank++,
                p.score, ObjectClassToString(p.object_class), p.first_frame,
                p.last_frame, real ? "REAL missing label" : "false alarm");
  }
  return 0;
}
