# End-to-end smoke test of fixy_cli: generate -> info -> learn -> rank.
# Invoked by ctest with -DCLI=<path-to-binary>.
set(WORK ${CMAKE_CURRENT_BINARY_DIR}/cli_test_work)
file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fixy_cli ${ARGN} failed (${rc}): ${out} ${err}")
  endif()
  set(CLI_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

run_cli(generate --out ${WORK}/ds --profile internal --scenes 2 --seed 5)
run_cli(info --data ${WORK}/ds)
if(NOT CLI_OUTPUT MATCHES "2 scenes")
  message(FATAL_ERROR "info output missing scene count: ${CLI_OUTPUT}")
endif()
run_cli(learn --data ${WORK}/ds --model ${WORK}/model.json)
if(NOT EXISTS ${WORK}/model.json)
  message(FATAL_ERROR "learn did not write the model file")
endif()
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --top 3 --out ${WORK}/proposals.json)
if(NOT CLI_OUTPUT MATCHES "candidates")
  message(FATAL_ERROR "rank output missing candidates: ${CLI_OUTPUT}")
endif()
if(NOT EXISTS ${WORK}/proposals.json)
  message(FATAL_ERROR "rank --out did not write the proposals file")
endif()

# ---- Observability: --metrics-json / --verbose-metrics. ----
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --threads 1
        --metrics-json ${WORK}/metrics1.json)
if(NOT EXISTS ${WORK}/metrics1.json)
  message(FATAL_ERROR "rank --metrics-json did not write the metrics file")
endif()
file(READ ${WORK}/metrics1.json METRICS1)
if(NOT METRICS1 MATCHES "fixy-metrics")
  message(FATAL_ERROR "metrics file missing format marker: ${METRICS1}")
endif()
if(NOT METRICS1 MATCHES "stats\\.kde_evals")
  message(FATAL_ERROR "metrics file missing kde counter: ${METRICS1}")
endif()

# The determinism contract: the counters block must be byte-identical
# between a 1-thread and an 8-thread run of the same rank.
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --threads 8
        --metrics-json ${WORK}/metrics8.json)
file(READ ${WORK}/metrics8.json METRICS8)
string(REGEX MATCH "\"counters\": \\{[^}]*\\}" COUNTERS1 "${METRICS1}")
string(REGEX MATCH "\"counters\": \\{[^}]*\\}" COUNTERS8 "${METRICS8}")
if(COUNTERS1 STREQUAL "")
  message(FATAL_ERROR "could not extract counters block: ${METRICS1}")
endif()
if(NOT COUNTERS1 STREQUAL COUNTERS8)
  message(FATAL_ERROR "counters differ between --threads 1 and --threads 8:\n${COUNTERS1}\nvs\n${COUNTERS8}")
endif()

run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --verbose-metrics)
if(NOT CLI_OUTPUT MATCHES "stats\\.kde_evals")
  message(FATAL_ERROR "--verbose-metrics table missing kde counter: ${CLI_OUTPUT}")
endif()

# ---- Checked numeric flags: malformed values are errors, not defaults. ----
foreach(bad_flags
        "rank;--data;${WORK}/ds;--model;${WORK}/model.json;--threads;abc"
        "rank;--data;${WORK}/ds;--model;${WORK}/model.json;--threads;9999999999"
        "rank;--data;${WORK}/ds;--model;${WORK}/model.json;--threads;-2"
        "rank;--data;${WORK}/ds;--model;${WORK}/model.json;--top;12x"
        "generate;--out;${WORK}/bad;--scenes;abc"
        "generate;--out;${WORK}/bad;--scenes;0")
  execute_process(COMMAND ${CLI} ${bad_flags}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "expected failure for: ${bad_flags}")
  endif()
endforeach()

# ---- Partial-failure fixture: corrupt one scene file on disk. ----
run_cli(generate --out ${WORK}/broken --profile internal --scenes 2 --seed 7)
file(GLOB BROKEN_SCENES ${WORK}/broken/*.fixy.json)
list(SORT BROKEN_SCENES)
list(GET BROKEN_SCENES 0 FIRST_SCENE)
file(WRITE ${FIRST_SCENE} "{this is not a scene")

# Strict rank (the default) must fail on the corrupt file.
execute_process(COMMAND ${CLI} rank --data ${WORK}/broken --model ${WORK}/model.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "strict rank should fail on a corrupt scene file")
endif()

# --keep-going must skip the corrupt file, rank the rest, and exit 0.
run_cli(rank --data ${WORK}/broken --model ${WORK}/model.json --keep-going)
if(NOT CLI_OUTPUT MATCHES "SKIPPED")
  message(FATAL_ERROR "keep-going rank missing SKIPPED diagnostic: ${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "ranked 1/1 scenes")
  message(FATAL_ERROR "keep-going rank missing summary line: ${CLI_OUTPUT}")
endif()

# With every scene corrupt, even --keep-going must exit non-zero.
foreach(scene ${BROKEN_SCENES})
  file(WRITE ${scene} "{this is not a scene")
endforeach()
execute_process(COMMAND ${CLI} rank --data ${WORK}/broken --model ${WORK}/model.json --keep-going
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "keep-going rank should fail when ALL scenes are corrupt")
endif()

# Bad invocations must fail.
execute_process(COMMAND ${CLI} frobnicate RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command should fail")
endif()
execute_process(COMMAND ${CLI} learn --data ${WORK}/nonexistent --model ${WORK}/x.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "learn on missing data should fail")
endif()
file(REMOVE_RECURSE ${WORK})
