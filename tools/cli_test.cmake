# End-to-end smoke test of fixy_cli: generate -> info -> learn -> rank.
# Invoked by ctest with -DCLI=<path-to-binary>.
set(WORK ${CMAKE_CURRENT_BINARY_DIR}/cli_test_work)
file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fixy_cli ${ARGN} failed (${rc}): ${out} ${err}")
  endif()
  set(CLI_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

run_cli(generate --out ${WORK}/ds --profile internal --scenes 2 --seed 5)
run_cli(info --data ${WORK}/ds)
if(NOT CLI_OUTPUT MATCHES "2 scenes")
  message(FATAL_ERROR "info output missing scene count: ${CLI_OUTPUT}")
endif()
run_cli(learn --data ${WORK}/ds --model ${WORK}/model.json)
if(NOT EXISTS ${WORK}/model.json)
  message(FATAL_ERROR "learn did not write the model file")
endif()
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --top 3 --out ${WORK}/proposals.json)
if(NOT CLI_OUTPUT MATCHES "candidates")
  message(FATAL_ERROR "rank output missing candidates: ${CLI_OUTPUT}")
endif()
if(NOT EXISTS ${WORK}/proposals.json)
  message(FATAL_ERROR "rank --out did not write the proposals file")
endif()

# Bad invocations must fail.
execute_process(COMMAND ${CLI} frobnicate RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command should fail")
endif()
execute_process(COMMAND ${CLI} learn --data ${WORK}/nonexistent --model ${WORK}/x.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "learn on missing data should fail")
endif()
file(REMOVE_RECURSE ${WORK})
