# End-to-end smoke test of fixy_cli: generate -> info -> learn -> rank.
# Invoked by ctest with -DCLI=<path-to-binary>.
set(WORK ${CMAKE_CURRENT_BINARY_DIR}/cli_test_work)
file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fixy_cli ${ARGN} failed (${rc}): ${out} ${err}")
  endif()
  set(CLI_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

run_cli(generate --out ${WORK}/ds --profile internal --scenes 2 --seed 5)
run_cli(info --data ${WORK}/ds)
if(NOT CLI_OUTPUT MATCHES "2 scenes")
  message(FATAL_ERROR "info output missing scene count: ${CLI_OUTPUT}")
endif()
run_cli(learn --data ${WORK}/ds --model ${WORK}/model.json)
if(NOT EXISTS ${WORK}/model.json)
  message(FATAL_ERROR "learn did not write the model file")
endif()
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --top 3 --out ${WORK}/proposals.json)
if(NOT CLI_OUTPUT MATCHES "candidates")
  message(FATAL_ERROR "rank output missing candidates: ${CLI_OUTPUT}")
endif()
if(NOT EXISTS ${WORK}/proposals.json)
  message(FATAL_ERROR "rank --out did not write the proposals file")
endif()

# ---- Multi-application ranking: --apps resolves via the registry. ----
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --top 3
        --apps all --out ${WORK}/multi.json)
foreach(app missing-tracks missing-obs model-errors suspect-tracks)
  if(NOT CLI_OUTPUT MATCHES "== app: ${app} ==")
    message(FATAL_ERROR "--apps all output missing ${app} section: ${CLI_OUTPUT}")
  endif()
  if(NOT EXISTS ${WORK}/multi.${app}.json)
    message(FATAL_ERROR "--apps all --out did not write multi.${app}.json")
  endif()
endforeach()

# Each app's multi-run proposals must be byte-identical to its solo run.
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --top 3
        --app model-errors --out ${WORK}/solo_me.json)
file(READ ${WORK}/solo_me.json SOLO_ME)
file(READ ${WORK}/multi.model-errors.json MULTI_ME)
if(NOT SOLO_ME STREQUAL MULTI_ME)
  message(FATAL_ERROR "model-errors proposals differ between solo and --apps all")
endif()

# The single-app proposals from the multi machinery must match the
# original rank --out file written above.
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --top 3
        --apps missing-tracks --out ${WORK}/single_via_apps.json)
file(READ ${WORK}/proposals.json P_ORIG)
file(READ ${WORK}/single_via_apps.json P_VIA_APPS)
if(NOT P_ORIG STREQUAL P_VIA_APPS)
  message(FATAL_ERROR "--apps missing-tracks proposals differ from --app default run")
endif()

# Unknown app names fail with the registry's dynamic listing (which must
# include the user-registered demo application).
execute_process(COMMAND ${CLI} rank --data ${WORK}/ds --model ${WORK}/model.json --app frobnicate
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "rank --app frobnicate should fail")
endif()
if(NOT "${out}${err}" MATCHES "registered: .*suspect-tracks")
  message(FATAL_ERROR "unknown-app error missing registry listing: ${out}${err}")
endif()

# --app and --apps are mutually exclusive.
execute_process(COMMAND ${CLI} rank --data ${WORK}/ds --model ${WORK}/model.json
                        --app missing-tracks --apps all
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "rank with both --app and --apps should fail")
endif()

# ---- Observability: --metrics-json / --verbose-metrics. ----
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --threads 1
        --metrics-json ${WORK}/metrics1.json)
if(NOT EXISTS ${WORK}/metrics1.json)
  message(FATAL_ERROR "rank --metrics-json did not write the metrics file")
endif()
file(READ ${WORK}/metrics1.json METRICS1)
if(NOT METRICS1 MATCHES "fixy-metrics")
  message(FATAL_ERROR "metrics file missing format marker: ${METRICS1}")
endif()
if(NOT METRICS1 MATCHES "stats\\.kde_evals")
  message(FATAL_ERROR "metrics file missing kde counter: ${METRICS1}")
endif()

# The determinism contract: the counters block must be byte-identical
# between a 1-thread and an 8-thread run of the same rank.
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --threads 8
        --metrics-json ${WORK}/metrics8.json)
file(READ ${WORK}/metrics8.json METRICS8)
string(REGEX MATCH "\"counters\": \\{[^}]*\\}" COUNTERS1 "${METRICS1}")
string(REGEX MATCH "\"counters\": \\{[^}]*\\}" COUNTERS8 "${METRICS8}")
if(COUNTERS1 STREQUAL "")
  message(FATAL_ERROR "could not extract counters block: ${METRICS1}")
endif()
if(NOT COUNTERS1 STREQUAL COUNTERS8)
  message(FATAL_ERROR "counters differ between --threads 1 and --threads 8:\n${COUNTERS1}\nvs\n${COUNTERS8}")
endif()

run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --verbose-metrics)
if(NOT CLI_OUTPUT MATCHES "stats\\.kde_evals")
  message(FATAL_ERROR "--verbose-metrics table missing kde counter: ${CLI_OUTPUT}")
endif()

# ---- Checked numeric flags: malformed values are errors, not defaults. ----
foreach(bad_flags
        "rank;--data;${WORK}/ds;--model;${WORK}/model.json;--threads;abc"
        "rank;--data;${WORK}/ds;--model;${WORK}/model.json;--threads;9999999999"
        "rank;--data;${WORK}/ds;--model;${WORK}/model.json;--threads;-2"
        "rank;--data;${WORK}/ds;--model;${WORK}/model.json;--top;12x"
        "generate;--out;${WORK}/bad;--scenes;abc"
        "generate;--out;${WORK}/bad;--scenes;0")
  execute_process(COMMAND ${CLI} ${bad_flags}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "expected failure for: ${bad_flags}")
  endif()
endforeach()

# ---- Partial-failure fixture: corrupt one scene file on disk. ----
run_cli(generate --out ${WORK}/broken --profile internal --scenes 2 --seed 7)
file(GLOB BROKEN_SCENES ${WORK}/broken/*.fixy.json)
list(SORT BROKEN_SCENES)
list(GET BROKEN_SCENES 0 FIRST_SCENE)
file(WRITE ${FIRST_SCENE} "{this is not a scene")

# Strict rank (the default) must fail on the corrupt file.
execute_process(COMMAND ${CLI} rank --data ${WORK}/broken --model ${WORK}/model.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "strict rank should fail on a corrupt scene file")
endif()

# --keep-going must skip the corrupt file, rank the rest, and exit 0.
run_cli(rank --data ${WORK}/broken --model ${WORK}/model.json --keep-going)
if(NOT CLI_OUTPUT MATCHES "SKIPPED")
  message(FATAL_ERROR "keep-going rank missing SKIPPED diagnostic: ${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "ranked 1/1 scenes")
  message(FATAL_ERROR "keep-going rank missing summary line: ${CLI_OUTPUT}")
endif()

# With every scene corrupt, even --keep-going must exit non-zero.
foreach(scene ${BROKEN_SCENES})
  file(WRITE ${scene} "{this is not a scene")
endforeach()
execute_process(COMMAND ${CLI} rank --data ${WORK}/broken --model ${WORK}/model.json --keep-going
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "keep-going rank should fail when ALL scenes are corrupt")
endif()

# Bad invocations must fail.
execute_process(COMMAND ${CLI} frobnicate RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command should fail")
endif()
execute_process(COMMAND ${CLI} learn --data ${WORK}/nonexistent --model ${WORK}/x.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "learn on missing data should fail")
endif()

# ---- FXB cache workflow: cache -> auto-detect -> stale -> rebuild. ----
# (Placed after the metrics determinism checks above so those always run
# against the JSON path, cache-free.)
run_cli(cache ${WORK}/ds)
if(NOT CLI_OUTPUT MATCHES "cached 2 scenes")
  message(FATAL_ERROR "cache output missing scene count: ${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "parity verified")
  message(FATAL_ERROR "cache output missing parity confirmation: ${CLI_OUTPUT}")
endif()
if(NOT EXISTS ${WORK}/ds/dataset.fxb)
  message(FATAL_ERROR "cache did not write dataset.fxb")
endif()

# rank must auto-detect the fresh cache, and its proposals must be
# byte-identical to a --no-cache (JSON path) run.
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --out ${WORK}/p_fxb.json)
if(NOT CLI_OUTPUT MATCHES "using cache")
  message(FATAL_ERROR "rank did not use the fresh cache: ${CLI_OUTPUT}")
endif()
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --no-cache --out ${WORK}/p_json.json)
if(CLI_OUTPUT MATCHES "using cache")
  message(FATAL_ERROR "--no-cache still used the cache: ${CLI_OUTPUT}")
endif()
file(READ ${WORK}/p_fxb.json P_FXB)
file(READ ${WORK}/p_json.json P_JSON)
if(NOT P_FXB STREQUAL P_JSON)
  message(FATAL_ERROR "FXB-path proposals differ from JSON-path proposals")
endif()

# The cache-hit run records io.fxb.cache_hits; decode threads are a
# checked numeric flag like --threads.
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json --decode-threads 2
        --metrics-json ${WORK}/metrics_fxb.json)
file(READ ${WORK}/metrics_fxb.json METRICS_FXB)
if(NOT METRICS_FXB MATCHES "io\\.fxb\\.cache_hits")
  message(FATAL_ERROR "cache-hit metrics missing io.fxb.cache_hits: ${METRICS_FXB}")
endif()
execute_process(COMMAND ${CLI} rank --data ${WORK}/ds --model ${WORK}/model.json --decode-threads 0
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "--decode-threads 0 should fail")
endif()

# Touching a source file makes the cache stale: rank must say so, fall
# back to JSON, and still succeed; re-caching restores the fast path.
file(GLOB DS_SCENES ${WORK}/ds/*.fixy.json)
list(GET DS_SCENES 0 DS_FIRST)
file(APPEND ${DS_FIRST} "\n")
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json)
if(NOT CLI_OUTPUT MATCHES "stale")
  message(FATAL_ERROR "rank on a stale cache missing staleness notice: ${CLI_OUTPUT}")
endif()
if(CLI_OUTPUT MATCHES "using cache")
  message(FATAL_ERROR "rank used a stale cache: ${CLI_OUTPUT}")
endif()
run_cli(cache ${WORK}/ds)
run_cli(rank --data ${WORK}/ds --model ${WORK}/model.json)
if(NOT CLI_OUTPUT MATCHES "using cache")
  message(FATAL_ERROR "rank did not use the rebuilt cache: ${CLI_OUTPUT}")
endif()

# ---- Incremental cache refresh: one staleness reason per change kind. ----
run_cli(generate --out ${WORK}/inc --profile internal --scenes 3 --seed 11)
run_cli(learn --data ${WORK}/inc --model ${WORK}/inc_model.json)
run_cli(cache ${WORK}/inc)
if(NOT CLI_OUTPUT MATCHES "cache status: no cache yet")
  message(FATAL_ERROR "first cache run missing no-cache status: ${CLI_OUTPUT}")
endif()

# Fresh cache: repeated runs are no-ops.
run_cli(cache ${WORK}/inc)
if(NOT CLI_OUTPUT MATCHES "is fresh \\(3 scenes\\); nothing to do")
  message(FATAL_ERROR "fresh cache was not a no-op: ${CLI_OUTPUT}")
endif()

file(GLOB INC_SCENES ${WORK}/inc/*.fixy.json)
list(SORT INC_SCENES)
list(GET INC_SCENES 0 INC_A)
list(GET INC_SCENES 1 INC_B)
list(GET INC_SCENES 2 INC_C)

# mtime-only touch: reported as modified, but the checksum fallback
# proves the content unchanged and every section is reused.
file(TOUCH ${INC_A})
run_cli(cache ${WORK}/inc)
if(NOT CLI_OUTPUT MATCHES "was modified \\(mtime changed\\)")
  message(FATAL_ERROR "mtime touch not reported: ${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "3 reused, 0 re-encoded, 0 dropped")
  message(FATAL_ERROR "mtime-only touch should reuse all sections: ${CLI_OUTPUT}")
endif()

# Size change: only the grown scene re-encodes.
file(APPEND ${INC_B} "\n")
run_cli(cache ${WORK}/inc)
if(NOT CLI_OUTPUT MATCHES "changed size \\(")
  message(FATAL_ERROR "size change not reported: ${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "2 reused, 1 re-encoded, 0 dropped")
  message(FATAL_ERROR "size change should re-encode one section: ${CLI_OUTPUT}")
endif()

# Removal: drop the last scene from the manifest; its section is dropped.
get_filename_component(INC_C_NAME ${INC_C} NAME)
file(READ ${WORK}/inc/manifest.json INC_MANIFEST)
string(REPLACE ",\n    \"${INC_C_NAME}\"" "" INC_MANIFEST_2 "${INC_MANIFEST}")
if(INC_MANIFEST_2 STREQUAL INC_MANIFEST)
  message(FATAL_ERROR "test bug: could not remove ${INC_C_NAME} from manifest")
endif()
file(WRITE ${WORK}/inc/manifest.json "${INC_MANIFEST_2}")
run_cli(cache ${WORK}/inc)
if(NOT CLI_OUTPUT MATCHES "removed since the build: ${INC_C_NAME}")
  message(FATAL_ERROR "removal not reported: ${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "cached 2 scenes .*2 reused, 0 re-encoded, 1 dropped")
  message(FATAL_ERROR "removal should drop one section: ${CLI_OUTPUT}")
endif()

# Addition: restore the manifest; the scene file is still on disk, so it
# comes back as "added" and re-encodes.
file(WRITE ${WORK}/inc/manifest.json "${INC_MANIFEST}")
run_cli(cache ${WORK}/inc)
if(NOT CLI_OUTPUT MATCHES "added since the build: ${INC_C_NAME}")
  message(FATAL_ERROR "addition not reported: ${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "cached 3 scenes .*2 reused, 1 re-encoded, 0 dropped")
  message(FATAL_ERROR "addition should re-encode one section: ${CLI_OUTPUT}")
endif()

# The refreshed cache ranks byte-identically to the JSON path.
run_cli(rank --data ${WORK}/inc --model ${WORK}/inc_model.json --out ${WORK}/inc_fxb.json)
if(NOT CLI_OUTPUT MATCHES "using cache")
  message(FATAL_ERROR "rank did not use the refreshed cache: ${CLI_OUTPUT}")
endif()
run_cli(rank --data ${WORK}/inc --model ${WORK}/inc_model.json --no-cache
        --out ${WORK}/inc_json.json)
file(READ ${WORK}/inc_fxb.json INC_P_FXB)
file(READ ${WORK}/inc_json.json INC_P_JSON)
if(NOT INC_P_FXB STREQUAL INC_P_JSON)
  message(FATAL_ERROR "refreshed-cache proposals differ from JSON path")
endif()

# The stat pass's blind spot: a same-size rewrite with a restored mtime
# looks fresh to `cache`, but `cache --verify` checksums every source,
# reports the lie, and full-rebuilds. Needs POSIX cp/touch to backdate.
find_program(TOUCH_EXE touch)
find_program(CP_EXE cp)
if(TOUCH_EXE AND CP_EXE)
  execute_process(COMMAND ${CP_EXE} -p ${INC_A} ${WORK}/inc_a.ref
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cp -p failed")
  endif()
  # Flip one digit of a box coordinate in place: same size, new bytes.
  file(READ ${INC_A} INC_A_TEXT)
  string(REGEX REPLACE "(\"cx\":[0-9]+\\.[0-9]*)3" "\\14" INC_A_LIED
         "${INC_A_TEXT}")
  if(INC_A_LIED STREQUAL INC_A_TEXT)
    string(REGEX REPLACE "(\"cx\":[0-9]+\\.[0-9]*)1" "\\12" INC_A_LIED
           "${INC_A_TEXT}")
  endif()
  if(INC_A_LIED STREQUAL INC_A_TEXT)
    message(FATAL_ERROR "test bug: no digit to flip in ${INC_A}")
  endif()
  file(WRITE ${INC_A} "${INC_A_LIED}")
  execute_process(COMMAND ${TOUCH_EXE} -r ${WORK}/inc_a.ref ${INC_A}
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "touch -r failed")
  endif()
  run_cli(cache ${WORK}/inc)
  if(NOT CLI_OUTPUT MATCHES "is fresh")
    message(FATAL_ERROR "stat-only cache should miss the backdated edit: ${CLI_OUTPUT}")
  endif()
  run_cli(cache ${WORK}/inc --verify)
  if(NOT CLI_OUTPUT MATCHES "different checksum")
    message(FATAL_ERROR "cache --verify missed the backdated edit: ${CLI_OUTPUT}")
  endif()
  if(NOT CLI_OUTPUT MATCHES "full rebuild: a source changed behind its stat record")
    message(FATAL_ERROR "cache --verify did not full-rebuild: ${CLI_OUTPUT}")
  endif()
  run_cli(cache ${WORK}/inc --verify)
  if(NOT CLI_OUTPUT MATCHES "is fresh")
    message(FATAL_ERROR "cache --verify rebuild did not converge: ${CLI_OUTPUT}")
  endif()
endif()

# ---- watch: bounded smoke run over a quiet dataset. ----
run_cli(watch --data ${WORK}/inc --model ${WORK}/inc_model.json
        --interval-ms 0 --max-cycles 2 --metrics-json ${WORK}/watch_metrics.json)
if(NOT CLI_OUTPUT MATCHES "watch: stopped after 2 cycles")
  message(FATAL_ERROR "watch did not stop after --max-cycles: ${CLI_OUTPUT}")
endif()
file(READ ${WORK}/watch_metrics.json WATCH_METRICS)
if(NOT WATCH_METRICS MATCHES "watch\\.cycles")
  message(FATAL_ERROR "watch metrics missing watch.cycles: ${WATCH_METRICS}")
endif()

# ---- --max-resident-scenes: checked flag, bounded streaming still exact. ----
# (Fresh uncapped baseline: the --verify section above may have rewritten
# a scene, so the earlier proposals are from a different dataset.)
run_cli(rank --data ${WORK}/inc --model ${WORK}/inc_model.json
        --decode-threads 2 --out ${WORK}/inc_uncapped.json)
run_cli(rank --data ${WORK}/inc --model ${WORK}/inc_model.json
        --decode-threads 2 --max-resident-scenes 1 --out ${WORK}/inc_capped.json)
if(NOT CLI_OUTPUT MATCHES "using cache")
  message(FATAL_ERROR "capped rank did not use the cache: ${CLI_OUTPUT}")
endif()
file(READ ${WORK}/inc_capped.json INC_P_CAPPED)
file(READ ${WORK}/inc_uncapped.json INC_P_UNCAPPED)
if(NOT INC_P_CAPPED STREQUAL INC_P_UNCAPPED)
  message(FATAL_ERROR "--max-resident-scenes changed the proposals")
endif()
execute_process(COMMAND ${CLI} rank --data ${WORK}/inc --model ${WORK}/inc_model.json
                --max-resident-scenes -1 RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "--max-resident-scenes -1 should fail")
endif()
execute_process(COMMAND ${CLI} rank --data ${WORK}/inc --model ${WORK}/inc_model.json
                --max-resident-scenes bogus RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "--max-resident-scenes bogus should fail")
endif()

# ---- Distinct, clearly-worded errors for bad dataset directories. ----
execute_process(COMMAND ${CLI} rank --data ${WORK}/does_not_exist --model ${WORK}/model.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "rank on a missing directory should fail")
endif()
if(NOT "${out}${err}" MATCHES "does not exist")
  message(FATAL_ERROR "missing-directory error not distinct: ${out}${err}")
endif()

file(MAKE_DIRECTORY ${WORK}/empty_dir)
execute_process(COMMAND ${CLI} rank --data ${WORK}/empty_dir --model ${WORK}/model.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "rank on a non-dataset directory should fail")
endif()
if(NOT "${out}${err}" MATCHES "no manifest.json")
  message(FATAL_ERROR "non-dataset-directory error not distinct: ${out}${err}")
endif()

file(MAKE_DIRECTORY ${WORK}/zero_scenes)
file(WRITE ${WORK}/zero_scenes/manifest.json
     "{\"format\": \"fixy-dataset\", \"version\": 1, \"name\": \"zero\", \"scenes\": []}")
execute_process(COMMAND ${CLI} rank --data ${WORK}/zero_scenes --model ${WORK}/model.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "rank on a zero-scene dataset should fail")
endif()
if(NOT "${out}${err}" MATCHES "contains no scenes")
  message(FATAL_ERROR "zero-scene error not distinct: ${out}${err}")
endif()

# cache itself gets the same distinct errors.
execute_process(COMMAND ${CLI} cache ${WORK}/does_not_exist
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "cache on a missing directory should fail")
endif()
if(NOT "${out}${err}" MATCHES "does not exist")
  message(FATAL_ERROR "cache missing-directory error not distinct: ${out}${err}")
endif()

# ---- Scenario-driven sim: presets, spec files, legacy parity. ----
run_cli(sim --list-presets)
foreach(preset lyft-like internal-like parking-lot night-low-recall)
  if(NOT CLI_OUTPUT MATCHES "${preset}")
    message(FATAL_ERROR "sim --list-presets missing ${preset}: ${CLI_OUTPUT}")
  endif()
endforeach()

run_cli(sim --out ${WORK}/sim_ds --preset internal-like --scenes 2 --seed 5 --fxb)
if(NOT CLI_OUTPUT MATCHES "wrote 2 scenes")
  message(FATAL_ERROR "sim output missing scene count: ${CLI_OUTPUT}")
endif()
foreach(artifact dataset.fxb gt_ledger.json scenario.lock.json manifest.json)
  if(NOT EXISTS ${WORK}/sim_ds/${artifact})
    message(FATAL_ERROR "sim --fxb did not write ${artifact}")
  endif()
endforeach()

# The preset-driven dataset must be byte-identical to the legacy
# hard-coded profile for the same seed (fresh generate: the ${WORK}/ds
# fixture had a scene mutated by the staleness test above).
run_cli(generate --out ${WORK}/legacy_ds --profile internal --scenes 2 --seed 5)
file(GLOB SIM_SCENES RELATIVE ${WORK}/sim_ds ${WORK}/sim_ds/*.fixy.json)
list(LENGTH SIM_SCENES SIM_SCENE_COUNT)
if(NOT SIM_SCENE_COUNT EQUAL 2)
  message(FATAL_ERROR "sim wrote ${SIM_SCENE_COUNT} scene files, expected 2")
endif()
foreach(scene ${SIM_SCENES})
  file(READ ${WORK}/sim_ds/${scene} SIM_SCENE)
  file(READ ${WORK}/legacy_ds/${scene} LEGACY_SCENE)
  if(NOT SIM_SCENE STREQUAL LEGACY_SCENE)
    message(FATAL_ERROR "sim --preset internal-like ${scene} differs from legacy generate")
  endif()
endforeach()

# The sim dataset ranks end-to-end through its direct-built FXB cache.
run_cli(rank --data ${WORK}/sim_ds --model ${WORK}/model.json --top 3)
if(NOT CLI_OUTPUT MATCHES "using cache")
  message(FATAL_ERROR "rank did not use sim's direct-built cache: ${CLI_OUTPUT}")
endif()

# A scenario spec file drives sim too; a malformed one fails naming the
# offending path, and --preset/--scenario are mutually exclusive.
file(WRITE ${WORK}/custom.scenario.json
     "{\"name\": \"custom\", \"scenes\": 1, \"world\": {\"duration_seconds\": 6.0, \"mean_object_count\": 10.0}}")
run_cli(sim --out ${WORK}/custom_ds --scenario ${WORK}/custom.scenario.json)
if(NOT CLI_OUTPUT MATCHES "wrote 1 scenes .*custom")
  message(FATAL_ERROR "sim --scenario output unexpected: ${CLI_OUTPUT}")
endif()
file(WRITE ${WORK}/bad.scenario.json "{\"name\": \"bad\", \"world\": {\"duration_seconds\": -1}}")
execute_process(COMMAND ${CLI} sim --out ${WORK}/bad_ds --scenario ${WORK}/bad.scenario.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "sim on a malformed scenario should fail")
endif()
if(NOT "${out}${err}" MATCHES "scenario.world.duration_seconds")
  message(FATAL_ERROR "scenario validation error missing field path: ${out}${err}")
endif()
execute_process(COMMAND ${CLI} sim --out ${WORK}/x --preset lyft-like
                --scenario ${WORK}/custom.scenario.json
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "sim with both --preset and --scenario should fail")
endif()

# sim numeric flags are checked like rank's.
foreach(bad_flags
        "sim;--out;${WORK}/x;--preset;lyft-like;--scenes;abc"
        "sim;--out;${WORK}/x;--preset;lyft-like;--seed;1.5"
        "sim;--out;${WORK}/x;--preset;lyft-like;--scenes;-3")
  execute_process(COMMAND ${CLI} ${bad_flags}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "expected failure for: ${bad_flags}")
  endif()
endforeach()

# ---- Sweep: small grid, cached re-run parity, metrics-diff. ----
run_cli(sweep --report ${WORK}/sweep_a.json --presets internal-like
        --apps missing-tracks,model-errors --scenes 2 --top 5
        --cache-dir ${WORK}/sweep_cache)
if(NOT CLI_OUTPUT MATCHES "wrote sweep report \\(2 cells\\)")
  message(FATAL_ERROR "sweep summary missing cell count: ${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "p@5")
  message(FATAL_ERROR "sweep table missing precision column: ${CLI_OUTPUT}")
endif()
file(READ ${WORK}/sweep_a.json SWEEP_A)
if(NOT SWEEP_A MATCHES "fixy-sweep")
  message(FATAL_ERROR "sweep report missing format marker: ${SWEEP_A}")
endif()

# Re-running the same grid (reusing the cache) is byte-identical, and the
# diff against the first report is clean; --diff-only compares two saved
# reports without running.
run_cli(sweep --report ${WORK}/sweep_b.json --presets internal-like
        --apps missing-tracks,model-errors --scenes 2 --top 5
        --cache-dir ${WORK}/sweep_cache --baseline ${WORK}/sweep_a.json
        --fail-on-regression)
if(NOT CLI_OUTPUT MATCHES "no differences \\(2 cells compared\\)")
  message(FATAL_ERROR "repeat sweep diff not clean: ${CLI_OUTPUT}")
endif()
file(READ ${WORK}/sweep_b.json SWEEP_B)
if(NOT SWEEP_A STREQUAL SWEEP_B)
  message(FATAL_ERROR "cached sweep re-run is not byte-identical")
endif()
run_cli(sweep --diff-only --baseline ${WORK}/sweep_a.json --report ${WORK}/sweep_b.json)
if(NOT CLI_OUTPUT MATCHES "no differences")
  message(FATAL_ERROR "sweep --diff-only unexpected output: ${CLI_OUTPUT}")
endif()

# A doctored baseline (more hits than reality) must trip
# --fail-on-regression in --diff-only mode.
string(REGEX REPLACE "\"hits\": [0-9]+" "\"hits\": 999"
       SWEEP_DOCTORED "${SWEEP_A}")
file(WRITE ${WORK}/sweep_doctored.json "${SWEEP_DOCTORED}")
execute_process(COMMAND ${CLI} sweep --diff-only
                --baseline ${WORK}/sweep_doctored.json
                --report ${WORK}/sweep_b.json --fail-on-regression
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "sweep --fail-on-regression should fail on a doctored baseline")
endif()
if(NOT "${out}${err}" MATCHES "REGRESSED")
  message(FATAL_ERROR "regression diff missing REGRESSED marker: ${out}${err}")
endif()

# sweep numeric and selection flags are checked.
foreach(bad_flags
        "sweep;--report;${WORK}/x.json;--presets;internal-like;--top;abc"
        "sweep;--report;${WORK}/x.json;--presets;internal-like;--threads;-2"
        "sweep;--report;${WORK}/x.json;--presets;frobnicate"
        "sweep;--report;${WORK}/x.json;--presets;internal-like;--estimator;magic")
  execute_process(COMMAND ${CLI} ${bad_flags}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "expected failure for: ${bad_flags}")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
