#!/usr/bin/env bash
# Full verification sweep: the plain tier-1 build + test run, then the
# same suite under AddressSanitizer and ThreadSanitizer (separate build
# trees; the FIXY_SANITIZE CMake option instruments every target).
#
# Usage:
#   tools/check.sh            # plain + asan + tsan
#   tools/check.sh plain      # just the tier-1 build/test
#   tools/check.sh address    # just the asan build/test
#   tools/check.sh thread     # just the tsan build/test
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==== ${name}: configure + build (${build_dir}) ===="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "==== ${name}: ctest ===="
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}")
  echo "==== ${name}: OK ===="
}

mode="${1:-all}"
case "${mode}" in
  plain)
    run_suite "plain" build ;;
  address)
    run_suite "asan" build-asan -DFIXY_SANITIZE=address ;;
  thread)
    run_suite "tsan" build-tsan -DFIXY_SANITIZE=thread ;;
  all)
    run_suite "plain" build
    run_suite "asan" build-asan -DFIXY_SANITIZE=address
    run_suite "tsan" build-tsan -DFIXY_SANITIZE=thread ;;
  *)
    echo "usage: $0 [plain|address|thread|all]" >&2
    exit 2 ;;
esac
echo "all requested suites passed"
