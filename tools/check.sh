#!/usr/bin/env bash
# Full verification sweep: the plain tier-1 build + test run, then the
# same suite under AddressSanitizer and ThreadSanitizer (separate build
# trees; the FIXY_SANITIZE CMake option instruments every target).
#
# Usage:
#   tools/check.sh            # plain + asan + tsan + metrics
#   tools/check.sh plain      # just the tier-1 build/test
#   tools/check.sh address    # just the asan build/test
#   tools/check.sh thread     # just the tsan build/test
#   tools/check.sh metrics    # end-to-end metrics sweep: every value
#                             # finite/non-negative, counters identical
#                             # across thread counts, schema key set
#                             # matches tools/metrics_schema.golden
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==== ${name}: configure + build (${build_dir}) ===="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "==== ${name}: ctest ===="
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}")
  echo "==== ${name}: OK ===="
}

run_metrics_sweep() {
  echo "==== metrics: build fixy_cli ===="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target fixy_cli
  local cli="build/tools/fixy_cli"
  [ -x "${cli}" ] || cli="$(find build -name fixy_cli -type f | head -1)"
  local work
  work="$(mktemp -d)"
  trap 'rm -rf "${work}"' RETURN

  echo "==== metrics: generate + learn + rank --metrics-json ===="
  "${cli}" generate --out "${work}/ds" --profile lyft --scenes 4 --seed 11
  "${cli}" learn --data "${work}/ds" --model "${work}/model.json"
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --threads 1 --metrics-json "${work}/metrics1.json" > /dev/null
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --threads 8 --metrics-json "${work}/metrics8.json" > /dev/null

  if ! command -v python3 > /dev/null; then
    echo "==== metrics: python3 not found, skipping validation ===="
    return 0
  fi
  echo "==== metrics: validate snapshots ===="
  python3 - "${work}/metrics1.json" "${work}/metrics8.json" \
      tools/metrics_schema.golden <<'PYEOF'
import json, math, sys

m1_path, m8_path, golden_path = sys.argv[1:4]
with open(m1_path) as f:
    m1 = json.load(f)
with open(m8_path) as f:
    m8 = json.load(f)

def fail(msg):
    sys.exit("metrics sweep FAILED: " + msg)

for path, doc in ((m1_path, m1), (m8_path, m8)):
    if doc.get("format") != "fixy-metrics" or doc.get("version") != 1:
        fail(f"{path}: bad format/version header")
    for section in ("counters", "timers_ms", "gauges"):
        for name, value in doc[section].items():
            if not math.isfinite(value):
                fail(f"{path}: {section}/{name} is not finite: {value}")
            if section != "gauges" and value < 0:
                fail(f"{path}: {section}/{name} is negative: {value}")

# Counters are exact event counts: identical at any thread count.
if m1["counters"] != m8["counters"]:
    fail("counters differ between --threads 1 and --threads 8")

# Schema drift is an explicit change: the key set must match the golden.
keys = sorted(
    f"{section}/{name}"
    for section in ("counters", "timers_ms", "gauges")
    for name in m1[section]
)
with open(golden_path) as f:
    golden = [line.strip() for line in f
              if line.strip() and not line.startswith("#")]
if keys != golden:
    missing = sorted(set(golden) - set(keys))
    extra = sorted(set(keys) - set(golden))
    fail(f"schema drift vs {golden_path}: missing={missing} extra={extra}\n"
         "(regenerate the golden file if the change is intentional)")
print("metrics sweep OK:", len(keys), "metrics validated")
PYEOF
  echo "==== metrics: OK ===="
}

mode="${1:-all}"
case "${mode}" in
  plain)
    run_suite "plain" build ;;
  address)
    run_suite "asan" build-asan -DFIXY_SANITIZE=address ;;
  thread)
    run_suite "tsan" build-tsan -DFIXY_SANITIZE=thread ;;
  metrics)
    run_metrics_sweep ;;
  all)
    run_suite "plain" build
    run_suite "asan" build-asan -DFIXY_SANITIZE=address
    run_suite "tsan" build-tsan -DFIXY_SANITIZE=thread
    run_metrics_sweep ;;
  *)
    echo "usage: $0 [plain|address|thread|metrics|all]" >&2
    exit 2 ;;
esac
echo "all requested suites passed"
