#!/usr/bin/env bash
# Full verification sweep: the plain tier-1 build + test run, then the
# same suite under AddressSanitizer, ThreadSanitizer, and UBSan (separate
# build trees; the FIXY_SANITIZE CMake option instruments every target).
#
# Usage:
#   tools/check.sh            # plain + asan + tsan + ubsan + metrics
#                             # + cache + multiapp + shard + daemon
#                             # + incremental + sweep + perf
#   tools/check.sh plain      # just the tier-1 build/test
#   tools/check.sh address    # just the asan build/test
#   tools/check.sh thread     # just the tsan build/test
#   tools/check.sh undefined  # just the ubsan build/test
#   tools/check.sh metrics    # end-to-end metrics sweep: every value
#                             # finite/non-negative, counters identical
#                             # across thread counts, schema key set
#                             # matches tools/metrics_schema.golden
#   tools/check.sh cache      # FXB cache sweep: JSON-vs-FXB proposal
#                             # parity (byte-identical), cache-hit metrics
#                             # vs the golden key set, and the streaming
#                             # tests under asan + tsan
#   tools/check.sh multiapp   # multi-application sweep: rank --apps all
#                             # proposals byte-identical to per-app solo
#                             # runs, one track build per scene (not per
#                             # app), per-app metrics keys vs the golden,
#                             # and the multiapp tests under asan + tsan
#   tools/check.sh shard      # sharded-ranking sweep: single-process vs
#                             # --workers N proposal parity (byte-identical),
#                             # kill-injected run + --resume parity, and the
#                             # kill/resume + checkpoint-corruption suites
#                             # under plain + asan builds
#   tools/check.sh daemon     # fixyd sweep: start a resident daemon, check
#                             # CLI-vs-daemon proposal parity (byte-identical),
#                             # hammer it with 8 concurrent query clients,
#                             # verify graceful shutdown unlinks the socket,
#                             # then the daemon concurrency/corruption suites
#                             # under plain + asan builds
#   tools/check.sh sweep      # scenario sweep: validator rejections name
#                             # the offending field, sim --preset datasets
#                             # byte-identical to the legacy profiles, a
#                             # 2x3 scenario-x-app grid byte-identical at
#                             # any --threads, metrics-diff + regression
#                             # gate smoke, and the scenario suites under
#                             # plain + asan builds
#   tools/check.sh incremental # incremental-ingestion sweep: 1-scene edit
#                             # cache update byte-identical to a rebuild,
#                             # watch --learn-labels fold byte-identical to
#                             # a full refit, watch smoke with a live edit,
#                             # and the randomized parity/merge suites
#   tools/check.sh perf       # perf-regression gate: re-run the hot-path
#                             # throughput bench and fail if any scenes/sec
#                             # row drops below the tolerance band of the
#                             # committed BENCH_hotpath.json, then the same
#                             # for the cold rows of BENCH_shard.json, the
#                             # resident p50 latencies of BENCH_daemon.json,
#                             # and the update/fold speedups of
#                             # BENCH_incremental.json
#                             # (see FIXY_PERF_TOLERANCE, default 0.75)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==== ${name}: configure + build (${build_dir}) ===="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "==== ${name}: ctest ===="
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}")
  echo "==== ${name}: OK ===="
}

run_metrics_sweep() {
  echo "==== metrics: build fixy_cli ===="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target fixy_cli
  local cli="build/tools/fixy_cli"
  [ -x "${cli}" ] || cli="$(find build -name fixy_cli -type f | head -1)"
  local work
  work="$(mktemp -d)"
  trap 'rm -rf "${work}"' RETURN

  echo "==== metrics: generate + learn + rank --metrics-json ===="
  "${cli}" generate --out "${work}/ds" --profile lyft --scenes 4 --seed 11
  "${cli}" learn --data "${work}/ds" --model "${work}/model.json"
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --threads 1 --metrics-json "${work}/metrics1.json" > /dev/null
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --threads 8 --metrics-json "${work}/metrics8.json" > /dev/null

  if ! command -v python3 > /dev/null; then
    echo "==== metrics: python3 not found, skipping validation ===="
    return 0
  fi
  echo "==== metrics: validate snapshots ===="
  python3 - "${work}/metrics1.json" "${work}/metrics8.json" \
      tools/metrics_schema.golden <<'PYEOF'
import json, math, sys

m1_path, m8_path, golden_path = sys.argv[1:4]
with open(m1_path) as f:
    m1 = json.load(f)
with open(m8_path) as f:
    m8 = json.load(f)

def fail(msg):
    sys.exit("metrics sweep FAILED: " + msg)

for path, doc in ((m1_path, m1), (m8_path, m8)):
    if doc.get("format") != "fixy-metrics" or doc.get("version") != 1:
        fail(f"{path}: bad format/version header")
    for section in ("counters", "timers_ms", "gauges"):
        for name, value in doc[section].items():
            if not math.isfinite(value):
                fail(f"{path}: {section}/{name} is not finite: {value}")
            if section != "gauges" and value < 0:
                fail(f"{path}: {section}/{name} is negative: {value}")

# Counters are exact event counts: identical at any thread count.
if m1["counters"] != m8["counters"]:
    fail("counters differ between --threads 1 and --threads 8")

# Schema drift is an explicit change: the key set must match the golden.
keys = sorted(
    f"{section}/{name}"
    for section in ("counters", "timers_ms", "gauges")
    for name in m1[section]
)
with open(golden_path) as f:
    golden = [line.strip() for line in f
              if line.strip() and not line.startswith("#")]
if keys != golden:
    missing = sorted(set(golden) - set(keys))
    extra = sorted(set(keys) - set(golden))
    fail(f"schema drift vs {golden_path}: missing={missing} extra={extra}\n"
         "(regenerate the golden file if the change is intentional)")
print("metrics sweep OK:", len(keys), "metrics validated")
PYEOF
  echo "==== metrics: OK ===="
}

run_cache_sweep() {
  echo "==== cache: build fixy_cli ===="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target fixy_cli
  local cli="build/tools/fixy_cli"
  [ -x "${cli}" ] || cli="$(find build -name fixy_cli -type f | head -1)"
  local work
  work="$(mktemp -d)"
  trap 'rm -rf "${work}"' RETURN

  echo "==== cache: JSON-vs-FXB proposal parity ===="
  "${cli}" generate --out "${work}/ds" --profile lyft --scenes 4 --seed 11
  "${cli}" learn --data "${work}/ds" --model "${work}/model.json"
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --no-cache --out "${work}/p_json.json" > /dev/null
  "${cli}" cache "${work}/ds" > /dev/null
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --out "${work}/p_fxb.json" \
      --metrics-json "${work}/metrics_fxb.json" | tee "${work}/rank.out"
  grep -q "using cache" "${work}/rank.out" \
      || { echo "cache sweep FAILED: rank did not use the cache" >&2; return 1; }
  cmp "${work}/p_json.json" "${work}/p_fxb.json" \
      || { echo "cache sweep FAILED: FXB proposals differ from JSON" >&2; return 1; }

  if command -v python3 > /dev/null; then
    echo "==== cache: validate cache-hit metrics ===="
    python3 - "${work}/metrics_fxb.json" tools/metrics_schema.golden <<'PYEOF'
import json, sys

metrics_path, golden_path = sys.argv[1:3]
with open(metrics_path) as f:
    doc = json.load(f)

def fail(msg):
    sys.exit("cache sweep FAILED: " + msg)

keys = sorted(
    f"{section}/{name}"
    for section in ("counters", "timers_ms", "gauges")
    for name in doc[section]
)
with open(golden_path) as f:
    golden = [line.strip() for line in f
              if line.strip() and not line.startswith("#")]
if keys != golden:
    missing = sorted(set(golden) - set(keys))
    extra = sorted(set(keys) - set(golden))
    fail(f"cache-hit schema drift: missing={missing} extra={extra}")

counters = doc["counters"]
if counters.get("io.fxb.cache_hits") != 1:
    fail(f"expected io.fxb.cache_hits == 1, got {counters.get('io.fxb.cache_hits')}")
if counters.get("io.fxb.scenes_decoded") != 4:
    fail(f"expected io.fxb.scenes_decoded == 4, got {counters.get('io.fxb.scenes_decoded')}")
if counters.get("io.fxb.checksum_failures") != 0:
    fail(f"expected io.fxb.checksum_failures == 0, got {counters.get('io.fxb.checksum_failures')}")
print("cache-hit metrics OK:", len(keys), "keys")
PYEOF
  else
    echo "==== cache: python3 not found, skipping metrics validation ===="
  fi

  echo "==== cache: streaming tests under asan + tsan ===="
  local san tests_re="Fxb|BoundedQueue|Crc32|Streaming|Binary|ChecksumFlip"
  for san in address thread; do
    local dir="build-${san:0:1}san"  # build-asan / build-tsan
    cmake -B "${dir}" -S . -DFIXY_SANITIZE="${san}"
    cmake --build "${dir}" -j "${JOBS}" \
        --target fxb_test batch_test common_test fault_injection_test
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" -R "${tests_re}")
  done
  echo "==== cache: OK ===="
}

run_multiapp_sweep() {
  echo "==== multiapp: build fixy_cli ===="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target fixy_cli
  local cli="build/tools/fixy_cli"
  [ -x "${cli}" ] || cli="$(find build -name fixy_cli -type f | head -1)"
  local work
  work="$(mktemp -d)"
  trap 'rm -rf "${work}"' RETURN

  echo "==== multiapp: rank --apps all vs per-app solo runs ===="
  "${cli}" generate --out "${work}/ds" --profile lyft --scenes 4 --seed 11
  "${cli}" learn --data "${work}/ds" --model "${work}/model.json"
  local apps="missing-tracks missing-obs model-errors suspect-tracks"
  local app
  for app in ${apps}; do
    "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
        --app "${app}" --out "${work}/solo_${app}.json" > /dev/null
  done
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --apps all --out "${work}/multi.json" \
      --metrics-json "${work}/metrics_multi.json" > /dev/null
  for app in ${apps}; do
    cmp "${work}/solo_${app}.json" "${work}/multi.${app}.json" \
        || { echo "multiapp sweep FAILED: ${app} proposals differ from solo" >&2
             return 1; }
  done

  if command -v python3 > /dev/null; then
    echo "==== multiapp: validate shared-pass metrics ===="
    python3 - "${work}/metrics_multi.json" tools/metrics_schema.golden <<'PYEOF'
import json, sys

metrics_path, golden_path = sys.argv[1:3]
with open(metrics_path) as f:
    doc = json.load(f)

def fail(msg):
    sys.exit("multiapp sweep FAILED: " + msg)

keys = sorted(
    f"{section}/{name}"
    for section in ("counters", "timers_ms", "gauges")
    for name in doc[section]
)
with open(golden_path) as f:
    golden = [line.strip() for line in f
              if line.strip() and not line.startswith("#")]
if keys != golden:
    missing = sorted(set(golden) - set(keys))
    extra = sorted(set(keys) - set(golden))
    fail(f"multi-app schema drift: missing={missing} extra={extra}")

counters = doc["counters"]
# The tentpole invariant: association runs once per SCENE, shared by every
# application, so track builds equal the scene count — not scenes * apps.
if counters.get("rank.track_builds") != 4:
    fail(f"expected rank.track_builds == 4 (one per scene), got "
         f"{counters.get('rank.track_builds')}")
apps = ["missing-tracks", "missing-obs", "model-errors", "suspect-tracks"]
for app in apps:
    for key in (f"rank.{app}.factors", f"rank.{app}.proposals"):
        if counters.get(key, 0) <= 0:
            fail(f"expected {key} > 0 in an --apps all run, got "
                 f"{counters.get(key)}")
print("multi-app metrics OK: one track build per scene,",
      len(apps), "apps ranked")
PYEOF
  else
    echo "==== multiapp: python3 not found, skipping metrics validation ===="
  fi

  echo "==== multiapp: multiapp tests under asan + tsan ===="
  local san tests_re="MultiApp|Registry|ScenePass"
  for san in address thread; do
    local dir="build-${san:0:1}san"  # build-asan / build-tsan
    cmake -B "${dir}" -S . -DFIXY_SANITIZE="${san}"
    cmake --build "${dir}" -j "${JOBS}" --target multiapp_test
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" -R "${tests_re}")
  done
  echo "==== multiapp: OK ===="
}

run_shard_sweep() {
  echo "==== shard: build fixy_cli ===="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target fixy_cli
  local cli="build/tools/fixy_cli"
  [ -x "${cli}" ] || cli="$(find build -name fixy_cli -type f | head -1)"
  local work
  work="$(mktemp -d)"
  trap 'rm -rf "${work}"' RETURN

  echo "==== shard: single-process vs --workers N parity ===="
  "${cli}" generate --out "${work}/ds" --profile lyft --scenes 8 --seed 11
  "${cli}" learn --data "${work}/ds" --model "${work}/model.json"
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --out "${work}/p_single.json" > /dev/null
  local workers
  for workers in 1 2 4; do
    "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
        --workers "${workers}" \
        --checkpoint-dir "${work}/ckpt_w${workers}" \
        --out "${work}/p_w${workers}.json" > /dev/null
    cmp "${work}/p_single.json" "${work}/p_w${workers}.json" \
        || { echo "shard sweep FAILED: --workers ${workers} proposals" \
                  "differ from single-process" >&2; return 1; }
  done

  echo "==== shard: kill-injected run + --resume parity ===="
  # Shard 2 dies permanently at mid-shard with one attempt: the cold run
  # quarantines it (still exit 0 — other shards rank). The resume run with
  # the injection disarmed must complete byte-identical to single-process.
  FIXY_SHARD_KILL="2:mid-shard" \
      "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --workers 2 --max-attempts 1 --backoff-ms 1 \
      --checkpoint-dir "${work}/ckpt_kill" \
      --out "${work}/p_killed.json" > /dev/null
  cmp -s "${work}/p_single.json" "${work}/p_killed.json" \
      && { echo "shard sweep FAILED: quarantined run matched the full" \
                "report (injection never fired?)" >&2; return 1; }
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --workers 4 --resume \
      --checkpoint-dir "${work}/ckpt_kill" \
      --out "${work}/p_resumed.json" > /dev/null
  cmp "${work}/p_single.json" "${work}/p_resumed.json" \
      || { echo "shard sweep FAILED: resumed proposals differ from" \
                "single-process" >&2; return 1; }

  echo "==== shard: kill/resume + corruption suites (plain + asan) ===="
  local tests_re="Shard|Checkpoint|Wire"
  (cd build && ctest --output-on-failure -j "${JOBS}" -R "${tests_re}")
  cmake -B build-asan -S . -DFIXY_SANITIZE=address
  cmake --build build-asan -j "${JOBS}" \
      --target shard_test fault_injection_test fixy_cli
  (cd build-asan && ctest --output-on-failure -j "${JOBS}" -R "${tests_re}")
  echo "==== shard: OK ===="
}

run_daemon_sweep() {
  echo "==== daemon: build fixy_cli ===="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target fixy_cli
  local cli="build/tools/fixy_cli"
  [ -x "${cli}" ] || cli="$(find build -name fixy_cli -type f | head -1)"
  local work
  work="$(mktemp -d)"
  # The daemon must not outlive the sweep even on failure.
  trap 'kill "${serve_pid:-}" 2>/dev/null; rm -rf "${work}"' RETURN

  echo "==== daemon: generate + learn + start fixyd ===="
  "${cli}" generate --out "${work}/ds" --profile lyft --scenes 4 --seed 11
  "${cli}" learn --data "${work}/ds" --model "${work}/model.json"
  local socket="${work}/fixyd.sock"
  "${cli}" serve --socket "${socket}" --model "${work}/model.json" \
      --threads 4 > "${work}/serve.log" 2>&1 &
  local serve_pid=$!
  local i
  for i in $(seq 1 100); do
    grep -q "fixyd serving" "${work}/serve.log" 2>/dev/null && break
    kill -0 "${serve_pid}" 2>/dev/null \
        || { echo "daemon sweep FAILED: fixyd died at startup" >&2
             cat "${work}/serve.log" >&2; return 1; }
    sleep 0.1
  done

  echo "==== daemon: CLI-vs-daemon proposal parity ===="
  local apps="missing-tracks missing-obs model-errors suspect-tracks"
  "${cli}" rank --data "${work}/ds" --model "${work}/model.json" \
      --apps all --out "${work}/cli.json" > /dev/null
  "${cli}" query --socket "${socket}" --cmd rank-dataset \
      --data "${work}/ds" --apps all --out "${work}/dq.json" > /dev/null
  local app
  for app in ${apps}; do
    cmp "${work}/cli.${app}.json" "${work}/dq.${app}.json" \
        || { echo "daemon sweep FAILED: ${app} proposals differ between" \
                  "one-shot CLI and resident daemon" >&2; return 1; }
  done

  echo "==== daemon: 8 concurrent query clients ===="
  local pids=() c
  for c in $(seq 1 8); do
    if [ $((c % 2)) -eq 0 ]; then
      "${cli}" query --socket "${socket}" --cmd rank-dataset \
          --data "${work}/ds" --app model-errors \
          --out "${work}/conc_${c}.json" > /dev/null &
    else
      "${cli}" query --socket "${socket}" --cmd status > /dev/null &
    fi
    pids+=($!)
  done
  local pid failed=0
  for pid in "${pids[@]}"; do
    wait "${pid}" || failed=1
  done
  [ "${failed}" -eq 0 ] \
      || { echo "daemon sweep FAILED: a concurrent client failed" >&2
           return 1; }
  for c in 2 4 6 8; do
    cmp "${work}/cli.model-errors.json" "${work}/conc_${c}.json" \
        || { echo "daemon sweep FAILED: concurrent client ${c} proposals" \
                  "differ" >&2; return 1; }
  done

  echo "==== daemon: graceful shutdown ===="
  "${cli}" query --socket "${socket}" --cmd shutdown > /dev/null
  wait "${serve_pid}" \
      || { echo "daemon sweep FAILED: fixyd exited non-zero" >&2; return 1; }
  serve_pid=""
  [ ! -e "${socket}" ] \
      || { echo "daemon sweep FAILED: socket not unlinked on shutdown" >&2
           return 1; }

  echo "==== daemon: concurrency + corruption suites (plain + asan) ===="
  local tests_re="Daemon|Process"
  (cd build && ctest --output-on-failure -j "${JOBS}" -R "${tests_re}")
  cmake -B build-asan -S . -DFIXY_SANITIZE=address
  cmake --build build-asan -j "${JOBS}" --target daemon_test common_test
  (cd build-asan && ctest --output-on-failure -j "${JOBS}" -R "${tests_re}")
  echo "==== daemon: OK ===="
}

run_incremental_sweep() {
  echo "==== incremental: build fixy_cli ===="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target fixy_cli incremental_test
  local cli="build/tools/fixy_cli"
  [ -x "${cli}" ] || cli="$(find build -name fixy_cli -type f | head -1)"
  local work
  work="$(mktemp -d)"
  trap 'rm -rf "${work}"' RETURN

  echo "==== incremental: edit -> update vs rebuild byte parity ===="
  "${cli}" generate --out "${work}/ds" --profile lyft --scenes 6 --seed 23
  "${cli}" cache "${work}/ds" > /dev/null
  local scene
  scene="$(ls "${work}/ds" | grep '\.fixy\.json$' | head -1)"
  # Rewrite one scene in place, refresh the cache incrementally, and
  # compare against a from-scratch build of the same sources.
  printf '\n' >> "${work}/ds/${scene}"
  "${cli}" cache "${work}/ds" | grep -q "1 re-encoded" \
      || { echo "incremental sweep FAILED: cache update did not re-encode" >&2
           return 1; }
  cp "${work}/ds/dataset.fxb" "${work}/updated.fxb"
  rm "${work}/ds/dataset.fxb"
  "${cli}" cache "${work}/ds" > /dev/null
  cmp "${work}/ds/dataset.fxb" "${work}/updated.fxb" \
      || { echo "incremental sweep FAILED: updated cache differs from a" \
                "fresh rebuild" >&2; return 1; }

  echo "==== incremental: merge vs refit model parity ===="
  # Learn + cache the 4-scene head, add two more scenes WHILE watch
  # --learn-labels is running (bootstrap never folds — only live updates
  # do), and compare the folded model against one full learn over all 6.
  "${cli}" generate --out "${work}/head" --profile lyft --scenes 4 --seed 31
  "${cli}" generate --out "${work}/more" --profile lyft --scenes 6 --seed 31
  "${cli}" learn --data "${work}/head" --model "${work}/folded.json"
  "${cli}" cache "${work}/head" > /dev/null
  "${cli}" watch --data "${work}/head" --model "${work}/folded.json" \
      --learn-labels --interval-ms 50 > "${work}/watch.log" 2>&1 &
  local watch_pid=$!
  trap 'kill "${watch_pid}" 2>/dev/null; rm -rf "${work}"' RETURN
  local i
  for i in $(seq 1 100); do
    # The bootstrap cycle ranks every head scene; its last line marks it.
    grep -q "lyft_like_3 \[suspect-tracks\]" "${work}/watch.log" && break
    kill -0 "${watch_pid}" 2>/dev/null \
        || { echo "incremental sweep FAILED: watch died at bootstrap" >&2
             cat "${work}/watch.log" >&2; return 1; }
    sleep 0.1
  done
  local extra
  for extra in $(ls "${work}/more" | grep '\.fixy\.json$' | tail -2); do
    cp "${work}/more/${extra}" "${work}/head/${extra}"
  done
  python3 - "${work}/head/manifest.json" <<'EOF'
import json, sys
path = sys.argv[1]
doc = json.load(open(path))
doc["scenes"] += ["lyft_like_4.fixy.json", "lyft_like_5.fixy.json"]
json.dump(doc, open(path, "w"), indent=2)
EOF
  for i in $(seq 1 200); do
    # Wait until every added scene has been folded in (one or two folds,
    # depending on how the poll interleaves with the manifest edit).
    local folded_total
    # `|| true` swallows grep's no-match status (pipefail would otherwise
    # fail the whole assignment before any fold happened).
    folded_total="$(grep -o "folded [0-9]* scene" "${work}/watch.log" \
        | awk '{s += $2} END {print s + 0}' || true)"
    [ "${folded_total}" -ge 2 ] && break
    kill -0 "${watch_pid}" 2>/dev/null \
        || { echo "incremental sweep FAILED: watch died mid-fold" >&2
             cat "${work}/watch.log" >&2; return 1; }
    sleep 0.1
  done
  kill -INT "${watch_pid}"
  wait "${watch_pid}" \
      || { echo "incremental sweep FAILED: watch exited non-zero" >&2
           cat "${work}/watch.log" >&2; return 1; }
  trap 'rm -rf "${work}"' RETURN
  grep -q "watch: folded" "${work}/watch.log" \
      || { echo "incremental sweep FAILED: watch never folded the added" \
                "scenes" >&2; cat "${work}/watch.log" >&2; return 1; }
  "${cli}" learn --data "${work}/head" --model "${work}/refit.json"
  cmp "${work}/folded.json" "${work}/refit.json" \
      || { echo "incremental sweep FAILED: folded model differs from a" \
                "full refit" >&2; return 1; }

  echo "==== incremental: watch smoke with a live edit ===="
  "${cli}" learn --data "${work}/ds" --model "${work}/watch_model.json"
  printf '\n' >> "${work}/ds/${scene}"
  "${cli}" watch --data "${work}/ds" --model "${work}/watch_model.json" \
      --interval-ms 0 --max-cycles 2 --metrics-json "${work}/watch.json" \
      > "${work}/smoke.log"
  grep -q "watch: stopped after 2 cycles" "${work}/smoke.log" \
      || { echo "incremental sweep FAILED: watch did not run its cycles" >&2
           cat "${work}/smoke.log" >&2; return 1; }
  grep -q '"watch.cycles"' "${work}/watch.json" \
      || { echo "incremental sweep FAILED: watch metrics missing" >&2
           return 1; }

  echo "==== incremental: randomized parity + merge suites ===="
  (cd build && ctest --output-on-failure -j "${JOBS}" \
      -R "Incremental|MergeRefit|SufficientStats|Watch")
  echo "==== incremental: OK ===="
}

run_scenario_sweep() {
  echo "==== sweep: build fixy_cli + scenario_test ===="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target fixy_cli scenario_test
  local cli="build/tools/fixy_cli"
  [ -x "${cli}" ] || cli="$(find build -name fixy_cli -type f | head -1)"
  local work
  work="$(mktemp -d)"
  trap 'rm -rf "${work}"' RETURN

  echo "==== sweep: scenario validator rejects with field paths ===="
  cat > "${work}/bad_key.scenario.json" <<'EOF'
{"name": "bad", "wrold": {}}
EOF
  cat > "${work}/bad_enum.scenario.json" <<'EOF'
{"name": "bad", "detector": {"calibration": "sometimes"}}
EOF
  if "${cli}" sim --out "${work}/bad_ds" \
      --scenario "${work}/bad_key.scenario.json" > "${work}/bad.log" 2>&1; then
    echo "sweep FAILED: malformed scenario was accepted" >&2
    return 1
  fi
  grep -q "wrold" "${work}/bad.log" \
      || { echo "sweep FAILED: validator error does not name the unknown" \
                "field" >&2; cat "${work}/bad.log" >&2; return 1; }
  if "${cli}" sim --out "${work}/bad_ds" \
      --scenario "${work}/bad_enum.scenario.json" > "${work}/bad.log" 2>&1; then
    echo "sweep FAILED: bad enum value was accepted" >&2
    return 1
  fi
  grep -q "valid values: calibrated, uncalibrated" "${work}/bad.log" \
      || { echo "sweep FAILED: enum error does not list valid values" >&2
           cat "${work}/bad.log" >&2; return 1; }

  echo "==== sweep: preset sim is byte-identical to the legacy profile ===="
  "${cli}" generate --out "${work}/legacy" --profile lyft --scenes 3 --seed 9
  "${cli}" sim --out "${work}/preset" --preset lyft-like --scenes 3 --seed 9 \
      > /dev/null
  local scene
  for scene in $(ls "${work}/legacy" | grep '\.fixy\.json$'); do
    cmp "${work}/legacy/${scene}" "${work}/preset/${scene}" \
        || { echo "sweep FAILED: sim --preset lyft-like ${scene} differs" \
                  "from generate --profile lyft" >&2; return 1; }
  done

  echo "==== sweep: 2x3 grid, byte-identical at any thread count ===="
  local grid="lyft-like,internal-like"
  local apps="missing-tracks,missing-obs,model-errors"
  "${cli}" sweep --report "${work}/report_t1.json" \
      --presets "${grid}" --apps "${apps}" --scenes 2 --top 5 --threads 1 \
      --cache-dir "${work}/cache" > "${work}/sweep_t1.log"
  "${cli}" sweep --report "${work}/report_t4.json" \
      --presets "${grid}" --apps "${apps}" --scenes 2 --top 5 --threads 4 \
      --cache-dir "${work}/cache" > /dev/null
  cmp "${work}/report_t1.json" "${work}/report_t4.json" \
      || { echo "sweep FAILED: reports differ between --threads 1 and 4" >&2
           return 1; }
  grep -q "p@5" "${work}/sweep_t1.log" \
      || { echo "sweep FAILED: per-cell table missing from output" >&2
           cat "${work}/sweep_t1.log" >&2; return 1; }
  grep -q "wrote sweep report (6 cells)" "${work}/sweep_t1.log" \
      || { echo "sweep FAILED: expected 6 cells in the 2x3 grid" >&2
           cat "${work}/sweep_t1.log" >&2; return 1; }

  echo "==== sweep: metrics-diff between two runs ===="
  "${cli}" sweep --diff-only --baseline "${work}/report_t1.json" \
      --report "${work}/report_t4.json" > "${work}/diff.log"
  grep -q "no differences (6 cells compared)" "${work}/diff.log" \
      || { echo "sweep FAILED: identical reports did not diff clean" >&2
           cat "${work}/diff.log" >&2; return 1; }
  # A doctored baseline (inflated hit counts) must trip the regression gate.
  sed 's/"hits": [0-9]*/"hits": 999/' "${work}/report_t1.json" \
      > "${work}/doctored.json"
  if "${cli}" sweep --diff-only --baseline "${work}/doctored.json" \
      --report "${work}/report_t4.json" --fail-on-regression \
      > "${work}/regress.log" 2>&1; then
    echo "sweep FAILED: --fail-on-regression passed a doctored baseline" >&2
    return 1
  fi
  grep -q "REGRESSED" "${work}/regress.log" \
      || { echo "sweep FAILED: regression diff missing REGRESSED rows" >&2
           cat "${work}/regress.log" >&2; return 1; }

  echo "==== sweep: scenario suites (plain + asan) ===="
  local tests_re="SpecValidator|SpecRoundTrip|Presets|Materialize|DropoutWindows|LedgerIo|Sweep|CellDiff"
  (cd build && ctest --output-on-failure -j "${JOBS}" -R "${tests_re}")
  cmake -B build-asan -S . -DFIXY_SANITIZE=address
  cmake --build build-asan -j "${JOBS}" --target scenario_test fixy_cli
  (cd build-asan && ctest --output-on-failure -j "${JOBS}" -R "${tests_re}")
  echo "==== sweep: OK ===="
}

run_perf_gate() {
  echo "==== perf: build bench_throughput ===="
  cmake -B build -S .
  cmake --build build -j "${JOBS}" --target bench_throughput
  local bench="build/bench/bench_throughput"
  [ -x "${bench}" ] || bench="$(find build -name bench_throughput -type f | head -1)"
  [ -f BENCH_hotpath.json ] \
      || { echo "perf gate FAILED: BENCH_hotpath.json not committed" >&2
           return 1; }
  [ -f BENCH_shard.json ] \
      || { echo "perf gate FAILED: BENCH_shard.json not committed" >&2
           return 1; }
  echo "==== perf: re-measure vs committed BENCH_hotpath.json ===="
  # The filter matches no google-benchmark; only the hot-path measurement
  # and the baseline diff run. A regression exits non-zero.
  "${bench}" --benchmark_filter=NothingMatchesThis \
      --hotpath-baseline BENCH_hotpath.json
  echo "==== perf: re-measure vs committed BENCH_shard.json ===="
  "${bench}" --benchmark_filter=NothingMatchesThis \
      --shard-baseline BENCH_shard.json
  [ -f BENCH_daemon.json ] \
      || { echo "perf gate FAILED: BENCH_daemon.json not committed" >&2
           return 1; }
  echo "==== perf: re-measure vs committed BENCH_daemon.json ===="
  "${bench}" --benchmark_filter=NothingMatchesThis \
      --daemon-baseline BENCH_daemon.json
  [ -f BENCH_incremental.json ] \
      || { echo "perf gate FAILED: BENCH_incremental.json not committed" >&2
           return 1; }
  echo "==== perf: re-measure vs committed BENCH_incremental.json ===="
  "${bench}" --benchmark_filter=NothingMatchesThis \
      --incremental-baseline BENCH_incremental.json
  echo "==== perf: OK ===="
}

mode="${1:-all}"
case "${mode}" in
  plain)
    run_suite "plain" build ;;
  address)
    run_suite "asan" build-asan -DFIXY_SANITIZE=address ;;
  thread)
    run_suite "tsan" build-tsan -DFIXY_SANITIZE=thread ;;
  undefined)
    run_suite "ubsan" build-ubsan -DFIXY_SANITIZE=undefined ;;
  metrics)
    run_metrics_sweep ;;
  cache)
    run_cache_sweep ;;
  multiapp)
    run_multiapp_sweep ;;
  shard)
    run_shard_sweep ;;
  daemon)
    run_daemon_sweep ;;
  incremental)
    run_incremental_sweep ;;
  sweep)
    run_scenario_sweep ;;
  perf)
    run_perf_gate ;;
  all)
    run_suite "plain" build
    run_suite "asan" build-asan -DFIXY_SANITIZE=address
    run_suite "tsan" build-tsan -DFIXY_SANITIZE=thread
    run_suite "ubsan" build-ubsan -DFIXY_SANITIZE=undefined
    run_metrics_sweep
    run_cache_sweep
    run_multiapp_sweep
    run_shard_sweep
    run_daemon_sweep
    run_incremental_sweep
    run_scenario_sweep
    run_perf_gate ;;
  *)
    echo "usage: $0 [plain|address|thread|undefined|metrics|cache|multiapp|shard|daemon|incremental|sweep|perf|all]" >&2
    exit 2 ;;
esac
echo "all requested suites passed"
