// fixy_cli — command-line front end for the Fixy pipeline.
//
// Subcommands:
//   generate  --profile lyft|internal --scenes N --seed S --out DIR
//             Simulate a labeled dataset (with injected errors) to DIR.
//   learn     --data DIR --model FILE [--estimator kde|histogram|gaussian]
//             Learn feature distributions from DIR's labels; save to FILE.
//   rank      --data DIR --model FILE
//             [--app missing-tracks|missing-obs|model-errors] [--top K]
//             [--threads N]
//             Rank potential errors in every scene of DIR, fanning scenes
//             out across N worker threads (0 = hardware concurrency).
//   info      --data DIR
//             Print dataset statistics.
//
// Example session:
//   fixy_cli generate --profile lyft --scenes 4 --out /tmp/ds
//   fixy_cli learn    --data /tmp/ds --model /tmp/model.json
//   fixy_cli rank     --data /tmp/ds --model /tmp/model.json --top 5
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/macros.h"
#include "core/engine.h"
#include "core/model_io.h"
#include "core/proposal_io.h"
#include "core/ranker.h"
#include "eval/dataset_stats.h"
#include "io/scene_io.h"
#include "sim/generate.h"

namespace fixy::cli {
namespace {

// Minimal --flag value parser; every flag takes exactly one value.
class Flags {
 public:
  static Result<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("expected a --flag, got: " + arg);
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag needs a value: " + arg);
      }
      flags.values_[arg.substr(2)] = argv[++i];
    }
    return flags;
  }

  std::string GetOr(const std::string& name,
                    const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  Result<std::string> GetRequired(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return Status::InvalidArgument("missing required flag: --" + name);
    }
    return it->second;
  }

  int GetIntOr(const std::string& name, int fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

Result<sim::SimProfile> ProfileByName(const std::string& name) {
  if (name == "lyft") return sim::LyftLikeProfile();
  if (name == "internal") return sim::InternalLikeProfile();
  return Status::InvalidArgument("unknown profile: " + name +
                                 " (expected lyft|internal)");
}

Status CmdGenerate(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(std::string out, flags.GetRequired("out"));
  FIXY_ASSIGN_OR_RETURN(sim::SimProfile profile,
                        ProfileByName(flags.GetOr("profile", "lyft")));
  const int scenes = flags.GetIntOr("scenes", 4);
  const uint64_t seed =
      static_cast<uint64_t>(flags.GetIntOr("seed", 42));
  const sim::GeneratedDataset generated =
      sim::GenerateDataset(profile, profile.name, scenes, seed);
  FIXY_RETURN_IF_ERROR(io::SaveDataset(generated.dataset, out));
  std::printf("wrote %d scenes (%zu observations, %zu injected errors) to "
              "%s\n",
              scenes, generated.dataset.TotalObservations(),
              generated.ledger.errors.size(), out.c_str());
  return Status::Ok();
}

Status CmdLearn(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(std::string data, flags.GetRequired("data"));
  FIXY_ASSIGN_OR_RETURN(std::string model_path, flags.GetRequired("model"));
  FIXY_ASSIGN_OR_RETURN(Dataset dataset, io::LoadDataset(data));

  FixyOptions options;
  const std::string estimator = flags.GetOr("estimator", "kde");
  if (estimator == "kde") {
    options.learner.estimator = EstimatorKind::kKde;
  } else if (estimator == "histogram") {
    options.learner.estimator = EstimatorKind::kHistogram;
  } else if (estimator == "gaussian") {
    options.learner.estimator = EstimatorKind::kGaussian;
  } else {
    return Status::InvalidArgument("unknown estimator: " + estimator);
  }

  Fixy fixy(std::move(options));
  FIXY_RETURN_IF_ERROR(fixy.Learn(dataset));
  FIXY_RETURN_IF_ERROR(fixy.SaveModel(model_path));
  std::printf("learned %zu feature distributions from %zu scenes; model "
              "saved to %s\n",
              fixy.learned_features().size() + 1, dataset.scenes.size(),
              model_path.c_str());
  return Status::Ok();
}

Status CmdRank(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(std::string data, flags.GetRequired("data"));
  FIXY_ASSIGN_OR_RETURN(std::string model_path, flags.GetRequired("model"));
  const std::string app = flags.GetOr("app", "missing-tracks");
  const int top = flags.GetIntOr("top", 10);

  const std::string out_path = flags.GetOr("out", "");

  FIXY_ASSIGN_OR_RETURN(Dataset dataset, io::LoadDataset(data));
  Fixy fixy;
  FIXY_RETURN_IF_ERROR(fixy.LoadModel(model_path));

  Application application = Application::kMissingTracks;
  if (app == "missing-tracks") {
    application = Application::kMissingTracks;
  } else if (app == "missing-obs") {
    application = Application::kMissingObservations;
  } else if (app == "model-errors") {
    application = Application::kModelErrors;
  } else {
    return Status::InvalidArgument("unknown app: " + app +
                                   " (expected missing-tracks|missing-obs|"
                                   "model-errors)");
  }

  // Scenes rank in parallel across the pool (--threads, default hardware
  // concurrency); output order matches the dataset regardless of thread
  // count.
  BatchOptions batch;
  batch.num_threads = flags.GetIntOr("threads", 0);
  FIXY_ASSIGN_OR_RETURN(std::vector<std::vector<ErrorProposal>> per_scene,
                        fixy.RankDataset(dataset, application, batch));

  std::vector<ErrorProposal> all_proposals;
  for (size_t s = 0; s < dataset.scenes.size(); ++s) {
    const std::vector<ErrorProposal>& proposals = per_scene[s];
    std::printf("%s: %zu candidates\n", dataset.scenes[s].name().c_str(),
                proposals.size());
    int rank = 1;
    for (const ErrorProposal& p : TopK(proposals, static_cast<size_t>(top))) {
      std::printf("  #%2d %s\n", rank++, p.ToString().c_str());
    }
    const auto scene_top = TopK(proposals, static_cast<size_t>(top));
    all_proposals.insert(all_proposals.end(), scene_top.begin(),
                         scene_top.end());
  }
  if (!out_path.empty()) {
    FIXY_RETURN_IF_ERROR(SaveProposals(all_proposals, out_path));
    std::printf("wrote %zu proposals to %s\n", all_proposals.size(),
                out_path.c_str());
  }
  return Status::Ok();
}

Status CmdInfo(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(std::string data, flags.GetRequired("data"));
  FIXY_ASSIGN_OR_RETURN(Dataset dataset, io::LoadDataset(data));
  std::printf("dataset '%s': %zu scenes\n", dataset.name.c_str(),
              dataset.scenes.size());
  for (const Scene& scene : dataset.scenes) {
    std::printf("  %-24s %4zu frames  %5.1f s  human=%zu model=%zu\n",
                scene.name().c_str(), scene.frame_count(),
                scene.DurationSeconds(),
                scene.CountBySource(ObservationSource::kHuman),
                scene.CountBySource(ObservationSource::kModel));
  }
  FIXY_ASSIGN_OR_RETURN(eval::DatasetStats stats,
                        eval::ComputeDatasetStats(dataset));
  std::printf("\n%s", eval::FormatDatasetStats(stats).c_str());
  return Status::Ok();
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fixy_cli <command> [--flag value ...]\n"
      "  generate --out DIR [--profile lyft|internal] [--scenes N] "
      "[--seed S]\n"
      "  learn    --data DIR --model FILE [--estimator "
      "kde|histogram|gaussian]\n"
      "  rank     --data DIR --model FILE [--app "
      "missing-tracks|missing-obs|model-errors] [--top K] [--out FILE]\n"
      "           [--threads N]  (0 = hardware concurrency)\n"
      "  info     --data DIR\n");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  const Result<Flags> flags = Flags::Parse(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return 2;
  }
  Status status;
  if (command == "generate") {
    status = CmdGenerate(*flags);
  } else if (command == "learn") {
    status = CmdLearn(*flags);
  } else if (command == "rank") {
    status = CmdRank(*flags);
  } else if (command == "info") {
    status = CmdInfo(*flags);
  } else {
    PrintUsage();
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fixy::cli

int main(int argc, char** argv) { return fixy::cli::Main(argc, argv); }
