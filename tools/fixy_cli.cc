// fixy_cli — command-line front end for the Fixy pipeline.
//
// Subcommands:
//   generate  --profile lyft|internal --scenes N --seed S --out DIR
//             Simulate a labeled dataset (with injected errors) to DIR.
//   sim       --out DIR [--preset NAME | --scenario FILE] [--scenes N]
//             [--seed S] [--fxb] [--list-presets]
//             The spec-driven generate: materialize a scenario (built-in
//             preset or JSON spec file) to DIR — scene JSON, ground-truth
//             ledger, and a lock file recording the recipe; --fxb also
//             builds dataset.fxb straight from memory (no JSON re-parse).
//   sweep     --report FILE [--presets a,b,c|all] [--scenarios f1,f2]
//             [--apps a,b,c] [--scenes N] [--seed S] [--top K]
//             [--threads N] [--estimator E] [--cache-dir DIR]
//             [--baseline FILE] [--fail-on-regression] [--diff-only]
//             Run a scenario x application grid (generate or reuse each
//             dataset, learn, rank, score against the ledger), print the
//             per-cell precision@k/recall table, and save the report;
//             --baseline diffs against a previous run's report.
//   learn     --data DIR --model FILE [--estimator kde|histogram|gaussian]
//             Learn feature distributions from DIR's labels; save to FILE.
//   rank      --data DIR --model FILE
//             [--app NAME | --apps a,b,c|all] [--top K] [--top-k K]
//             [--threads N] [--metrics-json FILE] [--verbose-metrics]
//             Rank potential errors in every scene of DIR, fanning scenes
//             out across N worker threads (0 = hardware concurrency).
//             Application names resolve against the engine's registry
//             (missing-tracks, missing-obs, model-errors, plus the demo
//             user-registered suspect-tracks); --apps ranks several
//             applications from ONE pass over the dataset — each scene is
//             decoded and associated once, and every app scores the shared
//             track set. Per-app results are byte-identical to solo runs.
//             --top-k K enables per-class top-k pruning (DESIGN.md §11):
//             applications that opt in skip compiling tracks that provably
//             cannot enter any scene's per-class top k; their surviving
//             proposals match the unpruned run exactly.
//             When DIR holds a fresh dataset.fxb cache (see `cache`),
//             scenes stream from it — decode overlapped with ranking —
//             instead of re-parsing JSON; --no-cache opts out.
//             --metrics-json dumps a PipelineMetrics snapshot (stage
//             timers + counters); --verbose-metrics prints it as a table.
//   cache     <DIR> (or --data DIR)
//             Build or incrementally refresh DIR's binary scene cache
//             (dataset.fxb): reports why it was stale, re-encodes only the
//             added/changed scenes, and verifies every fresh scene
//             round-trips byte-identically.
//   watch     --data DIR --model FILE [--interval-ms N] [--learn-labels]
//             Poll DIR for source changes; each change refreshes the cache
//             incrementally, optionally folds the changed scenes into the
//             model (sufficient-statistics merge), and re-ranks only the
//             changed scenes.
//   info      --data DIR
//             Print dataset statistics.
//
// Example session:
//   fixy_cli generate --profile lyft --scenes 4 --out /tmp/ds
//   fixy_cli learn    --data /tmp/ds --model /tmp/model.json
//   fixy_cli rank     --data /tmp/ds --model /tmp/model.json --top 5
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/macros.h"
#include "core/applications.h"
#include "core/engine.h"
#include "daemon/client.h"
#include "daemon/protocol.h"
#include "daemon/server.h"
#include "daemon/watch.h"
#include "dsl/aof.h"
#include "graph/factor_graph.h"
#include "io/fxb.h"
#include "core/model_io.h"
#include "core/proposal_io.h"
#include "core/ranker.h"
#include "eval/dataset_stats.h"
#include "io/scene_io.h"
#include "eval/cell_diff.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "scenario/materialize.h"
#include "scenario/presets.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "shard/coordinator.h"
#include "shard/worker.h"
#include "sim/generate.h"

namespace fixy::cli {
namespace {

// Strict numeric flag parsing: the whole value must be a base-10 integer
// that fits the target type. (std::atoi silently returned the fallback for
// garbage like --threads=abc and overflowed for --threads=9999999999.)
Result<int64_t> ParseInt64Flag(const std::string& name,
                               const std::string& text) {
  int64_t value = 0;
  const char* begin = text.c_str();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("--" + name + " value is out of range: " +
                                   text);
  }
  if (ec != std::errc() || ptr != end || text.empty()) {
    return Status::InvalidArgument("--" + name + " expects an integer, got: " +
                                   text);
  }
  return value;
}

// Minimal --flag value parser; every flag takes exactly one value, except
// the boolean switches listed in kBooleanFlags, which take none.
class Flags {
 public:
  static Result<Flags> Parse(int argc, char** argv, int first) {
    static const std::set<std::string> kBooleanFlags = {
        "keep-going", "fail-fast", "verbose-metrics", "no-cache", "resume",
        "learn-labels", "verify", "fxb", "list-presets", "diff-only",
        "fail-on-regression"};
    Flags flags;
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("expected a --flag, got: " + arg);
      }
      const std::string name = arg.substr(2);
      if (kBooleanFlags.count(name) > 0) {
        flags.values_[name] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag needs a value: " + arg);
      }
      flags.values_[name] = argv[++i];
    }
    return flags;
  }

  std::string GetOr(const std::string& name,
                    const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  Result<std::string> GetRequired(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return Status::InvalidArgument("missing required flag: --" + name);
    }
    return it->second;
  }

  /// Checked numeric flags: a present-but-malformed or out-of-range value
  /// is a CLI error, never silently the fallback.
  Result<int> GetIntOr(const std::string& name, int fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    FIXY_ASSIGN_OR_RETURN(int64_t value, ParseInt64Flag(name, it->second));
    if (value < std::numeric_limits<int>::min() ||
        value > std::numeric_limits<int>::max()) {
      return Status::InvalidArgument("--" + name + " value is out of range: " +
                                     it->second);
    }
    return static_cast<int>(value);
  }

  Result<int64_t> GetInt64Or(const std::string& name, int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return ParseInt64Flag(name, it->second);
  }

  bool Has(const std::string& name) const {
    return values_.count(name) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

// Distinguishes the ways a dataset path can be wrong *before* any loader
// runs, so `rank` on a missing or empty directory fails with a clear
// message instead of a generic manifest-read error (or, worse, the
// all-scenes-failed path).
Status CheckDatasetDirectory(const std::string& directory) {
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec) || ec) {
    return Status::NotFound("dataset directory does not exist: " + directory);
  }
  if (!std::filesystem::exists(directory + "/manifest.json", ec) || ec) {
    return Status::InvalidArgument(
        "not a fixy dataset (no manifest.json in " + directory + ")");
  }
  return Status::Ok();
}

// Demo user-defined application, registered through
// FixyOptions::extra_applications exactly as an out-of-tree error finder
// would be (no src/core change): ranks human-labeled tracks by
// *implausibility* under the learned distributions — the inverting AOF of
// the model-error application pointed at labels instead of predictions —
// surfacing labels whose size or motion disagrees with the fleet's priors.
AppSpec SuspectTracksApp() {
  AppSpec app;
  app.name = "suspect-tracks";
  app.view = SceneView::kFull;
  app.build_spec = [](const LearnedState& learned,
                      const ApplicationOptions& options) {
    (void)options;
    LoaSpec spec;
    for (const FeatureDistribution& fd : learned.base) {
      spec.feature_distributions.push_back(fd.WithAof(MakeInvertAof()));
    }
    return spec;
  };
  app.extract = [](const AppContext& ctx) {
    std::vector<ErrorProposal> proposals;
    const TrackSet& tracks = ctx.graph.tracks();
    for (size_t t = 0; t < tracks.tracks.size(); ++t) {
      const Track& track = tracks.tracks[t];
      if (!track.HasSource(ObservationSource::kHuman)) continue;
      if (track.TotalObservations() <=
          static_cast<size_t>(ctx.options.min_track_observations)) {
        continue;
      }
      const std::optional<double> score =
          ctx.graph.ScoreTrack(t, ctx.options.normalize_scores);
      if (!score.has_value()) continue;
      ErrorProposal proposal;
      proposal.scene_name = ctx.scene.name();
      proposal.kind = ProposalKind::kModelError;
      proposal.track_id = track.id();
      proposal.object_class = track.MajorityClass().value_or(ObjectClass::kCar);
      proposal.score = *score;
      proposal.model_confidence = track.MeanModelConfidence().value_or(0.0);
      proposal.first_frame = track.FirstFrame();
      proposal.last_frame = track.LastFrame();
      const std::optional<size_t> b = internal::ClosestApproachBundle(track);
      if (b.has_value()) {
        const ObservationBundle& bundle = track.bundles()[*b];
        const Observation* obs = internal::RepresentativeObservation(bundle);
        proposal.frame_index = bundle.frame_index;
        if (obs != nullptr) proposal.box = obs->box;
      }
      proposals.push_back(std::move(proposal));
    }
    return proposals;
  };
  return app;
}

// `--apps a,b,c`: split on commas (names cannot contain commas — the
// registry rejects them at registration).
std::vector<std::string> SplitApps(const std::string& list) {
  std::vector<std::string> names;
  std::string current;
  for (const char c : list) {
    if (c == ',') {
      names.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  names.push_back(current);
  return names;
}

// The per-app output path for a multi-application `--out`:
// proposals.json -> proposals.<app>.json.
std::string PerAppOutPath(const std::string& out_path,
                          const std::string& app) {
  const std::filesystem::path path(out_path);
  std::filesystem::path renamed = path;
  renamed.replace_filename(path.stem().string() + "." + app +
                           path.extension().string());
  return renamed.string();
}

Result<sim::SimProfile> ProfileByName(const std::string& name) {
  if (name == "lyft") return sim::LyftLikeProfile();
  if (name == "internal") return sim::InternalLikeProfile();
  return Status::InvalidArgument("unknown profile: " + name +
                                 " (expected lyft|internal)");
}

Status CmdGenerate(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(std::string out, flags.GetRequired("out"));
  FIXY_ASSIGN_OR_RETURN(sim::SimProfile profile,
                        ProfileByName(flags.GetOr("profile", "lyft")));
  FIXY_ASSIGN_OR_RETURN(const int scenes, flags.GetIntOr("scenes", 4));
  if (scenes < 1) {
    return Status::InvalidArgument("--scenes must be >= 1");
  }
  FIXY_ASSIGN_OR_RETURN(const int64_t seed_value, flags.GetInt64Or("seed", 42));
  const uint64_t seed = static_cast<uint64_t>(seed_value);
  const sim::GeneratedDataset generated =
      sim::GenerateDataset(profile, profile.name, scenes, seed);
  FIXY_RETURN_IF_ERROR(io::SaveDataset(generated.dataset, out));
  std::printf("wrote %d scenes (%zu observations, %zu injected errors) to "
              "%s\n",
              scenes, generated.dataset.TotalObservations(),
              generated.ledger.errors.size(), out.c_str());
  return Status::Ok();
}

// `sim` — the spec-driven generate: a scenario (preset or JSON file)
// materializes into scene JSON + ground-truth ledger + lock file, with
// --fxb building the binary cache straight from the in-memory dataset
// (no JSON re-parse), which is the path that makes 100k+ scene datasets
// practical.
Status CmdSim(const Flags& flags) {
  if (flags.Has("list-presets")) {
    const std::vector<std::string> names = scenario::PresetNames();
    const std::vector<std::string> descriptions =
        scenario::PresetDescriptions();
    for (size_t i = 0; i < names.size(); ++i) {
      std::printf("%-26s %s\n", names[i].c_str(), descriptions[i].c_str());
    }
    return Status::Ok();
  }
  if (flags.Has("preset") && flags.Has("scenario")) {
    return Status::InvalidArgument(
        "pass either --preset or --scenario, not both");
  }
  scenario::ScenarioSpec spec;
  if (flags.Has("scenario")) {
    FIXY_ASSIGN_OR_RETURN(spec,
                          scenario::LoadScenario(flags.GetOr("scenario", "")));
  } else {
    FIXY_ASSIGN_OR_RETURN(
        spec, scenario::PresetByName(flags.GetOr("preset", "lyft-like")));
  }
  FIXY_ASSIGN_OR_RETURN(std::string out, flags.GetRequired("out"));
  scenario::MaterializeOptions options;
  FIXY_ASSIGN_OR_RETURN(options.scene_count, flags.GetIntOr("scenes", 0));
  if (options.scene_count < 0) {
    return Status::InvalidArgument(
        "--scenes must be >= 0 (0 = the scenario's own count)");
  }
  if (flags.Has("seed")) {
    FIXY_ASSIGN_OR_RETURN(const int64_t seed, flags.GetInt64Or("seed", 0));
    options.seed = static_cast<uint64_t>(seed);
  }
  options.write_fxb = flags.Has("fxb");
  FIXY_ASSIGN_OR_RETURN(
      const scenario::MaterializedDataset result,
      scenario::MaterializeScenarioDataset(spec, out, options));
  std::printf("wrote %zu scenes (%zu observations, %zu injected errors) "
              "from scenario \"%s\" to %s%s\n",
              result.data.dataset.scenes.size(),
              result.data.dataset.TotalObservations(),
              result.data.ledger.errors.size(), spec.name.c_str(), out.c_str(),
              options.write_fxb ? " (+ dataset.fxb)" : "");
  return Status::Ok();
}

// The scenario half of a sweep grid: `--presets a,b,c|all` resolves
// against the registry, `--scenarios f1,f2` loads spec files, and the two
// concatenate (presets first).
Result<std::vector<scenario::ScenarioSpec>> SweepGrid(const Flags& flags) {
  std::vector<scenario::ScenarioSpec> specs;
  const std::string presets =
      flags.GetOr("presets", flags.Has("scenarios") ? "" : "all");
  if (presets == "all") {
    for (const std::string& name : scenario::PresetNames()) {
      FIXY_ASSIGN_OR_RETURN(scenario::ScenarioSpec spec,
                            scenario::PresetByName(name));
      specs.push_back(std::move(spec));
    }
  } else if (!presets.empty()) {
    for (const std::string& name : SplitApps(presets)) {
      FIXY_ASSIGN_OR_RETURN(scenario::ScenarioSpec spec,
                            scenario::PresetByName(name));
      specs.push_back(std::move(spec));
    }
  }
  if (flags.Has("scenarios")) {
    for (const std::string& path : SplitApps(flags.GetOr("scenarios", ""))) {
      FIXY_ASSIGN_OR_RETURN(scenario::ScenarioSpec spec,
                            scenario::LoadScenario(path));
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

// `sweep` — run a scenario × application grid (generate or reuse each
// scenario's dataset, learn, rank, score against the ground-truth
// ledger), print the per-cell precision@k/recall table, save the report
// as JSON, and optionally diff against a previous run's report.
Status CmdSweep(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(std::string report_path, flags.GetRequired("report"));
  const std::string baseline_path = flags.GetOr("baseline", "");

  // --diff-only: compare two saved reports without running anything.
  if (flags.Has("diff-only")) {
    if (baseline_path.empty()) {
      return Status::InvalidArgument(
          "--diff-only compares --baseline FILE against --report FILE");
    }
    FIXY_ASSIGN_OR_RETURN(const scenario::SweepReport base,
                          scenario::LoadSweepReport(baseline_path));
    FIXY_ASSIGN_OR_RETURN(const scenario::SweepReport current,
                          scenario::LoadSweepReport(report_path));
    const eval::CellDiffReport diff =
        scenario::DiffSweepReports(base, current);
    std::printf("%s", eval::FormatCellDiff(diff).c_str());
    if (flags.Has("fail-on-regression") && diff.HasRegression()) {
      return Status::FailedPrecondition("sweep regressed against baseline " +
                                        baseline_path);
    }
    return Status::Ok();
  }

  FIXY_ASSIGN_OR_RETURN(const std::vector<scenario::ScenarioSpec> specs,
                        SweepGrid(flags));
  scenario::SweepOptions options;
  if (flags.Has("apps")) {
    options.apps = SplitApps(flags.GetOr("apps", ""));
  }
  FIXY_ASSIGN_OR_RETURN(options.scenes_per_cell, flags.GetIntOr("scenes", 0));
  if (options.scenes_per_cell < 0) {
    return Status::InvalidArgument(
        "--scenes must be >= 0 (0 = each scenario's own count)");
  }
  if (flags.Has("seed")) {
    FIXY_ASSIGN_OR_RETURN(const int64_t seed, flags.GetInt64Or("seed", 0));
    options.seed = static_cast<uint64_t>(seed);
  }
  FIXY_ASSIGN_OR_RETURN(const int top, flags.GetIntOr("top", 10));
  if (top < 1) {
    return Status::InvalidArgument("--top must be >= 1");
  }
  options.top_k = static_cast<size_t>(top);
  FIXY_ASSIGN_OR_RETURN(options.threads, flags.GetIntOr("threads", 0));
  if (options.threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  options.cache_dir = flags.GetOr("cache-dir", "");
  const std::string estimator = flags.GetOr("estimator", "kde");
  if (estimator == "kde") {
    options.engine.learner.estimator = EstimatorKind::kKde;
  } else if (estimator == "histogram") {
    options.engine.learner.estimator = EstimatorKind::kHistogram;
  } else if (estimator == "gaussian") {
    options.engine.learner.estimator = EstimatorKind::kGaussian;
  } else {
    return Status::InvalidArgument("unknown estimator: " + estimator);
  }
  // Same registry surface as `rank`: the demo user application is
  // rankable in a sweep too (--apps suspect-tracks).
  options.engine.extra_applications.push_back(SuspectTracksApp());

  FIXY_ASSIGN_OR_RETURN(const scenario::SweepReport report,
                        scenario::RunSweep(specs, options));
  FIXY_RETURN_IF_ERROR(scenario::SaveSweepReport(report, report_path));
  std::printf("%s", scenario::FormatSweepTable(report).c_str());
  std::printf("wrote sweep report (%zu cells) to %s\n", report.cells.size(),
              report_path.c_str());

  if (!baseline_path.empty()) {
    FIXY_ASSIGN_OR_RETURN(const scenario::SweepReport base,
                          scenario::LoadSweepReport(baseline_path));
    const eval::CellDiffReport diff = scenario::DiffSweepReports(base, report);
    std::printf("\ndiff against %s:\n%s", baseline_path.c_str(),
                eval::FormatCellDiff(diff).c_str());
    if (flags.Has("fail-on-regression") && diff.HasRegression()) {
      return Status::FailedPrecondition("sweep regressed against baseline " +
                                        baseline_path);
    }
  }
  return Status::Ok();
}

Status CmdLearn(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(std::string data, flags.GetRequired("data"));
  FIXY_ASSIGN_OR_RETURN(std::string model_path, flags.GetRequired("model"));
  FIXY_ASSIGN_OR_RETURN(Dataset dataset, io::LoadDataset(data));

  FixyOptions options;
  const std::string estimator = flags.GetOr("estimator", "kde");
  if (estimator == "kde") {
    options.learner.estimator = EstimatorKind::kKde;
  } else if (estimator == "histogram") {
    options.learner.estimator = EstimatorKind::kHistogram;
  } else if (estimator == "gaussian") {
    options.learner.estimator = EstimatorKind::kGaussian;
  } else {
    return Status::InvalidArgument("unknown estimator: " + estimator);
  }

  Fixy fixy(std::move(options));
  FIXY_RETURN_IF_ERROR(fixy.Learn(dataset));
  FIXY_RETURN_IF_ERROR(fixy.SaveModel(model_path));
  std::printf("learned %zu feature distributions from %zu scenes; model "
              "saved to %s\n",
              fixy.learned_features().size() + 1, dataset.scenes.size(),
              model_path.c_str());
  return Status::Ok();
}

Status CmdRank(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(std::string data, flags.GetRequired("data"));
  FIXY_ASSIGN_OR_RETURN(std::string model_path, flags.GetRequired("model"));
  FIXY_ASSIGN_OR_RETURN(const int top, flags.GetIntOr("top", 10));
  if (top < 0) {
    return Status::InvalidArgument("--top must be >= 0");
  }
  // --workers N > 0 switches to the sharded multi-process pipeline: the
  // dataset splits into scene-range shards, each ranked by a fresh
  // `fixy_cli rank-shard` child under supervision (heartbeats, capped
  // exponential backoff retries, quarantine after K attempts), with a
  // CRC-protected checkpoint per completed shard so --resume continues a
  // killed run from the last completed shard.
  FIXY_ASSIGN_OR_RETURN(const int workers, flags.GetIntOr("workers", 0));
  if (workers < 0) {
    return Status::InvalidArgument("--workers must be >= 0");
  }
  const bool sharded = workers > 0;
  if (flags.Has("resume") && !sharded) {
    return Status::InvalidArgument("--resume requires --workers N");
  }
  if (sharded && flags.Has("fail-fast")) {
    return Status::InvalidArgument(
        "--fail-fast is not supported with --workers: shard runs always "
        "quarantine failures (per scene and per shard)");
  }
  // --keep-going: tolerate corrupt scene files at load and quarantine
  // scenes that fail to rank; exit non-zero only when nothing ranked.
  // --fail-fast restores strict first-failure-wins semantics (the default).
  // Sharded runs are keep-going by construction.
  const bool keep_going =
      (flags.Has("keep-going") || sharded) && !flags.Has("fail-fast");

  const std::string out_path = flags.GetOr("out", "");
  const std::string metrics_path = flags.GetOr("metrics-json", "");
  const bool verbose_metrics = flags.Has("verbose-metrics");
  const bool metrics_on = verbose_metrics || !metrics_path.empty();

  // The ambient collector picks up the single-threaded stages (dataset
  // load, model load); the batch itself collects per scene and returns its
  // deterministic totals on the report, merged in below.
  obs::MetricsCollector collector;
  const obs::MetricsScope metrics_scope(metrics_on ? &collector : nullptr);

  FIXY_RETURN_IF_ERROR(CheckDatasetDirectory(data));
  if (metrics_on) {
    // Zero-touch every io.* key either ingestion path can record, so the
    // snapshot key set is identical whether scenes streamed from the FXB
    // cache or were parsed from JSON.
    io::RecordFxbMetricsSchema();
    shard::RecordShardMetricsSchema();
    scenario::RecordScenarioMetricsSchema();
    obs::Count("io.bytes_read", 0);
    obs::Count("io.files_read", 0);
    obs::AddTimeNs("io.load", 0);
    obs::AddTimeNs("io.parse", 0);
    // Gauges merge with max(), so the streaming path's real peak always
    // wins over this schema placeholder.
    obs::SetGauge("stream.resident_scenes_peak", 0);
  }

  // Every application — the three standard ones plus the demo user app —
  // lives in one registry; --app/--apps resolve against it, so the
  // unknown-app error lists exactly what is registered.
  FixyOptions fixy_options;
  FIXY_ASSIGN_OR_RETURN(fixy_options.application.top_k_per_class,
                        flags.GetIntOr("top-k", 0));
  if (fixy_options.application.top_k_per_class < 0) {
    return Status::InvalidArgument("--top-k must be >= 0");
  }
  const int top_k = fixy_options.application.top_k_per_class;
  fixy_options.extra_applications.push_back(SuspectTracksApp());
  Fixy fixy(std::move(fixy_options));
  FIXY_RETURN_IF_ERROR(fixy.LoadModel(model_path));

  if (flags.Has("app") && flags.Has("apps")) {
    return Status::InvalidArgument("pass either --app or --apps, not both");
  }
  std::vector<std::string> apps;
  if (flags.Has("apps")) {
    const std::string list = flags.GetOr("apps", "");
    if (list == "all") {
      apps = fixy.applications().names();
    } else {
      apps = SplitApps(list);
    }
  } else {
    apps.push_back(flags.GetOr("app", "missing-tracks"));
  }
  // Validate the selection up front (before any dataset IO) so a typo'd
  // app name fails immediately with the registry's listing.
  FIXY_RETURN_IF_ERROR(fixy.applications().Resolve(apps).status());
  const bool multi = apps.size() > 1;

  if (metrics_on) {
    // Zero-touch the shared scene-pass keys and every *registered*
    // application's per-app keys, so the snapshot schema is one fixed set
    // regardless of which --app/--apps selection actually ran.
    obs::AddTimeNs("rank.track_build", 0);
    obs::Count("rank.track_builds", 0);
    daemon::RecordDaemonMetricsSchema(fixy.applications().names());
    for (const std::string& name : fixy.applications().names()) {
      obs::AddTimeNs("rank." + name + ".compile", 0);
      obs::Count("rank." + name + ".factors", 0);
      obs::Count("rank." + name + ".proposals", 0);
      obs::Count("rank." + name + ".pruned_tracks", 0);
    }
  }

  // Scenes rank in parallel across the pool (--threads, default hardware
  // concurrency); output order matches the dataset regardless of thread
  // count.
  BatchOptions batch;
  FIXY_ASSIGN_OR_RETURN(batch.num_threads, flags.GetIntOr("threads", 0));
  if (batch.num_threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  batch.fail_fast = !keep_going;
  batch.collect_metrics = metrics_on;
  FIXY_ASSIGN_OR_RETURN(const int decode_threads,
                        flags.GetIntOr("decode-threads", 1));
  if (decode_threads < 1) {
    return Status::InvalidArgument("--decode-threads must be >= 1");
  }
  // Hard ceiling on decoded-but-unranked scenes resident in memory during
  // the streaming cache path (0 = bounded by queue capacity alone).
  FIXY_ASSIGN_OR_RETURN(const int max_resident,
                        flags.GetIntOr("max-resident-scenes", 0));
  if (max_resident < 0) {
    return Status::InvalidArgument("--max-resident-scenes must be >= 0");
  }

  // Ingestion: a fresh dataset.fxb cache streams scenes into the rank
  // workers (decode overlapped with ranking); otherwise the JSON loader
  // materializes the dataset first. Both paths produce byte-identical
  // proposals — the cache is built with a round-trip parity check. Either
  // way every requested application ranks from the ONE pass: scenes are
  // decoded and associated once, then each app compiles and scores
  // against the shared track set.
  MultiAppReport multi_report;
  size_t files_skipped = 0;
  bool from_cache = false;
  if (sharded) {
    shard::ShardOptions shard_options;
    shard_options.workers = workers;
    FIXY_ASSIGN_OR_RETURN(shard_options.scenes_per_shard,
                          flags.GetIntOr("shard-scenes", 0));
    FIXY_ASSIGN_OR_RETURN(shard_options.max_attempts,
                          flags.GetIntOr("max-attempts", 3));
    FIXY_ASSIGN_OR_RETURN(shard_options.backoff_base_ms,
                          flags.GetIntOr("backoff-ms", 100));
    FIXY_ASSIGN_OR_RETURN(shard_options.backoff_cap_ms,
                          flags.GetIntOr("backoff-cap-ms", 5000));
    FIXY_ASSIGN_OR_RETURN(shard_options.heartbeat_timeout_ms,
                          flags.GetIntOr("heartbeat-timeout-ms", 30000));
    shard_options.resume = flags.Has("resume");
    shard_options.checkpoint_dir = flags.GetOr("checkpoint-dir", "");
    shard_options.worker_threads = batch.num_threads;
    shard_options.top_k_per_class = top_k;
    shard_options.no_cache = flags.Has("no-cache");
    FIXY_ASSIGN_OR_RETURN(
        shard::ShardRunReport shard_run,
        shard::RankDatasetSharded(data, model_path, apps, shard_options));
    for (size_t s = 0; s < shard_run.shards.size(); ++s) {
      const shard::ShardOutcome& outcome = shard_run.shards[s];
      if (outcome.quarantined) {
        std::printf("QUARANTINED shard %zu (scenes [%zu,%zu)): %s\n", s,
                    outcome.range.begin, outcome.range.end,
                    outcome.status.ToString().c_str());
      }
    }
    std::printf("sharded run: %zu shards, %zu completed (%zu checkpoints "
                "reused), %zu quarantined, %d workers\n",
                shard_run.shards.size(), shard_run.shards_completed,
                shard_run.checkpoints_reused, shard_run.shards_quarantined,
                workers);
    // Exit non-zero only when *every* shard failed — the existing
    // all-scenes-failed rule below implements exactly that, because a
    // quarantined shard fails all of its scenes.
    multi_report = std::move(shard_run.merged);
  }
  if (!sharded && !flags.Has("no-cache")) {
    Result<io::FxbReader> cache = io::OpenFreshCache(data);
    if (cache.ok()) {
      obs::Count("io.fxb.cache_hits");
      const io::FxbSceneSource source(std::move(cache).value());
      if (source.scene_count() == 0) {
        return Status::InvalidArgument(
            "dataset '" + source.reader().dataset_name() +
            "' contains no scenes");
      }
      std::printf("using cache: %s (%zu scenes)\n",
                  io::FxbCachePath(data).c_str(), source.scene_count());
      StreamOptions stream;
      stream.decode_threads = decode_threads;
      stream.max_resident_scenes = static_cast<size_t>(max_resident);
      FIXY_ASSIGN_OR_RETURN(
          multi_report,
          fixy.RankDatasetStreaming(source, apps, batch, stream));
      from_cache = true;
    } else {
      obs::Count("io.fxb.cache_misses");
      if (cache.status().code() == StatusCode::kFailedPrecondition) {
        // Surface *why* the cache is stale (per-file reasons) so the fix
        // is obvious from the rank output alone.
        const Result<io::CacheStaleness> staleness =
            io::ExplainCacheStaleness(data);
        std::printf("cache at %s is stale (%s); loading JSON (run "
                    "`fixy_cli cache %s` to refresh)\n",
                    io::FxbCachePath(data).c_str(),
                    staleness.ok() ? staleness->Summary().c_str()
                                   : cache.status().ToString().c_str(),
                    data.c_str());
      }
    }
  }
  if (!sharded && !from_cache) {
    io::DatasetLoadOptions load_options;
    load_options.tolerant = keep_going;
    FIXY_ASSIGN_OR_RETURN(io::DatasetLoadReport loaded,
                          io::LoadDataset(data, load_options));
    for (const io::SceneFileError& skipped : loaded.skipped) {
      std::printf("SKIPPED %s: %s\n", skipped.file.c_str(),
                  skipped.status.ToString().c_str());
    }
    files_skipped = loaded.skipped.size();
    const Dataset& dataset = loaded.dataset;
    if (dataset.scenes.empty() && files_skipped == 0) {
      return Status::InvalidArgument("dataset '" + dataset.name +
                                     "' contains no scenes");
    }
    FIXY_ASSIGN_OR_RETURN(multi_report, fixy.RankDataset(dataset, apps, batch));
  }

  // Per-app output sections: single-app output is byte-compatible with the
  // historical format; with several apps each gets a `== app: NAME ==`
  // header, its per-scene candidates, and (in keep-going mode) its own
  // summary line.
  size_t total_ok = 0;
  size_t total_failed = 0;
  std::vector<std::vector<ErrorProposal>> per_app_proposals(
      multi_report.apps.size());
  for (size_t a = 0; a < multi_report.apps.size(); ++a) {
    const BatchReport& report = multi_report.reports[a];
    if (multi) {
      std::printf("== app: %s ==\n", multi_report.apps[a].c_str());
    }
    std::vector<ErrorProposal>& all_proposals = per_app_proposals[a];
    for (const SceneOutcome& outcome : report.outcomes) {
      if (!outcome.ok()) {
        std::printf("FAILED %s: %s\n", outcome.scene_name.c_str(),
                    outcome.status.ToString().c_str());
        continue;
      }
      std::printf("%s: %zu candidates\n", outcome.scene_name.c_str(),
                  outcome.proposals.size());
      int rank = 1;
      const auto scene_top = TopK(outcome.proposals, static_cast<size_t>(top));
      for (const ErrorProposal& p : scene_top) {
        std::printf("  #%2d %s\n", rank++, p.ToString().c_str());
      }
      all_proposals.insert(all_proposals.end(), scene_top.begin(),
                           scene_top.end());
    }
    if (keep_going) {
      std::printf("ranked %zu/%zu scenes (%zu quarantined, %zu files "
                  "skipped)\n",
                  report.scenes_ok, report.outcomes.size(),
                  report.scenes_quarantined, files_skipped);
    }
    total_ok += report.scenes_ok;
    total_failed += report.scenes_failed;
  }
  if (keep_going) {
    const bool nothing_loaded =
        multi_report.reports.front().outcomes.empty() && files_skipped > 0;
    if (nothing_loaded || (total_ok == 0 && total_failed > 0)) {
      return Status::Internal("all scenes failed to load or rank");
    }
  }
  if (!out_path.empty()) {
    for (size_t a = 0; a < multi_report.apps.size(); ++a) {
      const std::string path =
          multi ? PerAppOutPath(out_path, multi_report.apps[a]) : out_path;
      FIXY_RETURN_IF_ERROR(SaveProposals(per_app_proposals[a], path));
      std::printf("wrote %zu proposals to %s\n", per_app_proposals[a].size(),
                  path.c_str());
    }
  }
  if (metrics_on) {
    collector.Merge(multi_report.metrics);
    const obs::PipelineMetrics snapshot = collector.Snapshot();
    FIXY_RETURN_IF_ERROR(obs::ValidateMetrics(snapshot));
    if (!metrics_path.empty()) {
      FIXY_RETURN_IF_ERROR(obs::SaveMetrics(snapshot, metrics_path));
      std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
    if (verbose_metrics) {
      std::printf("%s", obs::FormatMetricsTable(snapshot).c_str());
    }
  }
  return Status::Ok();
}

// The worker half of `rank --workers N`: ranks one shard and writes its
// checkpoint. Spawned by the coordinator, not meant for direct use —
// stdout is the binary frame channel, so this command prints nothing.
Status CmdRankShard(const Flags& flags) {
  shard::ShardWorkerConfig config;
  FIXY_ASSIGN_OR_RETURN(config.data_dir, flags.GetRequired("data"));
  FIXY_ASSIGN_OR_RETURN(config.model_path, flags.GetRequired("model"));
  FIXY_ASSIGN_OR_RETURN(const std::string apps_list,
                        flags.GetRequired("apps"));
  config.apps = SplitApps(apps_list);
  FIXY_ASSIGN_OR_RETURN(const int shard_index, flags.GetIntOr("shard", -1));
  if (shard_index < 0) {
    return Status::InvalidArgument("--shard must be >= 0");
  }
  config.shard_index = static_cast<size_t>(shard_index);
  FIXY_ASSIGN_OR_RETURN(config.scenes_per_shard,
                        flags.GetIntOr("shard-scenes", 0));
  if (config.scenes_per_shard < 1) {
    return Status::InvalidArgument("--shard-scenes must be >= 1");
  }
  FIXY_ASSIGN_OR_RETURN(config.checkpoint_dir,
                        flags.GetRequired("checkpoint-dir"));
  FIXY_ASSIGN_OR_RETURN(config.top_k_per_class, flags.GetIntOr("top-k", 0));
  if (config.top_k_per_class < 0) {
    return Status::InvalidArgument("--top-k must be >= 0");
  }
  FIXY_ASSIGN_OR_RETURN(config.threads, flags.GetIntOr("threads", 1));
  if (config.threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  FIXY_ASSIGN_OR_RETURN(config.heartbeat_interval_ms,
                        flags.GetIntOr("heartbeat-ms", 100));
  config.no_cache = flags.Has("no-cache");
  config.out_fd = 1;  // stdout is the coordinator's frame pipe
  FIXY_RETURN_IF_ERROR(CheckDatasetDirectory(config.data_dir));

  // Same engine configuration as CmdRank, so per-scene results are
  // byte-identical to the single-process run.
  FixyOptions options;
  options.extra_applications.push_back(SuspectTracksApp());
  return shard::RunShardWorker(config, std::move(options));
}

// fixyd: keep the model, registry, and FXB readers resident and serve
// rank/learn/status/shutdown requests over a unix socket (DESIGN.md §13).
// The engine is configured exactly like CmdRank's so daemon rank
// responses are byte-identical to one-shot CLI runs.
Status CmdServe(const Flags& flags) {
  daemon::ServerOptions options;
  FIXY_ASSIGN_OR_RETURN(options.socket_path, flags.GetRequired("socket"));
  options.model_path = flags.GetOr("model", "");
  FIXY_ASSIGN_OR_RETURN(options.worker_threads, flags.GetIntOr("threads", 4));
  if (options.worker_threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  FIXY_ASSIGN_OR_RETURN(options.rank_threads,
                        flags.GetIntOr("rank-threads", 0));
  if (options.rank_threads < 0) {
    return Status::InvalidArgument("--rank-threads must be >= 0");
  }
  FIXY_ASSIGN_OR_RETURN(options.max_queue_depth,
                        flags.GetIntOr("queue-depth", 64));
  if (options.max_queue_depth < 1) {
    return Status::InvalidArgument("--queue-depth must be >= 1");
  }
  FIXY_ASSIGN_OR_RETURN(options.engine.application.top_k_per_class,
                        flags.GetIntOr("top-k", 0));
  if (options.engine.application.top_k_per_class < 0) {
    return Status::InvalidArgument("--top-k must be >= 0");
  }
  const std::string estimator = flags.GetOr("estimator", "kde");
  if (estimator == "kde") {
    options.engine.learner.estimator = EstimatorKind::kKde;
  } else if (estimator == "histogram") {
    options.engine.learner.estimator = EstimatorKind::kHistogram;
  } else if (estimator == "gaussian") {
    options.engine.learner.estimator = EstimatorKind::kGaussian;
  } else {
    return Status::InvalidArgument("unknown estimator: " + estimator);
  }
  options.engine.extra_applications.push_back(SuspectTracksApp());
  FIXY_ASSIGN_OR_RETURN(std::unique_ptr<daemon::FixydServer> server,
                        daemon::FixydServer::Create(std::move(options)));
  std::printf("fixyd serving on %s (pid %d, %s)\n",
              server->socket_path().c_str(), static_cast<int>(::getpid()),
              flags.Has("model") ? "model loaded" : "no model yet");
  std::fflush(stdout);  // scripts wait for this line before querying
  FIXY_RETURN_IF_ERROR(server->Serve());
  std::printf("fixyd stopped\n");
  return Status::Ok();
}

// The thin client: one request per invocation, against a running fixyd.
Status CmdQuery(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(const std::string socket, flags.GetRequired("socket"));
  FIXY_ASSIGN_OR_RETURN(daemon::RequestKind kind,
                        daemon::RequestKindFromString(
                            flags.GetOr("cmd", "status")));
  daemon::Request request;
  request.kind = kind;
  request.data_dir = flags.GetOr("data", "");
  request.scene = flags.GetOr("scene", "");
  FIXY_ASSIGN_OR_RETURN(request.scene_index,
                        flags.GetInt64Or("scene-index", -1));
  if (flags.Has("app") && flags.Has("apps")) {
    return Status::InvalidArgument("pass either --app or --apps, not both");
  }
  if (flags.Has("apps")) {
    const std::string list = flags.GetOr("apps", "");
    // "all" -> empty selection -> the daemon ranks every registered app.
    if (list != "all") request.apps = SplitApps(list);
  } else if (flags.Has("app")) {
    request.apps.push_back(flags.GetOr("app", ""));
  }
  FIXY_ASSIGN_OR_RETURN(request.top, flags.GetIntOr("top", 10));
  if (request.top < 0) {
    return Status::InvalidArgument("--top must be >= 0");
  }
  FIXY_ASSIGN_OR_RETURN(request.deadline_ms,
                        flags.GetInt64Or("deadline-ms", 0));
  request.model_out = flags.GetOr("model", "");
  FIXY_ASSIGN_OR_RETURN(const int timeout_ms,
                        flags.GetIntOr("timeout-ms", 120000));
  const std::string out_path = flags.GetOr("out", "");

  FIXY_ASSIGN_OR_RETURN(daemon::FixydClient client,
                        daemon::FixydClient::Connect(socket));
  FIXY_ASSIGN_OR_RETURN(const daemon::Response response,
                        client.Call(request, timeout_ms));
  if (!response.status.ok()) return response.status;

  switch (kind) {
    case daemon::RequestKind::kRank:
    case daemon::RequestKind::kRankDataset: {
      const json::Value& result = response.result;
      const json::Value* apps = result.Find("apps");
      const json::Value* proposals = result.Find("proposals");
      const json::Value* counts = result.Find("counts");
      if (apps == nullptr || !apps->is_array() || proposals == nullptr ||
          counts == nullptr) {
        return Status::Internal("daemon sent a malformed rank result");
      }
      const bool multi = apps->AsArray().size() > 1;
      for (const json::Value& app_value : apps->AsArray()) {
        const std::string& app = app_value.AsString();
        const json::Value* count = counts->Find(app);
        std::printf("%s: %s proposals\n", app.c_str(),
                    count != nullptr && count->is_number()
                        ? std::to_string(static_cast<long long>(
                              count->AsDouble())).c_str()
                        : "?");
        if (out_path.empty()) continue;
        const json::Value* text = proposals->Find(app);
        if (text == nullptr || !text->is_string()) {
          return Status::Internal("daemon sent no proposals for " + app);
        }
        // The daemon serialized with SaveProposals' exact format; write
        // the bytes verbatim so the file is cmp-identical to a one-shot
        // `fixy_cli rank --out` run.
        const std::string path = multi ? PerAppOutPath(out_path, app)
                                       : out_path;
        std::ofstream out(path, std::ios::binary);
        if (!out) return Status::IoError("cannot open " + path);
        out << text->AsString();
        if (!out.good()) return Status::IoError("failed writing " + path);
        out.close();
        std::printf("wrote proposals to %s\n", path.c_str());
      }
      return Status::Ok();
    }
    case daemon::RequestKind::kLearn:
      std::printf("daemon re-learned: %s\n",
                  json::Write(response.result).c_str());
      return Status::Ok();
    case daemon::RequestKind::kStatus:
      std::printf("%s\n", json::Write(response.result, /*pretty=*/true).c_str());
      return Status::Ok();
    case daemon::RequestKind::kShutdown:
      std::printf("daemon is draining and will exit\n");
      return Status::Ok();
  }
  return Status::Ok();
}

Status CmdCache(const std::string& positional, const Flags& flags) {
  std::string data = positional;
  if (data.empty()) {
    FIXY_ASSIGN_OR_RETURN(data, flags.GetRequired("data"));
  }
  FIXY_RETURN_IF_ERROR(CheckDatasetDirectory(data));
  // Report *why* a refresh is needed before doing it — one line per
  // changed file (added/removed/resized/touched/rewritten), so the cache
  // command doubles as the staleness diagnostic. --verify additionally
  // checksums every source file, catching the one edit the stat pass
  // cannot: a same-size rewrite whose mtime was restored.
  const bool verify = flags.Has("verify");
  const Result<io::CacheStaleness> staleness =
      io::ExplainCacheStaleness(data, /*verify_contents=*/verify);
  bool checksum_lie = false;
  if (staleness.ok()) {
    std::printf("cache status: %s\n", staleness->Summary().c_str());
    if (!staleness->stale) {
      // Fresh: leave the file untouched so repeated `cache` runs are
      // byte-stable no-ops.
      FIXY_ASSIGN_OR_RETURN(const io::FxbReader reader,
                            io::OpenFreshCache(data));
      std::printf("cache at %s is fresh (%zu scenes); nothing to do\n",
                  io::FxbCachePath(data).c_str(), reader.scene_count());
      return Status::Ok();
    }
    for (const std::string& reason : staleness->reasons) {
      if (reason.find("different checksum") != std::string::npos) {
        checksum_lie = true;
      }
    }
  } else if (staleness.status().code() == StatusCode::kNotFound) {
    std::printf("cache status: no cache yet (full build)\n");
  } else {
    return staleness.status();
  }
  if (checksum_lie) {
    // A source lied to the stat fast path (same size and mtime, new
    // bytes); the incremental updater trusts stat and would reuse the
    // stale section, so force a full rebuild instead.
    FIXY_ASSIGN_OR_RETURN(const size_t scenes, io::BuildFxbCache(data));
    std::printf("cached %zu scenes to %s (full rebuild: a source changed "
                "behind its stat record; JSON/FXB parity verified)\n",
                scenes, io::FxbCachePath(data).c_str());
    return Status::Ok();
  }
  // Incremental refresh: only added/changed scenes re-encode, removed
  // scenes drop, every unchanged section is copied byte-for-byte — the
  // result is byte-identical to a from-scratch build.
  FIXY_ASSIGN_OR_RETURN(const io::FxbUpdateReport update,
                        io::UpdateFxbCache(data));
  std::printf("cached %zu scenes to %s (%zu reused, %zu re-encoded, "
              "%zu dropped%s; JSON/FXB parity verified)\n",
              update.scenes_total, io::FxbCachePath(data).c_str(),
              update.scenes_reused, update.scenes_encoded,
              update.scenes_dropped, update.rebuilt ? ", full build" : "");
  return Status::Ok();
}

// `fixy_cli watch`: the polling loop in daemon/watch.h — detect source
// changes, refresh the cache incrementally, optionally fold the changed
// scenes' labels into the model, and re-rank only the changed scenes.
Status CmdWatch(const Flags& flags) {
  daemon::WatchOptions options;
  FIXY_ASSIGN_OR_RETURN(options.data_dir, flags.GetRequired("data"));
  FIXY_ASSIGN_OR_RETURN(options.model_path, flags.GetRequired("model"));
  options.model_out = flags.GetOr("model-out", "");
  FIXY_ASSIGN_OR_RETURN(options.poll_interval_ms,
                        flags.GetIntOr("interval-ms", 1000));
  if (options.poll_interval_ms < 0) {
    return Status::InvalidArgument("--interval-ms must be >= 0");
  }
  FIXY_ASSIGN_OR_RETURN(options.max_cycles, flags.GetIntOr("max-cycles", 0));
  if (options.max_cycles < 0) {
    return Status::InvalidArgument("--max-cycles must be >= 0");
  }
  options.learn_labels = flags.Has("learn-labels");
  FIXY_ASSIGN_OR_RETURN(options.top, flags.GetIntOr("top", 10));
  if (options.top < 0) {
    return Status::InvalidArgument("--top must be >= 0");
  }
  FIXY_ASSIGN_OR_RETURN(options.batch.num_threads,
                        flags.GetIntOr("threads", 0));
  if (options.batch.num_threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  if (flags.Has("app") && flags.Has("apps")) {
    return Status::InvalidArgument("pass either --app or --apps, not both");
  }
  if (flags.Has("apps")) {
    const std::string list = flags.GetOr("apps", "");
    // "all" -> empty selection -> every registered application.
    if (list != "all") options.apps = SplitApps(list);
  } else if (flags.Has("app")) {
    options.apps.push_back(flags.GetOr("app", ""));
  }
  const std::string metrics_path = flags.GetOr("metrics-json", "");
  const bool verbose_metrics = flags.Has("verbose-metrics");
  options.collect_metrics = verbose_metrics || !metrics_path.empty();
  // Same engine configuration as CmdRank, so watch re-ranks are
  // byte-identical to one-shot `rank` runs over the same scenes.
  options.engine.extra_applications.push_back(SuspectTracksApp());
  options.install_signal_handlers = true;

  FIXY_ASSIGN_OR_RETURN(const daemon::WatchReport report,
                        daemon::WatchDataset(options));
  if (options.collect_metrics) {
    FIXY_RETURN_IF_ERROR(obs::ValidateMetrics(report.metrics));
    if (!metrics_path.empty()) {
      FIXY_RETURN_IF_ERROR(obs::SaveMetrics(report.metrics, metrics_path));
      std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
    if (verbose_metrics) {
      std::printf("%s", obs::FormatMetricsTable(report.metrics).c_str());
    }
  }
  return Status::Ok();
}

Status CmdInfo(const Flags& flags) {
  FIXY_ASSIGN_OR_RETURN(std::string data, flags.GetRequired("data"));
  FIXY_ASSIGN_OR_RETURN(Dataset dataset, io::LoadDataset(data));
  std::printf("dataset '%s': %zu scenes\n", dataset.name.c_str(),
              dataset.scenes.size());
  for (const Scene& scene : dataset.scenes) {
    std::printf("  %-24s %4zu frames  %5.1f s  human=%zu model=%zu\n",
                scene.name().c_str(), scene.frame_count(),
                scene.DurationSeconds(),
                scene.CountBySource(ObservationSource::kHuman),
                scene.CountBySource(ObservationSource::kModel));
  }
  FIXY_ASSIGN_OR_RETURN(eval::DatasetStats stats,
                        eval::ComputeDatasetStats(dataset));
  std::printf("\n%s", eval::FormatDatasetStats(stats).c_str());
  return Status::Ok();
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fixy_cli <command> [--flag value ...]\n"
      "  generate --out DIR [--profile lyft|internal] [--scenes N] "
      "[--seed S]\n"
      "  sim      --out DIR [--preset NAME | --scenario FILE] [--scenes N]\n"
      "           [--seed S] [--fxb] [--list-presets]\n"
      "           materialize a scenario (preset or JSON spec file) to DIR:\n"
      "           scene JSON + gt_ledger.json + scenario.lock.json; --fxb\n"
      "           also builds dataset.fxb directly from the in-memory\n"
      "           dataset (no JSON re-parse); --list-presets lists the\n"
      "           built-in scenarios\n"
      "  sweep    --report FILE [--presets a,b,c|all] [--scenarios f1,f2]\n"
      "           [--apps a,b,c] [--scenes N] [--seed S] [--top K]\n"
      "           [--threads N] [--estimator kde|histogram|gaussian]\n"
      "           [--cache-dir DIR] [--baseline FILE]\n"
      "           [--fail-on-regression] [--diff-only]\n"
      "           run a scenario x application grid and score each cell\n"
      "           against the ground-truth ledger (precision@k + recall);\n"
      "           prints the per-cell table and writes the report JSON\n"
      "           (byte-identical at any --threads); --cache-dir reuses\n"
      "           previously materialized datasets; --baseline FILE diffs\n"
      "           this run against a saved report (REGRESSED cells marked,\n"
      "           --fail-on-regression exits non-zero); --diff-only\n"
      "           compares --baseline against --report without running\n"
      "  learn    --data DIR --model FILE [--estimator "
      "kde|histogram|gaussian]\n"
      "  rank     --data DIR --model FILE [--app NAME] [--top K] "
      "[--out FILE]\n"
      "           [--apps a,b,c|all] rank several registered applications\n"
      "           from one pass (scenes decoded and associated once); with\n"
      "           --out each app writes FILE.<app>.json\n"
      "           [--top-k K]    per-class top-k pruning (0 = off); pruned\n"
      "           apps skip tracks that cannot enter any scene's top k\n"
      "           [--threads N]  (0 = hardware concurrency)\n"
      "           [--keep-going] skip corrupt scene files and quarantine\n"
      "           failing scenes (exit non-zero only when all scenes fail);\n"
      "           [--fail-fast] stop at the first failing scene (default)\n"
      "           [--metrics-json FILE] write stage timers/counters as JSON\n"
      "           [--verbose-metrics] print the metrics table to stdout\n"
      "           [--no-cache] ignore dataset.fxb and parse the JSON files\n"
      "           [--decode-threads N] loader threads for the cache's\n"
      "           streaming path (default 1)\n"
      "           [--max-resident-scenes N] cap decoded-but-unranked scenes\n"
      "           resident in memory on the streaming path (0 = queue-bound)\n"
      "           [--workers N]  rank in N worker processes over scene-range\n"
      "           shards; each completed shard writes a CRC'd checkpoint,\n"
      "           failed shards retry with capped backoff and quarantine\n"
      "           after --max-attempts (exit non-zero only when every shard\n"
      "           fails)\n"
      "           [--resume] reuse valid checkpoints from a previous killed\n"
      "           run (requires --workers)\n"
      "           [--shard-scenes N] scenes per shard (default: auto)\n"
      "           [--max-attempts K] worker attempts per shard (default 3)\n"
      "           [--backoff-ms B] [--backoff-cap-ms C] retry backoff\n"
      "           [--heartbeat-timeout-ms T] kill workers silent for T ms\n"
      "           [--checkpoint-dir DIR] (default DIR/.fixy-shards)\n"
      "  rank-shard (internal) worker process behind rank --workers\n"
      "  serve    --socket PATH [--model FILE] [--threads N]\n"
      "           [--rank-threads N] [--queue-depth N] [--top-k K]\n"
      "           [--estimator kde|histogram|gaussian]\n"
      "           run fixyd: keep the model and FXB readers resident and\n"
      "           serve rank/learn/status/shutdown requests over PATH;\n"
      "           SIGTERM/SIGINT drain in-flight requests, then exit\n"
      "  query    --socket PATH --cmd rank|rank-dataset|learn|status|\n"
      "           shutdown [--data DIR] [--scene NAME|--scene-index I]\n"
      "           [--app NAME|--apps a,b,c|all] [--top K] [--out FILE]\n"
      "           [--deadline-ms D] [--model FILE] [--timeout-ms T]\n"
      "           one request against a running fixyd; rank-dataset\n"
      "           --out writes files byte-identical to `rank --out`\n"
      "  cache    DIR | --data DIR [--verify]\n"
      "           build or incrementally refresh DIR's binary scene cache\n"
      "           (dataset.fxb): reports why it was stale, re-encodes only\n"
      "           the added/changed scenes, drops removed ones, and copies\n"
      "           unchanged sections byte-for-byte; --verify checksums\n"
      "           every source (catches same-size edits with restored\n"
      "           mtimes) and full-rebuilds when one lied to the stat pass\n"
      "  watch    --data DIR --model FILE [--interval-ms N] [--max-cycles N]\n"
      "           [--learn-labels] [--model-out FILE] [--app NAME|--apps ...]\n"
      "           [--top K] [--threads N] [--metrics-json FILE]\n"
      "           [--verbose-metrics]\n"
      "           poll DIR for source changes: refresh the cache\n"
      "           incrementally, optionally fold changed scenes' labels\n"
      "           into the model (saved to --model-out, default --model),\n"
      "           and re-rank only the changed scenes; SIGINT/SIGTERM (or\n"
      "           --max-cycles) stop the loop\n"
      "  info     --data DIR\n");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  // `cache` accepts the dataset directory as a positional argument
  // (`fixy_cli cache DIR`) as well as via --data.
  std::string positional;
  int first_flag = 2;
  if (command == "cache" && argc >= 3 && argv[2][0] != '-') {
    positional = argv[2];
    first_flag = 3;
  }
  const Result<Flags> flags = Flags::Parse(argc, argv, first_flag);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return 2;
  }
  Status status;
  if (command == "generate") {
    status = CmdGenerate(*flags);
  } else if (command == "sim") {
    status = CmdSim(*flags);
  } else if (command == "sweep") {
    status = CmdSweep(*flags);
  } else if (command == "learn") {
    status = CmdLearn(*flags);
  } else if (command == "rank") {
    status = CmdRank(*flags);
  } else if (command == "rank-shard") {
    status = CmdRankShard(*flags);
  } else if (command == "serve") {
    status = CmdServe(*flags);
  } else if (command == "query") {
    status = CmdQuery(*flags);
  } else if (command == "cache") {
    status = CmdCache(positional, *flags);
  } else if (command == "watch") {
    status = CmdWatch(*flags);
  } else if (command == "info") {
    status = CmdInfo(*flags);
  } else {
    PrintUsage();
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fixy::cli

int main(int argc, char** argv) { return fixy::cli::Main(argc, argv); }
