// Regenerates the Section 8.1 runtime claim: "Fixy executes in under five
// seconds on a single CPU core for processing a 15 second scene of data."
//
// google-benchmark harness over the end-to-end online phase (track
// assembly + graph compilation + scoring + ranking), swept over scene
// duration and object density, plus the offline learning phase.
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

const TrainedPipeline& LyftPipeline() {
  static const TrainedPipeline* pipeline =
      new TrainedPipeline(Train(sim::LyftLikeProfile(), 4));
  return *pipeline;
}

// End-to-end online ranking of one scene, swept over scene duration.
void BM_RankSceneByDuration(benchmark::State& state) {
  const double duration = static_cast<double>(state.range(0));
  sim::SimProfile profile = sim::LyftLikeProfile();
  profile.world.duration_seconds = duration;
  const auto generated = sim::GenerateScene(profile, "runtime", 11);
  const TrainedPipeline& pipeline = LyftPipeline();
  for (auto _ : state) {
    auto proposals = pipeline.fixy.FindMissingTracks(generated.scene);
    benchmark::DoNotOptimize(proposals);
  }
  state.counters["scene_seconds"] = duration;
  state.counters["observations"] =
      static_cast<double>(generated.scene.TotalObservations());
}
BENCHMARK(BM_RankSceneByDuration)->Arg(5)->Arg(15)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMillisecond);

// Swept over object density at the paper's 15 s scene length.
void BM_RankSceneByObjectCount(benchmark::State& state) {
  sim::SimProfile profile = sim::LyftLikeProfile();
  profile.world.mean_object_count = static_cast<double>(state.range(0));
  const auto generated = sim::GenerateScene(profile, "density", 12);
  const TrainedPipeline& pipeline = LyftPipeline();
  for (auto _ : state) {
    auto proposals = pipeline.fixy.FindMissingTracks(generated.scene);
    benchmark::DoNotOptimize(proposals);
  }
  state.counters["objects"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RankSceneByObjectCount)->Arg(10)->Arg(30)->Arg(60)->Arg(120)
    ->Unit(benchmark::kMillisecond);

// The three applications on the same 15 s scene.
void BM_FindMissingTracks(benchmark::State& state) {
  const auto generated = sim::GenerateScene(sim::LyftLikeProfile(), "apps", 13);
  const TrainedPipeline& pipeline = LyftPipeline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.fixy.FindMissingTracks(generated.scene));
  }
}
BENCHMARK(BM_FindMissingTracks)->Unit(benchmark::kMillisecond);

void BM_FindMissingObservations(benchmark::State& state) {
  const auto generated = sim::GenerateScene(sim::LyftLikeProfile(), "apps", 13);
  const TrainedPipeline& pipeline = LyftPipeline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.fixy.FindMissingObservations(generated.scene));
  }
}
BENCHMARK(BM_FindMissingObservations)->Unit(benchmark::kMillisecond);

void BM_FindModelErrors(benchmark::State& state) {
  const auto generated = sim::GenerateScene(sim::LyftLikeProfile(), "apps", 13);
  const TrainedPipeline& pipeline = LyftPipeline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.fixy.FindModelErrors(generated.scene));
  }
}
BENCHMARK(BM_FindModelErrors)->Unit(benchmark::kMillisecond);

// Offline phase: learning the feature distributions.
void BM_LearnDistributions(benchmark::State& state) {
  const auto training = sim::GenerateDataset(
      sim::LyftLikeProfile(), "learn", static_cast<int>(state.range(0)), 14);
  for (auto _ : state) {
    Fixy fixy;
    const Status status = fixy.Learn(training.dataset);
    benchmark::DoNotOptimize(status);
  }
  state.counters["scenes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LearnDistributions)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fixy::bench

BENCHMARK_MAIN();
