// Regenerates the Section 8.2 recall results:
//
//   (1) "To assess the recall of Fixy, we exhaustively audited a 15 second
//       scene from our internal dataset. It contained 24 missing tracks.
//       In this scene, Fixy achieved a recall of 75%, finding 18 of the
//       missing tracks in the top 10 ranked errors per-class."
//
//   (2) "LOA found errors in 100% of the [Lyft] scenes with errors in the
//       top 10 ranked errors."
#include <cstdio>

#include "core/ranker.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

void Run() {
  PrintHeader("Section 8.2: recall of missing-track finding");

  // --- (1) The exhaustively audited internal scene. ---
  const TrainedPipeline internal =
      Train(sim::InternalLikeProfile(), kInternalTrainingScenes);
  const sim::GeneratedScene audit = GenerateAuditScene();
  const auto claimable = eval::ClaimableErrors(
      audit.ledger, ProposalKind::kMissingTrack, audit.scene.name());

  const auto proposals = internal.fixy.FindMissingTracks(audit.scene).value();
  const auto top10_per_class = TopKPerClass(proposals, 10);
  const eval::RecallResult recall =
      eval::RecallOf(top10_per_class, claimable);

  eval::Table table({"Metric", "Measured", "Paper"});
  table.AddRow({"Missing tracks in audited scene",
                std::to_string(claimable.size()), "24"});
  table.AddRow({"Found in top 10 per class", std::to_string(recall.found),
                "18"});
  table.AddRow({"Recall", eval::Percent(recall.recall), "75%"});

  // --- (2) Scene-level hit rate on the Lyft validation set. ---
  const TrainedPipeline lyft =
      Train(sim::LyftLikeProfile(), kLyftTrainingScenes);
  int scenes_with_errors = 0;
  int scenes_hit_in_top10 = 0;
  for (int i = 0; i < kLyftValidationScenes; ++i) {
    const auto generated = sim::GenerateScene(
        lyft.profile, "lyft_val_" + std::to_string(i), kValidationSeed);
    const auto errors =
        eval::ClaimableErrors(generated.ledger, ProposalKind::kMissingTrack,
                              generated.scene.name());
    if (errors.empty()) continue;
    ++scenes_with_errors;
    const auto scene_proposals =
        lyft.fixy.FindMissingTracks(generated.scene).value();
    if (eval::PrecisionAtK(TopK(scene_proposals, 10), errors, 10).hits > 0) {
      ++scenes_hit_in_top10;
    }
  }
  table.AddRow({"Lyft scenes with errors", std::to_string(scenes_with_errors),
                "32 of 46"});
  table.AddRow(
      {"...where top 10 contains a real error",
       eval::Percent(scenes_with_errors > 0
                         ? static_cast<double>(scenes_hit_in_top10) /
                               scenes_with_errors
                         : 0.0),
       "100%"});
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace fixy::bench

int main() {
  fixy::bench::Run();
  return 0;
}
