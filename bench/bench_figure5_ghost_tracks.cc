// Regenerates the qualitative score separations of Figures 5, 7, and 9:
//
//   Figure 5: an inconsistent ("ghost") model track gets a much lower
//             plausibility than a consistent track.
//   Figure 7: a bundle whose members strongly disagree (a person box
//             overlapping a truck box) gets a low probability, while a
//             consistent bundle (Figure 6) scores high.
//   Figure 9: under the inverted AOF of the model-error application, an
//             overlapping-but-inconsistent prediction track — which the
//             appear/flicker/multibox assertions cannot flag — ranks at
//             the top.
#include <cstdio>

#include "baselines/model_assertions.h"
#include "common/random.h"
#include "core/features_std.h"
#include "core/ranker.h"
#include "dsl/track_builder.h"
#include "eval/report.h"
#include "graph/factor_graph.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

Observation MakeObs(ObservationId id, ObservationSource source,
                    ObjectClass cls, geom::Box3d box, int frame,
                    double confidence) {
  Observation obs;
  obs.id = id;
  obs.source = source;
  obs.object_class = cls;
  obs.box = box;
  obs.frame_index = frame;
  obs.timestamp = frame * 0.1;
  obs.confidence = confidence;
  return obs;
}

geom::Box3d CarBox(double x, double y, double scale = 1.0) {
  return geom::Box3d({x, y, 0.85}, 4.6 * scale, 1.9 * scale, 1.7 * scale,
                     0.0);
}

// A consistent model-only car track: smooth motion, stable size.
void AddConsistentTrack(Scene* scene, ObservationId* id) {
  for (int f = 0; f < 10; ++f) {
    scene->frames()[static_cast<size_t>(f)].observations.push_back(
        MakeObs((*id)++, ObservationSource::kModel, ObjectClass::kCar,
                CarBox(10.0 + 0.8 * f, -2.0), f, 0.9));
  }
}

// A ghost track: overlapping frame-to-frame (so it assembles into one
// track and never flickers) but erratic in size — the Figure 9 signature.
void AddGhostTrack(Scene* scene, ObservationId* id, Rng* rng) {
  double x = 30.0;
  double y = 6.0;
  for (int f = 2; f < 9; ++f) {
    x += rng->Normal(0.25, 0.3);
    y += rng->Normal(0.0, 0.4);
    const double scale = 1.0 + rng->Normal(0.0, 0.3);
    scene->frames()[static_cast<size_t>(f)].observations.push_back(
        MakeObs((*id)++, ObservationSource::kModel, ObjectClass::kCar,
                CarBox(x, y, std::max(0.4, scale)), f, 0.88));
  }
}

Scene BuildScene() {
  Scene scene("figures_5_7_9", 10.0);
  for (int f = 0; f < 10; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.ego_position = {0.8 * f, 0.0};
    scene.AddFrame(std::move(frame));
  }
  ObservationId id = 1;
  Rng rng(99);
  AddConsistentTrack(&scene, &id);
  AddGhostTrack(&scene, &id, &rng);
  return scene;
}

void Run() {
  PrintHeader("Figures 5/7/9: likely vs unlikely tracks and bundles");
  const TrainedPipeline pipeline =
      Train(sim::LyftLikeProfile(), kLyftTrainingScenes);

  // ---- Figures 4/5: track plausibility separation (identity AOF). ----
  const Scene scene = BuildScene();
  const TrackBuilder builder;
  const TrackSet tracks = builder.Build(scene).value();
  LoaSpec spec;
  for (const FeatureDistribution& fd : pipeline.fixy.learned_features()) {
    spec.feature_distributions.push_back(fd);
  }
  const FactorGraph graph =
      FactorGraph::Compile(tracks, spec, scene.frame_rate_hz()).value();

  eval::Table track_table(
      {"Track", "Frames", "Plausibility score (ln-likelihood)"});
  double consistent_score = 0.0;
  double ghost_score = 0.0;
  for (size_t t = 0; t < tracks.tracks.size(); ++t) {
    const Track& track = tracks.tracks[t];
    const double score = graph.ScoreTrack(t).value_or(-99.0);
    const bool is_consistent = track.FirstFrame() == 0;
    if (is_consistent) {
      consistent_score = score;
    } else {
      ghost_score = score;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", score);
    track_table.AddRow(
        {is_consistent ? "consistent (Figure 4-like)" : "ghost (Figure 5)",
         std::to_string(track.FirstFrame()) + ".." +
             std::to_string(track.LastFrame()),
         buf});
  }
  std::printf("%s", track_table.ToString().c_str());
  std::printf("separation: consistent - ghost = %.3f nats per factor "
              "(paper: consistent tracks score much higher)\n\n",
              consistent_score - ghost_score);

  // ---- Figures 6/7: bundle probability separation. ----
  // Learn the class-agreement Bernoulli from training data, then compare a
  // consistent car/car bundle against a person-box-on-truck-box bundle.
  const sim::GeneratedDataset training = sim::GenerateDataset(
      sim::LyftLikeProfile(), "bundle_train", 4, kTrainingSeed);
  LearnerOptions learner_options;
  learner_options.estimator = EstimatorKind::kCategorical;
  // Class agreement is a cross-source feature: bundles with two or more
  // members only exist when human labels and model predictions are
  // associated together.
  learner_options.all_sources = true;
  const DistributionLearner learner(learner_options);
  const auto agreement_fd =
      learner
          .Learn(training.dataset,
                 {std::make_shared<ClassAgreementFeature>()})
          .value()
          .front();

  const FeatureContext ctx{{0.0, 0.0}, 10.0};
  ObservationBundle consistent;
  consistent.frame_index = 0;
  consistent.ego_position = {0, 0};
  consistent.observations = {
      MakeObs(1000, ObservationSource::kModel, ObjectClass::kCar,
              CarBox(12, 2), 0, 0.9),
      MakeObs(1001, ObservationSource::kHuman, ObjectClass::kCar,
              CarBox(12.05, 2.02), 0, 1.0)};
  ObservationBundle conflicted;
  conflicted.frame_index = 0;
  conflicted.ego_position = {0, 0};
  conflicted.observations = {
      MakeObs(1002, ObservationSource::kModel, ObjectClass::kPedestrian,
              geom::Box3d({12, 2, 0.9}, 0.8, 0.75, 1.8, 0.0), 0, 0.7),
      MakeObs(1003, ObservationSource::kModel, ObjectClass::kTruck,
              geom::Box3d({12.1, 2, 1.6}, 8.0, 2.8, 3.2, 0.0), 0, 0.8)};

  eval::Table bundle_table({"Bundle", "Class-agreement score"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f",
                agreement_fd.ScoreBundle(consistent, ctx).value_or(-1.0));
  bundle_table.AddRow({"consistent car/car (Figure 6)", buf});
  std::snprintf(buf, sizeof(buf), "%.4g",
                agreement_fd.ScoreBundle(conflicted, ctx).value_or(-1.0));
  bundle_table.AddRow({"person-on-truck overlap (Figure 7)", buf});
  std::printf("%s\n", bundle_table.ToString().c_str());

  // ---- Figure 9: inverted AOF ranks the inconsistent track first, and
  // the ad-hoc assertions stay silent. ----
  const auto model_errors = pipeline.fixy.FindModelErrors(scene).value();
  const auto appear = baselines::AppearAssertion(scene).value();
  const auto flicker = baselines::FlickerAssertion(scene).value();
  const auto multibox = baselines::MultiboxAssertion(scene).value();
  std::printf("Figure 9 (inverted AOF): top-ranked model-error track spans "
              "frames [%d..%d] (ghost lives in [2..8])\n",
              model_errors.empty() ? -1 : model_errors[0].first_frame,
              model_errors.empty() ? -1 : model_errors[0].last_frame);
  std::printf("ad-hoc assertions on the same scene: appear=%zu flicker=%zu "
              "multibox=%zu flags (paper: such errors are invisible to "
              "them)\n",
              appear.size(), flicker.size(), multibox.size());
}

}  // namespace
}  // namespace fixy::bench

int main() {
  fixy::bench::Run();
  return 0;
}
