// Regenerates the Section 8.3 case study: finding missing human labels
// *within* otherwise-labeled tracks.
//
// Paper: "Within the datasets, we were only able to find a single example
// of such a missing observation. For this example, Fixy ranked the missing
// observation at the top." Low-probability bundles (volume-inconsistent
// overlaps, Figure 7) are correctly ranked low.
//
// The injector reproduces the rarity (missing_obs_rate ~1e-3); this bench
// reports the rank of every injected missing observation among Fixy's
// ranked bundles, per scene.
#include <cstdio>

#include "core/ranker.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

void Run() {
  PrintHeader("Section 8.3: finding missing observations within tracks");

  const TrainedPipeline lyft =
      Train(sim::LyftLikeProfile(), kLyftTrainingScenes);

  eval::Table table(
      {"Scene", "Injected missing obs", "Rank of each (of candidates)"});
  int total_errors = 0;
  int found_at_top = 0;
  int found_in_top5 = 0;
  for (int i = 0; i < kLyftValidationScenes; ++i) {
    const auto generated = sim::GenerateScene(
        lyft.profile, "lyft_val_" + std::to_string(i), kValidationSeed);
    const auto errors = eval::ClaimableErrors(
        generated.ledger, ProposalKind::kMissingObservation,
        generated.scene.name());
    if (errors.empty()) continue;
    const auto proposals =
        lyft.fixy.FindMissingObservations(generated.scene).value();
    std::string ranks;
    for (const sim::GtError* error : errors) {
      ++total_errors;
      int rank = -1;
      for (size_t r = 0; r < proposals.size(); ++r) {
        if (eval::ProposalMatchesError(proposals[r], *error)) {
          rank = static_cast<int>(r) + 1;
          break;
        }
      }
      if (rank == 1) ++found_at_top;
      if (rank >= 1 && rank <= 5) ++found_in_top5;
      if (!ranks.empty()) ranks += ", ";
      ranks += rank < 0 ? "not found" : "#" + std::to_string(rank);
    }
    table.AddRow({generated.scene.name(), std::to_string(errors.size()),
                  ranks + " of " + std::to_string(proposals.size())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nTotal injected missing observations: %d; ranked #1: %d; in top 5: "
      "%d\n",
      total_errors, found_at_top, found_in_top5);
  std::printf(
      "Paper: a single such error existed across both datasets and Fixy\n"
      "ranked it at the top. Shape to reproduce: these rare errors rank at\n"
      "or near #1 among the candidate bundles of their scene.\n");
}

}  // namespace
}  // namespace fixy::bench

int main() {
  fixy::bench::Run();
  return 0;
}
