// Regenerates Figure 2 of the paper: the factor graph compiled from a
// four-step track observed by both an ML model and a human labeler, with
// observation factors (p1, p2, p4, p5 in the schematic), a bundle factor
// (b3), and transition factors (p_{1,2}).
//
// The bench constructs the schematic scene, compiles it, validates the
// bipartite structure, and prints the graph plus per-factor scores.
#include <cstdio>

#include "core/features_std.h"
#include "dsl/track_builder.h"
#include "graph/factor_graph.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

Observation MakeObs(ObservationId id, ObservationSource source, double x,
                    int frame, double confidence) {
  Observation obs;
  obs.id = id;
  obs.source = source;
  obs.object_class = ObjectClass::kCar;
  obs.box = geom::Box3d({x, 2.0, 0.85}, 4.6, 1.9, 1.7, 0.0);
  obs.frame_index = frame;
  obs.timestamp = frame * 0.1;
  obs.confidence = confidence;
  return obs;
}

void Run() {
  PrintHeader("Figure 2: the compiled LOA factor graph (schematic scene)");

  // The schematic: one object tracked over four frames, observed at each
  // step by the model and by a human (v1..v4, model and human).
  Scene scene("figure2", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < 4; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.ego_position = {0.8 * f, 0.0};
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kModel, 10.0 + 0.8 * f, f, 0.92));
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kHuman, 10.05 + 0.8 * f, f, 1.0));
    scene.AddFrame(std::move(frame));
  }

  // Learn real feature distributions so the factor scores are meaningful.
  const TrainedPipeline pipeline = Train(sim::LyftLikeProfile(), 4);

  const TrackBuilder builder;
  const TrackSet tracks = builder.Build(scene).value();
  std::printf("tracks assembled: %zu (expect 1, with 4 bundles of 2 "
              "observations)\n\n",
              tracks.tracks.size());

  LoaSpec spec;
  for (const FeatureDistribution& fd : pipeline.fixy.learned_features()) {
    spec.feature_distributions.push_back(fd);
  }
  spec.feature_distributions.emplace_back(
      std::make_shared<DistanceFeature>(),
      MakeDistanceSeverityDistribution());
  spec.feature_distributions.emplace_back(std::make_shared<ModelOnlyFeature>(),
                                          MakeModelOnlyDistribution());

  const FactorGraph graph =
      FactorGraph::Compile(tracks, spec, scene.frame_rate_hz()).value();
  const Status valid = graph.Validate();
  std::printf("graph validation: %s\n", valid.ToString().c_str());
  std::printf("%s\n", graph.ToString().c_str());

  std::printf("track score (Section 6 normalization): %.4f\n",
              graph.ScoreTrack(0).value_or(0.0));
  std::printf(
      "\nPaper reference: a bipartite graph with one variable node per\n"
      "observation, observation/bundle factors per step and transition\n"
      "factors between steps (Figure 2a).\n");
}

}  // namespace
}  // namespace fixy::bench

int main() {
  fixy::bench::Run();
  return 0;
}
