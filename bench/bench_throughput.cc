// Dataset-scale ranking throughput: scenes/sec of Fixy::RankDataset on a
// 64-scene Lyft-like dataset, swept over worker-thread count. Tracks the
// batch engine's parallel speedup (the production workload is ranking
// whole datasets, not the single 15 s scene of Section 8.1).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/macros.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

constexpr int kDatasetScenes = 64;

const TrainedPipeline& LyftPipeline() {
  static const TrainedPipeline* pipeline =
      new TrainedPipeline(Train(sim::LyftLikeProfile(), kLyftTrainingScenes));
  return *pipeline;
}

const Dataset& LyftDataset() {
  static const Dataset* dataset = [] {
    const sim::GeneratedDataset generated = sim::GenerateDataset(
        sim::LyftLikeProfile(), "throughput", kDatasetScenes, kValidationSeed);
    return new Dataset(generated.dataset);
  }();
  return *dataset;
}

// Scenes/sec vs. thread count for each application. items_processed is
// scenes, so google-benchmark's items_per_second counter reports the
// scenes/sec throughput directly.
void RankDatasetSweep(benchmark::State& state, Application app) {
  const TrainedPipeline& pipeline = LyftPipeline();
  const Dataset& dataset = LyftDataset();
  BatchOptions batch;
  batch.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = pipeline.fixy.RankDataset(dataset, app, batch);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kDatasetScenes);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_RankDatasetMissingTracks(benchmark::State& state) {
  RankDatasetSweep(state, Application::kMissingTracks);
}
BENCHMARK(BM_RankDatasetMissingTracks)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_RankDatasetMissingObservations(benchmark::State& state) {
  RankDatasetSweep(state, Application::kMissingObservations);
}
BENCHMARK(BM_RankDatasetMissingObservations)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_RankDatasetModelErrors(benchmark::State& state) {
  RankDatasetSweep(state, Application::kModelErrors);
}
BENCHMARK(BM_RankDatasetModelErrors)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// One instrumented RankDataset per application, merged into a single
// PipelineMetrics snapshot — the same schema fixy_cli's --metrics-json
// emits, so bench output can be diffed against CLI output directly.
Status DumpMetrics(const std::string& path) {
  const TrainedPipeline& pipeline = LyftPipeline();
  const Dataset& dataset = LyftDataset();
  obs::MetricsCollector collector;
  const obs::MetricsScope scope(&collector);
  BatchOptions batch;
  batch.collect_metrics = true;
  for (const Application app :
       {Application::kMissingTracks, Application::kMissingObservations,
        Application::kModelErrors}) {
    FIXY_ASSIGN_OR_RETURN(const BatchReport report,
                          pipeline.fixy.RankDataset(dataset, app, batch));
    collector.Merge(report.metrics);
  }
  const obs::PipelineMetrics snapshot = collector.Snapshot();
  FIXY_RETURN_IF_ERROR(obs::ValidateMetrics(snapshot));
  FIXY_RETURN_IF_ERROR(obs::SaveMetrics(snapshot, path));
  std::printf("wrote metrics to %s\n", path.c_str());
  return Status::Ok();
}

}  // namespace
}  // namespace fixy::bench

// BENCHMARK_MAIN plus a --metrics-json flag, peeled from argv before
// google-benchmark sees it (it rejects flags it does not know).
int main(int argc, char** argv) {
  std::string metrics_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      metrics_path = arg + 15;
      continue;
    }
    if (std::strcmp(arg, "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!metrics_path.empty()) {
    const fixy::Status status = fixy::bench::DumpMetrics(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
