// Dataset-scale ranking throughput: scenes/sec of Fixy::RankDataset on a
// 64-scene Lyft-like dataset, swept over worker-thread count. Tracks the
// batch engine's parallel speedup (the production workload is ranking
// whole datasets, not the single 15 s scene of Section 8.1).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "daemon/client.h"
#include "daemon/protocol.h"
#include "daemon/server.h"
#include "io/fxb.h"
#include "io/scene_io.h"
#include "json/json.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "shard/checkpoint.h"
#include "shard/coordinator.h"
#include "stats/simd.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

constexpr int kDatasetScenes = 64;

const TrainedPipeline& LyftPipeline() {
  static const TrainedPipeline* pipeline =
      new TrainedPipeline(Train(sim::LyftLikeProfile(), kLyftTrainingScenes));
  return *pipeline;
}

const Dataset& LyftDataset() {
  static const Dataset* dataset = [] {
    const sim::GeneratedDataset generated = sim::GenerateDataset(
        sim::LyftLikeProfile(), "throughput", kDatasetScenes, kValidationSeed);
    return new Dataset(generated.dataset);
  }();
  return *dataset;
}

// Scenes/sec vs. thread count for each application. items_processed is
// scenes, so google-benchmark's items_per_second counter reports the
// scenes/sec throughput directly.
void RankDatasetSweep(benchmark::State& state, Application app) {
  const TrainedPipeline& pipeline = LyftPipeline();
  const Dataset& dataset = LyftDataset();
  BatchOptions batch;
  batch.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = pipeline.fixy.RankDataset(dataset, app, batch);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kDatasetScenes);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_RankDatasetMissingTracks(benchmark::State& state) {
  RankDatasetSweep(state, Application::kMissingTracks);
}
BENCHMARK(BM_RankDatasetMissingTracks)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_RankDatasetMissingObservations(benchmark::State& state) {
  RankDatasetSweep(state, Application::kMissingObservations);
}
BENCHMARK(BM_RankDatasetMissingObservations)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_RankDatasetModelErrors(benchmark::State& state) {
  RankDatasetSweep(state, Application::kModelErrors);
}
BENCHMARK(BM_RankDatasetModelErrors)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// One instrumented RankDataset per application, merged into a single
// PipelineMetrics snapshot — the same schema fixy_cli's --metrics-json
// emits, so bench output can be diffed against CLI output directly.
Status DumpMetrics(const std::string& path) {
  const TrainedPipeline& pipeline = LyftPipeline();
  const Dataset& dataset = LyftDataset();
  obs::MetricsCollector collector;
  const obs::MetricsScope scope(&collector);
  BatchOptions batch;
  batch.collect_metrics = true;
  for (const Application app :
       {Application::kMissingTracks, Application::kMissingObservations,
        Application::kModelErrors}) {
    FIXY_ASSIGN_OR_RETURN(const BatchReport report,
                          pipeline.fixy.RankDataset(dataset, app, batch));
    collector.Merge(report.metrics);
  }
  const obs::PipelineMetrics snapshot = collector.Snapshot();
  FIXY_RETURN_IF_ERROR(obs::ValidateMetrics(snapshot));
  FIXY_RETURN_IF_ERROR(obs::SaveMetrics(snapshot, path));
  std::printf("wrote metrics to %s\n", path.c_str());
  return Status::Ok();
}

// ---- Ingestion benchmark (--ingest-json) ----
//
// Measures decode-all throughput of the two ingestion formats over the
// same 64-scene dataset: per-file JSON (DirectorySceneSource) vs the FXB
// binary cache (FxbSceneSource, mmap). "cold" includes opening the source
// (mmap + header/index parse for FXB, manifest read for JSON) plus the
// first full decode pass; "warm" is the best of three further passes on
// the already-open source. OS page cache is warm in both phases — the
// numbers isolate decode cost, not disk.

// Wall seconds to decode every scene of `source` across `threads`.
Result<double> DecodeAllSeconds(const SceneSource& source, int threads) {
  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(source.scene_count());
  std::atomic<bool> failed{false};
  for (size_t i = 0; i < source.scene_count(); ++i) {
    futures.push_back(pool.Submit([&source, &failed, i] {
      const Result<Scene> scene = source.DecodeScene(i);
      if (!scene.ok()) failed.store(true);
      benchmark::DoNotOptimize(scene);
    }));
  }
  for (std::future<void>& future : futures) future.get();
  if (failed.load()) return Status::Internal("a scene failed to decode");
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

struct IngestResult {
  std::string format;  // "json" | "fxb"
  std::string phase;   // "cold" | "warm"
  int threads = 0;
  double seconds = 0.0;
  double scenes_per_sec = 0.0;
  double mb_per_sec = 0.0;
};

Status RunIngestBench(const std::string& out_path) {
  const Dataset& dataset = LyftDataset();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fixy_bench_ingest").string();
  std::filesystem::remove_all(dir);
  FIXY_RETURN_IF_ERROR(io::SaveDataset(dataset, dir));
  FIXY_ASSIGN_OR_RETURN(const size_t cached, io::BuildFxbCache(dir));
  if (cached != dataset.scenes.size()) {
    return Status::Internal("cache scene count mismatch");
  }

  // Bytes each format reads end to end, for MB/sec.
  uint64_t json_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (EndsWith(name, ".fixy.json") || name == "manifest.json") {
      json_bytes += entry.file_size();
    }
  }
  const uint64_t fxb_bytes =
      std::filesystem::file_size(io::FxbCachePath(dir));

  constexpr int kWarmPasses = 3;
  std::vector<IngestResult> results;
  for (const int threads : {1, 4, 8}) {
    for (const bool use_fxb : {false, true}) {
      IngestResult cold;
      cold.format = use_fxb ? "fxb" : "json";
      cold.phase = "cold";
      cold.threads = threads;
      double warm_best = 0.0;
      if (use_fxb) {
        const auto start = std::chrono::steady_clock::now();
        FIXY_ASSIGN_OR_RETURN(io::FxbReader reader,
                              io::FxbReader::Open(io::FxbCachePath(dir)));
        const io::FxbSceneSource source(std::move(reader));
        FIXY_ASSIGN_OR_RETURN(const double first,
                              DecodeAllSeconds(source, threads));
        benchmark::DoNotOptimize(first);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        cold.seconds = elapsed.count();
        for (int pass = 0; pass < kWarmPasses; ++pass) {
          FIXY_ASSIGN_OR_RETURN(const double secs,
                                DecodeAllSeconds(source, threads));
          warm_best = pass == 0 ? secs : std::min(warm_best, secs);
        }
      } else {
        const auto start = std::chrono::steady_clock::now();
        FIXY_ASSIGN_OR_RETURN(io::DirectorySceneSource source,
                              io::DirectorySceneSource::Open(dir));
        FIXY_ASSIGN_OR_RETURN(const double first,
                              DecodeAllSeconds(source, threads));
        benchmark::DoNotOptimize(first);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        cold.seconds = elapsed.count();
        for (int pass = 0; pass < kWarmPasses; ++pass) {
          FIXY_ASSIGN_OR_RETURN(const double secs,
                                DecodeAllSeconds(source, threads));
          warm_best = pass == 0 ? secs : std::min(warm_best, secs);
        }
      }
      const double bytes =
          static_cast<double>(use_fxb ? fxb_bytes : json_bytes);
      const double scenes = static_cast<double>(dataset.scenes.size());
      cold.scenes_per_sec = scenes / cold.seconds;
      cold.mb_per_sec = bytes / 1e6 / cold.seconds;
      results.push_back(cold);
      IngestResult warm = cold;
      warm.phase = "warm";
      warm.seconds = warm_best;
      warm.scenes_per_sec = scenes / warm_best;
      warm.mb_per_sec = bytes / 1e6 / warm_best;
      results.push_back(warm);
    }
  }

  json::Object doc;
  doc["bench"] = "ingest";
  doc["scenes"] = static_cast<double>(dataset.scenes.size());
  doc["json_bytes"] = static_cast<double>(json_bytes);
  doc["fxb_bytes"] = static_cast<double>(fxb_bytes);
  json::Array rows;
  for (const IngestResult& r : results) {
    json::Object row;
    row["format"] = r.format;
    row["phase"] = r.phase;
    row["threads"] = static_cast<double>(r.threads);
    row["seconds"] = r.seconds;
    row["scenes_per_sec"] = r.scenes_per_sec;
    row["mb_per_sec"] = r.mb_per_sec;
    rows.push_back(std::move(row));
    std::printf("ingest %-4s %-4s threads=%d  %8.1f scenes/s  %8.1f MB/s\n",
                r.format.c_str(), r.phase.c_str(), r.threads,
                r.scenes_per_sec, r.mb_per_sec);
  }
  doc["results"] = std::move(rows);

  const std::string text = json::Write(doc, /*pretty=*/true);
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    return Status::IoError("cannot open for writing: " + out_path);
  }
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote ingest benchmark to %s\n", out_path.c_str());
  std::filesystem::remove_all(dir);
  return Status::Ok();
}

// ---- Multi-application benchmark (--multiapp-json) ----
//
// Quantifies what the shared scene pass buys: ranking all registered
// applications in ONE RankDataset call (decode + associate each scene
// once, every app scores the shared track views and feature-score cache)
// vs the legacy shape — one full solo pass per application. Also records
// the association accounting: track builds run per scene in the shared
// pass, per scene *per app* across the legacy passes.

// Wall seconds of one multi-app RankDataset over `apps`.
Result<double> RankSeconds(const Fixy& fixy, const Dataset& dataset,
                           const std::vector<std::string>& apps,
                           const BatchOptions& batch) {
  const auto start = std::chrono::steady_clock::now();
  FIXY_ASSIGN_OR_RETURN(const MultiAppReport report,
                        fixy.RankDataset(dataset, apps, batch));
  benchmark::DoNotOptimize(report);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

Status RunMultiAppBench(const std::string& out_path) {
  const TrainedPipeline& pipeline = LyftPipeline();
  const Dataset& dataset = LyftDataset();
  const std::vector<std::string> apps = pipeline.fixy.applications().names();
  const double scenes = static_cast<double>(dataset.scenes.size());

  // Association accounting (counters are thread-invariant, so one serial
  // instrumented run of each shape suffices).
  BatchOptions counted;
  counted.num_threads = 1;
  counted.collect_metrics = true;
  FIXY_ASSIGN_OR_RETURN(const MultiAppReport shared_counted,
                        pipeline.fixy.RankDataset(dataset, apps, counted));
  const int64_t shared_builds =
      shared_counted.metrics.counters.at("rank.track_builds");
  int64_t legacy_builds = 0;
  for (const std::string& app : apps) {
    FIXY_ASSIGN_OR_RETURN(const MultiAppReport solo,
                          pipeline.fixy.RankDataset(dataset, {app}, counted));
    legacy_builds += solo.metrics.counters.at("rank.track_builds");
  }

  json::Array rows;
  for (const int threads : {1, 4, 8}) {
    BatchOptions batch;
    batch.num_threads = threads;
    FIXY_ASSIGN_OR_RETURN(const double single,
                          RankSeconds(pipeline.fixy, dataset,
                                      {apps.front()}, batch));
    FIXY_ASSIGN_OR_RETURN(
        const double shared,
        RankSeconds(pipeline.fixy, dataset, apps, batch));
    double legacy = 0.0;
    for (const std::string& app : apps) {
      FIXY_ASSIGN_OR_RETURN(
          const double solo,
          RankSeconds(pipeline.fixy, dataset, {app}, batch));
      legacy += solo;
    }
    const struct {
      const char* mode;
      size_t app_count;
      double seconds;
    } shapes[] = {{"single", 1, single},
                  {"shared", apps.size(), shared},
                  {"legacy", apps.size(), legacy}};
    for (const auto& shape : shapes) {
      json::Object row;
      row["mode"] = shape.mode;
      row["apps"] = static_cast<double>(shape.app_count);
      row["threads"] = static_cast<double>(threads);
      row["seconds"] = shape.seconds;
      row["scenes_per_sec"] = scenes / shape.seconds;
      rows.push_back(std::move(row));
      std::printf(
          "multiapp %-6s apps=%zu threads=%d  %7.2f s  %7.1f scenes/s\n",
          shape.mode, shape.app_count, threads, shape.seconds,
          scenes / shape.seconds);
    }
    std::printf("multiapp shared-vs-legacy speedup at threads=%d: %.2fx\n",
                threads, legacy / shared);
  }

  json::Object doc;
  doc["bench"] = "multiapp";
  doc["scenes"] = scenes;
  json::Array app_names;
  for (const std::string& app : apps) app_names.push_back(app);
  doc["apps"] = std::move(app_names);
  doc["track_builds_shared"] = static_cast<double>(shared_builds);
  doc["track_builds_legacy"] = static_cast<double>(legacy_builds);
  doc["results"] = std::move(rows);

  const std::string text = json::Write(doc, /*pretty=*/true);
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    return Status::IoError("cannot open for writing: " + out_path);
  }
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote multiapp benchmark to %s\n", out_path.c_str());
  return Status::Ok();
}

// ---- Hot-path benchmark + perf gate (--hotpath-json, --hotpath-baseline) --
//
// Measures end-to-end rank throughput (the KDE/factor-graph hot path that
// DESIGN.md §11 optimizes) in two shapes — "single" (one application) and
// "shared" (all registered applications from one pass) — at 1/4/8 threads,
// best of kHotpathReps runs. The committed BENCH_hotpath.json is the
// reference an optimized tree must not regress from: --hotpath-baseline
// re-measures and fails (non-zero exit) when any row's scenes/sec falls
// below tolerance * committed, which tools/check.sh perf runs in CI
// fashion.

// Pre-optimization throughput (scenes/sec, threads=1) measured on this
// dataset at the commit immediately before the SIMD/SoA/pruning work,
// embedded so the before/after speedup survives in the committed JSON
// without checking out the old revision.
constexpr double kHotpathBeforeSingleT1 = 8.7596;
constexpr double kHotpathBeforeSharedT1 = 5.9283;

constexpr int kHotpathReps = 2;

// Relative tolerance band for the gate: a fresh measurement below
// tolerance * committed scenes/sec is a regression. Overridable via
// FIXY_PERF_TOLERANCE for noisier machines.
double HotpathTolerance() {
  if (const char* env = std::getenv("FIXY_PERF_TOLERANCE")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0 && parsed <= 1.0) return parsed;
    std::fprintf(stderr,
                 "warning: ignoring FIXY_PERF_TOLERANCE=%s (want (0, 1])\n",
                 env);
  }
  return 0.75;
}

Result<json::Object> MeasureHotpath() {
  const TrainedPipeline& pipeline = LyftPipeline();
  const Dataset& dataset = LyftDataset();
  const std::vector<std::string> apps = pipeline.fixy.applications().names();
  const double scenes = static_cast<double>(dataset.scenes.size());

  json::Array rows;
  double single_t1 = 0.0;
  double shared_t1 = 0.0;
  for (const int threads : {1, 4, 8}) {
    BatchOptions batch;
    batch.num_threads = threads;
    double single = 0.0;
    double shared = 0.0;
    for (int rep = 0; rep < kHotpathReps; ++rep) {
      FIXY_ASSIGN_OR_RETURN(const double s,
                            RankSeconds(pipeline.fixy, dataset,
                                        {apps.front()}, batch));
      single = rep == 0 ? s : std::min(single, s);
      FIXY_ASSIGN_OR_RETURN(
          const double a, RankSeconds(pipeline.fixy, dataset, apps, batch));
      shared = rep == 0 ? a : std::min(shared, a);
    }
    const struct {
      const char* mode;
      double seconds;
    } shapes[] = {{"single", single}, {"shared", shared}};
    for (const auto& shape : shapes) {
      json::Object row;
      row["mode"] = shape.mode;
      row["threads"] = static_cast<double>(threads);
      row["seconds"] = shape.seconds;
      row["scenes_per_sec"] = scenes / shape.seconds;
      rows.push_back(std::move(row));
      std::printf("hotpath %-6s threads=%d  %7.2f s  %7.1f scenes/s\n",
                  shape.mode, threads, shape.seconds, scenes / shape.seconds);
    }
    if (threads == 1) {
      single_t1 = scenes / single;
      shared_t1 = scenes / shared;
    }
  }

  json::Object doc;
  doc["bench"] = "hotpath";
  doc["scenes"] = scenes;
  doc["kernel"] = stats::simd::KernelName(stats::simd::ActiveKernel());
  json::Object before;
  before["single_t1_scenes_per_sec"] = kHotpathBeforeSingleT1;
  before["shared_t1_scenes_per_sec"] = kHotpathBeforeSharedT1;
  doc["before"] = std::move(before);
  doc["speedup_single_t1"] = single_t1 / kHotpathBeforeSingleT1;
  doc["speedup_shared_t1"] = shared_t1 / kHotpathBeforeSharedT1;
  doc["results"] = std::move(rows);
  std::printf("hotpath speedup vs before: single %.2fx, shared %.2fx\n",
              single_t1 / kHotpathBeforeSingleT1,
              shared_t1 / kHotpathBeforeSharedT1);
  return doc;
}

Status CheckHotpathBaseline(const json::Object& fresh,
                            const std::string& baseline_path) {
  std::string text;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(baseline_path, &text));
  FIXY_ASSIGN_OR_RETURN(const json::Value baseline, json::Parse(text));
  const json::Value* rows = baseline.Find("results");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument(baseline_path +
                                   ": no results array (not a hotpath file?)");
  }
  const double tolerance = HotpathTolerance();
  const json::Array& fresh_rows = fresh.at("results").AsArray();
  size_t compared = 0;
  for (const json::Value& row : rows->AsArray()) {
    FIXY_ASSIGN_OR_RETURN(const std::string mode, row.GetString("mode"));
    FIXY_ASSIGN_OR_RETURN(const double threads, row.GetDouble("threads"));
    FIXY_ASSIGN_OR_RETURN(const double committed,
                          row.GetDouble("scenes_per_sec"));
    const json::Value* match = nullptr;
    for (const json::Value& candidate : fresh_rows) {
      if (candidate.GetString("mode").value_or("") == mode &&
          candidate.GetDouble("threads").value_or(-1.0) == threads) {
        match = &candidate;
        break;
      }
    }
    if (match == nullptr) {
      return Status::Internal(StrFormat(
          "perf gate: committed row (%s, threads=%g) missing from the "
          "fresh measurement",
          mode.c_str(), threads));
    }
    FIXY_ASSIGN_OR_RETURN(const double measured,
                          match->GetDouble("scenes_per_sec"));
    const double floor = tolerance * committed;
    const bool ok = measured >= floor;
    std::printf("perf gate %-6s threads=%g  %7.1f scenes/s vs committed "
                "%7.1f (floor %7.1f)  %s\n",
                mode.c_str(), threads, measured, committed, floor,
                ok ? "OK" : "REGRESSION");
    if (!ok) {
      return Status::Internal(StrFormat(
          "perf regression: %s at threads=%g ran at %.1f scenes/s, below "
          "%.0f%% of the committed %.1f (see BENCH_hotpath.json; if the "
          "slowdown is intentional, re-baseline with --hotpath-json)",
          mode.c_str(), threads, measured, tolerance * 100.0, committed));
    }
    ++compared;
  }
  if (compared == 0) {
    return Status::InvalidArgument(baseline_path + ": results array is empty");
  }
  std::printf("perf gate OK: %zu rows within %.0f%% of committed\n", compared,
              tolerance * 100.0);
  return Status::Ok();
}

Status RunHotpathBench(const std::string& out_path,
                       const std::string& baseline_path) {
  FIXY_ASSIGN_OR_RETURN(json::Object doc, MeasureHotpath());
  if (!out_path.empty()) {
    const std::string text = json::Write(doc, /*pretty=*/true);
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      return Status::IoError("cannot open for writing: " + out_path);
    }
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote hotpath benchmark to %s\n", out_path.c_str());
  }
  if (!baseline_path.empty()) {
    FIXY_RETURN_IF_ERROR(CheckHotpathBaseline(doc, baseline_path));
  }
  return Status::Ok();
}

// ---- Sharded ranking benchmark + perf gate (--shard-json, --shard-baseline) --
//
// Measures the multi-process sharded rank pipeline (DESIGN.md §12) over
// the same 64-scene dataset: wall seconds of RankDatasetSharded at 1/2/4
// workers, "cold" (empty checkpoint directory — every shard forked,
// ranked, checkpointed) vs "resumed" (--resume over a complete checkpoint
// directory — every shard reused, no worker forked). The cold rows
// quantify process-orchestration overhead vs the in-process hotpath
// numbers; the resumed rows bound the fixed cost of a no-op resume. The
// gate (--shard-baseline) compares cold rows only — resumed runs are
// mostly constant-time checkpoint decode and too small to band reliably.
// The worker binary defaults to the build-time fixy_cli path; override
// with --shard-cli when benching an installed binary.

constexpr int kShardWorkerCounts[] = {1, 2, 4};

Result<json::Object> MeasureShard(const std::string& cli_path) {
  const TrainedPipeline& pipeline = LyftPipeline();
  const Dataset& dataset = LyftDataset();
  const double scenes = static_cast<double>(dataset.scenes.size());
  const std::vector<std::string> apps = {"missing-tracks", "missing-obs",
                                         "model-errors"};

  const std::string work =
      (std::filesystem::temp_directory_path() / "fixy_bench_shard").string();
  std::filesystem::remove_all(work);
  const std::string data_dir = work + "/ds";
  const std::string model_path = work + "/model.fxm";
  FIXY_RETURN_IF_ERROR(io::SaveDataset(dataset, data_dir));
  FIXY_ASSIGN_OR_RETURN(const size_t cached, io::BuildFxbCache(data_dir));
  if (cached != dataset.scenes.size()) {
    return Status::Internal("cache scene count mismatch");
  }
  FIXY_RETURN_IF_ERROR(pipeline.fixy.SaveModel(model_path));

  json::Array rows;
  std::string reference_bytes;
  for (const int workers : kShardWorkerCounts) {
    shard::ShardOptions options;
    options.workers = workers;
    options.worker_binary = cli_path;
    options.checkpoint_dir = work + "/ckpt_w" + std::to_string(workers);

    struct {
      const char* phase;
      bool resume;
    } phases[] = {{"cold", false}, {"resumed", true}};
    for (const auto& phase : phases) {
      options.resume = phase.resume;
      const auto start = std::chrono::steady_clock::now();
      FIXY_ASSIGN_OR_RETURN(
          const shard::ShardRunReport run,
          shard::RankDatasetSharded(data_dir, model_path, apps, options));
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (run.shards_quarantined != 0) {
        return Status::Internal(
            StrFormat("shard bench: %zu shards quarantined at workers=%d",
                      run.shards_quarantined, workers));
      }
      // Determinism backstop: every run — any worker count, cold or
      // resumed — must merge to the same canonical report bytes.
      const std::string bytes = shard::EncodeMultiAppReport(run.merged);
      if (reference_bytes.empty()) {
        reference_bytes = bytes;
      } else if (bytes != reference_bytes) {
        return Status::Internal(StrFormat(
            "shard bench: merged report at workers=%d (%s) differs from "
            "the first run — determinism broken",
            workers, phase.phase));
      }
      json::Object row;
      row["phase"] = phase.phase;
      row["workers"] = static_cast<double>(workers);
      row["seconds"] = elapsed.count();
      row["scenes_per_sec"] = scenes / elapsed.count();
      row["checkpoints_reused"] = static_cast<double>(run.checkpoints_reused);
      rows.push_back(std::move(row));
      std::printf("shard %-7s workers=%d  %7.2f s  %7.1f scenes/s  "
                  "(%zu checkpoints reused)\n",
                  phase.phase, workers, elapsed.count(),
                  scenes / elapsed.count(), run.checkpoints_reused);
    }
  }

  json::Object doc;
  doc["bench"] = "shard";
  doc["scenes"] = scenes;
  json::Array app_names;
  for (const std::string& app : apps) app_names.push_back(app);
  doc["apps"] = std::move(app_names);
  doc["results"] = std::move(rows);
  std::filesystem::remove_all(work);
  return doc;
}

Status CheckShardBaseline(const json::Object& fresh,
                          const std::string& baseline_path) {
  std::string text;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(baseline_path, &text));
  FIXY_ASSIGN_OR_RETURN(const json::Value baseline, json::Parse(text));
  const json::Value* rows = baseline.Find("results");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument(baseline_path +
                                   ": no results array (not a shard file?)");
  }
  const double tolerance = HotpathTolerance();
  const json::Array& fresh_rows = fresh.at("results").AsArray();
  size_t compared = 0;
  for (const json::Value& row : rows->AsArray()) {
    FIXY_ASSIGN_OR_RETURN(const std::string phase, row.GetString("phase"));
    if (phase != "cold") continue;  // resumed rows are too small to band
    FIXY_ASSIGN_OR_RETURN(const double workers, row.GetDouble("workers"));
    FIXY_ASSIGN_OR_RETURN(const double committed,
                          row.GetDouble("scenes_per_sec"));
    const json::Value* match = nullptr;
    for (const json::Value& candidate : fresh_rows) {
      if (candidate.GetString("phase").value_or("") == phase &&
          candidate.GetDouble("workers").value_or(-1.0) == workers) {
        match = &candidate;
        break;
      }
    }
    if (match == nullptr) {
      return Status::Internal(StrFormat(
          "shard perf gate: committed row (cold, workers=%g) missing from "
          "the fresh measurement",
          workers));
    }
    FIXY_ASSIGN_OR_RETURN(const double measured,
                          match->GetDouble("scenes_per_sec"));
    const double floor = tolerance * committed;
    const bool ok = measured >= floor;
    std::printf("shard gate cold workers=%g  %7.1f scenes/s vs committed "
                "%7.1f (floor %7.1f)  %s\n",
                workers, measured, committed, floor, ok ? "OK" : "REGRESSION");
    if (!ok) {
      return Status::Internal(StrFormat(
          "shard perf regression: cold workers=%g ran at %.1f scenes/s, "
          "below %.0f%% of the committed %.1f (see BENCH_shard.json; if the "
          "slowdown is intentional, re-baseline with --shard-json)",
          workers, measured, tolerance * 100.0, committed));
    }
    ++compared;
  }
  if (compared == 0) {
    return Status::InvalidArgument(baseline_path + ": no cold rows");
  }
  std::printf("shard perf gate OK: %zu cold rows within %.0f%% of "
              "committed\n",
              compared, tolerance * 100.0);
  return Status::Ok();
}

Status RunShardBench(const std::string& out_path,
                     const std::string& baseline_path,
                     const std::string& cli_override) {
  std::string cli = cli_override;
#ifdef FIXY_CLI_PATH
  if (cli.empty()) cli = FIXY_CLI_PATH;
#endif
  if (cli.empty()) {
    return Status::InvalidArgument(
        "--shard-json/--shard-baseline need a worker binary: pass "
        "--shard-cli <path-to-fixy_cli>");
  }
  FIXY_ASSIGN_OR_RETURN(json::Object doc, MeasureShard(cli));
  if (!out_path.empty()) {
    const std::string text = json::Write(doc, /*pretty=*/true);
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      return Status::IoError("cannot open for writing: " + out_path);
    }
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote shard benchmark to %s\n", out_path.c_str());
  }
  if (!baseline_path.empty()) {
    FIXY_RETURN_IF_ERROR(CheckShardBaseline(doc, baseline_path));
  }
  return Status::Ok();
}

// ---- Daemon benchmark + perf gate (--daemon-json, --daemon-baseline) --
//
// Measures what fixyd exists for: the latency of one single-scene rank
// request, cold (a fresh fixy_cli process per request — model load,
// registry build, cache open, rank, exit) vs resident (one FixydServer
// holding all of that across requests, queried over its unix socket).
// Resident latency is swept over 1/4/8 concurrent clients, each issuing
// sequential requests; p50/p99 are computed over the pooled per-request
// latencies. The headline number is speedup_p50: cold p50 over resident
// p50 at one client — the acceptance floor for the daemon is 10x. The
// gate (--daemon-baseline) bands resident p50 latency per client count
// (lower is better, so the comparison is inverted relative to the
// throughput gates).

constexpr int kDaemonClientCounts[] = {1, 4, 8};
constexpr int kDaemonRequestsPerClient = 25;
constexpr int kDaemonColdRuns = 5;

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

Result<json::Object> MeasureDaemon(const std::string& cli_path) {
  const TrainedPipeline& pipeline = LyftPipeline();

  const std::string work =
      (std::filesystem::temp_directory_path() / "fixy_bench_daemon").string();
  std::filesystem::remove_all(work);
  const std::string data_dir = work + "/ds";
  const std::string model_path = work + "/model.fxm";
  // A one-scene dataset, kept small: cold and resident runs rank the
  // exact same work, so with the rank itself cheap the latency gap
  // isolates what the daemon amortizes — process start, model load,
  // registry build, and cache open.
  sim::SimProfile profile = sim::LyftLikeProfile();
  profile.world.duration_seconds = 2.0;
  profile.world.mean_object_count = 6.0;
  const sim::GeneratedDataset generated =
      sim::GenerateDataset(profile, "daemon_bench", 1, kValidationSeed);
  FIXY_RETURN_IF_ERROR(io::SaveDataset(generated.dataset, data_dir));
  FIXY_ASSIGN_OR_RETURN(const size_t cached, io::BuildFxbCache(data_dir));
  if (cached != 1) return Status::Internal("cache scene count mismatch");
  FIXY_RETURN_IF_ERROR(pipeline.fixy.SaveModel(model_path));

  // Cold: one full CLI process per request.
  const std::string cold_command =
      cli_path + " rank --data " + data_dir + " --model " + model_path +
      " --app model-errors --top 10 --threads 1 > /dev/null 2>&1";
  std::vector<double> cold_ms;
  for (int run = 0; run < kDaemonColdRuns; ++run) {
    const auto start = std::chrono::steady_clock::now();
    if (std::system(cold_command.c_str()) != 0) {
      return Status::Internal("daemon bench: cold CLI rank failed: " +
                              cold_command);
    }
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    cold_ms.push_back(elapsed.count());
  }
  const double cold_p50 = Percentile(cold_ms, 0.5);
  std::printf("daemon cold CLI      %8.2f ms p50 (%d runs)\n", cold_p50,
              kDaemonColdRuns);

  // Resident: one daemon, swept client counts.
  daemon::ServerOptions options;
  options.socket_path = work + "/fixyd.sock";
  options.model_path = model_path;
  options.worker_threads = 8;
  options.rank_threads = 1;
  FIXY_ASSIGN_OR_RETURN(std::unique_ptr<daemon::FixydServer> server,
                        daemon::FixydServer::Create(std::move(options)));
  std::thread serve_thread([&server] { (void)server->Serve(); });

  json::Array rows;
  double resident_single_p50 = 0.0;
  Status worker_error;
  std::mutex worker_mu;
  for (const int clients : kDaemonClientCounts) {
    std::vector<double> latencies_ms;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto wall_start = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Result<daemon::FixydClient> client =
            daemon::FixydClient::Connect(server->socket_path());
        if (!client.ok()) {
          const std::lock_guard<std::mutex> lock(worker_mu);
          worker_error = client.status();
          return;
        }
        std::vector<double> mine;
        mine.reserve(kDaemonRequestsPerClient);
        for (int r = 0; r < kDaemonRequestsPerClient; ++r) {
          daemon::Request request;
          request.kind = daemon::RequestKind::kRank;
          request.data_dir = data_dir;
          request.scene_index = 0;
          request.apps = {"model-errors"};
          request.top = 10;
          const auto start = std::chrono::steady_clock::now();
          const Result<daemon::Response> response = client->Call(request);
          const std::chrono::duration<double, std::milli> elapsed =
              std::chrono::steady_clock::now() - start;
          const std::lock_guard<std::mutex> lock(worker_mu);
          if (!response.ok()) {
            worker_error = response.status();
            return;
          }
          if (!response->status.ok()) {
            worker_error = response->status;
            return;
          }
          mine.push_back(elapsed.count());
        }
        const std::lock_guard<std::mutex> lock(worker_mu);
        latencies_ms.insert(latencies_ms.end(), mine.begin(), mine.end());
      });
    }
    for (std::thread& thread : threads) thread.join();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    if (!worker_error.ok()) {
      server->RequestStop();
      serve_thread.join();
      return worker_error;
    }
    const double p50 = Percentile(latencies_ms, 0.5);
    const double p99 = Percentile(latencies_ms, 0.99);
    if (clients == 1) resident_single_p50 = p50;
    json::Object row;
    row["clients"] = static_cast<double>(clients);
    row["requests"] = static_cast<double>(latencies_ms.size());
    row["p50_ms"] = p50;
    row["p99_ms"] = p99;
    row["requests_per_sec"] =
        static_cast<double>(latencies_ms.size()) / wall.count();
    rows.push_back(std::move(row));
    std::printf("daemon resident c=%d  %8.2f ms p50  %8.2f ms p99  "
                "%7.1f req/s\n",
                clients, p50, p99,
                static_cast<double>(latencies_ms.size()) / wall.count());
  }
  server->RequestStop();
  serve_thread.join();

  const double speedup =
      resident_single_p50 > 0.0 ? cold_p50 / resident_single_p50 : 0.0;
  std::printf("daemon speedup_p50   %8.1fx (cold %.2f ms / resident "
              "%.2f ms)\n",
              speedup, cold_p50, resident_single_p50);

  json::Object doc;
  doc["bench"] = "daemon";
  json::Object cold;
  cold["runs"] = static_cast<double>(kDaemonColdRuns);
  cold["p50_ms"] = cold_p50;
  doc["cold_cli"] = std::move(cold);
  doc["results"] = std::move(rows);
  doc["speedup_p50"] = speedup;
  std::filesystem::remove_all(work);
  return doc;
}

Status CheckDaemonBaseline(const json::Object& fresh,
                           const std::string& baseline_path) {
  std::string text;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(baseline_path, &text));
  FIXY_ASSIGN_OR_RETURN(const json::Value baseline, json::Parse(text));
  const json::Value* rows = baseline.Find("results");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument(baseline_path +
                                   ": no results array (not a daemon file?)");
  }
  const double tolerance = HotpathTolerance();
  const json::Array& fresh_rows = fresh.at("results").AsArray();
  size_t compared = 0;
  for (const json::Value& row : rows->AsArray()) {
    FIXY_ASSIGN_OR_RETURN(const double clients, row.GetDouble("clients"));
    FIXY_ASSIGN_OR_RETURN(const double committed, row.GetDouble("p50_ms"));
    const json::Value* match = nullptr;
    for (const json::Value& candidate : fresh_rows) {
      if (candidate.GetDouble("clients").value_or(-1.0) == clients) {
        match = &candidate;
        break;
      }
    }
    if (match == nullptr) {
      return Status::Internal(StrFormat(
          "daemon perf gate: committed row (clients=%g) missing from the "
          "fresh measurement",
          clients));
    }
    FIXY_ASSIGN_OR_RETURN(const double measured, match->GetDouble("p50_ms"));
    // Latency: lower is better, so the band inverts — measured may be at
    // most committed / tolerance.
    const double ceiling = committed / tolerance;
    const bool ok = measured <= ceiling;
    std::printf("daemon gate clients=%g  %8.2f ms p50 vs committed %8.2f "
                "(ceiling %8.2f)  %s\n",
                clients, measured, committed, ceiling,
                ok ? "OK" : "REGRESSION");
    if (!ok) {
      return Status::Internal(StrFormat(
          "daemon perf regression: p50 at clients=%g is %.2f ms, above "
          "1/%.0f%% of the committed %.2f ms (see BENCH_daemon.json; if "
          "the slowdown is intentional, re-baseline with --daemon-json)",
          clients, measured, tolerance * 100.0, committed));
    }
    ++compared;
  }
  if (compared == 0) {
    return Status::InvalidArgument(baseline_path + ": no result rows");
  }
  std::printf("daemon perf gate OK: %zu rows within band of committed\n",
              compared);
  return Status::Ok();
}

Status RunDaemonBench(const std::string& out_path,
                      const std::string& baseline_path,
                      const std::string& cli_override) {
  std::string cli = cli_override;
#ifdef FIXY_CLI_PATH
  if (cli.empty()) cli = FIXY_CLI_PATH;
#endif
  if (cli.empty()) {
    return Status::InvalidArgument(
        "--daemon-json/--daemon-baseline need the CLI binary for the cold "
        "runs: pass --shard-cli <path-to-fixy_cli>");
  }
  FIXY_ASSIGN_OR_RETURN(json::Object doc, MeasureDaemon(cli));
  if (!out_path.empty()) {
    const std::string text = json::Write(doc, /*pretty=*/true);
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      return Status::IoError("cannot open for writing: " + out_path);
    }
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote daemon benchmark to %s\n", out_path.c_str());
  }
  if (!baseline_path.empty()) {
    FIXY_RETURN_IF_ERROR(CheckDaemonBaseline(doc, baseline_path));
  }
  return Status::Ok();
}

// ---- Incremental ingestion benchmark + perf gate ----
// (--incremental-json, --incremental-baseline)
//
// The tentpole contract: after one scene of a kIncrementalScenes-scene
// dataset changes, UpdateFxbCache must cost roughly one scene (not a full
// re-encode) and LearnIncremental must fold the delta without refitting
// the whole training set. Measured as best-of-kIncrementalReps speedups:
//   update_speedup = full BuildFxbCache time / 1-scene UpdateFxbCache time
//   fold_speedup   = full Learn time         / 1-scene LearnIncremental time
// The gate enforces both the committed baseline (scaled by
// FIXY_PERF_TOLERANCE) and the absolute floors from the acceptance
// criteria: update >= 10x, fold >= 5x.
constexpr int kIncrementalScenes = 500;
constexpr int kIncrementalReps = 3;
constexpr double kUpdateSpeedupFloor = 10.0;
constexpr double kFoldSpeedupFloor = 5.0;

Result<json::Object> MeasureIncremental() {
  const std::string work =
      (std::filesystem::temp_directory_path() /
       ("fixy_bench_incremental_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(work);
  const sim::GeneratedDataset generated =
      sim::GenerateDataset(sim::LyftLikeProfile(), "inc_bench",
                           kIncrementalScenes, kValidationSeed);
  const Dataset& dataset = generated.dataset;
  FIXY_RETURN_IF_ERROR(io::SaveDataset(dataset, work));

  // Two interchangeable versions of scene 0: alternating between them
  // makes the cache stale by exactly one scene before every update rep.
  Scene edited = sim::GenerateDataset(sim::LyftLikeProfile(), "inc_bench",
                                      1, kValidationSeed + 1)
                     .dataset.scenes.front();
  edited.set_name(dataset.scenes.front().name());
  const std::string scene0_path =
      work + "/" + dataset.scenes.front().name() + ".fixy.json";

  const auto seconds_of = [](const auto& fn) -> Result<double> {
    const auto start = std::chrono::steady_clock::now();
    FIXY_RETURN_IF_ERROR(fn());
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
  };

  double build_s = 0.0;
  double update_s = 0.0;
  for (int rep = 0; rep < kIncrementalReps; ++rep) {
    std::filesystem::remove(io::FxbCachePath(work));
    FIXY_ASSIGN_OR_RETURN(const double full, seconds_of([&] {
                            return io::BuildFxbCache(work).status();
                          }));
    build_s = rep == 0 ? full : std::min(build_s, full);
    // One scene changes; the update must re-encode only that scene.
    const Scene& next = rep % 2 == 0 ? edited : dataset.scenes.front();
    FIXY_RETURN_IF_ERROR(io::SaveScene(next, scene0_path));
    FIXY_ASSIGN_OR_RETURN(const double incremental, seconds_of([&] {
                            return io::UpdateFxbCache(work).status();
                          }));
    update_s = rep == 0 ? incremental : std::min(update_s, incremental);
  }

  // Learning: full refit vs folding a one-scene delta into learned state.
  Dataset delta;
  delta.name = dataset.name;
  delta.scenes.push_back(edited);
  double refit_s = 0.0;
  double fold_s = 0.0;
  for (int rep = 0; rep < kIncrementalReps; ++rep) {
    Fixy engine;
    FIXY_ASSIGN_OR_RETURN(const double full, seconds_of([&] {
                            return engine.Learn(dataset);
                          }));
    refit_s = rep == 0 ? full : std::min(refit_s, full);
    FIXY_ASSIGN_OR_RETURN(const double incremental, seconds_of([&] {
                            return engine.LearnIncremental(delta);
                          }));
    fold_s = rep == 0 ? incremental : std::min(fold_s, incremental);
  }
  std::filesystem::remove_all(work);

  const double update_speedup = update_s > 0.0 ? build_s / update_s : 0.0;
  const double fold_speedup = fold_s > 0.0 ? refit_s / fold_s : 0.0;
  std::printf("incremental cache  build %8.3f s  1-scene update %8.4f s  "
              "%6.1fx\n",
              build_s, update_s, update_speedup);
  std::printf("incremental learn  refit %8.3f s  1-scene fold   %8.4f s  "
              "%6.1fx\n",
              refit_s, fold_s, fold_speedup);

  json::Object doc;
  doc["bench"] = "incremental";
  doc["scenes"] = static_cast<double>(kIncrementalScenes);
  doc["reps"] = static_cast<double>(kIncrementalReps);
  doc["build_s"] = build_s;
  doc["update_s"] = update_s;
  doc["update_speedup"] = update_speedup;
  doc["refit_s"] = refit_s;
  doc["fold_s"] = fold_s;
  doc["fold_speedup"] = fold_speedup;
  return doc;
}

Status CheckIncrementalBaseline(const json::Object& fresh,
                                const std::string& baseline_path) {
  std::string text;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(baseline_path, &text));
  FIXY_ASSIGN_OR_RETURN(const json::Value baseline, json::Parse(text));
  const double tolerance = HotpathTolerance();
  size_t compared = 0;
  const struct {
    const char* key;
    double floor;
  } gates[] = {{"update_speedup", kUpdateSpeedupFloor},
               {"fold_speedup", kFoldSpeedupFloor}};
  for (const auto& gate : gates) {
    const json::Value* committed_value = baseline.Find(gate.key);
    if (committed_value == nullptr || !committed_value->is_number()) {
      return Status::InvalidArgument(
          StrFormat("%s: no %s (not an incremental file?)",
                    baseline_path.c_str(), gate.key));
    }
    const double committed = committed_value->AsDouble();
    const double measured = fresh.at(gate.key).AsDouble();
    // Speedups: higher is better. The measurement must clear both the
    // committed baseline (within tolerance) and the absolute floor the
    // incremental design promises.
    const double required =
        std::max(committed * tolerance, gate.floor * tolerance);
    const bool ok = measured >= required;
    std::printf("incremental gate %-14s  %6.1fx vs committed %6.1fx "
                "(required %6.1fx)  %s\n",
                gate.key, measured, committed, required,
                ok ? "OK" : "REGRESSION");
    if (!ok) {
      return Status::Internal(StrFormat(
          "incremental perf regression: %s is %.1fx, below %.1fx (see "
          "BENCH_incremental.json; if the slowdown is intentional, "
          "re-baseline with --incremental-json)",
          gate.key, measured, required));
    }
    ++compared;
  }
  std::printf("incremental perf gate OK: %zu speedups within band\n",
              compared);
  return Status::Ok();
}

Status RunIncrementalBench(const std::string& out_path,
                           const std::string& baseline_path) {
  FIXY_ASSIGN_OR_RETURN(json::Object doc, MeasureIncremental());
  if (!out_path.empty()) {
    const std::string text = json::Write(doc, /*pretty=*/true);
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      return Status::IoError("cannot open for writing: " + out_path);
    }
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote incremental benchmark to %s\n", out_path.c_str());
  }
  if (!baseline_path.empty()) {
    FIXY_RETURN_IF_ERROR(CheckIncrementalBaseline(doc, baseline_path));
  }
  return Status::Ok();
}

}  // namespace
}  // namespace fixy::bench

// BENCHMARK_MAIN plus --metrics-json, --ingest-json, --multiapp-json,
// --hotpath-json/--hotpath-baseline, --shard-json/--shard-baseline/
// --shard-cli, --daemon-json/--daemon-baseline, and --incremental-json/
// --incremental-baseline flags, peeled from argv before google-benchmark
// sees them (it rejects flags it does not know).
int main(int argc, char** argv) {
  std::string metrics_path;
  std::string ingest_path;
  std::string multiapp_path;
  std::string hotpath_path;
  std::string hotpath_baseline;
  std::string shard_path;
  std::string shard_baseline;
  std::string shard_cli;
  std::string daemon_path;
  std::string daemon_baseline;
  std::string incremental_path;
  std::string incremental_baseline;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      metrics_path = arg + 15;
      continue;
    }
    if (std::strcmp(arg, "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--ingest-json=", 14) == 0) {
      ingest_path = arg + 14;
      continue;
    }
    if (std::strcmp(arg, "--ingest-json") == 0 && i + 1 < argc) {
      ingest_path = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--multiapp-json=", 16) == 0) {
      multiapp_path = arg + 16;
      continue;
    }
    if (std::strcmp(arg, "--multiapp-json") == 0 && i + 1 < argc) {
      multiapp_path = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--hotpath-json=", 15) == 0) {
      hotpath_path = arg + 15;
      continue;
    }
    if (std::strcmp(arg, "--hotpath-json") == 0 && i + 1 < argc) {
      hotpath_path = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--hotpath-baseline=", 19) == 0) {
      hotpath_baseline = arg + 19;
      continue;
    }
    if (std::strcmp(arg, "--hotpath-baseline") == 0 && i + 1 < argc) {
      hotpath_baseline = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--shard-json=", 13) == 0) {
      shard_path = arg + 13;
      continue;
    }
    if (std::strcmp(arg, "--shard-json") == 0 && i + 1 < argc) {
      shard_path = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--shard-baseline=", 17) == 0) {
      shard_baseline = arg + 17;
      continue;
    }
    if (std::strcmp(arg, "--shard-baseline") == 0 && i + 1 < argc) {
      shard_baseline = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--shard-cli=", 12) == 0) {
      shard_cli = arg + 12;
      continue;
    }
    if (std::strcmp(arg, "--shard-cli") == 0 && i + 1 < argc) {
      shard_cli = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--daemon-json=", 14) == 0) {
      daemon_path = arg + 14;
      continue;
    }
    if (std::strcmp(arg, "--daemon-json") == 0 && i + 1 < argc) {
      daemon_path = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--daemon-baseline=", 18) == 0) {
      daemon_baseline = arg + 18;
      continue;
    }
    if (std::strcmp(arg, "--daemon-baseline") == 0 && i + 1 < argc) {
      daemon_baseline = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--incremental-json=", 19) == 0) {
      incremental_path = arg + 19;
      continue;
    }
    if (std::strcmp(arg, "--incremental-json") == 0 && i + 1 < argc) {
      incremental_path = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--incremental-baseline=", 23) == 0) {
      incremental_baseline = arg + 23;
      continue;
    }
    if (std::strcmp(arg, "--incremental-baseline") == 0 && i + 1 < argc) {
      incremental_baseline = argv[++i];
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!metrics_path.empty()) {
    const fixy::Status status = fixy::bench::DumpMetrics(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!ingest_path.empty()) {
    const fixy::Status status = fixy::bench::RunIngestBench(ingest_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!multiapp_path.empty()) {
    const fixy::Status status = fixy::bench::RunMultiAppBench(multiapp_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!hotpath_path.empty() || !hotpath_baseline.empty()) {
    const fixy::Status status =
        fixy::bench::RunHotpathBench(hotpath_path, hotpath_baseline);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!shard_path.empty() || !shard_baseline.empty()) {
    const fixy::Status status =
        fixy::bench::RunShardBench(shard_path, shard_baseline, shard_cli);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!daemon_path.empty() || !daemon_baseline.empty()) {
    const fixy::Status status =
        fixy::bench::RunDaemonBench(daemon_path, daemon_baseline, shard_cli);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!incremental_path.empty() || !incremental_baseline.empty()) {
    const fixy::Status status = fixy::bench::RunIncrementalBench(
        incremental_path, incremental_baseline);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
