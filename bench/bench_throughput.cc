// Dataset-scale ranking throughput: scenes/sec of Fixy::RankDataset on a
// 64-scene Lyft-like dataset, swept over worker-thread count. Tracks the
// batch engine's parallel speedup (the production workload is ranking
// whole datasets, not the single 15 s scene of Section 8.1).
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

constexpr int kDatasetScenes = 64;

const TrainedPipeline& LyftPipeline() {
  static const TrainedPipeline* pipeline =
      new TrainedPipeline(Train(sim::LyftLikeProfile(), kLyftTrainingScenes));
  return *pipeline;
}

const Dataset& LyftDataset() {
  static const Dataset* dataset = [] {
    const sim::GeneratedDataset generated = sim::GenerateDataset(
        sim::LyftLikeProfile(), "throughput", kDatasetScenes, kValidationSeed);
    return new Dataset(generated.dataset);
  }();
  return *dataset;
}

// Scenes/sec vs. thread count for each application. items_processed is
// scenes, so google-benchmark's items_per_second counter reports the
// scenes/sec throughput directly.
void RankDatasetSweep(benchmark::State& state, Application app) {
  const TrainedPipeline& pipeline = LyftPipeline();
  const Dataset& dataset = LyftDataset();
  BatchOptions batch;
  batch.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = pipeline.fixy.RankDataset(dataset, app, batch);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kDatasetScenes);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_RankDatasetMissingTracks(benchmark::State& state) {
  RankDatasetSweep(state, Application::kMissingTracks);
}
BENCHMARK(BM_RankDatasetMissingTracks)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_RankDatasetMissingObservations(benchmark::State& state) {
  RankDatasetSweep(state, Application::kMissingObservations);
}
BENCHMARK(BM_RankDatasetMissingObservations)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_RankDatasetModelErrors(benchmark::State& state) {
  RankDatasetSweep(state, Application::kModelErrors);
}
BENCHMARK(BM_RankDatasetModelErrors)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace fixy::bench

BENCHMARK_MAIN();
