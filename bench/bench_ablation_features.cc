// Ablation bench (not in the paper; DESIGN.md-called-out design choices):
//
//   (a) feature subsets — which of Table 2's features carry the
//       missing-track precision;
//   (b) distribution estimator — KDE (the paper's default) vs histogram vs
//       parametric Gaussian;
//   (c) association threshold — the IoU bundling threshold of the worked
//       example (0.5) swept.
//
// All measured as precision@10 for missing-track finding over a reduced
// Lyft-like validation set.
#include <cstdio>
#include <vector>

#include "core/applications.h"
#include "core/engine.h"
#include "core/features_std.h"
#include "core/learner.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

constexpr int kScenes = 12;

std::vector<sim::GeneratedScene> ValidationScenes(
    const sim::SimProfile& profile) {
  std::vector<sim::GeneratedScene> scenes;
  for (int i = 0; i < kScenes; ++i) {
    scenes.push_back(sim::GenerateScene(
        profile, "ablation_val_" + std::to_string(i), kValidationSeed));
  }
  return scenes;
}

double PrecisionAt10(const std::vector<sim::GeneratedScene>& scenes,
                     const std::vector<FeatureDistribution>& learned,
                     const ApplicationOptions& options) {
  double total = 0.0;
  int counted = 0;
  for (const sim::GeneratedScene& generated : scenes) {
    const auto claimable =
        eval::ClaimableErrors(generated.ledger, ProposalKind::kMissingTrack,
                              generated.scene.name());
    if (claimable.empty()) continue;
    const auto proposals =
        FindMissingTracks(generated.scene,
                          BuildMissingTracksSpec(learned, options), options)
            .value();
    total += eval::PrecisionAtK(proposals, claimable, 10).precision;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

void Run() {
  PrintHeader("Ablations: features, estimators, association threshold");
  const sim::SimProfile profile = sim::LyftLikeProfile();
  const sim::GeneratedDataset training = sim::GenerateDataset(
      profile, "ablation_train", kLyftTrainingScenes, kTrainingSeed);
  const auto scenes = ValidationScenes(profile);

  // Learn volume and velocity separately so subsets can be assembled.
  const DistributionLearner learner;
  const auto volume_fd =
      learner.Learn(training.dataset, {std::make_shared<VolumeFeature>()})
          .value()
          .front();
  const auto velocity_fd =
      learner.Learn(training.dataset, {std::make_shared<VelocityFeature>()})
          .value()
          .front();

  const ApplicationOptions default_options;

  // ---- (a) Feature subsets. ----
  eval::Table features_table({"Configuration", "P@10 (missing tracks)"});
  struct Config {
    const char* name;
    std::vector<FeatureDistribution> learned;
    ApplicationOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"full (volume+velocity+distance+count)",
                     {volume_fd, velocity_fd},
                     default_options});
  configs.push_back({"no velocity", {volume_fd}, default_options});
  configs.push_back({"no volume", {velocity_fd}, default_options});
  {
    ApplicationOptions no_distance = default_options;
    no_distance.include_distance_severity = false;
    configs.push_back(
        {"no distance severity", {volume_fd, velocity_fd}, no_distance});
  }
  {
    ApplicationOptions no_count = default_options;
    no_count.include_count_filter = false;
    configs.push_back(
        {"no count filter", {volume_fd, velocity_fd}, no_count});
  }
  for (const Config& config : configs) {
    features_table.AddRow(
        {config.name,
         eval::Percent(PrecisionAt10(scenes, config.learned,
                                     config.options))});
  }
  std::printf("%s\n", features_table.ToString().c_str());

  // ---- (b) Estimator choice. ----
  eval::Table estimator_table({"Estimator", "P@10 (missing tracks)"});
  for (EstimatorKind kind : {EstimatorKind::kKde, EstimatorKind::kHistogram,
                             EstimatorKind::kGaussian}) {
    LearnerOptions learner_options;
    learner_options.estimator = kind;
    const DistributionLearner estimator_learner(learner_options);
    const auto learned =
        estimator_learner
            .Learn(training.dataset, {std::make_shared<VolumeFeature>(),
                                      std::make_shared<VelocityFeature>()})
            .value();
    estimator_table.AddRow(
        {EstimatorKindToString(kind),
         eval::Percent(PrecisionAt10(scenes, learned, default_options))});
  }
  std::printf("%s\n", estimator_table.ToString().c_str());

  // ---- (c') Section 6 score normalization. ----
  eval::Table norm_table({"Scoring", "P@10 (missing tracks)"});
  {
    ApplicationOptions normalized = default_options;
    norm_table.AddRow(
        {"normalized (paper, Section 6)",
         eval::Percent(PrecisionAt10(scenes, {volume_fd, velocity_fd},
                                     normalized))});
    ApplicationOptions raw_sum = default_options;
    raw_sum.normalize_scores = false;
    norm_table.AddRow(
        {"raw log-likelihood sum",
         eval::Percent(
             PrecisionAt10(scenes, {volume_fd, velocity_fd}, raw_sum))});
  }
  std::printf("%s\n", norm_table.ToString().c_str());

  // ---- (c) Association (bundling) IoU threshold. ----
  eval::Table assoc_table({"Bundler IoU threshold", "P@10 (missing tracks)"});
  for (double threshold : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    ApplicationOptions options = default_options;
    options.track_builder.bundler = std::make_shared<IouBundler>(threshold);
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f", threshold);
    assoc_table.AddRow(
        {label, eval::Percent(PrecisionAt10(scenes, {volume_fd, velocity_fd},
                                            options))});
  }
  std::printf("%s", assoc_table.ToString().c_str());
  std::printf(
      "\nExpected shapes: the full feature set dominates; KDE >= histogram\n"
      ">> single Gaussian (volumes are multi-modal across classes only\n"
      "after conditioning); moderate IoU thresholds (the paper's 0.5) beat\n"
      "extremes, where bundling either merges neighbors or misses matches.\n");
}

}  // namespace
}  // namespace fixy::bench

int main() {
  fixy::bench::Run();
  return 0;
}
