// Regenerates the Figure 4 case study: "a motorcycle close to the AV but
// only visible for a short period of time due to occlusion" that human
// labelers — and even the paper's internal audit — missed. Fixy ranks it
// highly because its brief model-only track is *consistent*.
//
// The scenario: a wall of parked trucks shadows the sidewalk lane; a
// motorcycle rides behind the wall and is only visible through a gap for
// under a second, close to the ego vehicle.
#include <cstdio>

#include "core/ranker.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

sim::GtScene MotorcycleWorld() {
  sim::GtScene scene;
  scene.name = "figure4_motorcycle";
  scene.frame_rate_hz = 10.0;
  scene.num_frames = 100;
  for (int f = 0; f < scene.num_frames; ++f) {
    scene.ego_positions.push_back({0.0, 0.0});  // ego stopped at a light
    scene.ego_yaws.push_back(0.0);
  }
  uint64_t next_id = 0;

  // A contiguous wall of parked trucks at y = 5 spanning x in [-6, 51.5],
  // with a single 3.5 m gap at x in [21, 24.5]. A ray from the ego (at the
  // origin) to the motorcycle lane (y = 9) crosses the wall at 5/9 of the
  // motorcycle's x, so the motorcycle is visible only while
  // x in ~[37.8, 44.1] — under a second at 7 m/s.
  for (double x : {-1.5, 7.5, 16.5, 29.0, 38.0, 47.0}) {
    sim::GtObject truck;
    truck.gt_id = next_id++;
    truck.object_class = ObjectClass::kTruck;
    truck.length = 9.0;
    truck.width = 2.8;
    truck.height = 3.3;
    for (int f = 0; f < scene.num_frames; ++f) {
      truck.states.push_back({{x, 5.0}, 0.0, 0.0, true, 0.0});
    }
    scene.objects.push_back(std::move(truck));
  }

  // A few ordinary labeled cars for context.
  for (int i = 0; i < 4; ++i) {
    sim::GtObject car;
    car.gt_id = next_id++;
    car.object_class = ObjectClass::kCar;
    car.length = 4.6;
    car.width = 1.9;
    car.height = 1.7;
    for (int f = 0; f < scene.num_frames; ++f) {
      car.states.push_back(
          {{-20.0 + 10.0 * i + 0.6 * f, -3.5}, 0.0, 6.0, true, 0.0});
    }
    scene.objects.push_back(std::move(car));
  }

  // The motorcycle: rides along y = 9 behind the truck wall at 7 m/s.
  // It crosses the gap (x in [14, 21]) during roughly 8 frames.
  sim::GtObject moto;
  moto.gt_id = next_id++;
  moto.object_class = ObjectClass::kMotorcycle;
  moto.length = 2.3;
  moto.width = 0.95;
  moto.height = 1.6;
  for (int f = 0; f < scene.num_frames; ++f) {
    moto.states.push_back({{2.0 + 0.7 * f, 9.0}, 0.0, 7.0, true, 0.0});
  }
  scene.objects.push_back(std::move(moto));
  return scene;
}

void Run() {
  PrintHeader("Figure 4: the occluded motorcycle missed by labelers");

  sim::SimProfile profile = sim::InternalLikeProfile();
  profile.world.frame_rate_hz = 10.0;
  // Vendors reliably miss briefly-visible objects; everything else gets
  // labeled so the motorcycle is the scenario's only missing track.
  profile.labeler.missing_track_rate = 0.0;
  profile.labeler.short_visibility_miss_rate = 1.0;
  profile.labeler.short_visibility_frames = 12;
  profile.detector.ghost_tracks_per_scene = 4.0;

  const sim::GeneratedScene generated =
      sim::BuildSceneFromGroundTruth(MotorcycleWorld(), profile, 321);

  // How long was the motorcycle actually visible?
  const sim::GtObject& moto = generated.ground_truth.objects.back();
  std::printf("motorcycle visible for %d of %d frames (%.1f s)\n",
              moto.VisibleFrameCount(), generated.ground_truth.num_frames,
              moto.VisibleFrameCount() /
                  generated.ground_truth.frame_rate_hz);

  const auto missing = eval::ClaimableErrors(
      generated.ledger, ProposalKind::kMissingTrack, generated.scene.name());
  std::printf("missing tracks injected: %zu\n\n", missing.size());

  const TrainedPipeline pipeline =
      Train(sim::InternalLikeProfile(), kInternalTrainingScenes);
  const auto proposals =
      pipeline.fixy.FindMissingTracks(generated.scene).value();

  int moto_rank = -1;
  for (size_t r = 0; r < proposals.size(); ++r) {
    for (const sim::GtError* error : missing) {
      if (error->object_class == ObjectClass::kMotorcycle &&
          eval::ProposalMatchesError(proposals[r], *error)) {
        moto_rank = static_cast<int>(r) + 1;
        break;
      }
    }
    if (moto_rank > 0) break;
  }

  eval::Table table({"Metric", "Measured", "Paper"});
  table.AddRow({"Motorcycle visibility", "< 1 second through occlusion",
                "< 1 second (occluded)"});
  table.AddRow({"Missed by simulated vendor", missing.empty() ? "no" : "yes",
                "yes (and by the initial audit)"});
  table.AddRow({"Fixy rank of the motorcycle",
                moto_rank > 0 ? "#" + std::to_string(moto_rank) : "not found",
                "ranked highly (found via Fixy)"});
  table.AddRow({"Candidates ranked", std::to_string(proposals.size()), "-"});
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace fixy::bench

int main() {
  fixy::bench::Run();
  return 0;
}
