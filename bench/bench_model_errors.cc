// Regenerates the Section 8.4 experiment: finding novel ML model
// prediction errors that ad-hoc model assertions cannot find.
//
// Protocol (as in the paper):
//   1. Run the appear, flicker, and multibox assertions; any ledger error
//      they catch is excluded.
//   2. Fixy ranks model-only tracks with inverted AOFs; its proposals that
//      re-find MA-caught errors are dropped.
//   3. Precision@10 is measured over 5 Lyft scenes, against the remaining
//      (novel) errors; uncertainty sampling is the comparison baseline.
//
// Paper: Fixy 82% vs uncertainty sampling 42%; Fixy surfaces errors with
// model confidence as high as 95%.
#include <algorithm>
#include <cstdio>

#include "baselines/model_assertions.h"
#include "baselines/uncertainty.h"
#include "core/ranker.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

constexpr int kScenes = 5;  // "over 5 scenes in the Lyft dataset"

// Drops proposals that match any error in `exclude`.
std::vector<ErrorProposal> ExcludeMatching(
    std::vector<ErrorProposal> proposals,
    const std::vector<const sim::GtError*>& exclude) {
  std::vector<ErrorProposal> kept;
  for (ErrorProposal& p : proposals) {
    bool excluded = false;
    for (const sim::GtError* error : exclude) {
      if (eval::ProposalMatchesError(p, *error)) {
        excluded = true;
        break;
      }
    }
    if (!excluded) kept.push_back(std::move(p));
  }
  return kept;
}

void Run() {
  PrintHeader("Section 8.4: finding novel ML model prediction errors");

  const TrainedPipeline lyft =
      Train(sim::LyftLikeProfile(), kLyftTrainingScenes);

  double fixy_precision = 0.0;
  double us_precision = 0.0;
  int scenes_counted = 0;
  double max_hit_confidence = 0.0;
  size_t total_errors = 0;
  size_t ma_caught = 0;

  for (int i = 0; i < kScenes; ++i) {
    const auto generated = sim::GenerateScene(
        lyft.profile, "lyft_me_" + std::to_string(i), kValidationSeed + 1);
    const auto all_errors = eval::ClaimableErrors(
        generated.ledger, ProposalKind::kModelError, generated.scene.name());
    total_errors += all_errors.size();

    // Step 1: errors caught by the ad-hoc assertions are excluded.
    std::vector<ErrorProposal> ma_proposals;
    for (const auto& result :
         {baselines::AppearAssertion(generated.scene),
          baselines::FlickerAssertion(generated.scene),
          baselines::MultiboxAssertion(generated.scene)}) {
      ma_proposals.insert(ma_proposals.end(), result->begin(),
                          result->end());
    }
    std::vector<const sim::GtError*> novel_errors;
    std::vector<const sim::GtError*> caught_errors;
    for (const sim::GtError* error : all_errors) {
      if (eval::AnyProposalMatches(ma_proposals, *error)) {
        caught_errors.push_back(error);
      } else {
        novel_errors.push_back(error);
      }
    }
    ma_caught += caught_errors.size();
    if (novel_errors.empty()) continue;
    ++scenes_counted;

    // Step 2 & 3: Fixy and uncertainty sampling on the novel errors.
    const auto fixy_ranked = ExcludeMatching(
        lyft.fixy.FindModelErrors(generated.scene).value(), caught_errors);
    const auto us_ranked = ExcludeMatching(
        baselines::UncertaintySampling(generated.scene).value(),
        caught_errors);
    fixy_precision +=
        eval::PrecisionAtK(fixy_ranked, novel_errors, 10).precision;
    us_precision +=
        eval::PrecisionAtK(us_ranked, novel_errors, 10).precision;

    // Highest-confidence novel error Fixy surfaces in its top 10.
    for (const ErrorProposal& p : TopK(fixy_ranked, 10)) {
      for (const sim::GtError* error : novel_errors) {
        if (eval::ProposalMatchesError(p, *error)) {
          max_hit_confidence = std::max(max_hit_confidence,
                                        p.model_confidence);
        }
      }
    }
  }
  if (scenes_counted > 0) {
    fixy_precision /= scenes_counted;
    us_precision /= scenes_counted;
  }

  eval::Table table({"Method", "Precision@10", "Paper"});
  table.AddRow({"FIXY (after MA exclusion)", eval::Percent(fixy_precision),
                "82%"});
  table.AddRow({"Uncertainty sampling", eval::Percent(us_precision), "42%"});
  std::printf("%s", table.ToString().c_str());
  std::printf("\nModel errors in the %d scenes: %zu (caught by ad-hoc MAs "
              "and excluded: %zu)\n",
              kScenes, total_errors, ma_caught);
  std::printf("Highest confidence of a Fixy-found novel error: %.0f%% "
              "(paper: up to 95%%, beyond uncertainty sampling's reach)\n",
              100.0 * max_hit_confidence);
}

}  // namespace
}  // namespace fixy::bench

int main() {
  fixy::bench::Run();
  return 0;
}
