// Regenerates Table 3 of the paper: precision at top 10/5/1 for finding
// tracks missed by human labelers, comparing Fixy against the ad-hoc
// model-assertion baseline (consistency assertion) with random and
// confidence severity orderings, on a Lyft-like and an Internal-like
// dataset.
//
// Paper reference (Table 3):
//   FIXY             Lyft      69% / 70% / 67%
//   Ad-hoc MA (rand) Lyft      32% / 30% / 24%
//   Ad-hoc MA (conf) Lyft      39% / 40% / 39%
//   FIXY             Internal  76% / 100% / 100%
//   Ad-hoc MA (rand) Internal  49% / 64% / 66%
//   Ad-hoc MA (conf) Internal  71% / 86% / 66%
//
// Absolute numbers depend on the substrate; the shape to reproduce is:
// Fixy wins everywhere (up to ~2x over MA(rand) on Lyft), MA(conf) sits
// between, and the audited Internal data is easier for everyone.
#include <cstdio>
#include <functional>
#include <numeric>
#include <vector>

#include "baselines/model_assertions.h"
#include "core/ranker.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

struct PrecisionRow {
  double at10 = 0.0;
  double at5 = 0.0;
  double at1 = 0.0;
  int scenes = 0;
};

using ProposalFn =
    std::function<std::vector<ErrorProposal>(const Scene& scene, int index)>;

// Averages precision@{10,5,1} over every scene that contains at least one
// claimable missing-track error (the paper measures "across every scene
// ... that we discovered errors").
PrecisionRow EvaluateMethod(const std::vector<sim::GeneratedScene>& scenes,
                            const ProposalFn& propose) {
  PrecisionRow row;
  for (size_t i = 0; i < scenes.size(); ++i) {
    const sim::GeneratedScene& generated = scenes[i];
    const auto claimable =
        eval::ClaimableErrors(generated.ledger, ProposalKind::kMissingTrack,
                              generated.scene.name());
    if (claimable.empty()) continue;
    const std::vector<ErrorProposal> proposals =
        propose(generated.scene, static_cast<int>(i));
    row.at10 += eval::PrecisionAtK(proposals, claimable, 10).precision;
    row.at5 += eval::PrecisionAtK(proposals, claimable, 5).precision;
    row.at1 += eval::PrecisionAtK(proposals, claimable, 1).precision;
    ++row.scenes;
  }
  if (row.scenes > 0) {
    row.at10 /= row.scenes;
    row.at5 /= row.scenes;
    row.at1 /= row.scenes;
  }
  return row;
}

void AddRows(eval::Table* table, const std::string& dataset,
             const std::vector<sim::GeneratedScene>& scenes,
             const TrainedPipeline& pipeline, const char* paper_fixy,
             const char* paper_rand, const char* paper_conf) {
  const PrecisionRow fixy_row =
      EvaluateMethod(scenes, [&pipeline](const Scene& scene, int) {
        return pipeline.fixy.FindMissingTracks(scene).value();
      });
  const PrecisionRow rand_row =
      EvaluateMethod(scenes, [](const Scene& scene, int index) {
        return baselines::ConsistencyAssertion(
                   scene, baselines::MaOrdering::kRandom,
                   1000 + static_cast<uint64_t>(index))
            .value();
      });
  const PrecisionRow conf_row =
      EvaluateMethod(scenes, [](const Scene& scene, int index) {
        return baselines::ConsistencyAssertion(
                   scene, baselines::MaOrdering::kConfidence,
                   2000 + static_cast<uint64_t>(index))
            .value();
      });

  auto row = [&](const char* method, const PrecisionRow& r,
                 const char* paper) {
    table->AddRow({method, dataset, eval::Percent(r.at10),
                   eval::Percent(r.at5), eval::Percent(r.at1), paper});
  };
  row("FIXY", fixy_row, paper_fixy);
  row("Ad-hoc MA (rand)", rand_row, paper_rand);
  row("Ad-hoc MA (conf)", conf_row, paper_conf);
  std::printf("[%s] scenes with missing-track errors: %d\n", dataset.c_str(),
              fixy_row.scenes);
}

void Run() {
  PrintHeader(
      "Table 3: precision of missing-track finding (Fixy vs ad-hoc MAs)");

  // --- Lyft-like: 46 validation scenes, noisy vendor labels. ---
  const TrainedPipeline lyft =
      Train(sim::LyftLikeProfile(), kLyftTrainingScenes);
  std::vector<sim::GeneratedScene> lyft_scenes;
  for (int i = 0; i < kLyftValidationScenes; ++i) {
    lyft_scenes.push_back(sim::GenerateScene(
        lyft.profile, "lyft_val_" + std::to_string(i), kValidationSeed));
  }

  // --- Internal-like: the paper focuses on the scene that failed audit
  // (exactly 24 missing tracks); the remaining internal scenes feed the
  // scene count only.
  const TrainedPipeline internal =
      Train(sim::InternalLikeProfile(), kInternalTrainingScenes);
  std::vector<sim::GeneratedScene> internal_scenes;
  internal_scenes.push_back(GenerateAuditScene());

  eval::Table table({"Method", "Dataset", "P@10", "P@5", "P@1",
                     "Paper (P@10/5/1)"});
  AddRows(&table, "Lyft", lyft_scenes, lyft, "69% / 70% / 67%",
          "32% / 30% / 24%", "39% / 40% / 39%");
  AddRows(&table, "Internal", internal_scenes, internal,
          "76% / 100% / 100%", "49% / 64% / 66%", "71% / 86% / 66%");

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check (paper): FIXY beats MA(rand) by ~2x on Lyft; MA(conf)\n"
      "falls between; Internal (audited labels, calibrated model) is easier\n"
      "for every method.\n");
}

}  // namespace
}  // namespace fixy::bench

int main() {
  fixy::bench::Run();
  return 0;
}
