// Shared workload configuration for the benchmark harness. Every bench
// regenerates one table or figure of the paper's evaluation (Section 8)
// against the synthetic substrate; the constants here mirror the paper's
// experimental setup (Section 8.1).
#ifndef FIXY_BENCH_WORKLOADS_H_
#define FIXY_BENCH_WORKLOADS_H_

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "core/engine.h"
#include "sim/generate.h"

namespace fixy::bench {

// The paper evaluates on 46 Lyft validation scenes and 13 internal scenes
// (Section 8.1).
inline constexpr int kLyftValidationScenes = 46;
inline constexpr int kInternalValidationScenes = 13;

// Training scenes used to learn the feature distributions (the
// "organizational resources" — any already-labeled data works; these
// counts keep the benches fast while giving thousands of samples).
inline constexpr int kLyftTrainingScenes = 8;
inline constexpr int kInternalTrainingScenes = 6;

// Seeds: fixed so every bench run reproduces bit-for-bit.
inline constexpr uint64_t kTrainingSeed = 0xF1C5ull;
inline constexpr uint64_t kValidationSeed = 0xE7A1ull;

// The Section 8.2 exhaustively-audited internal scene contains exactly 24
// missing tracks.
inline constexpr int kAuditSceneMissingTracks = 24;

/// A learned Fixy engine plus the profile it was trained for.
struct TrainedPipeline {
  sim::SimProfile profile;
  Fixy fixy;
};

/// Generates a training set for `profile` and learns the standard feature
/// distributions. Aborts on failure (benches have no error channel).
inline TrainedPipeline Train(const sim::SimProfile& profile,
                             int training_scenes) {
  TrainedPipeline pipeline{profile, Fixy()};
  const sim::GeneratedDataset training = sim::GenerateDataset(
      profile, profile.name + "_train", training_scenes, kTrainingSeed);
  const Status status = pipeline.fixy.Learn(training.dataset);
  FIXY_CHECK_MSG(status.ok(), "learning failed: %s",
                 status.ToString().c_str());
  return pipeline;
}

/// The Section 8.2 "failed audit" scene: an internal-profile world dense
/// enough to host exactly 24 missing tracks.
inline sim::GeneratedScene GenerateAuditScene(uint64_t seed = 0xA0D17ull) {
  sim::SimProfile profile = sim::InternalLikeProfile();
  // The failed-audit scene is a dense urban scene: more objects for the
  // detector to hallucinate around.
  profile.world.mean_object_count = 44.0;
  profile.detector.ghost_tracks_per_scene = 45.0;
  sim::SceneGenOptions options;
  options.exact_missing_tracks = kAuditSceneMissingTracks;
  return sim::GenerateScene(profile, "internal_failed_audit", seed, options);
}

/// Prints a bench header naming the paper artifact being regenerated.
inline void PrintHeader(const std::string& title) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================\n");
}

}  // namespace fixy::bench

#endif  // FIXY_BENCH_WORKLOADS_H_
