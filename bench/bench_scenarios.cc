// The scenario-diversity sweep: every built-in preset crossed with the
// three paper applications (missing tracks, missing observations, model
// errors), scored as precision@10 / recall per cell. This is the grid
// behind `fixy_cli sweep --presets all` and the table in EXPERIMENTS.md;
// the paper's evaluation covers only the first two rows (the Lyft-like
// and internal-like conditions).
//
// Usage: bench_scenarios [scenes_per_cell]   (default 4)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/presets.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "workloads.h"

namespace fixy::bench {
namespace {

int Run(int scenes_per_cell) {
  PrintHeader("Scenario diversity: preset x application sweep");

  std::vector<scenario::ScenarioSpec> specs;
  for (const std::string& name : scenario::PresetNames()) {
    specs.push_back(scenario::PresetByName(name).value());
  }

  scenario::SweepOptions options;
  options.scenes_per_cell = scenes_per_cell;
  options.top_k = 10;

  const Result<scenario::SweepReport> report =
      scenario::RunSweep(specs, options);
  if (!report.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 std::string(report.status().message()).c_str());
    return 1;
  }
  std::printf("%zu scenarios x %zu applications, %d scenes per cell\n\n",
              report.value().scenarios.size(), report.value().apps.size(),
              scenes_per_cell);
  std::printf("%s", scenario::FormatSweepTable(report.value()).c_str());
  return 0;
}

}  // namespace
}  // namespace fixy::bench

int main(int argc, char** argv) {
  int scenes = 4;
  if (argc > 1) {
    scenes = std::atoi(argv[1]);
    if (scenes <= 0) {
      std::fprintf(stderr, "usage: %s [scenes_per_cell > 0]\n", argv[0]);
      return 2;
    }
  }
  return fixy::bench::Run(scenes);
}
