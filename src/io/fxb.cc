#include "io/fxb.h"

#include <bit>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/crc32.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "io/scene_io.h"
#include "json/json.h"
#include "obs/metrics.h"

// Columns are written and read with whole-array memcpys, which is only
// the documented little-endian layout on a little-endian host.
static_assert(std::endian::native == std::endian::little,
              "FXB encode/decode assumes a little-endian host");

namespace fixy::io {

namespace {

constexpr const char* kManifestFile = "manifest.json";
constexpr const char* kCacheFile = "dataset.fxb";

// ---- Encoding primitives ----

template <typename T>
void AppendPod(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void AppendColumn(std::string* out, const std::vector<T>& column) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(column.data()),
              column.size() * sizeof(T));
}

// ---- Decoding primitives ----

// A bounds-checked forward reader over one byte range. Every read is a
// sized memcpy; running past the end is a Status, never UB.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return Truncated();
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::Ok();
  }

  template <typename T>
  Status ReadColumn(size_t count, std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > remaining() / sizeof(T)) return Truncated();
    out->resize(count);
    std::memcpy(out->data(), bytes_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return Status::Ok();
  }

  Status ReadString(size_t length, std::string* out) {
    if (length > remaining()) return Truncated();
    out->assign(bytes_.data() + pos_, length);
    pos_ += length;
    return Status::Ok();
  }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("truncated FXB scene section");
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---- Scene section encode/decode ----

// Section layout: u32 name_len + name, f64 frame_rate_hz, u32 frame_count,
// u32 obs_total, the frame columns, then the observation columns.
Result<std::string> EncodeScene(const Scene& scene) {
  const size_t obs_total = scene.TotalObservations();
  if (scene.frame_count() > UINT32_MAX || obs_total > UINT32_MAX ||
      scene.name().size() > UINT32_MAX) {
    return Status::InvalidArgument(
        StrFormat("scene '%s' exceeds FXB u32 limits", scene.name().c_str()));
  }

  std::string out;
  AppendPod(&out, static_cast<uint32_t>(scene.name().size()));
  out.append(scene.name());
  AppendPod(&out, scene.frame_rate_hz());
  AppendPod(&out, static_cast<uint32_t>(scene.frame_count()));
  AppendPod(&out, static_cast<uint32_t>(obs_total));

  const size_t n = scene.frame_count();
  std::vector<int32_t> frame_index(n);
  std::vector<double> frame_ts(n), ego_x(n), ego_y(n), ego_yaw(n);
  std::vector<uint32_t> obs_count(n);
  std::vector<uint64_t> obs_id;
  std::vector<uint8_t> obs_source, obs_class;
  std::vector<double> obs_conf, obs_cx, obs_cy, obs_cz, obs_l, obs_w, obs_h,
      obs_yaw, obs_ts;
  std::vector<int32_t> obs_frame;
  obs_id.reserve(obs_total);
  for (size_t i = 0; i < n; ++i) {
    const Frame& frame = scene.frames()[i];
    frame_index[i] = frame.index;
    frame_ts[i] = frame.timestamp;
    ego_x[i] = frame.ego_position.x;
    ego_y[i] = frame.ego_position.y;
    ego_yaw[i] = frame.ego_yaw;
    obs_count[i] = static_cast<uint32_t>(frame.observations.size());
    for (const Observation& obs : frame.observations) {
      obs_id.push_back(obs.id);
      obs_source.push_back(static_cast<uint8_t>(obs.source));
      obs_class.push_back(static_cast<uint8_t>(obs.object_class));
      obs_conf.push_back(obs.confidence);
      obs_cx.push_back(obs.box.center.x);
      obs_cy.push_back(obs.box.center.y);
      obs_cz.push_back(obs.box.center.z);
      obs_l.push_back(obs.box.length);
      obs_w.push_back(obs.box.width);
      obs_h.push_back(obs.box.height);
      obs_yaw.push_back(obs.box.yaw);
      obs_frame.push_back(obs.frame_index);
      obs_ts.push_back(obs.timestamp);
    }
  }

  AppendColumn(&out, frame_index);
  AppendColumn(&out, frame_ts);
  AppendColumn(&out, ego_x);
  AppendColumn(&out, ego_y);
  AppendColumn(&out, ego_yaw);
  AppendColumn(&out, obs_count);
  AppendColumn(&out, obs_id);
  AppendColumn(&out, obs_source);
  AppendColumn(&out, obs_class);
  AppendColumn(&out, obs_conf);
  AppendColumn(&out, obs_cx);
  AppendColumn(&out, obs_cy);
  AppendColumn(&out, obs_cz);
  AppendColumn(&out, obs_l);
  AppendColumn(&out, obs_w);
  AppendColumn(&out, obs_h);
  AppendColumn(&out, obs_yaw);
  AppendColumn(&out, obs_frame);
  AppendColumn(&out, obs_ts);
  return out;
}

Result<Scene> DecodeSceneSection(std::string_view section) {
  Cursor cursor(section);
  uint32_t name_len = 0;
  FIXY_RETURN_IF_ERROR(cursor.Read(&name_len));
  std::string name;
  FIXY_RETURN_IF_ERROR(cursor.ReadString(name_len, &name));
  double frame_rate_hz = 0.0;
  FIXY_RETURN_IF_ERROR(cursor.Read(&frame_rate_hz));
  uint32_t frame_count = 0;
  uint32_t obs_total = 0;
  FIXY_RETURN_IF_ERROR(cursor.Read(&frame_count));
  FIXY_RETURN_IF_ERROR(cursor.Read(&obs_total));

  std::vector<int32_t> frame_index;
  std::vector<double> frame_ts, ego_x, ego_y, ego_yaw;
  std::vector<uint32_t> obs_count;
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(frame_count, &frame_index));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(frame_count, &frame_ts));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(frame_count, &ego_x));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(frame_count, &ego_y));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(frame_count, &ego_yaw));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(frame_count, &obs_count));

  uint64_t counted = 0;
  for (uint32_t c : obs_count) counted += c;
  if (counted != obs_total) {
    return Status::InvalidArgument(
        StrFormat("FXB scene section per-frame observation counts sum to "
                  "%llu but header says %u",
                  static_cast<unsigned long long>(counted), obs_total));
  }

  std::vector<uint64_t> obs_id;
  std::vector<uint8_t> obs_source, obs_class;
  std::vector<double> obs_conf, obs_cx, obs_cy, obs_cz, obs_l, obs_w, obs_h,
      obs_yaw, obs_ts;
  std::vector<int32_t> obs_frame;
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_id));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_source));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_class));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_conf));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_cx));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_cy));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_cz));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_l));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_w));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_h));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_yaw));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_frame));
  FIXY_RETURN_IF_ERROR(cursor.ReadColumn(obs_total, &obs_ts));
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "FXB scene section has %zu trailing bytes", cursor.remaining()));
  }

  Scene scene(std::move(name), frame_rate_hz);
  size_t next_obs = 0;
  for (uint32_t i = 0; i < frame_count; ++i) {
    Frame frame;
    frame.index = frame_index[i];
    frame.timestamp = frame_ts[i];
    frame.ego_position.x = ego_x[i];
    frame.ego_position.y = ego_y[i];
    frame.ego_yaw = ego_yaw[i];
    frame.observations.reserve(obs_count[i]);
    for (uint32_t j = 0; j < obs_count[i]; ++j, ++next_obs) {
      if (obs_source[next_obs] >= kNumObservationSources) {
        return Status::InvalidArgument(
            StrFormat("FXB observation has invalid source byte %u",
                      obs_source[next_obs]));
      }
      if (obs_class[next_obs] >= kNumObjectClasses) {
        return Status::InvalidArgument(
            StrFormat("FXB observation has invalid class byte %u",
                      obs_class[next_obs]));
      }
      Observation obs;
      obs.id = obs_id[next_obs];
      obs.source = static_cast<ObservationSource>(obs_source[next_obs]);
      obs.object_class = static_cast<ObjectClass>(obs_class[next_obs]);
      obs.confidence = obs_conf[next_obs];
      obs.box.center.x = obs_cx[next_obs];
      obs.box.center.y = obs_cy[next_obs];
      obs.box.center.z = obs_cz[next_obs];
      obs.box.length = obs_l[next_obs];
      obs.box.width = obs_w[next_obs];
      obs.box.height = obs_h[next_obs];
      obs.box.yaw = obs_yaw[next_obs];
      obs.frame_index = obs_frame[next_obs];
      obs.timestamp = obs_ts[next_obs];
      frame.observations.push_back(obs);
    }
    scene.AddFrame(std::move(frame));
  }
  FIXY_RETURN_IF_ERROR(scene.Validate());
  return scene;
}

// ---- Header helpers ----

template <typename T>
void StorePod(std::string* header, size_t offset, const T& value) {
  std::memcpy(header->data() + offset, &value, sizeof(T));
}

template <typename T>
T LoadPod(std::string_view bytes, size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + tmp);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return Status::IoError("write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

// Reads the manifest and returns the scene file names it lists, plus the
// dataset name when requested (UpdateFxbCache rebuilds the header name
// from the manifest without a full dataset load).
Result<std::vector<std::string>> ReadManifestSceneFiles(
    const std::string& directory, std::string* dataset_name = nullptr) {
  FIXY_ASSIGN_OR_RETURN(MappedFile manifest_file,
                        MappedFile::Open(directory + "/" + kManifestFile));
  FIXY_ASSIGN_OR_RETURN(json::Value manifest,
                        json::Parse(manifest_file.data()));
  FIXY_ASSIGN_OR_RETURN(std::string format, manifest.GetString("format"));
  if (format != "fixy-dataset") {
    return Status::InvalidArgument("not a fixy-dataset manifest");
  }
  if (dataset_name != nullptr) {
    FIXY_ASSIGN_OR_RETURN(*dataset_name, manifest.GetString("name"));
  }
  const json::Value* scenes = manifest.Find("scenes");
  if (scenes == nullptr || !scenes->is_array()) {
    return Status::InvalidArgument("manifest missing scenes array");
  }
  std::vector<std::string> files;
  files.reserve(scenes->AsArray().size());
  for (const json::Value& file : scenes->AsArray()) {
    if (!file.is_string()) {
      return Status::InvalidArgument("manifest scene entry must be a string");
    }
    files.push_back(file.AsString());
  }
  return files;
}

// Stats one source file into a record; reads and CRCs its bytes when
// `read_contents` (the form recorded at build time).
Result<FxbSourceRecord> StatSourceRecord(const std::string& directory,
                                         const std::string& file,
                                         bool read_contents) {
  const std::string path = directory + "/" + file;
  FxbSourceRecord record;
  record.file = file;
  std::error_code ec;
  const uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IoError("cannot stat source file: " + path + ": " +
                           ec.message());
  }
  record.size = static_cast<uint64_t>(size);
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) {
    return Status::IoError("cannot read mtime of: " + path + ": " +
                           ec.message());
  }
  record.mtime_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch())
          .count());
  if (read_contents) {
    std::string bytes;
    FIXY_RETURN_IF_ERROR(ReadFileInto(path, &bytes));
    record.crc = Crc32(bytes);
  }
  return record;
}

// Assembles a complete FXB blob from already-encoded scene sections.
// Shared by EncodeFxbDataset (all sections freshly encoded) and
// UpdateFxbCache (unchanged sections copied from the old cache), which
// is what makes an incremental update byte-identical to a full rebuild.
Result<std::string> AssembleFxbBlob(const std::string& dataset_name,
                                    const std::vector<std::string>& sections,
                                    const std::vector<FxbSourceRecord>& sources) {
  if (sections.size() > UINT32_MAX || dataset_name.size() > UINT32_MAX ||
      sources.size() > UINT32_MAX) {
    return Status::InvalidArgument("dataset exceeds FXB u32 limits");
  }
  if (sources.size() < sections.size()) {
    return Status::InvalidArgument(StrFormat(
        "FXB source map has %zu records for %zu scenes (need one per scene "
        "plus the manifest)",
        sources.size(), sections.size()));
  }

  std::string body;
  std::string index;
  index.reserve(sections.size() * kFxbIndexEntrySize);
  const uint64_t sections_base = kFxbHeaderSize + dataset_name.size();
  for (const std::string& section : sections) {
    AppendPod(&index, static_cast<uint64_t>(sections_base + body.size()));
    AppendPod(&index, static_cast<uint64_t>(section.size()));
    AppendPod(&index, Crc32(section));
    AppendPod(&index, uint32_t{0});
    body += section;
  }

  std::string source_map;
  for (const FxbSourceRecord& record : sources) {
    if (record.file.size() > UINT32_MAX) {
      return Status::InvalidArgument("FXB source file name exceeds u32 limit");
    }
    AppendPod(&source_map, static_cast<uint32_t>(record.file.size()));
    source_map += record.file;
    AppendPod(&source_map, record.size);
    AppendPod(&source_map, record.mtime_ns);
    AppendPod(&source_map, record.crc);
  }

  const FxbSourceFingerprint fingerprint = FingerprintFromRecords(sources);
  std::string header(kFxbHeaderSize, '\0');
  std::memcpy(header.data(), kFxbMagic, sizeof(kFxbMagic));
  StorePod(&header, kFxbVersionOffset, kFxbVersion);
  StorePod(&header, kFxbSceneCountOffset,
           static_cast<uint32_t>(sections.size()));
  StorePod(&header, kFxbNameBytesOffset,
           static_cast<uint32_t>(dataset_name.size()));
  StorePod(&header, kFxbIndexOffsetOffset,
           static_cast<uint64_t>(sections_base + body.size()));
  StorePod(&header, kFxbSourceFilesOffset, fingerprint.file_count);
  StorePod(&header, kFxbSourceBytesOffset, fingerprint.total_bytes);
  StorePod(&header, kFxbSourceMtimeOffset, fingerprint.max_mtime_ns);
  StorePod(&header, kFxbSourceCountOffset,
           static_cast<uint32_t>(sources.size()));
  StorePod(&header, kFxbIndexCrcOffset, Crc32(index));
  StorePod(&header, kFxbSourceMapCrcOffset, Crc32(source_map));
  StorePod(&header, kFxbHeaderCrcOffset,
           Crc32(header.data(), kFxbHeaderCrcOffset));

  std::string blob;
  blob.reserve(header.size() + dataset_name.size() + body.size() +
               index.size() + source_map.size());
  blob += header;
  blob += dataset_name;
  blob += body;
  blob += index;
  blob += source_map;
  return blob;
}

}  // namespace

Result<std::vector<FxbSourceRecord>> CollectSourceRecords(
    const std::string& directory, bool read_contents) {
  FIXY_ASSIGN_OR_RETURN(std::vector<std::string> files,
                        ReadManifestSceneFiles(directory));
  files.push_back(kManifestFile);  // the manifest itself counts as a source
  std::vector<FxbSourceRecord> records;
  records.reserve(files.size());
  for (const std::string& file : files) {
    FIXY_ASSIGN_OR_RETURN(FxbSourceRecord record,
                          StatSourceRecord(directory, file, read_contents));
    records.push_back(std::move(record));
  }
  return records;
}

FxbSourceFingerprint FingerprintFromRecords(
    const std::vector<FxbSourceRecord>& records) {
  FxbSourceFingerprint fingerprint;
  for (const FxbSourceRecord& record : records) {
    fingerprint.file_count += 1;
    fingerprint.total_bytes += record.size;
    fingerprint.max_mtime_ns =
        std::max(fingerprint.max_mtime_ns, record.mtime_ns);
  }
  return fingerprint;
}

Result<std::string> EncodeFxbDataset(
    const Dataset& dataset, const std::vector<FxbSourceRecord>& sources) {
  std::vector<std::string> sections;
  sections.reserve(dataset.scenes.size());
  for (const Scene& scene : dataset.scenes) {
    FIXY_ASSIGN_OR_RETURN(std::string section, EncodeScene(scene));
    sections.push_back(std::move(section));
  }
  return AssembleFxbBlob(dataset.name, sections, sources);
}

Result<FxbReader> FxbReader::Open(const std::string& path,
                                  bool force_buffered) {
  FxbReader reader;
  FIXY_ASSIGN_OR_RETURN(reader.file_, MappedFile::Open(path, force_buffered));
  if (reader.file_.is_mapped()) {
    obs::Count("io.fxb.bytes_mapped", reader.file_.data().size());
  }
  return Parse(std::move(reader));
}

Result<FxbReader> FxbReader::FromBuffer(std::string blob) {
  FxbReader reader;
  reader.buffer_ = std::move(blob);
  return Parse(std::move(reader));
}

Result<FxbReader> FxbReader::Parse(FxbReader reader) {
  const std::string_view bytes = reader.data();
  if (bytes.size() < kFxbHeaderSize) {
    return Status::InvalidArgument(
        StrFormat("truncated FXB header: %zu bytes, need %zu", bytes.size(),
                  kFxbHeaderSize));
  }
  if (std::memcmp(bytes.data(), kFxbMagic, sizeof(kFxbMagic)) != 0) {
    return Status::InvalidArgument("not an FXB file (bad magic)");
  }
  const uint32_t stored_header_crc =
      LoadPod<uint32_t>(bytes, kFxbHeaderCrcOffset);
  if (Crc32(bytes.data(), kFxbHeaderCrcOffset) != stored_header_crc) {
    obs::Count("io.fxb.checksum_failures");
    return Status::FailedPrecondition("FXB header checksum mismatch");
  }
  const uint32_t version = LoadPod<uint32_t>(bytes, kFxbVersionOffset);
  if (version != kFxbVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported FXB version %u (expected %u)", version,
                  kFxbVersion));
  }

  const uint32_t scene_count = LoadPod<uint32_t>(bytes, kFxbSceneCountOffset);
  const uint32_t name_bytes = LoadPod<uint32_t>(bytes, kFxbNameBytesOffset);
  const uint64_t index_offset =
      LoadPod<uint64_t>(bytes, kFxbIndexOffsetOffset);
  reader.fingerprint_.file_count =
      LoadPod<uint64_t>(bytes, kFxbSourceFilesOffset);
  reader.fingerprint_.total_bytes =
      LoadPod<uint64_t>(bytes, kFxbSourceBytesOffset);
  reader.fingerprint_.max_mtime_ns =
      LoadPod<uint64_t>(bytes, kFxbSourceMtimeOffset);

  if (name_bytes > bytes.size() - kFxbHeaderSize) {
    return Status::InvalidArgument("FXB dataset name extends past the file");
  }
  reader.dataset_name_.assign(bytes.data() + kFxbHeaderSize, name_bytes);

  const uint64_t index_size =
      static_cast<uint64_t>(scene_count) * kFxbIndexEntrySize;
  if (index_offset < kFxbHeaderSize + name_bytes ||
      index_offset > bytes.size() ||
      index_size > bytes.size() - index_offset) {
    return Status::InvalidArgument(
        StrFormat("FXB index (%u scenes at offset %llu) extends past the "
                  "file (%zu bytes)",
                  scene_count, static_cast<unsigned long long>(index_offset),
                  bytes.size()));
  }
  const std::string_view index_bytes =
      bytes.substr(index_offset, index_size);
  const uint32_t stored_index_crc =
      LoadPod<uint32_t>(bytes, kFxbIndexCrcOffset);
  if (Crc32(index_bytes) != stored_index_crc) {
    obs::Count("io.fxb.checksum_failures");
    return Status::FailedPrecondition("FXB index checksum mismatch");
  }

  reader.index_.reserve(scene_count);
  for (uint32_t i = 0; i < scene_count; ++i) {
    const size_t base = i * kFxbIndexEntrySize;
    IndexEntry entry;
    entry.offset = LoadPod<uint64_t>(index_bytes, base);
    entry.length = LoadPod<uint64_t>(index_bytes, base + sizeof(uint64_t));
    entry.crc = LoadPod<uint32_t>(index_bytes, base + kFxbIndexEntryCrcOffset);
    reader.index_.push_back(entry);
  }

  // The source map runs from the end of the index to the end of the file.
  const uint32_t source_count = LoadPod<uint32_t>(bytes, kFxbSourceCountOffset);
  if (source_count < scene_count) {
    return Status::InvalidArgument(
        StrFormat("FXB source map has %u records for %u scenes", source_count,
                  scene_count));
  }
  const uint64_t map_offset = index_offset + index_size;
  const std::string_view map_bytes = bytes.substr(map_offset);
  const uint32_t stored_map_crc =
      LoadPod<uint32_t>(bytes, kFxbSourceMapCrcOffset);
  if (Crc32(map_bytes) != stored_map_crc) {
    obs::Count("io.fxb.checksum_failures");
    return Status::FailedPrecondition("FXB source map checksum mismatch");
  }
  Cursor cursor(map_bytes);
  reader.sources_.reserve(source_count);
  for (uint32_t i = 0; i < source_count; ++i) {
    FxbSourceRecord record;
    uint32_t name_len = 0;
    FIXY_RETURN_IF_ERROR(cursor.Read(&name_len));
    FIXY_RETURN_IF_ERROR(cursor.ReadString(name_len, &record.file));
    FIXY_RETURN_IF_ERROR(cursor.Read(&record.size));
    FIXY_RETURN_IF_ERROR(cursor.Read(&record.mtime_ns));
    FIXY_RETURN_IF_ERROR(cursor.Read(&record.crc));
    reader.sources_.push_back(std::move(record));
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "FXB source map has %zu trailing bytes", cursor.remaining()));
  }
  return reader;
}

Result<std::string> FxbReader::SceneSectionBytes(size_t index) const {
  if (index >= index_.size()) {
    return Status::OutOfRange(StrFormat(
        "scene index %zu out of range (%zu scenes)", index, index_.size()));
  }
  const IndexEntry& entry = index_[index];
  const std::string_view bytes = data();
  if (entry.offset > bytes.size() ||
      entry.length > bytes.size() - entry.offset) {
    return Status::InvalidArgument(
        StrFormat("FXB scene %zu section extends past the file", index));
  }
  const std::string_view section = bytes.substr(entry.offset, entry.length);
  if (Crc32(section) != entry.crc) {
    obs::Count("io.fxb.checksum_failures");
    return Status::FailedPrecondition(
        StrFormat("FXB scene %zu section checksum mismatch", index));
  }
  return std::string(section);
}

Result<Scene> FxbReader::DecodeScene(size_t index) const {
  if (index >= index_.size()) {
    return Status::OutOfRange(StrFormat(
        "scene index %zu out of range (%zu scenes)", index, index_.size()));
  }
  const IndexEntry& entry = index_[index];
  const std::string_view bytes = data();
  if (entry.offset > bytes.size() ||
      entry.length > bytes.size() - entry.offset) {
    return Status::InvalidArgument(
        StrFormat("FXB scene %zu section (offset %llu, length %llu) extends "
                  "past the file (%zu bytes)",
                  index, static_cast<unsigned long long>(entry.offset),
                  static_cast<unsigned long long>(entry.length),
                  bytes.size()));
  }
  const std::string_view section = bytes.substr(entry.offset, entry.length);
  if (Crc32(section) != entry.crc) {
    obs::Count("io.fxb.checksum_failures");
    return Status::FailedPrecondition(
        StrFormat("FXB scene %zu section checksum mismatch", index));
  }
  FIXY_ASSIGN_OR_RETURN(Scene scene, DecodeSceneSection(section));
  obs::Count("io.fxb.scenes_decoded");
  return scene;
}

std::string FxbReader::SceneNameHint(size_t index) const {
  const std::string fallback = StrFormat("scene#%zu", index);
  if (index >= index_.size()) return fallback;
  const IndexEntry& entry = index_[index];
  const std::string_view bytes = data();
  if (entry.offset > bytes.size() ||
      entry.length > bytes.size() - entry.offset) {
    return fallback;
  }
  Cursor cursor(bytes.substr(entry.offset, entry.length));
  uint32_t name_len = 0;
  std::string name;
  if (!cursor.Read(&name_len).ok() ||
      !cursor.ReadString(name_len, &name).ok() || name.empty()) {
    return fallback;
  }
  return name;
}

std::string FxbCachePath(const std::string& directory) {
  return directory + "/" + kCacheFile;
}

Result<FxbSourceFingerprint> ComputeSourceFingerprint(
    const std::string& directory) {
  FIXY_ASSIGN_OR_RETURN(std::vector<FxbSourceRecord> records,
                        CollectSourceRecords(directory, /*read_contents=*/false));
  return FingerprintFromRecords(records);
}

namespace {

// Shared tail of both cache builders: encode, decode-back parity check
// (every scene must round-trip byte-identically through the container
// before the cache is trusted), atomic write.
Status EncodeVerifyWrite(const Dataset& dataset,
                         const std::vector<FxbSourceRecord>& sources,
                         const std::string& directory) {
  Result<std::string> encoded = EncodeFxbDataset(dataset, sources);
  FIXY_RETURN_IF_ERROR(encoded.status());
  const std::string& blob = *encoded;
  FIXY_ASSIGN_OR_RETURN(FxbReader reader, FxbReader::FromBuffer(blob));
  if (reader.scene_count() != dataset.scenes.size()) {
    return Status::Internal(
        StrFormat("FXB parity check failed: encoded %zu scenes, decoded %zu",
                  dataset.scenes.size(), reader.scene_count()));
  }
  for (size_t i = 0; i < dataset.scenes.size(); ++i) {
    FIXY_ASSIGN_OR_RETURN(Scene decoded, reader.DecodeScene(i));
    if (SceneToString(decoded) != SceneToString(dataset.scenes[i])) {
      return Status::Internal(
          StrFormat("FXB parity check failed: scene '%s' does not round-trip "
                    "byte-identically",
                    dataset.scenes[i].name().c_str()));
    }
  }
  return WriteFileAtomic(FxbCachePath(directory), blob);
}

}  // namespace

Result<size_t> BuildFxbCache(const std::string& directory) {
  // Record source fingerprints before loading: a source file modified
  // mid-build then differs from the recorded records, so the cache reads
  // as stale rather than silently matching the new contents.
  FIXY_ASSIGN_OR_RETURN(std::vector<FxbSourceRecord> sources,
                        CollectSourceRecords(directory, /*read_contents=*/true));
  FIXY_ASSIGN_OR_RETURN(Dataset dataset, LoadDataset(directory));
  if (dataset.scenes.size() + 1 != sources.size()) {
    return Status::Internal(
        StrFormat("FXB build raced a manifest edit: %zu scenes loaded but "
                  "%zu source records collected",
                  dataset.scenes.size(), sources.size()));
  }
  FIXY_RETURN_IF_ERROR(EncodeVerifyWrite(dataset, sources, directory));
  return dataset.scenes.size();
}

Result<size_t> BuildFxbCacheFromDataset(const Dataset& dataset,
                                        const std::string& directory) {
  // The source fingerprints still come from disk (the files SaveDataset
  // just wrote); only the JSON re-parse is skipped. A manifest that does
  // not line up with the in-memory scene list means the directory holds
  // some other dataset — refuse rather than record lying fingerprints.
  FIXY_ASSIGN_OR_RETURN(std::vector<FxbSourceRecord> sources,
                        CollectSourceRecords(directory, /*read_contents=*/true));
  if (dataset.scenes.size() + 1 != sources.size()) {
    return Status::InvalidArgument(StrFormat(
        "cannot build cache from memory: %zu scenes in memory but %zu "
        "source records on disk in %s",
        dataset.scenes.size(), sources.size(), directory.c_str()));
  }
  FIXY_RETURN_IF_ERROR(EncodeVerifyWrite(dataset, sources, directory));
  return dataset.scenes.size();
}

std::string CacheStaleness::Summary() const {
  if (!stale) return "cache is fresh";
  std::string out;
  for (const std::string& reason : reasons) {
    if (!out.empty()) out += "; ";
    out += reason;
  }
  return out;
}

CacheStaleness CompareCacheSources(
    const FxbReader& reader, const std::vector<FxbSourceRecord>& current) {
  CacheStaleness result;
  const std::vector<FxbSourceRecord>& recorded = reader.sources();

  // Whole-fingerprint summary reasons first: they name the aggregate that
  // moved even when many files changed at once.
  const FxbSourceFingerprint now = FingerprintFromRecords(current);
  const FxbSourceFingerprint& then = reader.fingerprint();
  if (now.file_count != then.file_count) {
    result.reasons.push_back(StrFormat(
        "source file count changed (cache recorded %llu, directory has %llu)",
        static_cast<unsigned long long>(then.file_count),
        static_cast<unsigned long long>(now.file_count)));
  }
  if (now.total_bytes != then.total_bytes) {
    result.reasons.push_back(StrFormat(
        "source total bytes changed (cache recorded %llu, directory has %llu)",
        static_cast<unsigned long long>(then.total_bytes),
        static_cast<unsigned long long>(now.total_bytes)));
  }
  if (now.max_mtime_ns != then.max_mtime_ns) {
    result.reasons.push_back("source mtime changed since the cache was built");
  }

  // Per-file detail from the source map.
  std::map<std::string, const FxbSourceRecord*> by_name;
  for (const FxbSourceRecord& record : recorded) by_name[record.file] = &record;
  std::map<std::string, bool> seen;
  for (const FxbSourceRecord& record : current) {
    seen[record.file] = true;
    const auto it = by_name.find(record.file);
    if (it == by_name.end()) {
      result.reasons.push_back("added since the build: " + record.file);
      continue;
    }
    const FxbSourceRecord& old = *it->second;
    if (record.size != old.size) {
      result.reasons.push_back(StrFormat(
          "%s changed size (%llu -> %llu bytes)", record.file.c_str(),
          static_cast<unsigned long long>(old.size),
          static_cast<unsigned long long>(record.size)));
    } else if (record.mtime_ns != old.mtime_ns) {
      result.reasons.push_back(record.file + " was modified (mtime changed)");
    } else if (record.crc != 0 && record.crc != old.crc) {
      result.reasons.push_back(record.file +
                               " changed contents (same size and mtime, "
                               "different checksum)");
    }
  }
  for (const FxbSourceRecord& record : recorded) {
    if (!seen.count(record.file)) {
      result.reasons.push_back("removed since the build: " + record.file);
    }
  }

  result.stale = !result.reasons.empty();
  return result;
}

Result<CacheStaleness> ExplainCacheStaleness(const std::string& directory,
                                             bool verify_contents) {
  const std::string path = FxbCachePath(directory);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return Status::NotFound("no FXB cache at " + path);
  }
  Result<FxbReader> reader = FxbReader::Open(path);
  if (!reader.ok()) {
    CacheStaleness result;
    result.stale = true;
    result.reasons.push_back("cache is unreadable: " +
                             reader.status().message());
    return result;
  }
  FIXY_ASSIGN_OR_RETURN(
      std::vector<FxbSourceRecord> current,
      CollectSourceRecords(directory, /*read_contents=*/verify_contents));
  return CompareCacheSources(*reader, current);
}

Result<FxbReader> OpenFreshCache(const std::string& directory) {
  const std::string path = FxbCachePath(directory);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return Status::NotFound("no FXB cache at " + path);
  }
  Result<FxbReader> reader = FxbReader::Open(path);
  if (!reader.ok() && reader.status().message().find("unsupported FXB "
                                                     "version") !=
                          std::string::npos) {
    // An older-format cache is stale, not hostile: the standard refresh
    // advice applies.
    return Status::FailedPrecondition(
        "FXB cache is stale: " + reader.status().message() +
        " (run `fixy_cli cache` to refresh)");
  }
  FIXY_RETURN_IF_ERROR(reader.status());
  FIXY_ASSIGN_OR_RETURN(std::vector<FxbSourceRecord> current,
                        CollectSourceRecords(directory, /*read_contents=*/false));
  // Fast path: the whole-cache fingerprint; precise fallback: the
  // per-file map (catches e.g. a rename that preserves count, bytes, and
  // newest mtime).
  if (reader->fingerprint() == FingerprintFromRecords(current)) {
    const CacheStaleness per_file = CompareCacheSources(*reader, current);
    if (!per_file.stale) return reader;
    return Status::FailedPrecondition("FXB cache is stale: " +
                                      per_file.Summary() +
                                      " (run `fixy_cli cache` to refresh)");
  }
  const CacheStaleness staleness = CompareCacheSources(*reader, current);
  return Status::FailedPrecondition("FXB cache is stale: " +
                                    staleness.Summary() +
                                    " (run `fixy_cli cache` to refresh)");
}

Result<FxbUpdateReport> UpdateFxbCache(const std::string& directory) {
  const std::string cache_path = FxbCachePath(directory);
  FxbUpdateReport report;

  // No usable cache (missing, corrupt, or an older format version) means
  // there is nothing to reuse: fall back to a full build.
  std::error_code ec;
  Result<FxbReader> old_reader = std::filesystem::exists(cache_path, ec) && !ec
                                     ? FxbReader::Open(cache_path)
                                     : Status::NotFound("no cache");
  if (!old_reader.ok()) {
    FIXY_ASSIGN_OR_RETURN(const size_t scenes, BuildFxbCache(directory));
    report.scenes_total = scenes;
    report.scenes_encoded = scenes;
    report.rebuilt = true;
    obs::Count("io.fxb.sections_reencoded", scenes);
    return report;
  }

  std::string dataset_name;
  FIXY_ASSIGN_OR_RETURN(std::vector<std::string> files,
                        ReadManifestSceneFiles(directory, &dataset_name));

  // Map the old cache's per-scene records by source file name.
  std::map<std::string, size_t> old_scene_by_file;
  const std::vector<FxbSourceRecord>& old_sources = old_reader->sources();
  for (size_t i = 0; i < old_reader->scene_count(); ++i) {
    old_scene_by_file.emplace(old_sources[i].file, i);
  }

  std::vector<std::string> sections;
  std::vector<FxbSourceRecord> sources;
  sections.reserve(files.size());
  sources.reserve(files.size() + 1);
  std::map<std::string, bool> in_manifest;
  for (const std::string& file : files) {
    in_manifest[file] = true;
    FIXY_ASSIGN_OR_RETURN(
        FxbSourceRecord fresh,
        StatSourceRecord(directory, file, /*read_contents=*/false));
    const auto it = old_scene_by_file.find(file);
    bool reuse = false;
    if (it != old_scene_by_file.end()) {
      const FxbSourceRecord& old = old_sources[it->second];
      if (fresh.size == old.size && fresh.mtime_ns == old.mtime_ns) {
        // Stat fast path: unchanged on disk.
        fresh.crc = old.crc;
        reuse = true;
      } else {
        // Stat mismatch: read the file once — a touched-but-identical
        // file (same bytes, new mtime) still reuses its section.
        std::string bytes;
        FIXY_RETURN_IF_ERROR(
            ReadFileInto(directory + "/" + file, &bytes));
        fresh.crc = Crc32(bytes);
        reuse = fresh.crc == old.crc && fresh.size == old.size;
      }
      if (reuse) {
        // Copy the section byte-for-byte, but only after verifying its
        // checksum: a corrupt section must be re-encoded, not propagated.
        Result<std::string> section =
            old_reader->SceneSectionBytes(it->second);
        if (section.ok()) {
          sections.push_back(std::move(*section));
          sources.push_back(std::move(fresh));
          report.scenes_reused += 1;
          obs::Count("io.fxb.sections_reused");
          continue;
        }
        reuse = false;
      }
    }
    // Added, changed, or corrupt-in-cache: encode from the JSON source.
    if (fresh.crc == 0) {
      std::string bytes;
      FIXY_RETURN_IF_ERROR(ReadFileInto(directory + "/" + file, &bytes));
      fresh.crc = Crc32(bytes);
    }
    FIXY_ASSIGN_OR_RETURN(Scene scene, LoadScene(directory + "/" + file));
    FIXY_ASSIGN_OR_RETURN(std::string section, EncodeScene(scene));
    // Parity check for the fresh section only (reused sections were
    // CRC-verified against the old index above).
    FIXY_ASSIGN_OR_RETURN(Scene decoded, DecodeSceneSection(section));
    if (SceneToString(decoded) != SceneToString(scene)) {
      return Status::Internal(StrFormat(
          "FXB parity check failed: scene '%s' does not round-trip "
          "byte-identically",
          scene.name().c_str()));
    }
    sections.push_back(std::move(section));
    sources.push_back(std::move(fresh));
    report.scenes_encoded += 1;
    report.encoded_files.push_back(file);
    obs::Count("io.fxb.sections_reencoded");
  }
  for (size_t i = 0; i < old_reader->scene_count(); ++i) {
    if (!in_manifest.count(old_sources[i].file)) {
      report.scenes_dropped += 1;
      report.dropped_files.push_back(old_sources[i].file);
      obs::Count("io.fxb.sections_dropped");
    }
  }

  FIXY_ASSIGN_OR_RETURN(
      FxbSourceRecord manifest_record,
      StatSourceRecord(directory, kManifestFile, /*read_contents=*/true));
  sources.push_back(std::move(manifest_record));

  FIXY_ASSIGN_OR_RETURN(std::string blob,
                        AssembleFxbBlob(dataset_name, sections, sources));
  FIXY_RETURN_IF_ERROR(WriteFileAtomic(cache_path, blob));
  report.scenes_total = sections.size();
  return report;
}

Result<DirectorySceneSource> DirectorySceneSource::Open(
    const std::string& directory) {
  DirectorySceneSource source;
  source.directory_ = directory;
  FIXY_ASSIGN_OR_RETURN(source.files_, ReadManifestSceneFiles(directory));
  return source;
}

std::string DirectorySceneSource::scene_name(size_t index) const {
  if (index >= files_.size()) return StrFormat("scene#%zu", index);
  std::string name = files_[index];
  constexpr std::string_view kSuffix = ".fixy.json";
  if (EndsWith(name, kSuffix)) name.resize(name.size() - kSuffix.size());
  return name;
}

Result<Scene> DirectorySceneSource::DecodeScene(size_t index) const {
  if (index >= files_.size()) {
    return Status::OutOfRange(StrFormat(
        "scene index %zu out of range (%zu scenes)", index, files_.size()));
  }
  return LoadScene(directory_ + "/" + files_[index]);
}

void RecordFxbMetricsSchema() {
  obs::Count("io.fxb.bytes_mapped", 0);
  obs::Count("io.fxb.cache_hits", 0);
  obs::Count("io.fxb.cache_misses", 0);
  obs::Count("io.fxb.checksum_failures", 0);
  obs::Count("io.fxb.scenes_decoded", 0);
  obs::Count("io.fxb.sections_dropped", 0);
  obs::Count("io.fxb.sections_reencoded", 0);
  obs::Count("io.fxb.sections_reused", 0);
  obs::AddTimeNs("io.fxb.queue_wait", 0);
}

}  // namespace fixy::io
