// Serialization of scenes and datasets to the JSON-based .fixy format.
//
// The format is stable and round-trip exact at double precision:
//
//   {
//     "format": "fixy-scene",
//     "version": 1,
//     "name": "...",
//     "frame_rate_hz": 10,
//     "frames": [
//       {"index": 0, "timestamp": 0.0,
//        "ego": {"x": ..., "y": ..., "yaw": ...},
//        "observations": [
//          {"id": 1, "source": "human", "class": "car",
//           "box": {"cx":..,"cy":..,"cz":..,"l":..,"w":..,"h":..,"yaw":..},
//           "confidence": 1.0}, ...]}, ...]
//   }
#ifndef FIXY_IO_SCENE_IO_H_
#define FIXY_IO_SCENE_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/scene.h"
#include "json/json.h"

namespace fixy::io {

/// Converts a scene to its JSON document.
json::Value SceneToJson(const Scene& scene);

/// Parses a scene from a JSON document. Errors: InvalidArgument for
/// wrong format marker, missing fields, or unknown enum values.
Result<Scene> SceneFromJson(const json::Value& value);

/// Serializes `scene` to a string (pretty-printed if requested).
std::string SceneToString(const Scene& scene, bool pretty = false);

/// Parses a scene from serialized text.
Result<Scene> SceneFromString(std::string_view text);

/// Writes `scene` to `path`. Errors: IoError on filesystem failure.
Status SaveScene(const Scene& scene, const std::string& path);

/// Reads a scene from `path`.
Result<Scene> LoadScene(const std::string& path);

/// LoadScene with caller-provided scratch: the file is read with a single
/// sized read into `*buffer` (reusing its capacity), so a loop over many
/// scene files allocates the read buffer once instead of per file.
Result<Scene> LoadScene(const std::string& path, std::string* buffer);

/// Reads the whole file at `path` into `*out` with one sized read,
/// reusing `out`'s existing capacity when it suffices.
Status ReadFileInto(const std::string& path, std::string* out);

/// Writes every scene of `dataset` into `directory` as
/// `<directory>/<scene-name>.fixy.json` plus a `manifest.json` listing them.
Status SaveDataset(const Dataset& dataset, const std::string& directory);

/// Loads a dataset previously written by SaveDataset. Strict: the first
/// unreadable, unparseable, or invalid scene file fails the whole load.
Result<Dataset> LoadDataset(const std::string& directory);

/// Ingestion policy for LoadDataset.
struct DatasetLoadOptions {
  /// When true, scene files that cannot be read, parsed, or validated are
  /// skipped with a per-file diagnostic instead of failing the load; the
  /// returned dataset holds every scene that survived, in manifest order.
  /// A missing or malformed manifest is still an error — there is nothing
  /// to salvage without it.
  bool tolerant = false;
};

/// One quarantined scene file from a tolerant load.
struct SceneFileError {
  /// The file name as listed in the manifest.
  std::string file;
  /// Why it was skipped (IoError or InvalidArgument/FailedPrecondition).
  Status status;
};

/// A tolerant load's result: the surviving scenes plus per-file
/// diagnostics for everything that was skipped (empty in strict mode).
struct DatasetLoadReport {
  Dataset dataset;
  std::vector<SceneFileError> skipped;
};

/// Loads a dataset with the given ingestion policy; see DatasetLoadOptions.
Result<DatasetLoadReport> LoadDataset(const std::string& directory,
                                      const DatasetLoadOptions& options);

}  // namespace fixy::io

#endif  // FIXY_IO_SCENE_IO_H_
