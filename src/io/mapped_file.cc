#include "io/mapped_file.h"

#include <utility>

#include "common/macros.h"
#include "io/scene_io.h"

#if defined(__unix__) || defined(__APPLE__)
#define FIXY_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fixy::io {

void (*MappedFile::pre_map_hook_for_test)(const std::string& path) = nullptr;

MappedFile::~MappedFile() { Release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : mapping_(std::exchange(other.mapping_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      buffer_(std::move(other.buffer_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    mapping_ = std::exchange(other.mapping_, nullptr);
    size_ = std::exchange(other.size_, 0);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void MappedFile::Release() {
#if FIXY_HAVE_MMAP
  if (mapping_ != nullptr) {
    ::munmap(mapping_, size_);
  }
#endif
  mapping_ = nullptr;
  size_ = 0;
  buffer_.clear();
}

Result<MappedFile> MappedFile::Open(const std::string& path,
                                    bool force_buffered) {
  MappedFile file;
#if FIXY_HAVE_MMAP
  if (!force_buffered) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IoError("cannot open for reading: " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IoError("cannot stat: " + path);
    }
    // mmap of an empty file is invalid; the empty buffer fallback is
    // already correct for it.
    if (st.st_size > 0) {
      if (pre_map_hook_for_test != nullptr) pre_map_hook_for_test(path);
      void* mapping = ::mmap(nullptr, static_cast<size_t>(st.st_size),
                             PROT_READ, MAP_PRIVATE, fd, 0);
      if (mapping != MAP_FAILED) {
        // Re-check the size through the still-open fd: a concurrent
        // truncation between the stat and the mmap leaves the tail of
        // the mapping past EOF, where the first page touch is SIGBUS,
        // not a readable zero. Growth is harmless — the first st_size
        // bytes still exist.
        struct stat st2;
        if (::fstat(fd, &st2) != 0 || st2.st_size < st.st_size) {
          ::munmap(mapping, static_cast<size_t>(st.st_size));
          ::close(fd);
          return Status::IoError("file truncated while mapping: " + path);
        }
        ::close(fd);
        file.mapping_ = mapping;
        file.size_ = static_cast<size_t>(st.st_size);
        return file;
      }
    } else {
      ::close(fd);
      return file;  // empty file: empty view, not mapped
    }
    ::close(fd);
    // fall through to the buffered read on mmap failure
  }
#else
  (void)force_buffered;
#endif
  FIXY_RETURN_IF_ERROR(ReadFileInto(path, &file.buffer_));
  return file;
}

}  // namespace fixy::io
