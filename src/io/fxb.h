// FXB: the binary scene cache format, plus the dataset-directory cache
// workflow built on it.
//
// FXB amortizes JSON parse cost: `fixy_cli cache` converts a dataset
// directory's `.fixy.json` scene files into one `dataset.fxb` container,
// and `rank` then decodes each scene with a handful of bounded memcpys
// from a memory-mapped file instead of a JSON DOM walk.
//
// On-disk layout, format version 2 (all integers and doubles
// little-endian; byte-level table in DESIGN.md §14):
//
//   header   64 bytes: magic "FXB1", format version, scene count,
//            dataset-name length, index offset, source fingerprint
//            (file count / total bytes / max mtime-ns, the whole-cache
//            staleness fast path), source record count, index CRC32,
//            source map CRC32, header CRC32.
//   name     dataset name bytes, immediately after the header.
//   scenes   one section per scene, columnar: frame columns (index,
//            timestamp, ego x/y/yaw, per-frame observation count) then
//            observation columns (id, source, class, confidence, box
//            cx/cy/cz/l/w/h/yaw, frame index, timestamp), each a
//            contiguous array decoded with one bounded memcpy.
//   index    scene_count entries of {offset, length, crc32} locating and
//            checksumming each scene section independently, so one
//            corrupt section quarantines one scene, not the file.
//   sources  source record count entries of {u32 name_len, name bytes,
//            u64 size, u64 mtime_ns, u32 crc32-of-source-bytes}: record
//            i < scene_count fingerprints scene i's JSON file, the
//            records after that cover the non-scene sources (the
//            manifest, last). This per-scene map is what lets
//            UpdateFxbCache re-encode only the scenes whose source
//            actually changed, and it closes the whole-fingerprint
//            staleness blind spot (a same-size edit with a restored
//            mtime still changes the recorded CRC).
//
// Every reader path returns Status on truncated / corrupt /
// version-mismatched input — never aborts (the PR 2 failure-semantics
// ladder). Doubles are stored bit-exact, so a cache round-trip is
// byte-identical to the JSON load it was built from, and an incremental
// UpdateFxbCache is byte-identical to a from-scratch BuildFxbCache over
// the same source state (the encoder is deterministic and both paths
// share the same blob assembler).
#ifndef FIXY_IO_FXB_H_
#define FIXY_IO_FXB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "data/scene.h"
#include "data/scene_source.h"
#include "io/mapped_file.h"

namespace fixy::io {

// ---- Layout constants (exported for DESIGN.md §9, tests, and the
// binary corruptor in src/testing). ----
inline constexpr char kFxbMagic[4] = {'F', 'X', 'B', '1'};
inline constexpr uint32_t kFxbVersion = 2;
inline constexpr size_t kFxbHeaderSize = 64;
inline constexpr size_t kFxbVersionOffset = 4;        // u32
inline constexpr size_t kFxbSceneCountOffset = 8;     // u32
inline constexpr size_t kFxbNameBytesOffset = 12;     // u32
inline constexpr size_t kFxbIndexOffsetOffset = 16;   // u64
inline constexpr size_t kFxbSourceFilesOffset = 24;   // u64
inline constexpr size_t kFxbSourceBytesOffset = 32;   // u64
inline constexpr size_t kFxbSourceMtimeOffset = 40;   // u64
inline constexpr size_t kFxbSourceCountOffset = 48;   // u32, source records
inline constexpr size_t kFxbIndexCrcOffset = 52;      // u32
inline constexpr size_t kFxbSourceMapCrcOffset = 56;  // u32
inline constexpr size_t kFxbHeaderCrcOffset = 60;     // u32, CRC of [0,60)
/// One index entry: u64 offset, u64 length, u32 crc32, u32 reserved.
inline constexpr size_t kFxbIndexEntrySize = 24;
inline constexpr size_t kFxbIndexEntryCrcOffset = 16;
/// Fixed tail of one source record after its name: u64 size, u64
/// mtime_ns, u32 crc32.
inline constexpr size_t kFxbSourceRecordTailSize = 20;

/// Fingerprint of the JSON source files a cache was built from, recorded
/// in the header and used as the staleness fast path: any file added,
/// removed, resized, or touched since the build changes it. Mtimes are
/// nanosecond-resolution, so a same-size in-place edit lands in the
/// fingerprint even within the same wall-clock second.
struct FxbSourceFingerprint {
  uint64_t file_count = 0;
  uint64_t total_bytes = 0;
  uint64_t max_mtime_ns = 0;

  bool operator==(const FxbSourceFingerprint&) const = default;
};

/// One source file's fingerprint in the per-scene source map: name
/// relative to the dataset directory, byte size, nanosecond mtime, and
/// CRC32 of the file's bytes (0 when the record came from a stat-only
/// pass that did not read contents).
struct FxbSourceRecord {
  std::string file;
  uint64_t size = 0;
  uint64_t mtime_ns = 0;
  uint32_t crc = 0;

  bool operator==(const FxbSourceRecord&) const = default;
};

/// Stats (and optionally reads, for CRCs) every source file of
/// `directory`: the manifest's scene files in manifest order, then the
/// manifest itself as the final record. Errors: IoError / InvalidArgument
/// when the manifest is unreadable or malformed, or a listed file cannot
/// be stat'd.
Result<std::vector<FxbSourceRecord>> CollectSourceRecords(
    const std::string& directory, bool read_contents);

/// Folds per-file records into the whole-cache fast-path fingerprint.
FxbSourceFingerprint FingerprintFromRecords(
    const std::vector<FxbSourceRecord>& records);

/// Serializes `dataset` into an FXB container blob (header + name +
/// sections + index + source map). `sources` must hold one record per
/// scene (record i fingerprints scene i's source file) followed by at
/// least one non-scene record (the manifest); the header fingerprint is
/// derived from it. Errors: InvalidArgument when a scene exceeds the
/// format's u32 frame/observation counts or `sources` is shorter than
/// the scene list.
Result<std::string> EncodeFxbDataset(const Dataset& dataset,
                                     const std::vector<FxbSourceRecord>& sources);

/// An open FXB container. Opening validates the header, magic, version,
/// header CRC, and index CRC; scene sections are bounds-checked and
/// CRC-verified individually on decode, so a corrupt section fails only
/// its own scene. Thread-safe for concurrent DecodeScene calls.
class FxbReader {
 public:
  /// Opens `path`, memory-mapping it when possible (buffered-read
  /// fallback otherwise; `force_buffered` skips the mmap attempt).
  /// Records `io.fxb.bytes_mapped` when the file was actually mapped.
  static Result<FxbReader> Open(const std::string& path,
                                bool force_buffered = false);

  /// Reads a container from an in-memory blob (tests, fault injection).
  static Result<FxbReader> FromBuffer(std::string blob);

  size_t scene_count() const { return index_.size(); }
  const std::string& dataset_name() const { return dataset_name_; }
  const FxbSourceFingerprint& fingerprint() const { return fingerprint_; }
  /// The per-file source map recorded at build time: one record per
  /// scene (same order as the scene index), then the non-scene sources
  /// (manifest last).
  const std::vector<FxbSourceRecord>& sources() const { return sources_; }
  bool is_mapped() const { return file_.is_mapped(); }

  /// Decodes scene `index`: section bounds check, CRC32 verification
  /// (`io.fxb.checksum_failures` on mismatch), column decode, and
  /// Scene::Validate. Records `io.fxb.scenes_decoded` on success.
  Result<Scene> DecodeScene(size_t index) const;

  /// Best-effort scene name read from the section header without
  /// checksumming the section; "scene#<i>" when unreadable.
  std::string SceneNameHint(size_t index) const;

  /// Returns scene `index`'s raw section bytes after bounds and CRC
  /// checks, without decoding — what UpdateFxbCache copies byte-for-byte
  /// for unchanged scenes.
  Result<std::string> SceneSectionBytes(size_t index) const;

 private:
  struct IndexEntry {
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
  };

  static Result<FxbReader> Parse(FxbReader reader);

  std::string_view data() const {
    return buffer_.empty() ? file_.data() : std::string_view(buffer_);
  }

  MappedFile file_;
  std::string buffer_;  // FromBuffer storage
  std::string dataset_name_;
  FxbSourceFingerprint fingerprint_;
  std::vector<IndexEntry> index_;
  std::vector<FxbSourceRecord> sources_;
};

/// `<directory>/dataset.fxb`, the cache file `fixy_cli cache` maintains.
std::string FxbCachePath(const std::string& directory);

/// Fingerprints the JSON source files of `directory` (manifest.json plus
/// every scene file it lists). Errors: IoError / InvalidArgument when the
/// manifest is unreadable or malformed.
Result<FxbSourceFingerprint> ComputeSourceFingerprint(
    const std::string& directory);

/// Builds (or refreshes) `directory`'s cache: strict JSON load, encode,
/// decode-back parity check (every scene byte-identical to its JSON
/// load), then an atomic write of dataset.fxb. Returns the scene count.
Result<size_t> BuildFxbCache(const std::string& directory);

/// Builds `directory`'s cache directly from an in-memory dataset that was
/// just saved there (SaveDataset must have run first — the source
/// fingerprints still come from the files on disk). Skips the JSON
/// re-parse of BuildFxbCache, which matters when generating 100k+ scene
/// synthetic datasets; the result is byte-identical to BuildFxbCache over
/// the same directory because JSON round-trips doubles bit-exactly (the
/// decode-back parity check still runs). Errors: InvalidArgument when the
/// on-disk manifest does not match `dataset`'s scene list.
Result<size_t> BuildFxbCacheFromDataset(const Dataset& dataset,
                                        const std::string& directory);

/// Why (and whether) a cache no longer matches its sources. `reasons`
/// holds one human-readable sentence per detected difference; empty when
/// fresh.
struct CacheStaleness {
  bool stale = false;
  std::vector<std::string> reasons;

  /// The reasons joined with "; " ("cache is fresh" when not stale).
  std::string Summary() const;
};

/// Diffs a cache's recorded source map against `current` records (from
/// CollectSourceRecords). Stat-only records (crc == 0) compare by
/// size/mtime; content records also compare CRCs, which catches a
/// same-size edit whose mtime was restored.
CacheStaleness CompareCacheSources(const FxbReader& reader,
                                   const std::vector<FxbSourceRecord>& current);

/// Opens `directory`'s cache (if any) and reports why it is stale, with
/// per-file reasons. A cache that cannot be parsed (corrupt, or an older
/// format version) reads as stale with the parse error as the reason.
/// The default stat-only pass trusts size + nanosecond mtime (the same
/// fast path OpenFreshCache uses); `verify_contents` additionally reads
/// and checksums every source file, which catches the one edit the stat
/// pass cannot — a same-size rewrite whose mtime was restored.
/// Errors: NotFound when there is no cache file at all.
Result<CacheStaleness> ExplainCacheStaleness(const std::string& directory,
                                             bool verify_contents = false);

/// Opens `directory`'s cache iff it exists and is fresh: the whole-cache
/// fingerprint fast path first, then the per-file source map (stat
/// comparison). Errors: NotFound (no cache), FailedPrecondition (stale:
/// source files changed since the build, with per-file reasons; also
/// covers a cache in an older format version), or the underlying
/// open/parse error.
Result<FxbReader> OpenFreshCache(const std::string& directory);

/// What UpdateFxbCache did to each scene section.
struct FxbUpdateReport {
  size_t scenes_total = 0;    // scenes in the refreshed cache
  size_t scenes_reused = 0;   // sections copied byte-for-byte
  size_t scenes_encoded = 0;  // added or changed, re-encoded from JSON
  size_t scenes_dropped = 0;  // removed from the manifest since the build
  bool rebuilt = false;       // no usable cache: fell back to a full build
  std::vector<std::string> encoded_files;
  std::vector<std::string> dropped_files;
};

/// Incrementally refreshes `directory`'s cache: re-encodes only the
/// scenes whose source file was added or changed since the build (per
/// the source map: stat fast path, CRC fallback for touched-but-
/// identical files), drops scenes removed from the manifest, copies
/// every other section byte-for-byte (after CRC verification — a
/// corrupt section is re-encoded from its source), and rewrites the
/// trailing index and source map. The result is byte-identical to
/// BuildFxbCache over the same source state. Falls back to a full build
/// when there is no usable cache (missing, corrupt, or older format).
Result<FxbUpdateReport> UpdateFxbCache(const std::string& directory);

/// FXB-backed SceneSource for the streaming ranking pipeline.
class FxbSceneSource : public SceneSource {
 public:
  explicit FxbSceneSource(FxbReader reader)
      : reader_(std::make_shared<FxbReader>(std::move(reader))) {}

  size_t scene_count() const override { return reader_->scene_count(); }
  std::string scene_name(size_t index) const override {
    return reader_->SceneNameHint(index);
  }
  Result<Scene> DecodeScene(size_t index) const override {
    return reader_->DecodeScene(index);
  }
  const FxbReader& reader() const { return *reader_; }

 private:
  std::shared_ptr<FxbReader> reader_;
};

/// JSON fallback SceneSource: decodes `<directory>/<file>.fixy.json`
/// scene files (as listed by manifest.json) one at a time.
class DirectorySceneSource : public SceneSource {
 public:
  /// Reads the manifest and records the scene file list; scene files
  /// themselves are only touched by DecodeScene.
  static Result<DirectorySceneSource> Open(const std::string& directory);

  size_t scene_count() const override { return files_.size(); }
  std::string scene_name(size_t index) const override;
  Result<Scene> DecodeScene(size_t index) const override;

 private:
  std::string directory_;
  std::vector<std::string> files_;
};

/// Records every `io.fxb.*` counter and timer at zero on the calling
/// thread's collector, so metric snapshots carry a stable key set whether
/// or not the cache path ran (the schema golden depends on this).
void RecordFxbMetricsSchema();

}  // namespace fixy::io

#endif  // FIXY_IO_FXB_H_
