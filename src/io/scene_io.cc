#include "io/scene_io.h"

#include <filesystem>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace fixy::io {

namespace {

constexpr int kFormatVersion = 1;
constexpr const char* kFormatMarker = "fixy-scene";
constexpr const char* kManifestMarker = "fixy-dataset";

json::Value BoxToJson(const geom::Box3d& box) {
  json::Object obj;
  obj["cx"] = box.center.x;
  obj["cy"] = box.center.y;
  obj["cz"] = box.center.z;
  obj["l"] = box.length;
  obj["w"] = box.width;
  obj["h"] = box.height;
  obj["yaw"] = box.yaw;
  return obj;
}

Result<geom::Box3d> BoxFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("box must be an object");
  }
  geom::Box3d box;
  FIXY_ASSIGN_OR_RETURN(box.center.x, value.GetDouble("cx"));
  FIXY_ASSIGN_OR_RETURN(box.center.y, value.GetDouble("cy"));
  FIXY_ASSIGN_OR_RETURN(box.center.z, value.GetDouble("cz"));
  FIXY_ASSIGN_OR_RETURN(box.length, value.GetDouble("l"));
  FIXY_ASSIGN_OR_RETURN(box.width, value.GetDouble("w"));
  FIXY_ASSIGN_OR_RETURN(box.height, value.GetDouble("h"));
  FIXY_ASSIGN_OR_RETURN(box.yaw, value.GetDouble("yaw"));
  return box;
}

json::Value ObservationToJson(const Observation& obs) {
  json::Object obj;
  obj["id"] = static_cast<uint64_t>(obs.id);
  obj["source"] = ObservationSourceToString(obs.source);
  obj["class"] = ObjectClassToString(obs.object_class);
  obj["box"] = BoxToJson(obs.box);
  obj["confidence"] = obs.confidence;
  return obj;
}

Result<Observation> ObservationFromJson(const json::Value& value,
                                        int frame_index, double timestamp) {
  if (!value.is_object()) {
    return Status::InvalidArgument("observation must be an object");
  }
  Observation obs;
  FIXY_ASSIGN_OR_RETURN(int64_t id, value.GetInt64("id"));
  obs.id = static_cast<ObservationId>(id);
  FIXY_ASSIGN_OR_RETURN(std::string source, value.GetString("source"));
  FIXY_ASSIGN_OR_RETURN(obs.source, ObservationSourceFromString(source));
  FIXY_ASSIGN_OR_RETURN(std::string cls, value.GetString("class"));
  FIXY_ASSIGN_OR_RETURN(obs.object_class, ObjectClassFromString(cls));
  const json::Value* box = value.Find("box");
  if (box == nullptr) return Status::InvalidArgument("observation missing box");
  FIXY_ASSIGN_OR_RETURN(obs.box, BoxFromJson(*box));
  FIXY_ASSIGN_OR_RETURN(obs.confidence, value.GetDouble("confidence"));
  obs.frame_index = frame_index;
  obs.timestamp = timestamp;
  return obs;
}

json::Value FrameToJson(const Frame& frame) {
  json::Object ego;
  ego["x"] = frame.ego_position.x;
  ego["y"] = frame.ego_position.y;
  ego["yaw"] = frame.ego_yaw;

  json::Array observations;
  observations.reserve(frame.observations.size());
  for (const Observation& obs : frame.observations) {
    observations.push_back(ObservationToJson(obs));
  }

  json::Object obj;
  obj["index"] = frame.index;
  obj["timestamp"] = frame.timestamp;
  obj["ego"] = std::move(ego);
  obj["observations"] = std::move(observations);
  return obj;
}

Result<Frame> FrameFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("frame must be an object");
  }
  Frame frame;
  FIXY_ASSIGN_OR_RETURN(int64_t index, value.GetInt64("index"));
  frame.index = static_cast<int>(index);
  FIXY_ASSIGN_OR_RETURN(frame.timestamp, value.GetDouble("timestamp"));
  const json::Value* ego = value.Find("ego");
  if (ego == nullptr) return Status::InvalidArgument("frame missing ego");
  FIXY_ASSIGN_OR_RETURN(frame.ego_position.x, ego->GetDouble("x"));
  FIXY_ASSIGN_OR_RETURN(frame.ego_position.y, ego->GetDouble("y"));
  FIXY_ASSIGN_OR_RETURN(frame.ego_yaw, ego->GetDouble("yaw"));
  const json::Value* observations = value.Find("observations");
  if (observations == nullptr || !observations->is_array()) {
    return Status::InvalidArgument("frame missing observations array");
  }
  for (const json::Value& obs_value : observations->AsArray()) {
    FIXY_ASSIGN_OR_RETURN(
        Observation obs,
        ObservationFromJson(obs_value, frame.index, frame.timestamp));
    frame.observations.push_back(std::move(obs));
  }
  return frame;
}

Result<std::string> ReadFile(const std::string& path) {
  std::string contents;
  FIXY_RETURN_IF_ERROR(ReadFileInto(path, &contents));
  return contents;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << contents;
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace

json::Value SceneToJson(const Scene& scene) {
  json::Array frames;
  frames.reserve(scene.frames().size());
  for (const Frame& frame : scene.frames()) {
    frames.push_back(FrameToJson(frame));
  }
  json::Object obj;
  obj["format"] = kFormatMarker;
  obj["version"] = kFormatVersion;
  obj["name"] = scene.name();
  obj["frame_rate_hz"] = scene.frame_rate_hz();
  obj["frames"] = std::move(frames);
  return obj;
}

Result<Scene> SceneFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("scene document must be an object");
  }
  FIXY_ASSIGN_OR_RETURN(std::string format, value.GetString("format"));
  if (format != kFormatMarker) {
    return Status::InvalidArgument("not a fixy-scene document: " + format);
  }
  FIXY_ASSIGN_OR_RETURN(int64_t version, value.GetInt64("version"));
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported fixy-scene version %lld",
                  static_cast<long long>(version)));
  }
  FIXY_ASSIGN_OR_RETURN(std::string name, value.GetString("name"));
  FIXY_ASSIGN_OR_RETURN(double rate, value.GetDouble("frame_rate_hz"));
  Scene scene(std::move(name), rate);
  const json::Value* frames = value.Find("frames");
  if (frames == nullptr || !frames->is_array()) {
    return Status::InvalidArgument("scene missing frames array");
  }
  for (const json::Value& frame_value : frames->AsArray()) {
    FIXY_ASSIGN_OR_RETURN(Frame frame, FrameFromJson(frame_value));
    scene.AddFrame(std::move(frame));
  }
  FIXY_RETURN_IF_ERROR(scene.Validate());
  return scene;
}

std::string SceneToString(const Scene& scene, bool pretty) {
  return json::Write(SceneToJson(scene), pretty);
}

Result<Scene> SceneFromString(std::string_view text) {
  FIXY_ASSIGN_OR_RETURN(json::Value value, json::Parse(text));
  return SceneFromJson(value);
}

Status SaveScene(const Scene& scene, const std::string& path) {
  return WriteFile(path, SceneToString(scene, /*pretty=*/false));
}

Result<Scene> LoadScene(const std::string& path) {
  std::string buffer;
  return LoadScene(path, &buffer);
}

Result<Scene> LoadScene(const std::string& path, std::string* buffer) {
  FIXY_RETURN_IF_ERROR(ReadFileInto(path, buffer));
  obs::Count("io.bytes_read", buffer->size());
  const obs::ScopedStageTimer parse_timer("io.parse");
  return SceneFromString(*buffer);
}

Status ReadFileInto(const std::string& path, std::string* out) {
  // One stat-sized read instead of streambuf extraction: resize to the
  // file's length and read it in a single call, reusing the caller's
  // buffer capacity across files.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("cannot determine size of: " + path);
  out->resize(static_cast<size_t>(size));
  if (size > 0) {
    in.seekg(0);
    in.read(out->data(), size);
    if (!in || in.gcount() != size) {
      return Status::IoError("read failed: " + path);
    }
  }
  return Status::Ok();
}

Status SaveDataset(const Dataset& dataset, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create directory: " + directory + ": " +
                           ec.message());
  }
  json::Array scene_files;
  for (const Scene& scene : dataset.scenes) {
    if (scene.name().empty()) {
      return Status::InvalidArgument("scene with empty name cannot be saved");
    }
    const std::string filename = scene.name() + ".fixy.json";
    FIXY_RETURN_IF_ERROR(SaveScene(scene, directory + "/" + filename));
    scene_files.push_back(filename);
  }
  json::Object manifest;
  manifest["format"] = kManifestMarker;
  manifest["version"] = kFormatVersion;
  manifest["name"] = dataset.name;
  manifest["scenes"] = std::move(scene_files);
  return WriteFile(directory + "/manifest.json",
                   json::Write(manifest, /*pretty=*/true));
}

Result<Dataset> LoadDataset(const std::string& directory) {
  FIXY_ASSIGN_OR_RETURN(DatasetLoadReport report,
                        LoadDataset(directory, DatasetLoadOptions{}));
  return std::move(report.dataset);
}

Result<DatasetLoadReport> LoadDataset(const std::string& directory,
                                      const DatasetLoadOptions& options) {
  const obs::ScopedStageTimer load_timer("io.load");
  // The manifest is the one file without which nothing can be loaded, so
  // it is strict even in tolerant mode.
  FIXY_ASSIGN_OR_RETURN(std::string text,
                        ReadFile(directory + "/manifest.json"));
  obs::Count("io.bytes_read", text.size());
  FIXY_ASSIGN_OR_RETURN(json::Value manifest, json::Parse(text));
  FIXY_ASSIGN_OR_RETURN(std::string format, manifest.GetString("format"));
  if (format != kManifestMarker) {
    return Status::InvalidArgument("not a fixy-dataset manifest");
  }
  DatasetLoadReport report;
  FIXY_ASSIGN_OR_RETURN(report.dataset.name, manifest.GetString("name"));
  const json::Value* scenes = manifest.Find("scenes");
  if (scenes == nullptr || !scenes->is_array()) {
    return Status::InvalidArgument("manifest missing scenes array");
  }
  std::string read_buffer;  // reused across scene files (one allocation)
  for (const json::Value& file : scenes->AsArray()) {
    if (!file.is_string()) {
      const Status bad =
          Status::InvalidArgument("manifest scene entry must be a string");
      if (!options.tolerant) return bad;
      obs::Count("io.files_skipped");
      report.skipped.push_back({"<non-string manifest entry>", bad});
      continue;
    }
    Result<Scene> scene =
        LoadScene(directory + "/" + file.AsString(), &read_buffer);
    if (!scene.ok()) {
      if (!options.tolerant) return scene.status();
      obs::Count("io.files_skipped");
      report.skipped.push_back({file.AsString(), scene.status()});
      continue;
    }
    obs::Count("io.files_read");
    report.dataset.scenes.push_back(std::move(scene).value());
  }
  return report;
}

}  // namespace fixy::io
