// Read-only memory-mapped file access with a graceful fallback to a
// single buffered read when mmap is unavailable (non-POSIX platform,
// zero-length file, or mmap failure). Either way the caller sees one
// contiguous immutable byte range for the file's lifetime.
#ifndef FIXY_IO_MAPPED_FILE_H_
#define FIXY_IO_MAPPED_FILE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace fixy::io {

/// An open read-only view of a whole file. Move-only; unmaps (or frees
/// the fallback buffer) on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens `path`. Tries mmap first; any mmap failure falls back to one
  /// sized buffered read (never a hard error by itself). With
  /// `force_buffered` the mmap attempt is skipped entirely — used by
  /// tests to exercise the fallback path deliberately.
  /// Errors: IoError when the file cannot be opened or read at all.
  static Result<MappedFile> Open(const std::string& path,
                                 bool force_buffered = false);

  /// The file's bytes. Valid for the lifetime of this object.
  std::string_view data() const {
    return mapping_ != nullptr
               ? std::string_view(static_cast<const char*>(mapping_), size_)
               : std::string_view(buffer_);
  }

  /// True when the bytes come from an actual mmap (false on the buffered
  /// fallback path).
  bool is_mapped() const { return mapping_ != nullptr; }

 private:
  void Release();

  void* mapping_ = nullptr;  // non-null iff mmap succeeded
  size_t size_ = 0;
  std::string buffer_;  // fallback storage
};

}  // namespace fixy::io

#endif  // FIXY_IO_MAPPED_FILE_H_
