// Read-only memory-mapped file access with a graceful fallback to a
// single buffered read when mmap is unavailable (non-POSIX platform,
// zero-length file, or mmap failure). Either way the caller sees one
// contiguous immutable byte range for the file's lifetime.
#ifndef FIXY_IO_MAPPED_FILE_H_
#define FIXY_IO_MAPPED_FILE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace fixy::io {

/// An open read-only view of a whole file. Move-only; unmaps (or frees
/// the fallback buffer) on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens `path`. Tries mmap first; any mmap failure falls back to one
  /// sized buffered read (never a hard error by itself). With
  /// `force_buffered` the mmap attempt is skipped entirely — used by
  /// tests to exercise the fallback path deliberately.
  ///
  /// The file's size is re-checked after the mapping is established: if
  /// another process truncated the file between the initial stat and the
  /// mmap, the mapping would extend past EOF and the first touch of a
  /// missing page would raise SIGBUS. That race is converted into an
  /// IoError here instead. (A truncation *after* Open returns is still
  /// the caller's lookout — that window is inherent to mmap.)
  /// Errors: IoError when the file cannot be opened or read at all, or
  /// when it shrank while being mapped.
  static Result<MappedFile> Open(const std::string& path,
                                 bool force_buffered = false);

  /// Test-only: when non-null, invoked with the path between the initial
  /// stat and the mmap — exactly the window where a concurrent truncation
  /// would otherwise turn into SIGBUS. Lets tests shrink the file at the
  /// racy moment.
  static void (*pre_map_hook_for_test)(const std::string& path);

  /// The file's bytes. Valid for the lifetime of this object.
  std::string_view data() const {
    return mapping_ != nullptr
               ? std::string_view(static_cast<const char*>(mapping_), size_)
               : std::string_view(buffer_);
  }

  /// True when the bytes come from an actual mmap (false on the buffered
  /// fallback path).
  bool is_mapped() const { return mapping_ != nullptr; }

 private:
  void Release();

  void* mapping_ = nullptr;  // non-null iff mmap succeeded
  size_t size_ = 0;
  std::string buffer_;  // fallback storage
};

}  // namespace fixy::io

#endif  // FIXY_IO_MAPPED_FILE_H_
