#include "obs/metrics_json.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace fixy::obs {

namespace {

constexpr const char* kFormatMarker = "fixy-metrics";
constexpr int kFormatVersion = 1;

Result<const json::Object*> RequireObjectMember(const json::Value& value,
                                                const char* key) {
  const json::Value* member = value.Find(key);
  if (member == nullptr || !member->is_object()) {
    return Status::InvalidArgument(
        StrFormat("metrics document missing '%s' object", key));
  }
  return &member->AsObject();
}

}  // namespace

json::Value MetricsToJson(const PipelineMetrics& metrics) {
  json::Object counters;
  for (const auto& [name, value] : metrics.counters) {
    counters[name] = value;
  }
  json::Object timers;
  for (const auto& [name, value] : metrics.timers_ms) {
    timers[name] = value;
  }
  json::Object gauges;
  for (const auto& [name, value] : metrics.gauges) {
    gauges[name] = value;
  }
  json::Object doc;
  doc["format"] = kFormatMarker;
  doc["version"] = kFormatVersion;
  doc["counters"] = std::move(counters);
  doc["timers_ms"] = std::move(timers);
  doc["gauges"] = std::move(gauges);
  return doc;
}

Result<PipelineMetrics> MetricsFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("metrics document must be an object");
  }
  FIXY_ASSIGN_OR_RETURN(std::string format, value.GetString("format"));
  if (format != kFormatMarker) {
    return Status::InvalidArgument("not a fixy-metrics document: " + format);
  }
  FIXY_ASSIGN_OR_RETURN(int64_t version, value.GetInt64("version"));
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported fixy-metrics version %lld",
                  static_cast<long long>(version)));
  }
  PipelineMetrics metrics;
  FIXY_ASSIGN_OR_RETURN(const json::Object* counters,
                        RequireObjectMember(value, "counters"));
  for (const auto& [name, entry] : *counters) {
    if (!entry.is_number() || entry.AsDouble() < 0.0) {
      return Status::InvalidArgument("counter '" + name +
                                     "' must be a non-negative number");
    }
    metrics.counters[name] = static_cast<uint64_t>(entry.AsInt64());
  }
  FIXY_ASSIGN_OR_RETURN(const json::Object* timers,
                        RequireObjectMember(value, "timers_ms"));
  for (const auto& [name, entry] : *timers) {
    if (!entry.is_number()) {
      return Status::InvalidArgument("timer '" + name + "' must be a number");
    }
    metrics.timers_ms[name] = entry.AsDouble();
  }
  FIXY_ASSIGN_OR_RETURN(const json::Object* gauges,
                        RequireObjectMember(value, "gauges"));
  for (const auto& [name, entry] : *gauges) {
    if (!entry.is_number()) {
      return Status::InvalidArgument("gauge '" + name + "' must be a number");
    }
    metrics.gauges[name] = entry.AsDouble();
  }
  return metrics;
}

Status SaveMetrics(const PipelineMetrics& metrics, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << json::Write(MetricsToJson(metrics), /*pretty=*/true);
  out << "\n";
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<PipelineMetrics> LoadMetrics(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  FIXY_ASSIGN_OR_RETURN(json::Value doc, json::Parse(buffer.str()));
  return MetricsFromJson(doc);
}

Status ValidateMetrics(const PipelineMetrics& metrics) {
  // Counters are unsigned and cannot be negative or non-finite; timers
  // come from a monotonic clock, so a negative or non-finite value means
  // an instrumentation bug.
  for (const auto& [name, value] : metrics.timers_ms) {
    if (!std::isfinite(value)) {
      return Status::Internal("timer '" + name + "' is not finite");
    }
    if (value < 0.0) {
      return Status::Internal("timer '" + name + "' is negative");
    }
  }
  for (const auto& [name, value] : metrics.gauges) {
    if (!std::isfinite(value)) {
      return Status::Internal("gauge '" + name + "' is not finite");
    }
  }
  return Status::Ok();
}

std::string FormatMetricsTable(const PipelineMetrics& metrics) {
  size_t width = 0;
  for (const auto& [name, value] : metrics.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : metrics.timers_ms) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : metrics.gauges) {
    width = std::max(width, name.size());
  }
  const int name_width = static_cast<int>(width);
  std::string table;
  if (!metrics.counters.empty()) {
    table += "counters:\n";
    for (const auto& [name, value] : metrics.counters) {
      table += StrFormat("  %-*s %12llu\n", name_width, name.c_str(),
                         static_cast<unsigned long long>(value));
    }
  }
  if (!metrics.timers_ms.empty()) {
    table += "timers (ms):\n";
    for (const auto& [name, value] : metrics.timers_ms) {
      table += StrFormat("  %-*s %12.3f\n", name_width, name.c_str(), value);
    }
  }
  if (!metrics.gauges.empty()) {
    table += "gauges:\n";
    for (const auto& [name, value] : metrics.gauges) {
      table += StrFormat("  %-*s %12.3f\n", name_width, name.c_str(), value);
    }
  }
  if (table.empty()) table = "(no metrics recorded)\n";
  return table;
}

}  // namespace fixy::obs
