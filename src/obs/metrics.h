// Pipeline observability: monotonic stage timers, named counters/gauges,
// and a per-scene trace-span API.
//
// The design is pull-free and ambient: instrumentation sites call the
// free helpers (obs::Count, obs::AddTimeNs, ...) which report into the
// collector installed on the *current thread* by a MetricsScope. With no
// scope installed every helper is a thread-local load and a branch, so
// un-instrumented runs pay nothing measurable. The batch ranking path
// installs one collector per scene on the worker that ranks it and merges
// the per-scene snapshots back in dataset order, which makes every
// counter value identical across thread counts (counters are exact event
// counts; only timer *values* vary run to run).
//
// Conventions:
//   counters  — exact, monotonically accumulated event counts
//               ("io.files_read", "stats.kde_evals",
//               "rank.missing-tracks.proposals").
//               Deterministic for a given input at any thread count.
//   timers    — accumulated wall time per stage, steady_clock (monotonic,
//               never negative), exported in milliseconds ("io.load",
//               "rank.track_build", "batch.total").
//   gauges    — point-in-time values merged with max() so aggregation
//               order cannot change the result ("batch.threads",
//               "batch.scene_ms_max").
//   spans     — a TraceSpan named S adds counter "span.S.calls" and timer
//               "span.S" (the per-scene unit of the batch path).
#ifndef FIXY_OBS_METRICS_H_
#define FIXY_OBS_METRICS_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace fixy::obs {

/// A snapshot of everything a pipeline run recorded. Attached to
/// BatchReport, dumped by `fixy_cli rank --metrics-json`, and emitted by
/// bench_throughput; the JSON schema lives in obs/metrics_json.h.
struct PipelineMetrics {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> timers_ms;
  std::map<std::string, double, std::less<>> gauges;

  bool empty() const {
    return counters.empty() && timers_ms.empty() && gauges.empty();
  }

  /// Counters and timers accumulate; gauges merge with max(), so merging
  /// per-scene snapshots in any order yields the same result.
  void MergeFrom(const PipelineMetrics& other) {
    for (const auto& [name, value] : other.counters) counters[name] += value;
    for (const auto& [name, value] : other.timers_ms) {
      timers_ms[name] += value;
    }
    for (const auto& [name, value] : other.gauges) {
      auto [it, inserted] = gauges.emplace(name, value);
      if (!inserted) it->second = std::max(it->second, value);
    }
  }
};

/// Thread-safe sink for metric events. The batch path gives each scene
/// its own collector (touched by exactly one worker, so the mutex is
/// uncontended); the CLI keeps one for the whole invocation.
class MetricsCollector {
 public:
  void Count(std::string_view name, uint64_t delta = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    CounterSlot(name) += delta;
  }

  void AddTimeNs(std::string_view name, uint64_t ns) {
    std::lock_guard<std::mutex> lock(mutex_);
    TimerSlot(name) += static_cast<double>(ns) * 1e-6;
  }

  /// Sets a gauge; repeated sets keep the maximum (merge semantics).
  void SetGauge(std::string_view name, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.gauges.find(name);
    if (it == metrics_.gauges.end()) {
      metrics_.gauges.emplace(std::string(name), value);
    } else {
      it->second = std::max(it->second, value);
    }
  }

  void Merge(const PipelineMetrics& other) {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.MergeFrom(other);
  }

  PipelineMetrics Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = PipelineMetrics();
  }

 private:
  uint64_t& CounterSlot(std::string_view name) {
    auto it = metrics_.counters.find(name);
    if (it == metrics_.counters.end()) {
      it = metrics_.counters.emplace(std::string(name), 0).first;
    }
    return it->second;
  }

  double& TimerSlot(std::string_view name) {
    auto it = metrics_.timers_ms.find(name);
    if (it == metrics_.timers_ms.end()) {
      it = metrics_.timers_ms.emplace(std::string(name), 0.0).first;
    }
    return it->second;
  }

  mutable std::mutex mutex_;
  PipelineMetrics metrics_;
};

namespace internal {
/// The collector the current thread reports into; null means disabled.
inline MetricsCollector*& CurrentSlot() {
  thread_local MetricsCollector* current = nullptr;
  return current;
}
}  // namespace internal

/// The active collector on this thread (null when metrics are off).
inline MetricsCollector* Current() { return internal::CurrentSlot(); }

/// RAII: installs `collector` as this thread's sink for its lifetime and
/// restores the previous one on destruction. Installing nullptr silences
/// metrics for the scope (the batch path uses this so a metrics-off batch
/// behaves identically at every thread count).
class MetricsScope {
 public:
  explicit MetricsScope(MetricsCollector* collector)
      : previous_(internal::CurrentSlot()) {
    internal::CurrentSlot() = collector;
  }
  ~MetricsScope() { internal::CurrentSlot() = previous_; }

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  MetricsCollector* previous_;
};

/// Fire-and-forget helpers: no-ops (one thread-local load + branch) when
/// no collector is installed on the calling thread.
inline void Count(std::string_view name, uint64_t delta = 1) {
  if (MetricsCollector* c = Current()) c->Count(name, delta);
}

inline void AddTimeNs(std::string_view name, uint64_t ns) {
  if (MetricsCollector* c = Current()) c->AddTimeNs(name, ns);
}

inline void SetGauge(std::string_view name, double value) {
  if (MetricsCollector* c = Current()) c->SetGauge(name, value);
}

/// Whether the calling thread currently records metrics — for sites that
/// want to skip snapshot assembly work entirely.
inline bool Enabled() { return Current() != nullptr; }

/// A monotonic stage timer (steady_clock, immune to wall-clock jumps).
class StageTimer {
 public:
  StageTimer() : start_(Clock::now()) {}

  uint64_t ElapsedNs() const {
    const auto delta = Clock::now() - start_;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
  }

  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) * 1e-6; }

  void Restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stage timer: adds the scope's wall time to timer `name` on the
/// collector active at destruction.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(std::string_view name) : name_(name) {}
  ~ScopedStageTimer() { AddTimeNs(name_, timer_.ElapsedNs()); }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  std::string name_;
  StageTimer timer_;
};

/// A trace span: one named unit of work (the batch path opens one per
/// scene). Records counter "span.<name>.calls" on entry and accumulates
/// the wall time into timer "span.<name>" on exit.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) : name_(name) {
    Count("span." + name_ + ".calls");
  }
  ~TraceSpan() { AddTimeNs("span." + name_, timer_.ElapsedNs()); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  double ElapsedMs() const { return timer_.ElapsedMs(); }

 private:
  std::string name_;
  StageTimer timer_;
};

}  // namespace fixy::obs

#endif  // FIXY_OBS_METRICS_H_
