// Stable JSON schema for PipelineMetrics snapshots, plus the human table
// `fixy_cli rank --verbose-metrics` prints.
//
// Schema (version 1; tools/check.sh diffs the key set against
// tools/metrics_schema.golden so drift is an explicit change):
//
//   {
//     "format": "fixy-metrics",
//     "version": 1,
//     "counters":  {"<name>": <integer>, ...},
//     "timers_ms": {"<name>": <milliseconds>, ...},
//     "gauges":    {"<name>": <value>, ...}
//   }
//
// Keys are emitted sorted (json::Object is a sorted map), so two dumps
// with identical content are byte-identical.
#ifndef FIXY_OBS_METRICS_JSON_H_
#define FIXY_OBS_METRICS_JSON_H_

#include <string>

#include "common/result.h"
#include "json/json.h"
#include "obs/metrics.h"

namespace fixy::obs {

/// Converts a snapshot to its JSON document.
json::Value MetricsToJson(const PipelineMetrics& metrics);

/// Parses a snapshot back from JSON. Errors: InvalidArgument for a wrong
/// format marker, unsupported version, or mistyped entries.
Result<PipelineMetrics> MetricsFromJson(const json::Value& value);

/// Writes a pretty-printed snapshot to `path`. Errors: IoError.
Status SaveMetrics(const PipelineMetrics& metrics, const std::string& path);

/// Reads a snapshot written by SaveMetrics.
Result<PipelineMetrics> LoadMetrics(const std::string& path);

/// Every metric value must be finite, and counters/timers non-negative
/// (counters are unsigned; timers come from a monotonic clock). Returns
/// the first violation — the metrics sweep in tools/check.sh fails on it.
Status ValidateMetrics(const PipelineMetrics& metrics);

/// Human-readable aligned table, one metric per line, sections in
/// counter/timer/gauge order.
std::string FormatMetricsTable(const PipelineMetrics& metrics);

}  // namespace fixy::obs

#endif  // FIXY_OBS_METRICS_JSON_H_
