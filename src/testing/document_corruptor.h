// Seeded fault injection for .fixy JSON documents.
//
// The corruptor takes a well-formed document and applies one or more
// mutations drawn from the failure modes we see in practice with
// perception data interchange: truncated uploads, schema drift (dropped
// or re-typed fields), NaN/overflow values from upstream pipelines, and
// duplicated observation ids from buggy exporters. Mutations are driven
// by an explicit seed, so every corrupted document a test produces is
// reproducible from its seed alone.
//
// The harness contract the rest of the system is tested against: any
// output of Corrupt(), fed through parse -> validate -> rank, must either
// be rejected with a Status or be scored — never crash, abort, or poison
// other scenes in a batch.
#ifndef FIXY_TESTING_DOCUMENT_CORRUPTOR_H_
#define FIXY_TESTING_DOCUMENT_CORRUPTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace fixy::testing {

/// One family of document mutation.
enum class CorruptionKind {
  /// Cuts the document off at a random byte (simulates a partial write).
  kTruncate,
  /// Overwrites a few bytes with random printable characters.
  kByteNoise,
  /// Replaces a randomly chosen JSON value with one of a different type.
  kTypeFlip,
  /// Removes a randomly chosen member from a JSON object.
  kFieldDrop,
  /// Replaces a number with a hostile value: a huge-but-finite double at
  /// the tree level, or an unparseable NaN/Infinity/1e999 literal at the
  /// text level.
  kNumberInjection,
  /// Copies one observation's "id" onto a sibling observation.
  kDuplicateId,
};

/// Human-readable name, e.g. "truncate".
const char* ToString(CorruptionKind kind);

/// One family of FXB container mutation. Unlike the JSON kinds these are
/// layout-aware: they use the exported fxb.h offsets, and the kinds that
/// alter a checked field (version, section length) recompute the affected
/// CRCs so the mutation reaches that field's own validation path instead
/// of being caught earlier by a checksum mismatch.
enum class BinaryCorruptionKind {
  /// Cuts the blob off inside the 64-byte header.
  kHeaderTruncate,
  /// Cuts the blob off at a random byte (partial write).
  kTruncate,
  /// XORs a few random bytes anywhere in the blob (bit rot).
  kByteFlip,
  /// Corrupts one byte inside a scene section, leaving header and index
  /// intact — exactly that scene's checksum fails; its neighbours decode.
  kChecksumFlip,
  /// Bumps the format version with the header CRC recomputed, so the
  /// reader's version check (not its checksum check) must reject it.
  kVersionBump,
  /// Rewrites one index entry's section length (CRCs recomputed), so the
  /// reader's bounds/section checks must catch the lie.
  kSectionLengthLie,
  /// XORs one byte inside the per-scene source map (header intact), so
  /// the source map CRC check must reject the container.
  kSourceMapFlip,
  /// Rewrites one source record's mtime and CRC with the map and header
  /// CRCs re-sealed — a per-scene fingerprint lying about its source.
  /// The container opens; incremental staleness logic must treat the
  /// lied-about scene as changed, never crash.
  kSourceRecordLie,
};

/// Human-readable name, e.g. "version-bump".
const char* ToString(BinaryCorruptionKind kind);

/// One family of shard-checkpoint mutation (the FXC1 layout in
/// shard/checkpoint.h). The harness contract mirrors the FXB one, with a
/// twist: a corrupt checkpoint fed through resume must never crash AND
/// never be trusted — the shard it claims to cover must be re-ranked.
enum class CheckpointCorruptionKind {
  /// Cuts the file off at a random byte (a checkpoint writer killed
  /// mid-write; the atomic rename makes this near-impossible in practice,
  /// which is exactly why the reader must still survive it).
  kTruncate,
  /// XORs one byte of the payload, so only the payload CRC check can
  /// catch it.
  kCrcFlip,
  /// Rewrites the run fingerprint and re-seals the header CRC — a
  /// checkpoint from a different dataset/model/options lying its way into
  /// this run. Every CRC verifies; only the fingerprint gate stands.
  kStaleFingerprint,
};

/// Human-readable name, e.g. "stale-fingerprint".
const char* ToString(CheckpointCorruptionKind kind);

/// The outcome of one Corrupt() call.
struct CorruptionResult {
  /// The mutated document text.
  std::string document;
  /// What was done, in order, e.g. {"field-drop(frames[2].ego)", ...}.
  /// Included in test failure messages so a crashing seed is diagnosable.
  std::vector<std::string> mutations;
};

/// Deterministic document mutator. All randomness comes from the seed
/// passed at construction; the same seed and input document always yield
/// the same CorruptionResult.
class DocumentCorruptor {
 public:
  explicit DocumentCorruptor(uint64_t seed);

  /// Applies 1-3 randomly chosen mutations to `document` and returns the
  /// result. The input is expected to be valid JSON; structural mutations
  /// that find the current text unparseable (because an earlier text-level
  /// mutation broke it) degrade to byte noise.
  CorruptionResult Corrupt(const std::string& document);

  /// Applies exactly one mutation of the given kind. Used by targeted
  /// tests; Corrupt() composes these.
  std::string Apply(CorruptionKind kind, const std::string& document,
                    std::string* detail);

  /// Applies one randomly chosen binary mutation to an FXB container
  /// blob. One mutation (not 1-3) so tests can reason about exactly which
  /// scenes a given seed damages.
  CorruptionResult CorruptBinary(const std::string& blob);

  /// Applies exactly one binary mutation of the given kind. Blobs too
  /// short to carry the targeted structure degrade to kByteFlip.
  std::string ApplyBinary(BinaryCorruptionKind kind, const std::string& blob,
                          std::string* detail);

  /// Applies one randomly chosen mutation to a shard checkpoint blob.
  CorruptionResult CorruptCheckpoint(const std::string& blob);

  /// Applies exactly one checkpoint mutation of the given kind. Blobs too
  /// short to carry the targeted field degrade to a byte flip.
  std::string ApplyCheckpoint(CheckpointCorruptionKind kind,
                              const std::string& blob, std::string* detail);

 private:
  Rng rng_;
};

}  // namespace fixy::testing

#endif  // FIXY_TESTING_DOCUMENT_CORRUPTOR_H_
