#include "testing/document_corruptor.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstring>
#include <iterator>

#include "common/crc32.h"
#include "common/string_util.h"
#include "io/fxb.h"
#include "json/json.h"
#include "shard/checkpoint.h"

namespace fixy::testing {

namespace {

using json::Array;
using json::Object;
using json::Type;
using json::Value;

// Collects pointers to every value in the tree, root included, in a
// deterministic depth-first order (object members are sorted by key).
void CollectValues(Value* v, std::vector<Value*>* out) {
  out->push_back(v);
  if (v->is_array()) {
    for (Value& element : v->AsArray()) CollectValues(&element, out);
  } else if (v->is_object()) {
    for (auto& [key, member] : v->AsObject()) CollectValues(&member, out);
  }
}

void CollectObjects(Value* v, std::vector<Value*>* out) {
  if (v->is_object() && !v->AsObject().empty()) out->push_back(v);
  if (v->is_array()) {
    for (Value& element : v->AsArray()) CollectObjects(&element, out);
  } else if (v->is_object()) {
    for (auto& [key, member] : v->AsObject()) CollectObjects(&member, out);
  }
}

void CollectNumbers(Value* v, std::vector<Value*>* out) {
  if (v->is_number()) out->push_back(v);
  if (v->is_array()) {
    for (Value& element : v->AsArray()) CollectNumbers(&element, out);
  } else if (v->is_object()) {
    for (auto& [key, member] : v->AsObject()) CollectNumbers(&member, out);
  }
}

// Collects every array whose elements are objects carrying an "id" member
// (the observation arrays of a .fixy scene).
void CollectIdArrays(Value* v, std::vector<Array*>* out) {
  if (v->is_array()) {
    Array& arr = v->AsArray();
    size_t with_id = 0;
    for (Value& element : arr) {
      if (element.is_object() && element.Find("id") != nullptr) ++with_id;
    }
    if (with_id >= 2) out->push_back(&arr);
    for (Value& element : arr) CollectIdArrays(&element, out);
  } else if (v->is_object()) {
    for (auto& [key, member] : v->AsObject()) CollectIdArrays(&member, out);
  }
}

// A replacement value guaranteed to have a different type than `v`.
Value FlippedValue(const Value& v, Rng* rng) {
  static const char* kStrings[] = {"corrupt", "", "NaN", "-3"};
  switch (v.type()) {
    case Type::kNumber:
      return Value(kStrings[rng->UniformInt(4)]);
    case Type::kString:
      return rng->Bernoulli(0.5) ? Value(static_cast<double>(
                                       rng->UniformInt(1000)) -
                                   500.0)
                                 : Value(nullptr);
    case Type::kArray:
      return rng->Bernoulli(0.5) ? Value(nullptr) : Value(-1.0);
    case Type::kObject:
      return rng->Bernoulli(0.5) ? Value(Array{}) : Value(false);
    case Type::kBool:
      return Value("true");
    case Type::kNull:
    default:
      return Value(1e18);
  }
}

std::string ApplyByteNoise(const std::string& document, Rng* rng,
                           std::string* detail) {
  std::string out = document;
  if (out.empty()) {
    *detail = "byte-noise(empty)";
    return out;
  }
  const size_t count = 1 + rng->UniformInt(8);
  for (size_t i = 0; i < count; ++i) {
    const size_t pos = static_cast<size_t>(rng->UniformInt(out.size()));
    // Printable ASCII, including structural characters like '}' and ','.
    out[pos] = static_cast<char>(0x20 + rng->UniformInt(95));
  }
  *detail = StrFormat("byte-noise(%zu bytes)", count);
  return out;
}

std::string ApplyTruncate(const std::string& document, Rng* rng,
                          std::string* detail) {
  if (document.empty()) {
    *detail = "truncate(empty)";
    return document;
  }
  const size_t keep = static_cast<size_t>(rng->UniformInt(document.size()));
  *detail = StrFormat("truncate(%zu of %zu bytes)", keep, document.size());
  return document.substr(0, keep);
}

// Replaces a numeric token in the raw text with a literal the JSON
// grammar cannot represent (NaN, Infinity) or that overflows double
// (1e999). Exercises the parser's number validation.
std::string ApplyTextNumberInjection(const std::string& document, Rng* rng,
                                     std::string* detail) {
  static const char* kLiterals[] = {"NaN", "Infinity", "-Infinity",
                                    "1e999", "-1e999"};
  std::vector<size_t> digit_starts;
  for (size_t i = 0; i < document.size(); ++i) {
    const bool is_digit = document[i] >= '0' && document[i] <= '9';
    const bool prev_numeric =
        i > 0 && (std::isdigit(static_cast<unsigned char>(document[i - 1])) ||
                  document[i - 1] == '-' || document[i - 1] == '.' ||
                  document[i - 1] == 'e' || document[i - 1] == 'E');
    if (is_digit && !prev_numeric) digit_starts.push_back(i);
  }
  if (digit_starts.empty()) {
    return ApplyByteNoise(document, rng, detail);
  }
  const size_t start =
      digit_starts[rng->UniformInt(digit_starts.size())];
  size_t end = start;
  while (end < document.size() &&
         (std::isdigit(static_cast<unsigned char>(document[end])) ||
          document[end] == '.' || document[end] == 'e' ||
          document[end] == 'E' || document[end] == '-' ||
          document[end] == '+')) {
    ++end;
  }
  const char* literal = kLiterals[rng->UniformInt(5)];
  *detail = StrFormat("text-number(%s at byte %zu)", literal, start);
  return document.substr(0, start) + literal + document.substr(end);
}

}  // namespace

const char* ToString(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kTruncate:
      return "truncate";
    case CorruptionKind::kByteNoise:
      return "byte-noise";
    case CorruptionKind::kTypeFlip:
      return "type-flip";
    case CorruptionKind::kFieldDrop:
      return "field-drop";
    case CorruptionKind::kNumberInjection:
      return "number-injection";
    case CorruptionKind::kDuplicateId:
      return "duplicate-id";
  }
  return "unknown";
}

DocumentCorruptor::DocumentCorruptor(uint64_t seed) : rng_(seed) {}

std::string DocumentCorruptor::Apply(CorruptionKind kind,
                                     const std::string& document,
                                     std::string* detail) {
  // Text-level mutations never need the document to parse.
  if (kind == CorruptionKind::kTruncate) {
    return ApplyTruncate(document, &rng_, detail);
  }
  if (kind == CorruptionKind::kByteNoise) {
    return ApplyByteNoise(document, &rng_, detail);
  }
  if (kind == CorruptionKind::kNumberInjection && rng_.Bernoulli(0.5)) {
    return ApplyTextNumberInjection(document, &rng_, detail);
  }

  // Structural mutations operate on the parsed tree. If an earlier
  // mutation already broke the syntax there is no tree to edit; degrade
  // to byte noise so the call still mutates something.
  Result<Value> parsed = json::Parse(document);
  if (!parsed.ok()) {
    return ApplyByteNoise(document, &rng_, detail);
  }
  Value root = std::move(*parsed);

  switch (kind) {
    case CorruptionKind::kTypeFlip: {
      std::vector<Value*> values;
      CollectValues(&root, &values);
      Value* target = values[rng_.UniformInt(values.size())];
      const Value replacement = FlippedValue(*target, &rng_);
      *detail = StrFormat("type-flip(#%zu)", values.size());
      *target = replacement;
      break;
    }
    case CorruptionKind::kFieldDrop: {
      std::vector<Value*> objects;
      CollectObjects(&root, &objects);
      if (objects.empty()) {
        return ApplyByteNoise(document, &rng_, detail);
      }
      Object& obj = objects[rng_.UniformInt(objects.size())]->AsObject();
      auto it = obj.begin();
      std::advance(it, static_cast<long>(rng_.UniformInt(obj.size())));
      *detail = StrFormat("field-drop(%s)", it->first.c_str());
      obj.erase(it);
      break;
    }
    case CorruptionKind::kNumberInjection: {
      std::vector<Value*> numbers;
      CollectNumbers(&root, &numbers);
      if (numbers.empty()) {
        return ApplyTextNumberInjection(document, &rng_, detail);
      }
      static const double kHostile[] = {1e300, -1e300, 1e15, -1e15, 0.0,
                                        -1.0};
      Value* target = numbers[rng_.UniformInt(numbers.size())];
      const double injected = kHostile[rng_.UniformInt(6)];
      *detail = StrFormat("tree-number(%g)", injected);
      *target = Value(injected);
      break;
    }
    case CorruptionKind::kDuplicateId: {
      std::vector<Array*> arrays;
      CollectIdArrays(&root, &arrays);
      if (arrays.empty()) {
        return ApplyByteNoise(document, &rng_, detail);
      }
      Array& arr = *arrays[rng_.UniformInt(arrays.size())];
      const size_t from = rng_.UniformInt(arr.size());
      size_t to = rng_.UniformInt(arr.size());
      if (to == from) to = (to + 1) % arr.size();
      const Value* id = arr[from].Find("id");
      if (id == nullptr || !arr[to].is_object()) {
        return ApplyByteNoise(document, &rng_, detail);
      }
      *detail = StrFormat("duplicate-id(%zu -> %zu)", from, to);
      arr[to].AsObject()["id"] = *id;
      break;
    }
    case CorruptionKind::kTruncate:
    case CorruptionKind::kByteNoise:
      break;  // handled above
  }
  return json::Write(root);
}

namespace {

template <typename T>
T LoadField(const std::string& blob, size_t offset) {
  T value;
  std::memcpy(&value, blob.data() + offset, sizeof(T));
  return value;
}

template <typename T>
void StoreField(std::string* blob, size_t offset, T value) {
  std::memcpy(blob->data() + offset, &value, sizeof(T));
}

// Recomputes the header CRC over bytes [0, kFxbHeaderCrcOffset). Mutations
// that change a *checked* header field (version, index CRC) call this so
// the reader's targeted validation — not the checksum — rejects the blob.
void RefreshHeaderCrc(std::string* blob) {
  StoreField<uint32_t>(blob, io::kFxbHeaderCrcOffset,
                       Crc32(blob->data(), io::kFxbHeaderCrcOffset));
}

std::string ApplyBinaryByteFlip(const std::string& blob, Rng* rng,
                                std::string* detail) {
  std::string out = blob;
  if (out.empty()) {
    *detail = "bin-byte-flip(empty)";
    return out;
  }
  const size_t count = 1 + rng->UniformInt(8);
  for (size_t i = 0; i < count; ++i) {
    const size_t pos = static_cast<size_t>(rng->UniformInt(out.size()));
    out[pos] = static_cast<char>(out[pos] ^
                                 static_cast<char>(1 + rng->UniformInt(255)));
  }
  *detail = StrFormat("bin-byte-flip(%zu bytes)", count);
  return out;
}

}  // namespace

const char* ToString(BinaryCorruptionKind kind) {
  switch (kind) {
    case BinaryCorruptionKind::kHeaderTruncate:
      return "header-truncate";
    case BinaryCorruptionKind::kTruncate:
      return "bin-truncate";
    case BinaryCorruptionKind::kByteFlip:
      return "bin-byte-flip";
    case BinaryCorruptionKind::kChecksumFlip:
      return "checksum-flip";
    case BinaryCorruptionKind::kVersionBump:
      return "version-bump";
    case BinaryCorruptionKind::kSectionLengthLie:
      return "section-length-lie";
    case BinaryCorruptionKind::kSourceMapFlip:
      return "source-map-flip";
    case BinaryCorruptionKind::kSourceRecordLie:
      return "source-record-lie";
  }
  return "unknown";
}

namespace {

// Locates the source map region [index end, blob end). Returns false when
// the header lies badly enough that there is no in-bounds map to target.
bool SourceMapRegion(const std::string& blob, size_t* begin, size_t* size) {
  if (blob.size() < io::kFxbHeaderSize) return false;
  const uint32_t scene_count =
      LoadField<uint32_t>(blob, io::kFxbSceneCountOffset);
  const uint64_t index_offset =
      LoadField<uint64_t>(blob, io::kFxbIndexOffsetOffset);
  const uint64_t index_size =
      static_cast<uint64_t>(scene_count) * io::kFxbIndexEntrySize;
  if (index_offset > blob.size() || index_size > blob.size() - index_offset) {
    return false;
  }
  *begin = static_cast<size_t>(index_offset + index_size);
  *size = blob.size() - *begin;
  return *size > 0;
}

}  // namespace

std::string DocumentCorruptor::ApplyBinary(BinaryCorruptionKind kind,
                                           const std::string& blob,
                                           std::string* detail) {
  // The structure-aware kinds need at least a whole header to aim at.
  const bool has_header = blob.size() >= io::kFxbHeaderSize;

  switch (kind) {
    case BinaryCorruptionKind::kHeaderTruncate: {
      const size_t limit = std::min(blob.size(), io::kFxbHeaderSize);
      const size_t keep =
          limit == 0 ? 0 : static_cast<size_t>(rng_.UniformInt(limit));
      *detail = StrFormat("header-truncate(%zu of %zu bytes)", keep,
                          blob.size());
      return blob.substr(0, keep);
    }
    case BinaryCorruptionKind::kTruncate: {
      if (blob.empty()) {
        *detail = "bin-truncate(empty)";
        return blob;
      }
      const size_t keep = static_cast<size_t>(rng_.UniformInt(blob.size()));
      *detail =
          StrFormat("bin-truncate(%zu of %zu bytes)", keep, blob.size());
      return blob.substr(0, keep);
    }
    case BinaryCorruptionKind::kByteFlip:
      return ApplyBinaryByteFlip(blob, &rng_, detail);
    case BinaryCorruptionKind::kChecksumFlip: {
      if (!has_header) return ApplyBinaryByteFlip(blob, &rng_, detail);
      // Damage one byte strictly inside the scene-sections region so the
      // header and index still verify: exactly one scene's section CRC
      // then fails, and the reader must quarantine it in isolation.
      const uint32_t name_bytes =
          LoadField<uint32_t>(blob, io::kFxbNameBytesOffset);
      const uint64_t index_offset =
          LoadField<uint64_t>(blob, io::kFxbIndexOffsetOffset);
      const uint64_t sections_begin = io::kFxbHeaderSize + name_bytes;
      if (index_offset <= sections_begin || index_offset > blob.size()) {
        return ApplyBinaryByteFlip(blob, &rng_, detail);
      }
      std::string out = blob;
      const size_t span = static_cast<size_t>(index_offset - sections_begin);
      const size_t pos =
          sections_begin + static_cast<size_t>(rng_.UniformInt(span));
      out[pos] = static_cast<char>(
          out[pos] ^ static_cast<char>(1 + rng_.UniformInt(255)));
      *detail = StrFormat("checksum-flip(section byte %zu)", pos);
      return out;
    }
    case BinaryCorruptionKind::kVersionBump: {
      if (!has_header) return ApplyBinaryByteFlip(blob, &rng_, detail);
      std::string out = blob;
      const uint32_t bumped =
          io::kFxbVersion + 1 + static_cast<uint32_t>(rng_.UniformInt(100));
      StoreField<uint32_t>(&out, io::kFxbVersionOffset, bumped);
      RefreshHeaderCrc(&out);
      *detail = StrFormat("version-bump(%u)", bumped);
      return out;
    }
    case BinaryCorruptionKind::kSectionLengthLie: {
      if (!has_header) return ApplyBinaryByteFlip(blob, &rng_, detail);
      const uint32_t scene_count =
          LoadField<uint32_t>(blob, io::kFxbSceneCountOffset);
      const uint64_t index_offset =
          LoadField<uint64_t>(blob, io::kFxbIndexOffsetOffset);
      const uint64_t index_size =
          static_cast<uint64_t>(scene_count) * io::kFxbIndexEntrySize;
      if (scene_count == 0 || index_offset > blob.size() ||
          index_size > blob.size() - index_offset) {
        return ApplyBinaryByteFlip(blob, &rng_, detail);
      }
      std::string out = blob;
      const size_t entry = static_cast<size_t>(rng_.UniformInt(scene_count));
      const size_t entry_base =
          static_cast<size_t>(index_offset) + entry * io::kFxbIndexEntrySize;
      const size_t length_off = entry_base + sizeof(uint64_t);
      const uint64_t lied =
          LoadField<uint64_t>(out, length_off) + 1 +
          static_cast<uint64_t>(rng_.UniformInt(1u << 20));
      StoreField<uint64_t>(&out, length_off, lied);
      // Re-seal index and header so only the bounds/section checks can
      // catch the lie.
      StoreField<uint32_t>(
          &out, io::kFxbIndexCrcOffset,
          Crc32(out.data() + index_offset, static_cast<size_t>(index_size)));
      RefreshHeaderCrc(&out);
      *detail = StrFormat("section-length-lie(scene %zu -> %llu bytes)",
                          entry, static_cast<unsigned long long>(lied));
      return out;
    }
    case BinaryCorruptionKind::kSourceMapFlip: {
      size_t map_begin = 0;
      size_t map_size = 0;
      if (!SourceMapRegion(blob, &map_begin, &map_size)) {
        return ApplyBinaryByteFlip(blob, &rng_, detail);
      }
      std::string out = blob;
      const size_t pos =
          map_begin + static_cast<size_t>(rng_.UniformInt(map_size));
      out[pos] = static_cast<char>(
          out[pos] ^ static_cast<char>(1 + rng_.UniformInt(255)));
      *detail = StrFormat("source-map-flip(byte %zu)", pos);
      return out;
    }
    case BinaryCorruptionKind::kSourceRecordLie: {
      size_t map_begin = 0;
      size_t map_size = 0;
      // The smallest record (empty name) still carries its fixed tail.
      if (!SourceMapRegion(blob, &map_begin, &map_size) ||
          map_size < sizeof(uint32_t) + io::kFxbSourceRecordTailSize) {
        return ApplyBinaryByteFlip(blob, &rng_, detail);
      }
      std::string out = blob;
      // Walk to a random record and rewrite its mtime_ns and crc fields.
      const uint32_t source_count =
          LoadField<uint32_t>(out, io::kFxbSourceCountOffset);
      if (source_count == 0) return ApplyBinaryByteFlip(blob, &rng_, detail);
      const size_t target = static_cast<size_t>(rng_.UniformInt(source_count));
      size_t pos = map_begin;
      for (size_t i = 0; i < source_count; ++i) {
        if (pos + sizeof(uint32_t) > out.size()) {
          return ApplyBinaryByteFlip(blob, &rng_, detail);
        }
        const uint32_t name_len = LoadField<uint32_t>(out, pos);
        const size_t tail = pos + sizeof(uint32_t) + name_len;
        if (tail + io::kFxbSourceRecordTailSize > out.size()) {
          return ApplyBinaryByteFlip(blob, &rng_, detail);
        }
        if (i == target) {
          const size_t mtime_off = tail + sizeof(uint64_t);
          const size_t crc_off = mtime_off + sizeof(uint64_t);
          StoreField<uint64_t>(&out, mtime_off, rng_.NextUint64());
          StoreField<uint32_t>(&out, crc_off,
                               static_cast<uint32_t>(rng_.NextUint64()));
          break;
        }
        pos = tail + io::kFxbSourceRecordTailSize;
      }
      // Re-seal the map and header CRCs so the lie parses cleanly and
      // only the staleness comparison sees it.
      StoreField<uint32_t>(&out, io::kFxbSourceMapCrcOffset,
                           Crc32(out.data() + map_begin, map_size));
      RefreshHeaderCrc(&out);
      *detail = StrFormat("source-record-lie(record %zu)", target);
      return out;
    }
  }
  return ApplyBinaryByteFlip(blob, &rng_, detail);
}

const char* ToString(CheckpointCorruptionKind kind) {
  switch (kind) {
    case CheckpointCorruptionKind::kTruncate:
      return "ckpt-truncate";
    case CheckpointCorruptionKind::kCrcFlip:
      return "ckpt-crc-flip";
    case CheckpointCorruptionKind::kStaleFingerprint:
      return "stale-fingerprint";
  }
  return "unknown";
}

std::string DocumentCorruptor::ApplyCheckpoint(CheckpointCorruptionKind kind,
                                               const std::string& blob,
                                               std::string* detail) {
  switch (kind) {
    case CheckpointCorruptionKind::kTruncate: {
      if (blob.empty()) {
        *detail = "ckpt-truncate(empty)";
        return blob;
      }
      const size_t keep = static_cast<size_t>(rng_.UniformInt(blob.size()));
      *detail =
          StrFormat("ckpt-truncate(%zu of %zu bytes)", keep, blob.size());
      return blob.substr(0, keep);
    }
    case CheckpointCorruptionKind::kCrcFlip: {
      // Flip one payload byte, leaving the whole header intact: only the
      // payload CRC check stands between the lie and a trusted reuse.
      if (blob.size() <= shard::kCheckpointHeaderSize) {
        return ApplyBinaryByteFlip(blob, &rng_, detail);
      }
      std::string out = blob;
      const size_t span = out.size() - shard::kCheckpointHeaderSize;
      const size_t pos = shard::kCheckpointHeaderSize +
                         static_cast<size_t>(rng_.UniformInt(span));
      out[pos] = static_cast<char>(
          out[pos] ^ static_cast<char>(1 + rng_.UniformInt(255)));
      *detail = StrFormat("ckpt-crc-flip(payload byte %zu)", pos);
      return out;
    }
    case CheckpointCorruptionKind::kStaleFingerprint: {
      if (blob.size() < shard::kCheckpointHeaderSize) {
        return ApplyBinaryByteFlip(blob, &rng_, detail);
      }
      std::string out = blob;
      const uint64_t stale =
          LoadField<uint64_t>(out, shard::kCheckpointFingerprintOffset) ^
          (rng_.NextUint64() | 1);  // |1: never a zero xor-mask
      StoreField<uint64_t>(&out, shard::kCheckpointFingerprintOffset, stale);
      // Re-seal the header CRC so every checksum verifies and only the
      // coordinator's fingerprint gate can reject the checkpoint.
      StoreField<uint32_t>(
          &out, shard::kCheckpointHeaderCrcOffset,
          Crc32(out.data(), shard::kCheckpointHeaderCrcOffset));
      *detail = StrFormat("stale-fingerprint(0x%016llx)",
                          static_cast<unsigned long long>(stale));
      return out;
    }
  }
  return ApplyBinaryByteFlip(blob, &rng_, detail);
}

CorruptionResult DocumentCorruptor::CorruptCheckpoint(const std::string& blob) {
  static const CheckpointCorruptionKind kKinds[] = {
      CheckpointCorruptionKind::kTruncate,
      CheckpointCorruptionKind::kCrcFlip,
      CheckpointCorruptionKind::kStaleFingerprint,
  };
  const CheckpointCorruptionKind kind = kKinds[rng_.UniformInt(3)];
  CorruptionResult result;
  std::string detail;
  result.document = ApplyCheckpoint(kind, blob, &detail);
  result.mutations.push_back(detail.empty() ? ToString(kind) : detail);
  return result;
}

CorruptionResult DocumentCorruptor::CorruptBinary(const std::string& blob) {
  static const BinaryCorruptionKind kKinds[] = {
      BinaryCorruptionKind::kHeaderTruncate,
      BinaryCorruptionKind::kTruncate,
      BinaryCorruptionKind::kByteFlip,
      BinaryCorruptionKind::kChecksumFlip,
      BinaryCorruptionKind::kVersionBump,
      BinaryCorruptionKind::kSectionLengthLie,
      BinaryCorruptionKind::kSourceMapFlip,
      BinaryCorruptionKind::kSourceRecordLie,
  };
  const BinaryCorruptionKind kind = kKinds[rng_.UniformInt(8)];
  CorruptionResult result;
  std::string detail;
  result.document = ApplyBinary(kind, blob, &detail);
  result.mutations.push_back(detail.empty() ? ToString(kind) : detail);
  return result;
}

CorruptionResult DocumentCorruptor::Corrupt(const std::string& document) {
  static const CorruptionKind kKinds[] = {
      CorruptionKind::kTruncate,     CorruptionKind::kByteNoise,
      CorruptionKind::kTypeFlip,     CorruptionKind::kFieldDrop,
      CorruptionKind::kNumberInjection, CorruptionKind::kDuplicateId,
  };
  CorruptionResult result;
  result.document = document;
  const size_t count = 1 + rng_.UniformInt(3);
  for (size_t i = 0; i < count; ++i) {
    const CorruptionKind kind = kKinds[rng_.UniformInt(6)];
    std::string detail;
    result.document = Apply(kind, result.document, &detail);
    result.mutations.push_back(detail.empty() ? ToString(kind) : detail);
  }
  return result;
}

}  // namespace fixy::testing
