// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit seed or a
// Rng&; there is no global RNG. The generator is xoshiro256**, seeded via
// SplitMix64, which is fast, high quality, and identical across platforms
// (unlike std::mt19937 + std::normal_distribution, whose outputs are not
// specified bit-for-bit across standard library implementations).
#ifndef FIXY_COMMON_RANDOM_H_
#define FIXY_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixy {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

/// Deterministic, cross-platform random number generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0);

  /// Raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (deterministic; caches the pair).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Precondition: weights non-empty with non-negative entries summing > 0.
  size_t Categorical(const std::vector<double>& weights);

  /// Poisson-distributed count with the given mean (Knuth's method for
  /// small means, normal approximation above 30).
  int Poisson(double mean);

  /// Splits off an independently-seeded child generator. Deterministic:
  /// the child stream depends only on this generator's current state.
  Rng Split();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fixy

#endif  // FIXY_COMMON_RANDOM_H_
