#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace fixy {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  FIXY_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  FIXY_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FIXY_CHECK_MSG(w >= 0.0, "Categorical weight must be non-negative");
    total += w;
  }
  FIXY_CHECK_MSG(total > 0.0, "Categorical weights must sum to > 0");
  double x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

int Rng::Poisson(double mean) {
  FIXY_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 30.0) {
    // Normal approximation with continuity correction.
    const double x = Normal(mean, std::sqrt(mean));
    return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = Uniform();
  int count = 0;
  while (product > limit) {
    product *= Uniform();
    ++count;
  }
  return count;
}

Rng Rng::Split() {
  Rng child(0);
  // Seed the child from fresh draws so parent and child streams diverge.
  SplitMix64 sm(NextUint64());
  for (auto& s : child.state_) s = sm.Next();
  return child;
}

}  // namespace fixy
