// Arena: a bump-pointer allocator for per-scene scratch (DESIGN.md §11).
//
// Factor-graph compilation and scoring need short-lived arrays whose sizes
// change every scene (CSR degree counters, permutation buffers). Allocating
// them from the heap per scene was measurable churn; an arena hands out
// pointers from reusable blocks and releases everything at once with
// Reset(), which keeps the blocks for the next scene. The intended pattern
// is one thread_local Arena per hot call site, Reset() on entry.
#ifndef FIXY_COMMON_ARENA_H_
#define FIXY_COMMON_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace fixy {

class Arena {
 public:
  /// `initial_capacity` sizes the first block (allocated lazily).
  explicit Arena(size_t initial_capacity = size_t{1} << 16)
      : initial_capacity_(initial_capacity < kMinBlock ? kMinBlock
                                                       : initial_capacity) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// An uninitialized array of `n` T. T must be trivial — the arena never
  /// runs constructors or destructors. Returns nullptr when n == 0.
  /// Pointers stay valid until Reset() or destruction.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_default_constructible_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena only holds trivial types");
    if (n == 0) return nullptr;
    return static_cast<T*>(AllocateRaw(n * sizeof(T), alignof(T)));
  }

  /// AllocateArray with the bytes zeroed.
  template <typename T>
  T* AllocateZeroed(size_t n) {
    T* ptr = AllocateArray<T>(n);
    if (ptr != nullptr) std::memset(ptr, 0, n * sizeof(T));
    return ptr;
  }

  /// Invalidates every outstanding pointer and makes the arena's blocks
  /// reusable. Capacity is retained, so a steady-state caller stops
  /// touching the heap entirely.
  void Reset() {
    for (Block& block : blocks_) block.used = 0;
    current_ = 0;
  }

  /// Total block capacity in bytes (for tests and sizing diagnostics).
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& block : blocks_) total += block.capacity;
    return total;
  }

 private:
  static constexpr size_t kMinBlock = 256;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  void* AllocateRaw(size_t bytes, size_t align) {
    // Block bases come from new[], aligned to at least max_align_t; offsets
    // rounded to `align` therefore stay aligned for every trivial T.
    static_assert(alignof(std::max_align_t) >= 8);
    while (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      const size_t aligned = (block.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= block.capacity) {
        block.used = aligned + bytes;
        return block.data.get() + aligned;
      }
      ++current_;
    }
    // Grow geometrically so N small allocations cost O(log N) blocks; a
    // single oversized request gets a block of its own size.
    size_t capacity = blocks_.empty() ? initial_capacity_
                                      : blocks_.back().capacity * 2;
    if (capacity < bytes + align) capacity = bytes + align;
    Block block;
    block.data = std::make_unique<std::byte[]>(capacity);
    block.capacity = capacity;
    blocks_.push_back(std::move(block));
    current_ = blocks_.size() - 1;
    Block& fresh = blocks_.back();
    fresh.used = bytes;
    return fresh.data.get();
  }

  size_t initial_capacity_;
  std::vector<Block> blocks_;
  size_t current_ = 0;
};

}  // namespace fixy

#endif  // FIXY_COMMON_ARENA_H_
