// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used by the
// FXB binary scene container for its header, index, and per-scene
// sections. Table-driven, byte-at-a-time; deterministic across platforms.
#ifndef FIXY_COMMON_CRC32_H_
#define FIXY_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fixy {

/// CRC-32 of `size` bytes starting at `data`. Crc32(nullptr, 0) == 0.
uint32_t Crc32(const void* data, size_t size);

inline uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace fixy

#endif  // FIXY_COMMON_CRC32_H_
