// A minimal fixed-size work-queue thread pool (std::thread +
// condition_variable, no external deps). Built for the dataset-scale batch
// ranking path: scenes fan out across the pool and results merge back in
// deterministic order, so the pool itself needs no ordering guarantees —
// only completion and exception propagation.
#ifndef FIXY_COMMON_THREAD_POOL_H_
#define FIXY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fixy {

/// A fixed pool of worker threads consuming a FIFO task queue.
///
/// Tasks submitted after construction run on some worker; Submit returns a
/// future that becomes ready when the task finishes and rethrows any
/// exception the task raised. The destructor drains the queue — every task
/// submitted before destruction runs to completion — then joins the
/// workers, so destroying a busy pool is safe.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; values < 1 (including the default 0)
  /// fall back to std::thread::hardware_concurrency(), minimum 1.
  explicit ThreadPool(int num_threads = 0);

  /// Drains pending tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. The returned future reports completion
  /// and propagates any exception thrown by the task.
  std::future<void> Submit(std::function<void()> task);

  size_t thread_count() const { return workers_.size(); }

  /// The effective thread count for a requested value: `requested` if > 0,
  /// otherwise hardware concurrency (minimum 1).
  static int ResolveThreadCount(int requested);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fixy

#endif  // FIXY_COMMON_THREAD_POOL_H_
