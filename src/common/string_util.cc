#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace fixy {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string DoubleToString(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return std::string(buf);
}

}  // namespace fixy
