// Small string helpers used across the library.
#ifndef FIXY_COMMON_STRING_UTIL_H_
#define FIXY_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fixy {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on every occurrence of `sep` (keeps empty fields).
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Formats a double compactly ("3.5", "0.123") with up to `precision`
/// significant digits, dropping trailing zeros.
std::string DoubleToString(double value, int precision = 12);

}  // namespace fixy

#endif  // FIXY_COMMON_STRING_UTIL_H_
