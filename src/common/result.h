// Result<T>: value-or-Status, the library's StatusOr analogue.
#ifndef FIXY_COMMON_RESULT_H_
#define FIXY_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace fixy {

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<double> r = ComputeFeature(obs);
///   if (!r.ok()) return r.status();
///   double v = r.value();
/// or with the helper macro:
///   FIXY_ASSIGN_OR_RETURN(double v, ComputeFeature(obs));
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  Result(T value) : value_(std::move(value)) {}
  /// Implicit construction from a non-OK Status.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      FIXY_LOG_FATAL("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!value_.has_value()) {
      FIXY_LOG_FATAL("Result::value() called on error: %s",
                     status_.ToString().c_str());
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace fixy

#endif  // FIXY_COMMON_RESULT_H_
