// Process-wide setup shared by every fixy executable that writes to pipes
// or sockets whose peer can vanish: the shard worker (coordinator dies),
// the shard coordinator (worker dies mid-read), and fixyd (client
// disconnects). Without SIG_IGN a write to a half-closed descriptor
// raises SIGPIPE and kills the process; with it the write fails with
// EPIPE and surfaces as an IoError Status the caller can handle.
#ifndef FIXY_COMMON_PROCESS_H_
#define FIXY_COMMON_PROCESS_H_

#include <string_view>

#include "common/status.h"

namespace fixy {

/// Ignores SIGPIPE for the whole process (idempotent, thread-safe — the
/// handler is installed once). Call before any write whose peer may have
/// gone away; a no-op on platforms without SIGPIPE.
void IgnoreSigpipe();

/// Writes all of `bytes` to `fd`, retrying short writes and EINTR.
/// Errors: IoError naming errno — including EPIPE for a vanished peer,
/// which requires IgnoreSigpipe() to arrive as an error instead of a
/// process-killing signal. Unimplemented on non-POSIX platforms.
Status WriteAllFd(int fd, std::string_view bytes);

}  // namespace fixy

#endif  // FIXY_COMMON_PROCESS_H_
