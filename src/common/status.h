// Status: lightweight error propagation without exceptions, in the style of
// RocksDB/Arrow. Library functions that can fail return Status (or
// Result<T>, see result.h) rather than throwing.
#ifndef FIXY_COMMON_STATUS_H_
#define FIXY_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fixy {

/// Error categories used throughout the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kIoError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kUnavailable = 9,
};

/// Returns a human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A Status is either OK or carries an error code plus a message.
///
/// Usage:
///   Status s = DoSomething();
///   if (!s.ok()) return s;
/// or with the helper macro:
///   FIXY_RETURN_IF_ERROR(DoSomething());
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns e.g. "OK" or "InvalidArgument: negative volume".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace fixy

#endif  // FIXY_COMMON_STATUS_H_
