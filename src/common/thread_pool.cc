#include "common/thread_pool.h"

#include <algorithm>

namespace fixy {

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int count = ResolveThreadCount(num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain the queue even when shutting down: every submitted task's
      // future must become ready (the batch path waits on them).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A packaged_task captures the exception in the future; run outside the
    // lock so tasks may submit further work.
    task();
  }
}

}  // namespace fixy
