#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fixy {

namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

// Strips leading directories so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel SetMinLogLevel(LogLevel level) {
  LogLevel prev = g_min_level;
  g_min_level = level;
  return prev;
}

LogLevel GetMinLogLevel() { return g_min_level; }

namespace internal_logging {

void LogImpl(LogLevel level, const char* file, int line, const char* format,
             ...) {
  if (level < g_min_level && level != LogLevel::kFatal) return;
  char message[2048];
  va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message);
  if (level == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging

}  // namespace fixy
