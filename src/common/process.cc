#include "common/process.h"

#include <cerrno>
#include <cstring>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#endif

namespace fixy {

void IgnoreSigpipe() {
#if defined(__unix__) || defined(__APPLE__)
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
#endif
}

Status WriteAllFd(int fd, std::string_view bytes) {
#if defined(__unix__) || defined(__APPLE__)
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write to fd failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
#else
  (void)fd;
  (void)bytes;
  return Status::Unimplemented("WriteAllFd requires a POSIX platform");
#endif
}

}  // namespace fixy
