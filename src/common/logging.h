// Minimal printf-style logging with severities. FATAL aborts the process.
#ifndef FIXY_COMMON_LOGGING_H_
#define FIXY_COMMON_LOGGING_H_

#include <cstdarg>

namespace fixy {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

namespace internal_logging {

/// Writes one formatted log line to stderr; aborts if level is kFatal.
void LogImpl(LogLevel level, const char* file, int line, const char* format,
             ...) __attribute__((format(printf, 4, 5)));

}  // namespace internal_logging

/// Sets the minimum level that is emitted (default kInfo). Returns the
/// previous level. FATAL is always emitted.
LogLevel SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

}  // namespace fixy

#define FIXY_LOG_DEBUG(...)                                                  \
  ::fixy::internal_logging::LogImpl(::fixy::LogLevel::kDebug, __FILE__,      \
                                    __LINE__, __VA_ARGS__)
#define FIXY_LOG_INFO(...)                                                   \
  ::fixy::internal_logging::LogImpl(::fixy::LogLevel::kInfo, __FILE__,       \
                                    __LINE__, __VA_ARGS__)
#define FIXY_LOG_WARNING(...)                                                \
  ::fixy::internal_logging::LogImpl(::fixy::LogLevel::kWarning, __FILE__,    \
                                    __LINE__, __VA_ARGS__)
#define FIXY_LOG_ERROR(...)                                                  \
  ::fixy::internal_logging::LogImpl(::fixy::LogLevel::kError, __FILE__,      \
                                    __LINE__, __VA_ARGS__)
#define FIXY_LOG_FATAL(...)                                                  \
  ::fixy::internal_logging::LogImpl(::fixy::LogLevel::kFatal, __FILE__,      \
                                    __LINE__, __VA_ARGS__)

// Runtime invariant checks; active in all build modes.
#define FIXY_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      FIXY_LOG_FATAL("CHECK failed: %s", #cond);                             \
    }                                                                        \
  } while (0)

#define FIXY_CHECK_MSG(cond, ...)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      FIXY_LOG_FATAL(__VA_ARGS__);                                           \
    }                                                                        \
  } while (0)

#endif  // FIXY_COMMON_LOGGING_H_
