// A bounded, closable MPMC blocking queue — the back-pressure channel of
// the streaming ingestion pipeline (loader work items decode scenes and
// Push; rank workers Pop). Bounding the queue keeps at most `capacity`
// decoded scenes in flight, so ingestion memory stays O(capacity) instead
// of O(dataset) no matter how far decode runs ahead of ranking.
#ifndef FIXY_COMMON_BOUNDED_QUEUE_H_
#define FIXY_COMMON_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace fixy {

/// A fixed-capacity FIFO queue shared between producer and consumer
/// threads. Push blocks while the queue is full; Pop blocks while it is
/// empty. Close() wakes everyone: producers see Push fail, consumers
/// drain the remaining items and then see Pop return nullopt.
template <typename T>
class BoundedQueue {
 public:
  /// Capacity 0 is clamped to 1 (a zero-capacity queue could never move
  /// an item).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// and drops `item` — iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed and
  /// drained, in which case returns nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// What PopWithTimeout observed.
  enum class PopStatus {
    kItem,     ///< `item` was filled.
    kClosed,   ///< closed and drained — no item will ever arrive.
    kTimeout,  ///< still open but nothing arrived within the deadline.
  };

  /// Pop with a deadline: blocks at most `timeout_ms` for an item, filled
  /// into `*item` (an optional, so T need not be default-constructible).
  /// The tri-state result distinguishes a drained-and-closed queue
  /// (normal end of stream) from a live queue whose producers have gone
  /// silent — the caller can surface the latter as an error instead of
  /// hanging forever on a wedged producer thread.
  PopStatus PopWithTimeout(int timeout_ms, std::optional<T>* item) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool ready = not_empty_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms),
        [this] { return closed_ || !items_.empty(); });
    if (!ready) return PopStatus::kTimeout;
    if (items_.empty()) return PopStatus::kClosed;  // closed and drained
    item->emplace(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return PopStatus::kItem;
  }

  /// Marks the queue closed. Idempotent. Items already queued remain
  /// poppable; new pushes fail.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace fixy

#endif  // FIXY_COMMON_BOUNDED_QUEUE_H_
