// Error-propagation helper macros for Status / Result<T>.
#ifndef FIXY_COMMON_MACROS_H_
#define FIXY_COMMON_MACROS_H_

#include "common/result.h"
#include "common/status.h"

// Evaluates `expr` (a Status) and returns it from the enclosing function if
// it is not OK.
#define FIXY_RETURN_IF_ERROR(expr)                      \
  do {                                                  \
    ::fixy::Status fixy_status_ = (expr);               \
    if (!fixy_status_.ok()) return fixy_status_;        \
  } while (0)

#define FIXY_CONCAT_IMPL(a, b) a##b
#define FIXY_CONCAT(a, b) FIXY_CONCAT_IMPL(a, b)

// Evaluates `expr` (a Result<T>); on error returns its Status, otherwise
// binds the value to `lhs`, e.g.
//   FIXY_ASSIGN_OR_RETURN(double vol, ComputeVolume(box));
#define FIXY_ASSIGN_OR_RETURN(lhs, expr)                              \
  FIXY_ASSIGN_OR_RETURN_IMPL(FIXY_CONCAT(fixy_result_, __LINE__), lhs, expr)

#define FIXY_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#endif  // FIXY_COMMON_MACROS_H_
