#include "sim/labeler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fixy::sim {

namespace {

// First/last visible frame of an object; {-1, -1} when never visible.
std::pair<int, int> VisibleSpan(const GtObject& object) {
  int first = -1;
  int last = -1;
  for (int f = 0; f < static_cast<int>(object.states.size()); ++f) {
    if (object.states[static_cast<size_t>(f)].visible) {
      if (first < 0) first = f;
      last = f;
    }
  }
  return {first, last};
}

GtError MakeTrackError(const GtScene& gt, const GtObject& object,
                       GtErrorType type, int first, int last) {
  GtError error;
  error.type = type;
  error.scene_name = gt.name;
  error.object_key = object.gt_id;
  error.object_class = object.object_class;
  error.first_frame = first;
  error.last_frame = last;
  double min_dist = -1.0;
  for (int f = first; f <= last; ++f) {
    if (!object.states[static_cast<size_t>(f)].visible) continue;
    error.boxes[f] = object.BoxAt(f);
    const double d = (object.states[static_cast<size_t>(f)].position -
                      gt.ego_positions[static_cast<size_t>(f)])
                         .Norm();
    if (min_dist < 0.0 || d < min_dist) min_dist = d;
  }
  error.min_ego_distance = std::max(0.0, min_dist);
  return error;
}

geom::Box3d JitterBox(const geom::Box3d& box, const LabelerProfile& profile,
                      Rng& rng) {
  geom::Box3d noisy = box;
  noisy.center.x += rng.Normal(0.0, profile.center_jitter_m);
  noisy.center.y += rng.Normal(0.0, profile.center_jitter_m);
  noisy.length =
      std::max(0.1, noisy.length * (1.0 + rng.Normal(0.0, profile.size_jitter_frac)));
  noisy.width =
      std::max(0.1, noisy.width * (1.0 + rng.Normal(0.0, profile.size_jitter_frac)));
  noisy.height =
      std::max(0.1, noisy.height * (1.0 + rng.Normal(0.0, profile.size_jitter_frac)));
  noisy.yaw += rng.Normal(0.0, profile.yaw_jitter_rad);
  return noisy;
}

}  // namespace

LabelerOutput GenerateHumanLabels(const GtScene& gt,
                                  const LabelerProfile& profile, Rng& rng,
                                  ObservationId* next_id, GtLedger* ledger) {
  FIXY_CHECK(next_id != nullptr);
  FIXY_CHECK(ledger != nullptr);

  LabelerOutput output;
  output.observations.resize(static_cast<size_t>(gt.num_frames));

  // Decide which labelable objects are missed entirely.
  std::vector<size_t> labelable;
  for (size_t i = 0; i < gt.objects.size(); ++i) {
    if (gt.objects[i].VisibleFrameCount() >=
        profile.min_visible_frames_to_label) {
      labelable.push_back(i);
    }
  }
  std::vector<bool> missed(gt.objects.size(), false);
  if (profile.exact_missing_tracks.has_value()) {
    // Deterministic count: shuffle labelable objects and miss the first k.
    std::vector<size_t> shuffled = labelable;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.UniformInt(i)]);
    }
    const size_t k = std::min(
        shuffled.size(),
        static_cast<size_t>(std::max(0, *profile.exact_missing_tracks)));
    for (size_t i = 0; i < k; ++i) missed[shuffled[i]] = true;
  } else {
    for (size_t i : labelable) {
      const bool is_short =
          gt.objects[i].VisibleFrameCount() < profile.short_visibility_frames;
      const double p = is_short ? profile.short_visibility_miss_rate
                                : profile.missing_track_rate;
      missed[i] = rng.Bernoulli(p);
    }
  }

  for (size_t i = 0; i < gt.objects.size(); ++i) {
    const GtObject& object = gt.objects[i];
    const auto [first, last] = VisibleSpan(object);
    if (first < 0) continue;  // Never visible: nothing to label or miss.
    const bool labelable_object =
        object.VisibleFrameCount() >= profile.min_visible_frames_to_label;
    if (!labelable_object) continue;

    if (missed[i]) {
      ledger->errors.push_back(
          MakeTrackError(gt, object, GtErrorType::kMissingTrack, first, last));
      continue;
    }

    // Label each visible frame; interior frames may be skipped.
    for (int f = first; f <= last; ++f) {
      const GtState& state = object.states[static_cast<size_t>(f)];
      if (!state.visible) continue;
      const bool interior = f != first && f != last;
      if (interior && rng.Bernoulli(profile.missing_obs_rate)) {
        GtError error = MakeTrackError(
            gt, object, GtErrorType::kMissingObservation, f, f);
        ledger->errors.push_back(std::move(error));
        continue;
      }
      Observation obs;
      obs.id = (*next_id)++;
      obs.source = ObservationSource::kHuman;
      obs.object_class = object.object_class;
      obs.box = JitterBox(object.BoxAt(f), profile, rng);
      obs.frame_index = f;
      obs.timestamp = gt.TimestampOf(f);
      obs.confidence = 1.0;
      output.observations[static_cast<size_t>(f)].push_back(std::move(obs));
    }
  }
  return output;
}

}  // namespace fixy::sim
