// World generator: populates a street scene around a moving ego vehicle
// with kinematic objects drawn from the class priors.
//
// Geometry convention: the ego drives along +x at constant speed on a
// two-way road centered at y = 0. Traffic lanes sit at y = ±2 and ±5.5
// (direction follows lane sign), parked vehicles at y = ±8.5, and
// pedestrians walk the sidewalks at |y| in [9, 13].
#ifndef FIXY_SIM_WORLD_H_
#define FIXY_SIM_WORLD_H_

#include "common/random.h"
#include "sim/ground_truth.h"

namespace fixy::sim {

/// World generation parameters.
struct WorldParams {
  double duration_seconds = 15.0;
  double frame_rate_hz = 10.0;
  double ego_speed_mps = 8.0;

  /// Expected number of objects (Poisson distributed).
  double mean_object_count = 28.0;

  /// Class mix weights (normalized internally).
  double car_weight = 0.66;
  double truck_weight = 0.12;
  double pedestrian_weight = 0.14;
  double motorcycle_weight = 0.08;

  /// Objects spawn with x in [ego_start - behind, ego_end + ahead].
  double spawn_behind_meters = 40.0;
  double spawn_ahead_meters = 60.0;
};

/// Generates the ground-truth world (object states per frame). Visibility
/// flags are left for the sensor model (sensor.h) to fill in.
GtScene GenerateWorld(const WorldParams& params, const std::string& name,
                      Rng& rng);

}  // namespace fixy::sim

#endif  // FIXY_SIM_WORLD_H_
