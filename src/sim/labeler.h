// Human-label simulator: turns ground truth into vendor-style labels with
// injected errors (the paper's central premise: "vendors can often provide
// erroneous labels"). Every injected error is recorded in the ledger.
#ifndef FIXY_SIM_LABELER_H_
#define FIXY_SIM_LABELER_H_

#include <optional>
#include <vector>

#include "common/random.h"
#include "data/observation.h"
#include "sim/ground_truth.h"
#include "sim/ledger.h"

namespace fixy::sim {

/// Error and noise rates of a labeling vendor.
struct LabelerProfile {
  /// Probability an object is missed entirely (a missing track).
  double missing_track_rate = 0.10;

  /// Objects visible for fewer than `short_visibility_frames` frames are
  /// missed with this (higher) probability instead — brief occluded
  /// objects like the paper's Figure 4 motorcycle are the hardest to
  /// label.
  double short_visibility_miss_rate = 0.45;
  int short_visibility_frames = 10;

  /// Probability that an *interior* visible frame of a labeled track is
  /// skipped (a missing observation within a track, Section 8.3).
  double missing_obs_rate = 0.0;

  /// Label noise (honest imprecision, not errors).
  double center_jitter_m = 0.07;
  double size_jitter_frac = 0.03;
  double yaw_jitter_rad = 0.02;

  /// Objects visible for fewer frames than this are not expected to be
  /// labeled at all and produce no ledger entry when absent.
  int min_visible_frames_to_label = 3;

  /// When set, exactly this many labelable objects are missed (used by the
  /// Section 8.2 recall experiment, which needs a scene with exactly 24
  /// missing tracks). Overrides the probabilistic missing-track rates.
  std::optional<int> exact_missing_tracks;
};

/// Human labels for each frame of the scene.
struct LabelerOutput {
  /// observations[f] are the human labels of frame f.
  std::vector<std::vector<Observation>> observations;
};

/// Generates human labels for `gt` (visibility must already be computed).
/// Missing tracks / missing observations are appended to `ledger`;
/// observation ids are drawn from `next_id`.
LabelerOutput GenerateHumanLabels(const GtScene& gt,
                                  const LabelerProfile& profile, Rng& rng,
                                  ObservationId* next_id, GtLedger* ledger);

}  // namespace fixy::sim

#endif  // FIXY_SIM_LABELER_H_
