// Dataset profiles: parameter bundles that mirror the two datasets of the
// paper's evaluation — the public Lyft Level 5 perception dataset (noisy
// vendor labels, a model trained on that noisy data) and the internal TRI
// dataset (audited labels, a better-calibrated model). Section 8.2:
// "our internal model was trained on already audited data, which is of
// higher quality and results in more calibrated model predictions."
#ifndef FIXY_SIM_PROFILES_H_
#define FIXY_SIM_PROFILES_H_

#include <string>

#include "sim/detector.h"
#include "sim/labeler.h"
#include "sim/sensor.h"
#include "sim/world.h"

namespace fixy::sim {

/// Everything needed to generate a dataset in one style.
struct SimProfile {
  std::string name;
  WorldParams world;
  SensorParams sensor;
  LabelerProfile labeler;
  DetectorParams detector;
};

/// The noisy public-dataset profile: high missing-label rates, an
/// uncalibrated detector with frequent hallucinations.
///
/// Defined in src/scenario (fixy_scenario): the profile is compiled from
/// the "lyft-like" scenario preset, so spec-driven and hard-coded callers
/// generate byte-identical datasets.
SimProfile LyftLikeProfile();

/// The audited internal-dataset profile: low missing-label rates, a
/// calibrated detector with few hallucinations. Defined in src/scenario
/// (the "internal-like" preset), like LyftLikeProfile.
SimProfile InternalLikeProfile();

}  // namespace fixy::sim

#endif  // FIXY_SIM_PROFILES_H_
