// The ground-truth error ledger: every error the simulator injects is
// recorded here, replacing the paper's expert auditors — precision@k and
// recall are computed exactly against this ledger (src/eval).
#ifndef FIXY_SIM_LEDGER_H_
#define FIXY_SIM_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/types.h"
#include "geometry/box.h"

namespace fixy::sim {

/// The kinds of injected errors.
enum class GtErrorType {
  /// The human labels miss the object entirely (Section 8.2).
  kMissingTrack = 0,
  /// A single human box is missing inside an otherwise labeled track (8.3).
  kMissingObservation = 1,
  /// The detector hallucinated a track that corresponds to no object (8.4).
  kGhostTrack = 2,
  /// The detector assigned the wrong class to a real object (8.4).
  kClassificationError = 3,
  /// The detector's boxes on a real object are grossly mislocalized (8.4).
  kLocalizationError = 4,
};

const char* GtErrorTypeToString(GtErrorType type);

/// One injected error, with enough geometry to match ranked proposals
/// against it.
struct GtError {
  GtErrorType type = GtErrorType::kMissingTrack;
  std::string scene_name;
  /// Ground-truth object id, or a synthetic id for ghost tracks.
  uint64_t object_key = 0;
  ObjectClass object_class = ObjectClass::kCar;
  int first_frame = 0;
  int last_frame = 0;
  /// True (or, for ghosts, emitted) boxes over the error's frame span.
  std::map<int, geom::Box3d> boxes;
  /// Closest approach to the ego over the span (severity context).
  double min_ego_distance = 0.0;

  std::string ToString() const;
};

/// All errors injected into a dataset.
struct GtLedger {
  std::vector<GtError> errors;

  size_t CountByType(GtErrorType type) const;
  size_t CountByTypeInScene(GtErrorType type,
                            const std::string& scene_name) const;
  std::vector<const GtError*> ErrorsInScene(
      const std::string& scene_name) const;

  void Append(const GtLedger& other) {
    errors.insert(errors.end(), other.errors.begin(), other.errors.end());
  }
};

}  // namespace fixy::sim

#endif  // FIXY_SIM_LEDGER_H_
