// End-to-end dataset generation: world -> sensor visibility -> human
// labels + detector predictions -> merged Scene + ground-truth error
// ledger. The ledger is the exact-evaluation replacement for the paper's
// human auditors.
#ifndef FIXY_SIM_GENERATE_H_
#define FIXY_SIM_GENERATE_H_

#include <optional>
#include <string>
#include <vector>

#include "data/scene.h"
#include "sim/ground_truth.h"
#include "sim/ledger.h"
#include "sim/profiles.h"

namespace fixy::sim {

/// Per-scene overrides.
struct SceneGenOptions {
  /// Force exactly this many missing tracks (Section 8.2's recall scene
  /// has exactly 24).
  std::optional<int> exact_missing_tracks;
};

/// One generated scene with full ground truth.
struct GeneratedScene {
  Scene scene;
  GtScene ground_truth;
  GtLedger ledger;
};

/// Generates a single scene. Deterministic in (profile, name, seed).
GeneratedScene GenerateScene(const SimProfile& profile,
                             const std::string& name, uint64_t seed,
                             const SceneGenOptions& options = {});

/// Builds a Scene (human + model observations merged per frame) from an
/// already-simulated ground truth. Exposed so scenario benches can craft
/// custom worlds (e.g. the Figure 4 occluded motorcycle).
GeneratedScene BuildSceneFromGroundTruth(GtScene ground_truth,
                                         const SimProfile& profile,
                                         uint64_t seed,
                                         const SceneGenOptions& options = {});

/// A generated multi-scene dataset with its aggregated ledger.
struct GeneratedDataset {
  Dataset dataset;
  GtLedger ledger;
};

/// Generates `count` scenes named `<prefix>_<i>`.
GeneratedDataset GenerateDataset(const SimProfile& profile,
                                 const std::string& prefix, int count,
                                 uint64_t seed);

}  // namespace fixy::sim

#endif  // FIXY_SIM_GENERATE_H_
