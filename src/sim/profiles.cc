#include "sim/profiles.h"

namespace fixy::sim {

SimProfile LyftLikeProfile() {
  SimProfile profile;
  profile.name = "lyft_like";

  profile.world.duration_seconds = 15.0;
  profile.world.frame_rate_hz = 10.0;
  profile.world.mean_object_count = 28.0;

  // "The open-sourced Lyft perception dataset has a number of vehicles
  // that were not labeled" — vendors miss ~1 in 8 objects, and half of the
  // briefly-visible ones.
  profile.labeler.missing_track_rate = 0.22;
  profile.labeler.short_visibility_miss_rate = 0.55;
  profile.labeler.missing_obs_rate = 0.0008;
  profile.labeler.center_jitter_m = 0.09;

  // Model trained on noisy labels: uncalibrated confidences, frequent
  // hallucinations.
  profile.detector.calibrated = false;
  profile.detector.uncalibrated_conf_mean = 0.75;
  profile.detector.uncalibrated_conf_sd = 0.22;
  profile.detector.high_conf_ghost_rate = 0.20;
  profile.detector.ghost_tracks_per_scene = 14.0;
  profile.detector.track_class_confusion_rate = 0.08;
  profile.detector.localization_error_rate = 0.07;
  profile.detector.center_noise_m = 0.08;
  profile.detector.base_recall = 0.94;
  return profile;
}

SimProfile InternalLikeProfile() {
  SimProfile profile;
  profile.name = "internal";

  // The internal dataset samples at a different rate and sensor layout
  // (Section 8.1: "the class labels, sampling rate, and physical sensor
  // layout differ between the two datasets").
  profile.world.duration_seconds = 15.0;
  profile.world.frame_rate_hz = 5.0;
  profile.world.mean_object_count = 22.0;
  profile.sensor.max_range_meters = 85.0;

  // Audited labels: few missing tracks.
  profile.labeler.missing_track_rate = 0.04;
  profile.labeler.short_visibility_miss_rate = 0.30;
  profile.labeler.missing_obs_rate = 0.0005;
  profile.labeler.center_jitter_m = 0.05;

  // Model trained on audited data: calibrated, fewer hallucinations — but
  // the hallucinations it does produce are subtler (plausible geometry).
  profile.detector.calibrated = true;
  profile.detector.ghost_tracks_per_scene = 3.0;
  profile.detector.ghost_size_noise_frac = 0.20;
  profile.detector.track_class_confusion_rate = 0.015;
  profile.detector.localization_error_rate = 0.015;
  profile.detector.base_recall = 0.97;
  profile.detector.max_range = 85.0;
  return profile;
}

}  // namespace fixy::sim
