#include "sim/ground_truth.h"

#include "common/logging.h"

namespace fixy::sim {

geom::Box3d GtObject::BoxAt(int frame) const {
  FIXY_CHECK(frame >= 0 && frame < static_cast<int>(states.size()));
  const GtState& state = states[static_cast<size_t>(frame)];
  return geom::Box3d(
      geom::Vec3(state.position.x, state.position.y, height / 2.0), length,
      width, height, state.yaw);
}

int GtObject::VisibleFrameCount() const {
  int count = 0;
  for (const GtState& state : states) {
    if (state.visible) ++count;
  }
  return count;
}

}  // namespace fixy::sim
