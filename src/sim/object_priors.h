// Class-conditional object priors: sizes and speeds per class, matching the
// published geometry of the Lyft Level 5 classes. These priors are what the
// learned volume/velocity feature distributions ultimately recover, so
// fidelity here is what makes the substitution (simulator for real dataset)
// preserve the paper's behaviour.
#ifndef FIXY_SIM_OBJECT_PRIORS_H_
#define FIXY_SIM_OBJECT_PRIORS_H_

#include "common/random.h"
#include "data/types.h"

namespace fixy::sim {

/// Size and speed prior for one object class. Sizes are Gaussian around
/// the class mean; speeds are truncated Gaussians.
struct ClassPrior {
  double length_mean = 0.0, length_sd = 0.0;
  double width_mean = 0.0, width_sd = 0.0;
  double height_mean = 0.0, height_sd = 0.0;
  /// Typical moving speed (m/s).
  double speed_mean = 0.0, speed_sd = 0.0;
  /// Fraction of instances that are stationary (parked cars, standing
  /// pedestrians).
  double stationary_fraction = 0.0;
};

/// The default prior for `cls`.
const ClassPrior& PriorFor(ObjectClass cls);

/// Sampled rigid extents for an object of class `cls` (strictly positive).
struct SampledSize {
  double length, width, height;
};
SampledSize SampleSize(ObjectClass cls, Rng& rng);

/// Sampled speed: 0 with the class's stationary probability, otherwise a
/// truncated (non-negative) Gaussian around the class's moving speed.
double SampleSpeed(ObjectClass cls, Rng& rng);

}  // namespace fixy::sim

#endif  // FIXY_SIM_OBJECT_PRIORS_H_
