#include "sim/sensor.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fixy::sim {

namespace {

// Angular interval [lo, hi] subtended by an object from the sensor; the
// half-width approximates the footprint by a disc of its mean radius.
struct AngularInterval {
  double center;
  double half_width;
  double distance;
};

AngularInterval IntervalFor(const GtObject& object, const GtState& state,
                            const geom::Vec2& ego) {
  const geom::Vec2 offset = state.position - ego;
  const double distance = std::max(0.5, offset.Norm());
  const double radius = (object.length + object.width) / 4.0;
  AngularInterval interval;
  interval.center = std::atan2(offset.y, offset.x);
  interval.half_width = std::atan(radius / distance);
  interval.distance = distance;
  return interval;
}

// Fraction of interval `target` covered by `blocker` (both on the circle;
// handles wraparound by comparing in the target's frame).
double CoverageFraction(const AngularInterval& target,
                        const AngularInterval& blocker) {
  double delta = blocker.center - target.center;
  while (delta > M_PI) delta -= 2.0 * M_PI;
  while (delta < -M_PI) delta += 2.0 * M_PI;
  const double lo = std::max(-target.half_width, delta - blocker.half_width);
  const double hi = std::min(target.half_width, delta + blocker.half_width);
  if (hi <= lo || target.half_width <= 0.0) return 0.0;
  return (hi - lo) / (2.0 * target.half_width);
}

bool InDropout(double timestamp, const SensorParams& params) {
  for (const SensorDropoutWindow& window : params.dropout_windows) {
    if (timestamp >= window.start_seconds && timestamp < window.end_seconds) {
      return true;
    }
  }
  return false;
}

}  // namespace

void ComputeVisibility(GtScene* scene, const SensorParams& params) {
  for (int f = 0; f < scene->num_frames; ++f) {
    if (!params.dropout_windows.empty() &&
        InDropout(scene->TimestampOf(f), params)) {
      for (GtObject& object : scene->objects) {
        GtState& state = object.states[static_cast<size_t>(f)];
        state.visible = false;
        state.occlusion_fraction = 1.0;
      }
      continue;
    }
    const geom::Vec2 ego = scene->ego_positions[static_cast<size_t>(f)];
    // Precompute intervals for this frame.
    std::vector<AngularInterval> intervals;
    intervals.reserve(scene->objects.size());
    for (const GtObject& object : scene->objects) {
      intervals.push_back(
          IntervalFor(object, object.states[static_cast<size_t>(f)], ego));
    }
    for (size_t i = 0; i < scene->objects.size(); ++i) {
      GtState& state = scene->objects[i].states[static_cast<size_t>(f)];
      const AngularInterval& target = intervals[i];
      if (target.distance > params.max_range_meters) {
        state.visible = false;
        state.occlusion_fraction = 1.0;
        continue;
      }
      if (target.distance <= params.near_field_meters) {
        state.visible = true;
        state.occlusion_fraction = 0.0;
        continue;
      }
      // Sum coverage by strictly closer objects. Coverage fractions of
      // distinct blockers may overlap; summing (capped at 1) overstates
      // occlusion slightly, which errs toward harder visibility — the
      // conservative direction for label-error simulation.
      double covered = 0.0;
      for (size_t j = 0; j < scene->objects.size() && covered < 1.0; ++j) {
        if (j == i) continue;
        if (intervals[j].distance >= target.distance * 0.95) continue;
        covered += CoverageFraction(target, intervals[j]);
      }
      covered = std::min(1.0, covered);
      state.occlusion_fraction = covered;
      state.visible = covered < params.occlusion_visibility_threshold;
    }
  }
}

}  // namespace fixy::sim
