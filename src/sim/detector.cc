#include "sim/detector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/object_priors.h"

namespace fixy::sim {

namespace {

// Per-frame detection probability given distance and occlusion.
double RecallAt(const DetectorParams& params, double distance,
                double occlusion) {
  double recall = params.base_recall;
  if (distance > params.range_falloff_start) {
    const double span = params.max_range - params.range_falloff_start;
    const double frac =
        std::clamp((distance - params.range_falloff_start) / span, 0.0, 1.0);
    recall = params.base_recall +
             frac * (params.recall_at_max_range - params.base_recall);
  }
  recall *= std::pow(std::max(0.0, 1.0 - occlusion), params.occlusion_power);
  return std::clamp(recall, 0.0, 1.0);
}

// Track-level confidence offset, drawn once per object. For the
// uncalibrated model this *is* the confidence base; for the calibrated
// model it is a small bias on top of per-frame detection quality.
double SampleTrackConfidenceBase(const DetectorParams& params, bool erroneous,
                                 Rng& rng) {
  if (params.calibrated) {
    return rng.Normal(0.0, params.calibrated_conf_noise);
  }
  const double mean = erroneous ? params.uncalibrated_conf_mean *
                                      params.error_confidence_factor
                                : params.uncalibrated_conf_mean;
  return rng.Normal(mean, params.uncalibrated_conf_sd);
}

double SampleConfidence(const DetectorParams& params, double quality,
                        bool erroneous, double track_base, Rng& rng) {
  double conf;
  if (params.calibrated) {
    const double q =
        erroneous ? quality * params.error_confidence_factor : quality;
    conf = q + track_base + rng.Normal(0.0, params.per_frame_conf_noise);
  } else {
    conf = track_base + rng.Normal(0.0, params.per_frame_conf_noise);
  }
  return std::clamp(conf, 0.02, 0.999);
}

ObjectClass ConfuseClass(ObjectClass true_class, Rng& rng) {
  // Pick a plausible confusion target: classes of similar scale confuse
  // most often (car<->truck, pedestrian<->motorcycle).
  switch (true_class) {
    case ObjectClass::kCar:
      return rng.Bernoulli(0.7) ? ObjectClass::kTruck
                                : ObjectClass::kMotorcycle;
    case ObjectClass::kTruck:
      return ObjectClass::kCar;
    case ObjectClass::kPedestrian:
      return ObjectClass::kMotorcycle;
    case ObjectClass::kMotorcycle:
      return rng.Bernoulli(0.6) ? ObjectClass::kPedestrian
                                : ObjectClass::kCar;
  }
  return ObjectClass::kCar;
}

}  // namespace

DetectorOutput GenerateDetections(const GtScene& gt,
                                  const DetectorParams& params, Rng& rng,
                                  ObservationId* next_id, GtLedger* ledger) {
  FIXY_CHECK(next_id != nullptr);
  FIXY_CHECK(ledger != nullptr);

  DetectorOutput output;
  output.observations.resize(static_cast<size_t>(gt.num_frames));

  // --- Real objects through the detection channel. ---
  for (const GtObject& object : gt.objects) {
    const bool class_confused =
        rng.Bernoulli(params.track_class_confusion_rate);
    const bool mislocalized = rng.Bernoulli(params.localization_error_rate);
    const ObjectClass emitted_class =
        class_confused ? ConfuseClass(object.object_class, rng)
                       : object.object_class;
    const double track_conf_base = SampleTrackConfidenceBase(
        params, class_confused || mislocalized, rng);

    int first_detected = -1;
    int last_detected = -1;
    double min_dist = -1.0;
    std::map<int, geom::Box3d> detected_boxes;

    for (int f = 0; f < gt.num_frames; ++f) {
      const GtState& state = object.states[static_cast<size_t>(f)];
      if (!state.visible) continue;
      const double distance =
          (state.position - gt.ego_positions[static_cast<size_t>(f)]).Norm();
      const double recall =
          RecallAt(params, distance, state.occlusion_fraction);
      if (!rng.Bernoulli(recall)) continue;

      geom::Box3d box = object.BoxAt(f);
      const double center_noise =
          mislocalized ? params.localization_noise_m : params.center_noise_m;
      const double size_noise = mislocalized
                                    ? params.localization_size_noise_frac
                                    : params.size_noise_frac;
      box.center.x += rng.Normal(0.0, center_noise);
      box.center.y += rng.Normal(0.0, center_noise);
      box.length = std::max(0.1, box.length * (1.0 + rng.Normal(0.0, size_noise)));
      box.width = std::max(0.1, box.width * (1.0 + rng.Normal(0.0, size_noise)));
      box.height = std::max(0.1, box.height * (1.0 + rng.Normal(0.0, size_noise)));
      box.yaw += rng.Normal(0.0, params.yaw_noise_rad);

      Observation obs;
      obs.id = (*next_id)++;
      obs.source = ObservationSource::kModel;
      obs.object_class = emitted_class;
      obs.box = box;
      obs.frame_index = f;
      obs.timestamp = gt.TimestampOf(f);
      // Erroneous tracks tend to carry depressed confidence (the model is
      // partially aware something is off) — this is what gives
      // uncertainty sampling its non-trivial baseline precision — but the
      // coupling is loose, so plenty of errors stay confident.
      obs.confidence =
          SampleConfidence(params, recall, class_confused || mislocalized,
                           track_conf_base, rng);
      output.observations[static_cast<size_t>(f)].push_back(std::move(obs));

      if (first_detected < 0) first_detected = f;
      last_detected = f;
      detected_boxes[f] = object.BoxAt(f);
      if (min_dist < 0.0 || distance < min_dist) min_dist = distance;
    }

    if (first_detected < 0) continue;  // Never detected: no emitted errors.
    if (class_confused || mislocalized) {
      GtError error;
      error.type = class_confused ? GtErrorType::kClassificationError
                                  : GtErrorType::kLocalizationError;
      error.scene_name = gt.name;
      error.object_key = object.gt_id;
      error.object_class = emitted_class;
      error.first_frame = first_detected;
      error.last_frame = last_detected;
      error.boxes = std::move(detected_boxes);
      error.min_ego_distance = std::max(0.0, min_dist);
      ledger->errors.push_back(std::move(error));
    }
  }

  // --- Hallucinated ghost tracks. ---
  const int ghost_count = rng.Poisson(params.ghost_tracks_per_scene);
  for (int g = 0; g < ghost_count; ++g) {
    const int length = params.ghost_min_frames +
                       static_cast<int>(rng.UniformInt(static_cast<uint64_t>(
                           params.ghost_max_frames - params.ghost_min_frames +
                           1)));
    const int max_start = std::max(0, gt.num_frames - length);
    const int start = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(max_start + 1)));
    const int end = std::min(gt.num_frames - 1, start + length - 1);

    const std::vector<double> class_weights = {0.55, 0.15, 0.18, 0.12};
    const ObjectClass cls =
        static_cast<ObjectClass>(rng.Categorical(class_weights));
    SampledSize base_size = SampleSize(cls, rng);
    const double scale = std::exp(rng.Normal(0.0, params.ghost_scale_sigma));
    base_size.length *= scale;
    base_size.width *= scale;
    base_size.height *= scale;

    // Spawn near the ego path at the start frame.
    geom::Vec2 position =
        gt.ego_positions[static_cast<size_t>(start)] +
        geom::Vec2(rng.Uniform(-15.0, 35.0), rng.Uniform(-12.0, 12.0));
    double yaw = rng.Uniform(0.0, 2.0 * M_PI);

    GtError error;
    error.type = GtErrorType::kGhostTrack;
    error.scene_name = gt.name;
    error.object_key = 1000000 + static_cast<uint64_t>(g);
    error.object_class = cls;
    error.first_frame = start;
    error.last_frame = end;
    double min_dist = -1.0;

    // High confidence is a property of the hallucination, not of single
    // frames: some ghosts are confidently wrong throughout ("errors with
    // confidences as high as 95%"), which is what defeats both
    // confidence-ordered assertions and uncertainty sampling.
    const bool high_conf_ghost = rng.Bernoulli(params.high_conf_ghost_rate);
    const double ghost_conf_base =
        high_conf_ghost
            ? rng.Normal(0.97, 0.02)
            : rng.Normal(params.ghost_conf_mean, params.ghost_conf_sd);

    for (int f = start; f <= end; ++f) {
      // Erratic per-frame geometry: the inconsistency Fixy keys on.
      position += geom::Vec2(rng.Normal(0.0, params.ghost_jump_m),
                             rng.Normal(0.0, params.ghost_jump_m));
      yaw += rng.Normal(0.0, 0.3);
      geom::Box3d box(
          geom::Vec3(position.x, position.y, base_size.height / 2.0),
          std::max(0.1, base_size.length *
                            (1.0 + rng.Normal(0.0, params.ghost_size_noise_frac))),
          std::max(0.1, base_size.width *
                            (1.0 + rng.Normal(0.0, params.ghost_size_noise_frac))),
          std::max(0.1, base_size.height *
                            (1.0 + rng.Normal(0.0, params.ghost_size_noise_frac))),
          yaw);

      Observation obs;
      obs.id = (*next_id)++;
      obs.source = ObservationSource::kModel;
      obs.object_class = cls;
      obs.box = box;
      obs.frame_index = f;
      obs.timestamp = gt.TimestampOf(f);
      obs.confidence = std::clamp(
          ghost_conf_base + rng.Normal(0.0, params.per_frame_conf_noise),
          0.02, 0.999);
      output.observations[static_cast<size_t>(f)].push_back(std::move(obs));

      error.boxes[f] = box;
      const double d =
          (position - gt.ego_positions[static_cast<size_t>(f)]).Norm();
      if (min_dist < 0.0 || d < min_dist) min_dist = d;
    }
    error.min_ego_distance = std::max(0.0, min_dist);
    ledger->errors.push_back(std::move(error));
  }
  return output;
}

}  // namespace fixy::sim
