#include "sim/world.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "geometry/iou.h"
#include "sim/object_priors.h"

namespace fixy::sim {

namespace {

constexpr double kLaneOffsets[] = {2.0, 5.5, -2.0, -5.5};
constexpr double kParkedOffsets[] = {8.5, -8.5};

// Minimum bumper-to-bumper gap enforced between vehicles sharing a lane.
constexpr double kFollowingGap = 2.5;

ObjectClass SampleClass(const WorldParams& params, Rng& rng) {
  const std::vector<double> weights = {
      params.car_weight, params.truck_weight, params.pedestrian_weight,
      params.motorcycle_weight};
  return static_cast<ObjectClass>(rng.Categorical(weights));
}

// Mutable simulation state of one object.
struct SimObject {
  GtObject object;
  geom::Vec2 position;
  double heading = 0.0;
  double speed = 0.0;
  /// Index into kLaneOffsets for moving vehicles; -1 otherwise.
  int lane = -1;
};

geom::Box3d BoxOf(const SimObject& so) {
  return geom::Box3d(
      geom::Vec3(so.position.x, so.position.y, so.object.height / 2.0),
      so.object.length, so.object.width, so.object.height, so.heading);
}

// Samples an object's class, size, kinematic role, and a spawn pose that
// does not overlap already-placed objects (rejection sampling; gives up
// after a bounded number of tries and accepts the overlap — rare, and
// better than looping forever in a saturated world).
SimObject SpawnObject(uint64_t gt_id, const WorldParams& params,
                      double spawn_x_lo, double spawn_x_hi,
                      const std::vector<SimObject>& placed, Rng& rng) {
  SimObject so;
  so.object.gt_id = gt_id;
  so.object.object_class = SampleClass(params, rng);
  const SampledSize size = SampleSize(so.object.object_class, rng);
  so.object.length = size.length;
  so.object.width = size.width;
  so.object.height = size.height;
  so.speed = SampleSpeed(so.object.object_class, rng);

  for (int attempt = 0; attempt < 25; ++attempt) {
    if (so.object.object_class == ObjectClass::kPedestrian) {
      const double side = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      so.position = {rng.Uniform(spawn_x_lo, spawn_x_hi),
                     side * rng.Uniform(9.0, 13.0)};
      so.heading = rng.Uniform(0.0, 2.0 * M_PI);
      so.lane = -1;
    } else if (so.speed == 0.0) {
      const double offset =
          kParkedOffsets[rng.UniformInt(std::size(kParkedOffsets))];
      so.position = {rng.Uniform(spawn_x_lo, spawn_x_hi), offset};
      so.heading = offset > 0 ? 0.0 : M_PI;
      so.lane = -1;
    } else {
      so.lane = static_cast<int>(rng.UniformInt(std::size(kLaneOffsets)));
      const double lane_y = kLaneOffsets[so.lane];
      so.position = {rng.Uniform(spawn_x_lo, spawn_x_hi), lane_y};
      so.heading = lane_y > 0 ? 0.0 : M_PI;
    }
    bool collides = false;
    for (const SimObject& other : placed) {
      if (geom::BevIou(BoxOf(so), BoxOf(other)) > 0.02) {
        collides = true;
        break;
      }
    }
    if (!collides) break;
  }
  return so;
}

// Advances one object by dt, without regard to neighbors.
void AdvanceFreely(SimObject* so, double dt, Rng& rng) {
  if (so->object.object_class == ObjectClass::kPedestrian &&
      so->speed > 0.0) {
    so->heading += rng.Normal(0.0, 0.35);
    geom::Vec2 step = geom::Vec2(std::cos(so->heading),
                                 std::sin(so->heading)) *
                      (so->speed * dt);
    // Keep pedestrians off the roadway.
    if (std::abs((so->position + step).y) < 8.0) {
      step.y = -step.y;
      so->heading = -so->heading;
    }
    so->position += step;
  } else if (so->speed > 0.0) {
    so->speed = std::max(0.0, so->speed + rng.Normal(0.0, 0.05));
    so->heading += rng.Normal(0.0, 0.004);
    so->position += geom::Vec2(std::cos(so->heading),
                               std::sin(so->heading)) *
                    (so->speed * dt);
  }
}

// Car-following constraint: within each (lane, direction) group, a vehicle
// may not advance past the rear bumper of the vehicle ahead minus the
// following gap. Direction follows the lane sign, so ordering along the
// direction of travel is ordering in signed x.
void EnforceFollowing(std::vector<SimObject>* objects) {
  for (size_t lane = 0; lane < std::size(kLaneOffsets); ++lane) {
    // Collect the lane's vehicles, sorted front-to-back along travel.
    std::vector<SimObject*> members;
    for (SimObject& so : *objects) {
      if (so.lane == static_cast<int>(lane) && so.speed > 0.0) {
        members.push_back(&so);
      }
    }
    if (members.size() < 2) continue;
    const double direction = kLaneOffsets[lane] > 0 ? 1.0 : -1.0;
    std::sort(members.begin(), members.end(),
              [direction](const SimObject* a, const SimObject* b) {
                return direction * a->position.x >
                       direction * b->position.x;
              });
    for (size_t i = 1; i < members.size(); ++i) {
      SimObject* follower = members[i];
      const SimObject* leader = members[i - 1];
      const double min_separation = (leader->object.length +
                                     follower->object.length) /
                                        2.0 +
                                    kFollowingGap;
      const double gap = direction * (leader->position.x -
                                      follower->position.x);
      if (gap < min_separation) {
        follower->position.x =
            leader->position.x - direction * min_separation;
        // Match the leader's speed so the constraint does not re-trigger
        // every frame.
        follower->speed = std::min(follower->speed, leader->speed);
      }
    }
  }
}

}  // namespace

GtScene GenerateWorld(const WorldParams& params, const std::string& name,
                      Rng& rng) {
  FIXY_CHECK(params.duration_seconds > 0.0);
  FIXY_CHECK(params.frame_rate_hz > 0.0);

  GtScene scene;
  scene.name = name;
  scene.frame_rate_hz = params.frame_rate_hz;
  scene.num_frames = static_cast<int>(
      std::lround(params.duration_seconds * params.frame_rate_hz));
  FIXY_CHECK(scene.num_frames >= 1);

  const double dt = 1.0 / params.frame_rate_hz;
  scene.ego_positions.reserve(static_cast<size_t>(scene.num_frames));
  scene.ego_yaws.reserve(static_cast<size_t>(scene.num_frames));
  for (int f = 0; f < scene.num_frames; ++f) {
    scene.ego_positions.push_back(
        {params.ego_speed_mps * dt * static_cast<double>(f), 0.0});
    scene.ego_yaws.push_back(0.0);
  }

  const double spawn_x_lo = -params.spawn_behind_meters;
  const double spawn_x_hi =
      scene.ego_positions.back().x + params.spawn_ahead_meters;

  const int object_count = std::max(1, rng.Poisson(params.mean_object_count));
  std::vector<SimObject> objects;
  objects.reserve(static_cast<size_t>(object_count));
  for (int i = 0; i < object_count; ++i) {
    objects.push_back(SpawnObject(static_cast<uint64_t>(i), params,
                                  spawn_x_lo, spawn_x_hi, objects, rng));
  }
  EnforceFollowing(&objects);

  // Frame loop: record states, then advance everything in lock step.
  for (int f = 0; f < scene.num_frames; ++f) {
    for (SimObject& so : objects) {
      GtState state;
      state.position = so.position;
      state.yaw = so.heading;
      state.speed = so.speed;
      so.object.states.push_back(state);
    }
    for (SimObject& so : objects) {
      AdvanceFreely(&so, dt, rng);
    }
    EnforceFollowing(&objects);
  }

  scene.objects.reserve(objects.size());
  for (SimObject& so : objects) {
    scene.objects.push_back(std::move(so.object));
  }
  return scene;
}

}  // namespace fixy::sim
