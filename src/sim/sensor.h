// LIDAR-like sensor visibility model: range falloff plus angular occlusion
// by closer objects. Fills the per-frame `visible` / `occlusion_fraction`
// fields of a ground-truth scene; everything downstream (human labels and
// detector output) only sees visible objects, which is how short occluded
// tracks like the paper's Figure 4 motorcycle arise.
#ifndef FIXY_SIM_SENSOR_H_
#define FIXY_SIM_SENSOR_H_

#include <vector>

#include "sim/ground_truth.h"

namespace fixy::sim {

/// A timespan during which the sensor records nothing (bus resets,
/// inter-sensor sync loss). Frames whose timestamp t satisfies
/// start_seconds <= t < end_seconds see every object as invisible — the
/// scenario-spec mechanism behind the multi-sensor-disagreement preset.
struct SensorDropoutWindow {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

struct SensorParams {
  /// Objects beyond this range are not observable.
  double max_range_meters = 75.0;
  /// An object is considered occluded when closer objects cover at least
  /// this fraction of its angular extent.
  double occlusion_visibility_threshold = 0.6;
  /// Objects closer than this are never occluded (they tower over
  /// anything between them and the sensor).
  double near_field_meters = 6.0;
  /// Total sensor blackouts. Empty (the default) reproduces the legacy
  /// visibility model byte-for-byte.
  std::vector<SensorDropoutWindow> dropout_windows;
};

/// Computes visibility for every object state in `scene`.
void ComputeVisibility(GtScene* scene, const SensorParams& params = {});

}  // namespace fixy::sim

#endif  // FIXY_SIM_SENSOR_H_
