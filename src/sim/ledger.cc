#include "sim/ledger.h"

#include "common/string_util.h"

namespace fixy::sim {

const char* GtErrorTypeToString(GtErrorType type) {
  switch (type) {
    case GtErrorType::kMissingTrack:
      return "missing_track";
    case GtErrorType::kMissingObservation:
      return "missing_observation";
    case GtErrorType::kGhostTrack:
      return "ghost_track";
    case GtErrorType::kClassificationError:
      return "classification_error";
    case GtErrorType::kLocalizationError:
      return "localization_error";
  }
  return "unknown";
}

std::string GtError::ToString() const {
  return StrFormat("%s %s key=%llu class=%s frames=[%d..%d] min_dist=%.1f",
                   scene_name.c_str(), GtErrorTypeToString(type),
                   static_cast<unsigned long long>(object_key),
                   ObjectClassToString(object_class), first_frame, last_frame,
                   min_ego_distance);
}

size_t GtLedger::CountByType(GtErrorType type) const {
  size_t count = 0;
  for (const GtError& error : errors) {
    if (error.type == type) ++count;
  }
  return count;
}

size_t GtLedger::CountByTypeInScene(GtErrorType type,
                                    const std::string& scene_name) const {
  size_t count = 0;
  for (const GtError& error : errors) {
    if (error.type == type && error.scene_name == scene_name) ++count;
  }
  return count;
}

std::vector<const GtError*> GtLedger::ErrorsInScene(
    const std::string& scene_name) const {
  std::vector<const GtError*> result;
  for (const GtError& error : errors) {
    if (error.scene_name == scene_name) result.push_back(&error);
  }
  return result;
}

}  // namespace fixy::sim
