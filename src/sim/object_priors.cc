#include "sim/object_priors.h"

#include <algorithm>

namespace fixy::sim {

namespace {

// Means match the per-class box statistics published with the Lyft Level 5
// dataset (cars ~4.8x1.9x1.7 m, etc.).
constexpr ClassPrior kCarPrior = {
    .length_mean = 4.76, .length_sd = 0.45,
    .width_mean = 1.93, .width_sd = 0.12,
    .height_mean = 1.72, .height_sd = 0.14,
    .speed_mean = 8.0, .speed_sd = 3.0,
    .stationary_fraction = 0.35};

constexpr ClassPrior kTruckPrior = {
    .length_mean = 8.0, .length_sd = 1.8,
    .width_mean = 2.84, .width_sd = 0.30,
    .height_mean = 3.23, .height_sd = 0.45,
    .speed_mean = 6.5, .speed_sd = 2.5,
    .stationary_fraction = 0.30};

constexpr ClassPrior kPedestrianPrior = {
    .length_mean = 0.81, .length_sd = 0.10,
    .width_mean = 0.77, .width_sd = 0.10,
    .height_mean = 1.78, .height_sd = 0.12,
    .speed_mean = 1.4, .speed_sd = 0.4,
    .stationary_fraction = 0.20};

constexpr ClassPrior kMotorcyclePrior = {
    .length_mean = 2.35, .length_sd = 0.25,
    .width_mean = 0.96, .width_sd = 0.12,
    .height_mean = 1.59, .height_sd = 0.16,
    .speed_mean = 7.5, .speed_sd = 3.0,
    .stationary_fraction = 0.15};

// Keeps sampled extents physically plausible.
double SamplePositive(double mean, double sd, Rng& rng) {
  const double min_value = std::max(0.2 * mean, 0.05);
  return std::max(min_value, rng.Normal(mean, sd));
}

}  // namespace

const ClassPrior& PriorFor(ObjectClass cls) {
  switch (cls) {
    case ObjectClass::kCar:
      return kCarPrior;
    case ObjectClass::kTruck:
      return kTruckPrior;
    case ObjectClass::kPedestrian:
      return kPedestrianPrior;
    case ObjectClass::kMotorcycle:
      return kMotorcyclePrior;
  }
  return kCarPrior;
}

SampledSize SampleSize(ObjectClass cls, Rng& rng) {
  const ClassPrior& prior = PriorFor(cls);
  return SampledSize{
      SamplePositive(prior.length_mean, prior.length_sd, rng),
      SamplePositive(prior.width_mean, prior.width_sd, rng),
      SamplePositive(prior.height_mean, prior.height_sd, rng)};
}

double SampleSpeed(ObjectClass cls, Rng& rng) {
  const ClassPrior& prior = PriorFor(cls);
  if (rng.Bernoulli(prior.stationary_fraction)) return 0.0;
  return std::max(0.0, rng.Normal(prior.speed_mean, prior.speed_sd));
}

}  // namespace fixy::sim
