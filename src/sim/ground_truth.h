// Ground-truth world state: the simulator's replacement for the paper's
// physical world. Everything downstream (human labels, detector output,
// the error ledger) is derived from this, so evaluation can be exact where
// the paper needed human auditors.
#ifndef FIXY_SIM_GROUND_TRUTH_H_
#define FIXY_SIM_GROUND_TRUTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/types.h"
#include "geometry/box.h"
#include "geometry/vec.h"

namespace fixy::sim {

/// State of one ground-truth object at one frame.
struct GtState {
  geom::Vec2 position;
  double yaw = 0.0;
  double speed = 0.0;
  /// Filled by the sensor model: whether the object is observable from the
  /// ego vehicle at this frame, and how much of it is angularly occluded.
  bool visible = true;
  double occlusion_fraction = 0.0;
};

/// One ground-truth object over the whole scene.
struct GtObject {
  uint64_t gt_id = 0;
  ObjectClass object_class = ObjectClass::kCar;
  /// Rigid extents.
  double length = 0.0;
  double width = 0.0;
  double height = 0.0;
  /// One state per scene frame.
  std::vector<GtState> states;

  /// The object's true box at `frame`.
  geom::Box3d BoxAt(int frame) const;

  /// Number of frames where the object is visible to the sensor.
  int VisibleFrameCount() const;
};

/// Full ground truth for one scene.
struct GtScene {
  std::string name;
  double frame_rate_hz = 10.0;
  int num_frames = 0;
  /// Ego trajectory, one entry per frame.
  std::vector<geom::Vec2> ego_positions;
  std::vector<double> ego_yaws;
  std::vector<GtObject> objects;

  double TimestampOf(int frame) const {
    return static_cast<double>(frame) / frame_rate_hz;
  }
};

}  // namespace fixy::sim

#endif  // FIXY_SIM_GROUND_TRUTH_H_
