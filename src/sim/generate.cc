#include "sim/generate.h"

#include <functional>

#include "common/random.h"
#include "sim/sensor.h"

namespace fixy::sim {

namespace {

// Stable 64-bit hash of a string (FNV-1a), used to derive per-scene seeds
// from (seed, name) without ordering effects.
uint64_t HashName(const std::string& name) {
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : name) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

GeneratedScene BuildSceneFromGroundTruth(GtScene ground_truth,
                                         const SimProfile& profile,
                                         uint64_t seed,
                                         const SceneGenOptions& options) {
  GeneratedScene result;
  result.ground_truth = std::move(ground_truth);
  ComputeVisibility(&result.ground_truth, profile.sensor);

  Rng rng(seed);
  Rng labeler_rng = rng.Split();
  Rng detector_rng = rng.Split();

  LabelerProfile labeler = profile.labeler;
  labeler.exact_missing_tracks = options.exact_missing_tracks.has_value()
                                     ? options.exact_missing_tracks
                                     : labeler.exact_missing_tracks;

  ObservationId next_id = 1;
  const LabelerOutput human = GenerateHumanLabels(
      result.ground_truth, labeler, labeler_rng, &next_id, &result.ledger);
  const DetectorOutput model =
      GenerateDetections(result.ground_truth, profile.detector, detector_rng,
                         &next_id, &result.ledger);

  Scene scene(result.ground_truth.name, result.ground_truth.frame_rate_hz);
  for (int f = 0; f < result.ground_truth.num_frames; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = result.ground_truth.TimestampOf(f);
    frame.ego_position =
        result.ground_truth.ego_positions[static_cast<size_t>(f)];
    frame.ego_yaw = result.ground_truth.ego_yaws[static_cast<size_t>(f)];
    frame.observations = human.observations[static_cast<size_t>(f)];
    frame.observations.insert(frame.observations.end(),
                              model.observations[static_cast<size_t>(f)].begin(),
                              model.observations[static_cast<size_t>(f)].end());
    scene.AddFrame(std::move(frame));
  }
  result.scene = std::move(scene);
  return result;
}

GeneratedScene GenerateScene(const SimProfile& profile,
                             const std::string& name, uint64_t seed,
                             const SceneGenOptions& options) {
  const uint64_t scene_seed = seed ^ HashName(name);
  Rng rng(scene_seed);
  Rng world_rng = rng.Split();
  GtScene ground_truth = GenerateWorld(profile.world, name, world_rng);
  return BuildSceneFromGroundTruth(std::move(ground_truth), profile,
                                   rng.NextUint64(), options);
}

GeneratedDataset GenerateDataset(const SimProfile& profile,
                                 const std::string& prefix, int count,
                                 uint64_t seed) {
  GeneratedDataset result;
  result.dataset.name = prefix;
  for (int i = 0; i < count; ++i) {
    const std::string name = prefix + "_" + std::to_string(i);
    GeneratedScene generated = GenerateScene(profile, name, seed);
    result.dataset.scenes.push_back(std::move(generated.scene));
    result.ledger.Append(generated.ledger);
  }
  return result;
}

}  // namespace fixy::sim
