// Stochastic 3D detector model: the stand-in for the paper's
// PointPillars-style LIDAR model. Real objects are observed through a
// miss / localization-noise / classification-noise channel with distance-
// and occlusion-dependent recall; ghost tracks are hallucinated; a
// configurable confidence model distinguishes the paper's well-calibrated
// internal model (trained on audited data) from the noisier Lyft model.
#ifndef FIXY_SIM_DETECTOR_H_
#define FIXY_SIM_DETECTOR_H_

#include <vector>

#include "common/random.h"
#include "data/observation.h"
#include "sim/ground_truth.h"
#include "sim/ledger.h"

namespace fixy::sim {

struct DetectorParams {
  /// Recall for a near, unoccluded object.
  double base_recall = 0.97;
  /// Recall decays linearly from `range_falloff_start` to
  /// `recall_at_max_range` at the sensor's max range.
  double range_falloff_start = 30.0;
  double max_range = 75.0;
  double recall_at_max_range = 0.45;
  /// Recall is additionally scaled by (1 - occlusion)^occlusion_power.
  double occlusion_power = 1.5;

  /// Localization noise on true detections.
  double center_noise_m = 0.12;
  double size_noise_frac = 0.04;
  double yaw_noise_rad = 0.03;

  /// Probability a real object's detections all carry the wrong class
  /// (a consistent but wrong track — exactly the Section 8.4 error type
  /// that ad-hoc assertions miss).
  double track_class_confusion_rate = 0.02;

  /// Confidence multiplier applied to class-confused and mislocalized
  /// tracks: errors tend to be somewhat less confident (which is what
  /// gives uncertainty sampling its baseline precision), but the coupling
  /// is loose.
  double error_confidence_factor = 0.72;

  /// Probability a real object's detections are grossly mislocalized for
  /// the whole track (overlapping-but-inconsistent boxes, Figure 9).
  double localization_error_rate = 0.02;
  double localization_noise_m = 0.9;
  double localization_size_noise_frac = 0.18;

  /// Hallucinated tracks per scene (Poisson mean). Ghosts are 3+ frames
  /// long and gap-free by construction, so the appear/flicker baseline
  /// assertions do not fire on them.
  double ghost_tracks_per_scene = 6.0;
  int ghost_min_frames = 3;
  int ghost_max_frames = 9;
  /// Per-frame center jump of a ghost (meters) — large enough that ghost
  /// "motion" is erratic.
  double ghost_jump_m = 0.45;
  /// Per-frame size resampling noise of a ghost.
  double ghost_size_noise_frac = 0.35;
  /// Log-scale sigma of a ghost's overall size aberration: hallucinated
  /// boxes do not respect class geometry (a "car" 40% too large), which
  /// is what makes the population volume distribution catch them.
  double ghost_scale_sigma = 0.35;

  /// Confidence model. Calibrated (the internal model, trained on audited
  /// data): confidence tracks detection quality. Uncalibrated (the Lyft
  /// model, trained on noisy labels): confidence is weakly related to
  /// quality. Confidence is a *track-level* trait plus small per-frame
  /// noise — real detectors are consistently (over)confident about an
  /// object, not independently per frame.
  bool calibrated = true;
  double per_frame_conf_noise = 0.04;
  double calibrated_conf_noise = 0.06;
  double uncalibrated_conf_mean = 0.72;
  double uncalibrated_conf_sd = 0.18;
  /// Ghost confidences: mid-range, with a fraction at ~0.95 ("errors with
  /// confidences as high as 95%, which uncertainty sampling would miss").
  double ghost_conf_mean = 0.55;
  double ghost_conf_sd = 0.15;
  double high_conf_ghost_rate = 0.25;
};

struct DetectorOutput {
  /// observations[f] are the model predictions of frame f.
  std::vector<std::vector<Observation>> observations;
};

/// Runs the detector channel over `gt` (visibility must be computed).
/// Model errors (ghosts, class confusions, localization errors) are
/// appended to `ledger`; observation ids are drawn from `next_id`.
DetectorOutput GenerateDetections(const GtScene& gt,
                                  const DetectorParams& params, Rng& rng,
                                  ObservationId* next_id, GtLedger* ledger);

}  // namespace fixy::sim

#endif  // FIXY_SIM_DETECTOR_H_
