#include "scenario/ledger_io.h"

#include <cmath>
#include <fstream>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "io/scene_io.h"

namespace fixy::scenario {
namespace {

constexpr char kFormatName[] = "fixy-gt-ledger";
constexpr int kFormatVersion = 1;

Result<sim::GtErrorType> GtErrorTypeFromString(const std::string& name) {
  for (const sim::GtErrorType type :
       {sim::GtErrorType::kMissingTrack, sim::GtErrorType::kMissingObservation,
        sim::GtErrorType::kGhostTrack, sim::GtErrorType::kClassificationError,
        sim::GtErrorType::kLocalizationError}) {
    if (name == sim::GtErrorTypeToString(type)) return type;
  }
  return Status::InvalidArgument("unknown ledger error type: " + name);
}

json::Value BoxToJson(const geom::Box3d& box) {
  json::Object value;
  value["cx"] = box.center.x;
  value["cy"] = box.center.y;
  value["cz"] = box.center.z;
  value["length"] = box.length;
  value["width"] = box.width;
  value["height"] = box.height;
  value["yaw"] = box.yaw;
  return value;
}

Result<geom::Box3d> BoxFromJson(const json::Value& value) {
  geom::Box3d box;
  FIXY_ASSIGN_OR_RETURN(box.center.x, value.GetDouble("cx"));
  FIXY_ASSIGN_OR_RETURN(box.center.y, value.GetDouble("cy"));
  FIXY_ASSIGN_OR_RETURN(box.center.z, value.GetDouble("cz"));
  FIXY_ASSIGN_OR_RETURN(box.length, value.GetDouble("length"));
  FIXY_ASSIGN_OR_RETURN(box.width, value.GetDouble("width"));
  FIXY_ASSIGN_OR_RETURN(box.height, value.GetDouble("height"));
  FIXY_ASSIGN_OR_RETURN(box.yaw, value.GetDouble("yaw"));
  return box;
}

}  // namespace

json::Value LedgerToJson(const sim::GtLedger& ledger) {
  json::Array errors;
  for (const sim::GtError& error : ledger.errors) {
    json::Object value;
    value["type"] = sim::GtErrorTypeToString(error.type);
    value["scene"] = error.scene_name;
    value["object_key"] = error.object_key;
    value["class"] = ObjectClassToString(error.object_class);
    value["first_frame"] = error.first_frame;
    value["last_frame"] = error.last_frame;
    value["min_ego_distance"] = error.min_ego_distance;
    json::Array boxes;
    for (const auto& [frame, box] : error.boxes) {
      json::Object entry;
      entry["frame"] = frame;
      entry["box"] = BoxToJson(box);
      boxes.push_back(std::move(entry));
    }
    value["boxes"] = std::move(boxes);
    errors.push_back(std::move(value));
  }
  json::Object root;
  root["format"] = kFormatName;
  root["version"] = kFormatVersion;
  root["errors"] = std::move(errors);
  return root;
}

Result<sim::GtLedger> LedgerFromJson(const json::Value& value) {
  FIXY_ASSIGN_OR_RETURN(const std::string format, value.GetString("format"));
  if (format != kFormatName) {
    return Status::InvalidArgument("not a fixy ledger (format tag: " + format +
                                   ")");
  }
  FIXY_ASSIGN_OR_RETURN(const int64_t version, value.GetInt64("version"));
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported ledger version %lld (supported: %d)",
                  static_cast<long long>(version), kFormatVersion));
  }
  const json::Value* errors = value.Find("errors");
  if (errors == nullptr || !errors->is_array()) {
    return Status::InvalidArgument("ledger has no errors array");
  }
  sim::GtLedger ledger;
  for (const json::Value& entry : errors->AsArray()) {
    sim::GtError error;
    FIXY_ASSIGN_OR_RETURN(const std::string type, entry.GetString("type"));
    FIXY_ASSIGN_OR_RETURN(error.type, GtErrorTypeFromString(type));
    FIXY_ASSIGN_OR_RETURN(error.scene_name, entry.GetString("scene"));
    FIXY_ASSIGN_OR_RETURN(const int64_t key, entry.GetInt64("object_key"));
    error.object_key = static_cast<uint64_t>(key);
    FIXY_ASSIGN_OR_RETURN(const std::string cls, entry.GetString("class"));
    FIXY_ASSIGN_OR_RETURN(error.object_class, ObjectClassFromString(cls));
    FIXY_ASSIGN_OR_RETURN(const int64_t first, entry.GetInt64("first_frame"));
    FIXY_ASSIGN_OR_RETURN(const int64_t last, entry.GetInt64("last_frame"));
    error.first_frame = static_cast<int>(first);
    error.last_frame = static_cast<int>(last);
    FIXY_ASSIGN_OR_RETURN(error.min_ego_distance,
                          entry.GetDouble("min_ego_distance"));
    const json::Value* boxes = entry.Find("boxes");
    if (boxes == nullptr || !boxes->is_array()) {
      return Status::InvalidArgument("ledger error has no boxes array");
    }
    for (const json::Value& box_entry : boxes->AsArray()) {
      FIXY_ASSIGN_OR_RETURN(const int64_t frame, box_entry.GetInt64("frame"));
      const json::Value* box = box_entry.Find("box");
      if (box == nullptr) {
        return Status::InvalidArgument("ledger box entry has no box");
      }
      FIXY_ASSIGN_OR_RETURN(geom::Box3d decoded, BoxFromJson(*box));
      error.boxes[static_cast<int>(frame)] = decoded;
    }
    ledger.errors.push_back(std::move(error));
  }
  return ledger;
}

Status SaveLedger(const sim::GtLedger& ledger, const std::string& path) {
  const std::string text = json::Write(LedgerToJson(ledger), /*pretty=*/true);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << text << "\n";
  out.close();
  if (!out.good()) return Status::IoError("failed writing: " + path);
  return Status::Ok();
}

Result<sim::GtLedger> LoadLedger(const std::string& path) {
  std::string text;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(path, &text));
  FIXY_ASSIGN_OR_RETURN(const json::Value value, json::Parse(text));
  return LedgerFromJson(value);
}

std::string LedgerPath(const std::string& directory) {
  return directory + "/gt_ledger.json";
}

}  // namespace fixy::scenario
