// Turning a scenario spec into an on-disk dataset: generate (or reuse),
// save the scene JSON, build the FXB cache directly from memory, and
// record the ground-truth ledger plus a spec-fingerprint lock file that
// gates reuse. `fixy_cli sim` and the sweep harness share this path.
#ifndef FIXY_SCENARIO_MATERIALIZE_H_
#define FIXY_SCENARIO_MATERIALIZE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"
#include "scenario/spec.h"
#include "sim/generate.h"

namespace fixy::scenario {

struct MaterializeOptions {
  /// Scenes to generate; 0 uses the spec's scene count.
  int scene_count = 0;
  /// Seed override; unset uses the spec's seed.
  std::optional<uint64_t> seed;
  /// Build dataset.fxb directly from the in-memory dataset (no JSON
  /// re-parse) after saving the scene files.
  bool write_fxb = true;
  /// When true and the directory's lock file matches (same spec
  /// fingerprint, scene count, and seed) and the cache/ledger load, the
  /// dataset is reloaded instead of regenerated.
  bool reuse = false;
};

struct MaterializedDataset {
  sim::GeneratedDataset data;
  /// Scenes actually generated this call (0 on reuse).
  int scenes_generated = 0;
  bool reused = false;
};

/// Generates `spec`'s dataset in memory only (no IO): scenes named
/// `<spec.name>_<i>`. Deterministic in (spec, scene_count, seed).
Result<sim::GeneratedDataset> GenerateScenarioDataset(
    const ScenarioSpec& spec, int scene_count = 0,
    std::optional<uint64_t> seed = std::nullopt);

/// Materializes `spec` into `directory`: scene JSON + manifest,
/// gt_ledger.json, scenario.lock.json, and (by default) dataset.fxb.
/// With options.reuse, a directory whose lock matches is loaded back
/// (FXB fast path, strict JSON fallback) instead of regenerated.
Result<MaterializedDataset> MaterializeScenarioDataset(
    const ScenarioSpec& spec, const std::string& directory,
    const MaterializeOptions& options = {});

/// `<directory>/scenario.lock.json`.
std::string ScenarioLockPath(const std::string& directory);

}  // namespace fixy::scenario

#endif  // FIXY_SCENARIO_MATERIALIZE_H_
