#include "scenario/spec.h"

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "io/scene_io.h"
#include "obs/metrics.h"

namespace fixy::scenario {
namespace {

constexpr char kFormatName[] = "fixy-scenario";
constexpr int kFormatVersion = 1;
/// Largest integer a JSON double carries exactly — the ceiling for seeds
/// and counts stored through the number type.
constexpr double kMaxExactDouble = 9007199254740992.0;  // 2^53

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Strict field-by-field reader over one JSON object. Every accessor
/// records the key it consumed; Finish() then rejects any key the schema
/// never asked about, listing the valid fields for that path. The first
/// error sticks — later accessors become no-ops — so the caller can read
/// the whole section and check once.
class ObjectReader {
 public:
  ObjectReader(const json::Value& value, std::string path)
      : value_(&value), path_(std::move(path)) {
    if (!value_->is_object()) {
      Fail(path_ + ": expected an object");
    }
  }

  bool ok() const { return status_.ok(); }

  /// The raw member (marked consumed), or nullptr when absent or after an
  /// earlier error. For fields with non-scalar shapes (sub-objects,
  /// arrays) the caller validates the type itself.
  const json::Value* Member(const std::string& key) {
    if (!status_.ok()) return nullptr;
    consumed_.insert(key);
    return value_->Find(key);
  }

  void Double(const std::string& key, double* out, double min, double max) {
    const json::Value* member = Member(key);
    if (member == nullptr) return;
    if (!member->is_number()) {
      Fail(path_ + "." + key + ": expected a number");
      return;
    }
    const double value = member->AsDouble();
    if (!std::isfinite(value) || value < min || value > max) {
      Fail(StrFormat("%s.%s: value %g is out of range [%g, %g]",
                     path_.c_str(), key.c_str(), value, min, max));
      return;
    }
    *out = value;
  }

  void Int(const std::string& key, int* out, int64_t min, int64_t max) {
    int64_t value = 0;
    if (!ReadIntegral(key, &value, min, max)) return;
    *out = static_cast<int>(value);
  }

  void U64(const std::string& key, uint64_t* out) {
    int64_t value = 0;
    if (!ReadIntegral(key, &value, 0, static_cast<int64_t>(kMaxExactDouble))) {
      return;
    }
    *out = static_cast<uint64_t>(value);
  }

  void String(const std::string& key, std::string* out) {
    const json::Value* member = Member(key);
    if (member == nullptr) return;
    if (!member->is_string()) {
      Fail(path_ + "." + key + ": expected a string");
      return;
    }
    *out = member->AsString();
  }

  /// A string restricted to `valid` (sorted for the error message).
  void Enum(const std::string& key, std::string* out,
            const std::vector<std::string>& valid) {
    std::string value = *out;
    String(key, &value);
    if (!status_.ok()) return;
    for (const std::string& choice : valid) {
      if (value == choice) {
        *out = value;
        return;
      }
    }
    std::string choices;
    for (const std::string& choice : valid) {
      if (!choices.empty()) choices += ", ";
      choices += choice;
    }
    Fail(path_ + "." + key + ": unknown value \"" + value +
         "\" (valid values: " + choices + ")");
  }

  void Fail(const std::string& message) {
    if (status_.ok()) status_ = Status::InvalidArgument(message);
  }

  /// Unknown-key check: every key the schema did not consume is an error
  /// naming the path and listing the fields that exist there.
  Status Finish() {
    if (!status_.ok()) return status_;
    for (const auto& [key, unused] : value_->AsObject()) {
      if (consumed_.count(key) > 0) continue;
      std::string fields;
      for (const std::string& known : consumed_) {
        if (!fields.empty()) fields += ", ";
        fields += known;
      }
      return Status::InvalidArgument(path_ + ": unknown field \"" + key +
                                     "\" (valid fields: " + fields + ")");
    }
    return Status::Ok();
  }

  const std::string& path() const { return path_; }

 private:
  bool ReadIntegral(const std::string& key, int64_t* out, int64_t min,
                    int64_t max) {
    const json::Value* member = Member(key);
    if (member == nullptr) return false;
    if (!member->is_number()) {
      Fail(path_ + "." + key + ": expected an integer");
      return false;
    }
    const double value = member->AsDouble();
    if (!std::isfinite(value) || std::floor(value) != value ||
        std::abs(value) > kMaxExactDouble) {
      Fail(path_ + "." + key + ": expected an integer");
      return false;
    }
    const auto integral = static_cast<int64_t>(value);
    if (integral < min || integral > max) {
      Fail(StrFormat("%s.%s: value %lld is out of range [%lld, %lld]",
                     path_.c_str(), key.c_str(),
                     static_cast<long long>(integral),
                     static_cast<long long>(min),
                     static_cast<long long>(max)));
      return false;
    }
    *out = integral;
    return true;
  }

  const json::Value* value_;
  std::string path_;
  std::set<std::string> consumed_;
  Status status_;
};

Status ParseWorld(const json::Value& value, sim::WorldParams* world) {
  ObjectReader reader(value, "scenario.world");
  reader.Double("duration_seconds", &world->duration_seconds, 0.1, 600.0);
  reader.Double("frame_rate_hz", &world->frame_rate_hz, 0.1, 120.0);
  reader.Double("ego_speed_mps", &world->ego_speed_mps, 0.0, 70.0);
  reader.Double("mean_object_count", &world->mean_object_count, 0.0, 500.0);
  reader.Double("spawn_behind_meters", &world->spawn_behind_meters, 0.0,
                1000.0);
  reader.Double("spawn_ahead_meters", &world->spawn_ahead_meters, 0.0, 1000.0);
  if (const json::Value* mix = reader.Member("class_mix")) {
    ObjectReader mix_reader(*mix, "scenario.world.class_mix");
    mix_reader.Double("car", &world->car_weight, 0.0, 1000.0);
    mix_reader.Double("truck", &world->truck_weight, 0.0, 1000.0);
    mix_reader.Double("pedestrian", &world->pedestrian_weight, 0.0, 1000.0);
    mix_reader.Double("motorcycle", &world->motorcycle_weight, 0.0, 1000.0);
    FIXY_RETURN_IF_ERROR(mix_reader.Finish());
  }
  return reader.Finish();
}

Status ParseSensor(const json::Value& value, sim::SensorParams* sensor) {
  ObjectReader reader(value, "scenario.sensor");
  reader.Double("max_range_meters", &sensor->max_range_meters, 1.0, 10000.0);
  reader.Double("occlusion_visibility_threshold",
                &sensor->occlusion_visibility_threshold, 0.0, 1.0);
  reader.Double("near_field_meters", &sensor->near_field_meters, 0.0, 100.0);
  if (const json::Value* windows = reader.Member("dropout_windows")) {
    if (!windows->is_array()) {
      return Status::InvalidArgument(
          "scenario.sensor.dropout_windows: expected an array");
    }
    sensor->dropout_windows.clear();
    for (size_t i = 0; i < windows->AsArray().size(); ++i) {
      const std::string path =
          StrFormat("scenario.sensor.dropout_windows[%zu]", i);
      ObjectReader window_reader(windows->AsArray()[i], path);
      sim::SensorDropoutWindow window;
      window_reader.Double("start_seconds", &window.start_seconds, 0.0, 600.0);
      window_reader.Double("end_seconds", &window.end_seconds, 0.0, 600.0);
      FIXY_RETURN_IF_ERROR(window_reader.Finish());
      if (window.end_seconds <= window.start_seconds) {
        return Status::InvalidArgument(StrFormat(
            "%s: end_seconds (%g) must be greater than start_seconds (%g)",
            path.c_str(), window.end_seconds, window.start_seconds));
      }
      sensor->dropout_windows.push_back(window);
    }
  }
  return reader.Finish();
}

Status ParseLabeler(const json::Value& value, sim::LabelerProfile* labeler) {
  ObjectReader reader(value, "scenario.labeler");
  reader.Double("missing_track_rate", &labeler->missing_track_rate, 0.0, 1.0);
  reader.Double("short_visibility_miss_rate",
                &labeler->short_visibility_miss_rate, 0.0, 1.0);
  reader.Int("short_visibility_frames", &labeler->short_visibility_frames, 0,
             100000);
  reader.Double("missing_obs_rate", &labeler->missing_obs_rate, 0.0, 1.0);
  reader.Double("center_jitter_m", &labeler->center_jitter_m, 0.0, 10.0);
  reader.Double("size_jitter_frac", &labeler->size_jitter_frac, 0.0, 1.0);
  reader.Double("yaw_jitter_rad", &labeler->yaw_jitter_rad, 0.0, 3.2);
  reader.Int("min_visible_frames_to_label",
             &labeler->min_visible_frames_to_label, 0, 100000);
  return reader.Finish();
}

Status ParseDetector(const json::Value& value, sim::DetectorParams* detector) {
  ObjectReader reader(value, "scenario.detector");
  std::string calibration =
      detector->calibrated ? "calibrated" : "uncalibrated";
  reader.Enum("calibration", &calibration, {"calibrated", "uncalibrated"});
  detector->calibrated = calibration == "calibrated";
  reader.Double("base_recall", &detector->base_recall, 0.0, 1.0);
  reader.Double("range_falloff_start", &detector->range_falloff_start, 0.0,
                10000.0);
  reader.Double("max_range", &detector->max_range, 1.0, 10000.0);
  reader.Double("recall_at_max_range", &detector->recall_at_max_range, 0.0,
                1.0);
  reader.Double("occlusion_power", &detector->occlusion_power, 0.0, 16.0);
  reader.Double("center_noise_m", &detector->center_noise_m, 0.0, 10.0);
  reader.Double("size_noise_frac", &detector->size_noise_frac, 0.0, 1.0);
  reader.Double("yaw_noise_rad", &detector->yaw_noise_rad, 0.0, 3.2);
  reader.Double("track_class_confusion_rate",
                &detector->track_class_confusion_rate, 0.0, 1.0);
  reader.Double("error_confidence_factor", &detector->error_confidence_factor,
                0.0, 2.0);
  reader.Double("localization_error_rate", &detector->localization_error_rate,
                0.0, 1.0);
  reader.Double("localization_noise_m", &detector->localization_noise_m, 0.0,
                100.0);
  reader.Double("localization_size_noise_frac",
                &detector->localization_size_noise_frac, 0.0, 1.0);
  reader.Double("ghost_tracks_per_scene", &detector->ghost_tracks_per_scene,
                0.0, 1000.0);
  reader.Int("ghost_min_frames", &detector->ghost_min_frames, 1, 100000);
  reader.Int("ghost_max_frames", &detector->ghost_max_frames, 1, 100000);
  reader.Double("ghost_jump_m", &detector->ghost_jump_m, 0.0, 100.0);
  reader.Double("ghost_size_noise_frac", &detector->ghost_size_noise_frac, 0.0,
                1.0);
  reader.Double("ghost_scale_sigma", &detector->ghost_scale_sigma, 0.0, 4.0);
  reader.Double("per_frame_conf_noise", &detector->per_frame_conf_noise, 0.0,
                1.0);
  reader.Double("calibrated_conf_noise", &detector->calibrated_conf_noise, 0.0,
                1.0);
  reader.Double("uncalibrated_conf_mean", &detector->uncalibrated_conf_mean,
                0.0, 1.0);
  reader.Double("uncalibrated_conf_sd", &detector->uncalibrated_conf_sd, 0.0,
                1.0);
  reader.Double("ghost_conf_mean", &detector->ghost_conf_mean, 0.0, 1.0);
  reader.Double("ghost_conf_sd", &detector->ghost_conf_sd, 0.0, 1.0);
  reader.Double("high_conf_ghost_rate", &detector->high_conf_ghost_rate, 0.0,
                1.0);
  return reader.Finish();
}

}  // namespace

Result<ScenarioSpec> ScenarioFromJson(const json::Value& value) {
  ScenarioSpec spec;
  ObjectReader reader(value, "scenario");

  std::string format = kFormatName;
  reader.String("format", &format);
  if (reader.ok() && format != kFormatName) {
    return Status::InvalidArgument(
        "scenario.format: unknown value \"" + format + "\" (valid values: " +
        std::string(kFormatName) + ")");
  }
  int version = kFormatVersion;
  reader.Int("version", &version, 1, 1000000);
  if (reader.ok() && version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("scenario.version: unsupported version %d (supported: %d)",
                  version, kFormatVersion));
  }

  if (reader.ok() && value.Find("name") == nullptr) {
    return Status::InvalidArgument("scenario.name is required");
  }
  reader.String("name", &spec.name);
  if (reader.ok() && !ValidName(spec.name)) {
    return Status::InvalidArgument(
        "scenario.name: \"" + spec.name +
        "\" must be non-empty and limited to [A-Za-z0-9._-] (it names scene "
        "files and cache directories)");
  }
  reader.String("description", &spec.description);
  reader.Int("scenes", &spec.scene_count, 1, 10000000);
  reader.U64("seed", &spec.seed);

  if (const json::Value* world = reader.Member("world")) {
    FIXY_RETURN_IF_ERROR(ParseWorld(*world, &spec.world));
  }
  if (const json::Value* sensor = reader.Member("sensor")) {
    FIXY_RETURN_IF_ERROR(ParseSensor(*sensor, &spec.sensor));
  }
  if (const json::Value* labeler = reader.Member("labeler")) {
    FIXY_RETURN_IF_ERROR(ParseLabeler(*labeler, &spec.labeler));
  }
  if (const json::Value* detector = reader.Member("detector")) {
    FIXY_RETURN_IF_ERROR(ParseDetector(*detector, &spec.detector));
  }
  FIXY_RETURN_IF_ERROR(reader.Finish());

  // Compile-time cross-field checks run at parse too, so a loaded spec is
  // known-good end to end (and the error points at the file, not at a
  // later generation step).
  FIXY_RETURN_IF_ERROR(CompileScenario(spec).status());
  return spec;
}

Result<ScenarioSpec> ScenarioFromString(std::string_view text) {
  FIXY_ASSIGN_OR_RETURN(const json::Value value, json::Parse(text));
  return ScenarioFromJson(value);
}

Result<ScenarioSpec> LoadScenario(const std::string& path) {
  std::string text;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(path, &text));
  Result<ScenarioSpec> spec = ScenarioFromString(text);
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  return spec;
}

json::Value ScenarioToJson(const ScenarioSpec& spec) {
  json::Object world;
  world["duration_seconds"] = spec.world.duration_seconds;
  world["frame_rate_hz"] = spec.world.frame_rate_hz;
  world["ego_speed_mps"] = spec.world.ego_speed_mps;
  world["mean_object_count"] = spec.world.mean_object_count;
  world["spawn_behind_meters"] = spec.world.spawn_behind_meters;
  world["spawn_ahead_meters"] = spec.world.spawn_ahead_meters;
  json::Object mix;
  mix["car"] = spec.world.car_weight;
  mix["truck"] = spec.world.truck_weight;
  mix["pedestrian"] = spec.world.pedestrian_weight;
  mix["motorcycle"] = spec.world.motorcycle_weight;
  world["class_mix"] = std::move(mix);

  json::Object sensor;
  sensor["max_range_meters"] = spec.sensor.max_range_meters;
  sensor["occlusion_visibility_threshold"] =
      spec.sensor.occlusion_visibility_threshold;
  sensor["near_field_meters"] = spec.sensor.near_field_meters;
  json::Array windows;
  for (const sim::SensorDropoutWindow& window : spec.sensor.dropout_windows) {
    json::Object window_value;
    window_value["start_seconds"] = window.start_seconds;
    window_value["end_seconds"] = window.end_seconds;
    windows.push_back(std::move(window_value));
  }
  sensor["dropout_windows"] = std::move(windows);

  json::Object labeler;
  labeler["missing_track_rate"] = spec.labeler.missing_track_rate;
  labeler["short_visibility_miss_rate"] =
      spec.labeler.short_visibility_miss_rate;
  labeler["short_visibility_frames"] = spec.labeler.short_visibility_frames;
  labeler["missing_obs_rate"] = spec.labeler.missing_obs_rate;
  labeler["center_jitter_m"] = spec.labeler.center_jitter_m;
  labeler["size_jitter_frac"] = spec.labeler.size_jitter_frac;
  labeler["yaw_jitter_rad"] = spec.labeler.yaw_jitter_rad;
  labeler["min_visible_frames_to_label"] =
      spec.labeler.min_visible_frames_to_label;

  json::Object detector;
  detector["calibration"] =
      spec.detector.calibrated ? "calibrated" : "uncalibrated";
  detector["base_recall"] = spec.detector.base_recall;
  detector["range_falloff_start"] = spec.detector.range_falloff_start;
  detector["max_range"] = spec.detector.max_range;
  detector["recall_at_max_range"] = spec.detector.recall_at_max_range;
  detector["occlusion_power"] = spec.detector.occlusion_power;
  detector["center_noise_m"] = spec.detector.center_noise_m;
  detector["size_noise_frac"] = spec.detector.size_noise_frac;
  detector["yaw_noise_rad"] = spec.detector.yaw_noise_rad;
  detector["track_class_confusion_rate"] =
      spec.detector.track_class_confusion_rate;
  detector["error_confidence_factor"] = spec.detector.error_confidence_factor;
  detector["localization_error_rate"] = spec.detector.localization_error_rate;
  detector["localization_noise_m"] = spec.detector.localization_noise_m;
  detector["localization_size_noise_frac"] =
      spec.detector.localization_size_noise_frac;
  detector["ghost_tracks_per_scene"] = spec.detector.ghost_tracks_per_scene;
  detector["ghost_min_frames"] = spec.detector.ghost_min_frames;
  detector["ghost_max_frames"] = spec.detector.ghost_max_frames;
  detector["ghost_jump_m"] = spec.detector.ghost_jump_m;
  detector["ghost_size_noise_frac"] = spec.detector.ghost_size_noise_frac;
  detector["ghost_scale_sigma"] = spec.detector.ghost_scale_sigma;
  detector["per_frame_conf_noise"] = spec.detector.per_frame_conf_noise;
  detector["calibrated_conf_noise"] = spec.detector.calibrated_conf_noise;
  detector["uncalibrated_conf_mean"] = spec.detector.uncalibrated_conf_mean;
  detector["uncalibrated_conf_sd"] = spec.detector.uncalibrated_conf_sd;
  detector["ghost_conf_mean"] = spec.detector.ghost_conf_mean;
  detector["ghost_conf_sd"] = spec.detector.ghost_conf_sd;
  detector["high_conf_ghost_rate"] = spec.detector.high_conf_ghost_rate;

  json::Object root;
  root["format"] = kFormatName;
  root["version"] = kFormatVersion;
  root["name"] = spec.name;
  root["description"] = spec.description;
  root["scenes"] = spec.scene_count;
  root["seed"] = spec.seed;
  root["world"] = std::move(world);
  root["sensor"] = std::move(sensor);
  root["labeler"] = std::move(labeler);
  root["detector"] = std::move(detector);
  return root;
}

std::string ScenarioFingerprint(const ScenarioSpec& spec) {
  return json::Write(ScenarioToJson(spec));
}

Result<sim::SimProfile> CompileScenario(const ScenarioSpec& spec) {
  if (!ValidName(spec.name)) {
    return Status::InvalidArgument(
        "scenario.name: \"" + spec.name +
        "\" must be non-empty and limited to [A-Za-z0-9._-]");
  }
  if (spec.scene_count < 1) {
    return Status::InvalidArgument(
        StrFormat("scenario.scenes: value %d is out of range [1, 10000000]",
                  spec.scene_count));
  }
  const double mix_total = spec.world.car_weight + spec.world.truck_weight +
                           spec.world.pedestrian_weight +
                           spec.world.motorcycle_weight;
  if (!(mix_total > 0.0)) {
    return Status::InvalidArgument(
        "scenario.world.class_mix: total weight must be positive");
  }
  if (spec.detector.ghost_max_frames < spec.detector.ghost_min_frames) {
    return Status::InvalidArgument(StrFormat(
        "scenario.detector.ghost_max_frames: value %d is below "
        "ghost_min_frames (%d)",
        spec.detector.ghost_max_frames, spec.detector.ghost_min_frames));
  }
  for (size_t i = 0; i < spec.sensor.dropout_windows.size(); ++i) {
    const sim::SensorDropoutWindow& window = spec.sensor.dropout_windows[i];
    if (window.end_seconds <= window.start_seconds ||
        window.start_seconds < 0.0) {
      return Status::InvalidArgument(StrFormat(
          "scenario.sensor.dropout_windows[%zu]: [%g, %g) is not a valid "
          "window",
          i, window.start_seconds, window.end_seconds));
    }
    if (window.start_seconds >= spec.world.duration_seconds) {
      return Status::InvalidArgument(StrFormat(
          "scenario.sensor.dropout_windows[%zu]: start_seconds (%g) is "
          "beyond the scene duration (%g s)",
          i, window.start_seconds, spec.world.duration_seconds));
    }
  }
  obs::Count("scenario.specs_compiled");
  sim::SimProfile profile;
  profile.name = spec.name;
  profile.world = spec.world;
  profile.sensor = spec.sensor;
  profile.labeler = spec.labeler;
  profile.detector = spec.detector;
  return profile;
}

void RecordScenarioMetricsSchema() {
  obs::Count("scenario.datasets_reused", 0);
  obs::Count("scenario.scenes_generated", 0);
  obs::Count("scenario.specs_compiled", 0);
  obs::Count("sweep.cells", 0);
  obs::Count("sweep.scenarios", 0);
  obs::AddTimeNs("scenario.generate", 0);
  obs::AddTimeNs("sweep.total", 0);
}

}  // namespace fixy::scenario
