// Built-in scenario presets: the two legacy dataset profiles re-expressed
// as specs (so `sim::LyftLikeProfile()` / `sim::InternalLikeProfile()`
// are thin wrappers over the registry and stay byte-identical), plus five
// diverse conditions the paper's two-dataset evaluation never covered —
// the scenario-diversity library behind `fixy_cli sim --preset` and the
// sweep harness.
#ifndef FIXY_SCENARIO_PRESETS_H_
#define FIXY_SCENARIO_PRESETS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "scenario/spec.h"

namespace fixy::scenario {

/// Registered preset names, in the fixed registry order the sweep and
/// `--presets all` use:
///   lyft-like, internal-like, dense-urban-intersection, highway-convoy,
///   parking-lot, night-low-recall, multi-sensor-disagreement.
std::vector<std::string> PresetNames();

/// The preset registered under `name`. Errors: InvalidArgument listing
/// every registered name.
Result<ScenarioSpec> PresetByName(const std::string& name);

/// One-line description per preset (parallel to PresetNames order).
std::vector<std::string> PresetDescriptions();

}  // namespace fixy::scenario

#endif  // FIXY_SCENARIO_PRESETS_H_
