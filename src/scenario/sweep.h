// The experiment sweep harness: run a scenario × application grid
// end-to-end — materialize (or reuse) each scenario's dataset, learn on
// it, rank every requested application in one pass, and score the ranked
// proposals against the ground-truth ledger — emitting one precision@k /
// recall cell per (scenario, application) pair. Reports serialize to
// JSON (no wall times, so two runs of the same grid are byte-identical
// at any thread count) and diff through eval::DiffMetricCells.
#ifndef FIXY_SCENARIO_SWEEP_H_
#define FIXY_SCENARIO_SWEEP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "eval/cell_diff.h"
#include "eval/matching.h"
#include "json/json.h"
#include "scenario/spec.h"

namespace fixy::scenario {

struct SweepOptions {
  /// Applications to rank per scenario, in report order.
  std::vector<std::string> apps = {"missing-tracks", "missing-obs",
                                   "model-errors"};
  /// Scenes per scenario; 0 uses each spec's own scene count.
  int scenes_per_cell = 0;
  /// Seed override applied to every scenario; unset uses each spec's seed.
  std::optional<uint64_t> seed;
  /// Ranked proposals considered per scene for precision@k.
  size_t top_k = 10;
  /// Worker threads fanning scenarios out; 0 uses hardware concurrency,
  /// 1 runs serially. Cell results are byte-identical at any value.
  int threads = 0;
  /// When set, each scenario materializes into `<cache_dir>/<spec name>`
  /// (scene JSON + FXB + ledger + lock) and matching directories are
  /// reused instead of regenerated. Empty generates in memory only.
  std::string cache_dir;
  /// Engine configuration shared by every cell (estimator, extra
  /// applications, ...).
  FixyOptions engine;
  /// Proposal-to-ledger matching protocol.
  eval::MatchOptions match;
};

/// One (scenario, application) cell of a sweep.
struct SweepCell {
  std::string scenario;
  std::string app;
  /// Scenes ranked for this cell.
  size_t scenes = 0;
  /// Ground-truth errors this application could have claimed.
  size_t claimable = 0;
  /// Total proposals the application emitted across the cell's scenes.
  size_t proposals = 0;
  /// Precision@k accumulated over scenes: hits / considered.
  size_t hits = 0;
  size_t considered = 0;
  double precision_at_k = 0.0;
  /// Recall over all proposals: found / claimable.
  size_t found = 0;
  double recall = 0.0;

  /// The diff/row key, "<scenario>/<app>".
  std::string RowKey() const { return scenario + "/" + app; }
};

struct SweepReport {
  /// Grid axes, in run order.
  std::vector<std::string> scenarios;
  std::vector<std::string> apps;
  size_t top_k = 10;
  /// Cells in scenario-major, application-minor order.
  std::vector<SweepCell> cells;
};

/// Runs the full grid. Scenarios fan out across a thread pool (each
/// scenario's generate → learn → rank → score pipeline runs on one
/// worker; ranking inside a cell is serial), results land in scenario
/// order, and the report carries no timing fields — so the same grid
/// yields a byte-identical report at every thread count. Errors:
/// InvalidArgument for an empty grid, duplicate scenario names, or
/// top_k == 0; otherwise the first failing scenario's Status in
/// scenario order.
Result<SweepReport> RunSweep(const std::vector<ScenarioSpec>& specs,
                             const SweepOptions& options = {});

/// Serializes a report ({format: "fixy-sweep", version: 1, ...}); strict
/// inverse. Round-trips byte-identically through canonical writing.
json::Value SweepReportToJson(const SweepReport& report);
Result<SweepReport> SweepReportFromJson(const json::Value& value);

/// File forms of the above (pretty canonical JSON + trailing newline).
Status SaveSweepReport(const SweepReport& report, const std::string& path);
Result<SweepReport> LoadSweepReport(const std::string& path);

/// Fixed-width per-cell table (scenario, app, scenes, claimable,
/// proposals, p@k, recall).
std::string FormatSweepTable(const SweepReport& report);

/// The report's cells as generic metric rows for eval::DiffMetricCells,
/// keyed "<scenario>/<app>".
std::vector<eval::MetricCell> SweepReportToRows(const SweepReport& report);

/// Diffs two sweep runs cell by cell. precision_at_k, recall, hits, and
/// found are quality metrics: a drop beyond `tolerance` marks the change
/// REGRESSED in the formatted report.
eval::CellDiffReport DiffSweepReports(const SweepReport& base,
                                      const SweepReport& current,
                                      double tolerance = 1e-9);

}  // namespace fixy::scenario

#endif  // FIXY_SCENARIO_SWEEP_H_
