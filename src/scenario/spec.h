// Scenarios as data: the declarative scenario spec behind the simulator.
//
// A ScenarioSpec is the external, JSON-serializable description of one
// synthetic-dataset generation setup — world layout and class mix,
// sensor occlusion and dropout windows, vendor label-error rates,
// detector calibration, scene count, and seed. Specs are parsed with a
// *strict* validator (unknown keys, out-of-range values, and bad enum
// strings are errors that name the offending path and list the valid
// choices) and then compiled into the existing `sim` parameter structs,
// so every generation knob the hard-coded profiles used to bake in is
// now specifiable from a file or a built-in preset (presets.h).
//
// Document shape (all fields optional except `name`; defaults are the
// `sim` struct defaults):
//
//   {
//     "format": "fixy-scenario", "version": 1,
//     "name": "night_low_recall", "description": "...",
//     "scenes": 8, "seed": 42,
//     "world":    { "duration_seconds": 15.0, "frame_rate_hz": 10.0,
//                   "ego_speed_mps": 8.0, "mean_object_count": 28.0,
//                   "spawn_behind_meters": 40.0,
//                   "spawn_ahead_meters": 60.0,
//                   "class_mix": { "car": 0.66, "truck": 0.12,
//                                  "pedestrian": 0.14,
//                                  "motorcycle": 0.08 } },
//     "sensor":   { "max_range_meters": 75.0,
//                   "occlusion_visibility_threshold": 0.6,
//                   "near_field_meters": 6.0,
//                   "dropout_windows": [ { "start_seconds": 3.0,
//                                          "end_seconds": 4.5 } ] },
//     "labeler":  { "missing_track_rate": 0.1, ... },
//     "detector": { "calibration": "calibrated" | "uncalibrated", ... }
//   }
#ifndef FIXY_SCENARIO_SPEC_H_
#define FIXY_SCENARIO_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "json/json.h"
#include "sim/profiles.h"

namespace fixy::scenario {

/// One fully-specified generation setup. The embedded `sim` structs carry
/// the per-stage knobs; `scene_count` and `seed` complete the recipe, so
/// (spec) alone determines every byte of the generated dataset.
struct ScenarioSpec {
  /// Scene-name prefix and cache key. Restricted to [A-Za-z0-9._-] so the
  /// name is safe as a file and directory name.
  std::string name;
  std::string description;
  int scene_count = 4;
  uint64_t seed = 42;

  sim::WorldParams world;
  sim::SensorParams sensor;
  sim::LabelerProfile labeler;
  sim::DetectorParams detector;
};

/// Parses and strictly validates a scenario document. Errors:
/// InvalidArgument naming the offending path — unknown keys list the
/// valid fields, enum mismatches list the valid values, range violations
/// state the permitted interval.
Result<ScenarioSpec> ScenarioFromJson(const json::Value& value);
Result<ScenarioSpec> ScenarioFromString(std::string_view text);

/// Reads and parses a scenario file.
Result<ScenarioSpec> LoadScenario(const std::string& path);

/// Canonical serialization: every field explicit, keys sorted (the json
/// Object is a sorted map), so ToJson -> FromJson -> ToJson is a fixed
/// point and the compact string doubles as the spec fingerprint.
json::Value ScenarioToJson(const ScenarioSpec& spec);

/// The compact canonical JSON of `spec` — the cache lock fingerprint.
std::string ScenarioFingerprint(const ScenarioSpec& spec);

/// Compiles a spec into the simulator's profile bundle, checking the
/// cross-field constraints a single-field validator cannot (class mix
/// must have positive total weight, ghost frame bounds must be ordered,
/// dropout windows must lie inside the scene duration).
Result<sim::SimProfile> CompileScenario(const ScenarioSpec& spec);

/// Zero-touches every scenario.* / sweep.* metric key so the metrics
/// snapshot schema is one fixed set whether or not a run generated
/// scenarios (mirrors io::RecordFxbMetricsSchema).
void RecordScenarioMetricsSchema();

}  // namespace fixy::scenario

#endif  // FIXY_SCENARIO_SPEC_H_
