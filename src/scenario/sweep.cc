#include "scenario/sweep.h"

#include <cmath>
#include <fstream>
#include <future>
#include <set>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "io/scene_io.h"
#include "obs/metrics.h"
#include "scenario/materialize.h"

namespace fixy::scenario {
namespace {

constexpr char kFormatName[] = "fixy-sweep";
constexpr int kFormatVersion = 1;

/// The ledger kinds an application's proposals claim. The paper
/// applications map by name; an unknown (user-registered) application is
/// scored against whatever kinds its proposals actually carried, in enum
/// order — distinct kinds claim disjoint ledger error types, so the
/// union never double-counts.
std::vector<ProposalKind> ClaimKinds(
    const std::string& app, const std::vector<SceneOutcome>& outcomes) {
  if (app == "missing-tracks") return {ProposalKind::kMissingTrack};
  if (app == "missing-obs") return {ProposalKind::kMissingObservation};
  if (app == "model-errors") return {ProposalKind::kModelError};
  std::set<int> seen;
  for (const SceneOutcome& outcome : outcomes) {
    for (const ErrorProposal& proposal : outcome.proposals) {
      seen.insert(static_cast<int>(proposal.kind));
    }
  }
  std::vector<ProposalKind> kinds;
  for (const int kind : seen) kinds.push_back(static_cast<ProposalKind>(kind));
  return kinds;
}

/// Scores one application's batch against the ledger: per-scene
/// precision@k and recall, accumulated over the cell.
SweepCell ScoreCell(const std::string& scenario, const std::string& app,
                    const BatchReport& report, const sim::GtLedger& ledger,
                    const SweepOptions& options) {
  SweepCell cell;
  cell.scenario = scenario;
  cell.app = app;
  cell.scenes = report.outcomes.size();
  const std::vector<ProposalKind> kinds = ClaimKinds(app, report.outcomes);
  for (const SceneOutcome& outcome : report.outcomes) {
    cell.proposals += outcome.proposals.size();
    for (const ProposalKind kind : kinds) {
      const std::vector<const sim::GtError*> claimable =
          eval::ClaimableErrors(ledger, kind, outcome.scene_name);
      cell.claimable += claimable.size();
      const eval::PrecisionResult precision = eval::PrecisionAtK(
          outcome.proposals, claimable, options.top_k, options.match);
      cell.hits += precision.hits;
      cell.considered += precision.considered;
      const eval::RecallResult recall =
          eval::RecallOf(outcome.proposals, claimable, options.match);
      cell.found += recall.found;
    }
  }
  cell.precision_at_k =
      cell.considered == 0
          ? 0.0
          : static_cast<double>(cell.hits) / static_cast<double>(cell.considered);
  cell.recall = cell.claimable == 0 ? 0.0
                                    : static_cast<double>(cell.found) /
                                          static_cast<double>(cell.claimable);
  return cell;
}

/// All of one scenario's cells (one per application, in request order).
Result<std::vector<SweepCell>> RunScenario(const ScenarioSpec& spec,
                                           const SweepOptions& options) {
  sim::GeneratedDataset data;
  if (options.cache_dir.empty()) {
    FIXY_ASSIGN_OR_RETURN(
        data, GenerateScenarioDataset(spec, options.scenes_per_cell,
                                      options.seed));
  } else {
    MaterializeOptions materialize;
    materialize.scene_count = options.scenes_per_cell;
    materialize.seed = options.seed;
    materialize.reuse = true;
    FIXY_ASSIGN_OR_RETURN(
        MaterializedDataset on_disk,
        MaterializeScenarioDataset(spec, options.cache_dir + "/" + spec.name,
                                   materialize));
    data = std::move(on_disk.data);
  }

  Fixy fixy(options.engine);
  FIXY_RETURN_IF_ERROR(fixy.Learn(data.dataset));
  BatchOptions batch;
  batch.num_threads = 1;  // Parallelism lives at the scenario level.
  batch.fail_fast = true;
  FIXY_ASSIGN_OR_RETURN(const MultiAppReport ranked,
                        fixy.RankDataset(data.dataset, options.apps, batch));

  std::vector<SweepCell> cells;
  for (size_t a = 0; a < ranked.apps.size(); ++a) {
    cells.push_back(ScoreCell(spec.name, ranked.apps[a], ranked.reports[a],
                              data.ledger, options));
  }
  return cells;
}

void AppendCellJson(json::Array* cells, const SweepCell& cell) {
  json::Object out;
  out["scenario"] = cell.scenario;
  out["app"] = cell.app;
  out["scenes"] = static_cast<int64_t>(cell.scenes);
  out["claimable"] = static_cast<int64_t>(cell.claimable);
  out["proposals"] = static_cast<int64_t>(cell.proposals);
  out["hits"] = static_cast<int64_t>(cell.hits);
  out["considered"] = static_cast<int64_t>(cell.considered);
  out["precision_at_k"] = cell.precision_at_k;
  out["found"] = static_cast<int64_t>(cell.found);
  out["recall"] = cell.recall;
  cells->push_back(std::move(out));
}

Result<size_t> ReadCount(const json::Value& object, const std::string& key,
                         const std::string& path) {
  const json::Value* member = object.Find(key);
  if (member == nullptr || !member->is_number()) {
    return Status::InvalidArgument(path + "." + key +
                                   ": expected a number");
  }
  const double value = member->AsDouble();
  if (!std::isfinite(value) || value < 0 || value != std::floor(value)) {
    return Status::InvalidArgument(path + "." + key +
                                   ": expected a non-negative integer");
  }
  return static_cast<size_t>(value);
}

Result<double> ReadFraction(const json::Value& object, const std::string& key,
                            const std::string& path) {
  const json::Value* member = object.Find(key);
  if (member == nullptr || !member->is_number()) {
    return Status::InvalidArgument(path + "." + key +
                                   ": expected a number");
  }
  const double value = member->AsDouble();
  if (!std::isfinite(value) || value < 0.0 || value > 1.0) {
    return Status::InvalidArgument(path + "." + key +
                                   ": expected a fraction in [0, 1]");
  }
  return value;
}

Result<std::string> ReadString(const json::Value& object,
                               const std::string& key,
                               const std::string& path) {
  const json::Value* member = object.Find(key);
  if (member == nullptr || !member->is_string()) {
    return Status::InvalidArgument(path + "." + key +
                                   ": expected a string");
  }
  return member->AsString();
}

Result<std::vector<std::string>> ReadStringArray(const json::Value& object,
                                                 const std::string& key,
                                                 const std::string& path) {
  const json::Value* member = object.Find(key);
  if (member == nullptr || !member->is_array()) {
    return Status::InvalidArgument(path + "." + key + ": expected an array");
  }
  std::vector<std::string> out;
  for (const json::Value& item : member->AsArray()) {
    if (!item.is_string()) {
      return Status::InvalidArgument(path + "." + key +
                                     ": expected an array of strings");
    }
    out.push_back(item.AsString());
  }
  return out;
}

}  // namespace

Result<SweepReport> RunSweep(const std::vector<ScenarioSpec>& specs,
                             const SweepOptions& options) {
  if (specs.empty()) {
    return Status::InvalidArgument("sweep needs at least one scenario");
  }
  if (options.apps.empty()) {
    return Status::InvalidArgument("sweep needs at least one application");
  }
  if (options.top_k == 0) {
    return Status::InvalidArgument("sweep top_k must be >= 1");
  }
  std::set<std::string> names;
  for (const ScenarioSpec& spec : specs) {
    if (!names.insert(spec.name).second) {
      return Status::InvalidArgument("duplicate scenario name \"" + spec.name +
                                     "\" in sweep grid");
    }
  }

  const obs::ScopedStageTimer timer("sweep.total");

  // One slot per scenario: workers write only their own slot, results
  // merge in scenario order, so the report is byte-identical at every
  // thread count.
  std::vector<Result<std::vector<SweepCell>>> slots(
      specs.size(), Result<std::vector<SweepCell>>(std::vector<SweepCell>{}));
  {
    ThreadPool pool(ThreadPool::ResolveThreadCount(options.threads));
    std::vector<std::future<void>> pending;
    for (size_t i = 0; i < specs.size(); ++i) {
      pending.push_back(pool.Submit([&specs, &options, &slots, i] {
        slots[i] = RunScenario(specs[i], options);
      }));
    }
    for (std::future<void>& f : pending) f.get();
  }

  SweepReport report;
  report.top_k = options.top_k;
  for (const ScenarioSpec& spec : specs) report.scenarios.push_back(spec.name);
  for (size_t i = 0; i < specs.size(); ++i) {
    // First failure in scenario order, regardless of completion order.
    FIXY_RETURN_IF_ERROR(slots[i].status());
    for (SweepCell& cell : *slots[i]) {
      report.cells.push_back(std::move(cell));
    }
  }
  // Every scenario ranked the same resolved app list; take it from the
  // first scenario's cells.
  for (size_t a = 0; a < options.apps.size(); ++a) {
    report.apps.push_back(report.cells[a].app);
  }

  obs::Count("sweep.scenarios", static_cast<uint64_t>(specs.size()));
  obs::Count("sweep.cells", static_cast<uint64_t>(report.cells.size()));
  return report;
}

json::Value SweepReportToJson(const SweepReport& report) {
  json::Object root;
  root["format"] = kFormatName;
  root["version"] = kFormatVersion;
  json::Array scenarios;
  for (const std::string& name : report.scenarios) scenarios.push_back(name);
  root["scenarios"] = std::move(scenarios);
  json::Array apps;
  for (const std::string& name : report.apps) apps.push_back(name);
  root["apps"] = std::move(apps);
  root["top_k"] = static_cast<int64_t>(report.top_k);
  json::Array cells;
  for (const SweepCell& cell : report.cells) AppendCellJson(&cells, cell);
  root["cells"] = std::move(cells);
  return root;
}

Result<SweepReport> SweepReportFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("sweep report: expected an object");
  }
  FIXY_ASSIGN_OR_RETURN(const std::string format,
                        ReadString(value, "format", "sweep report"));
  if (format != kFormatName) {
    return Status::InvalidArgument("sweep report: format is \"" + format +
                                   "\", expected \"" + kFormatName + "\"");
  }
  FIXY_ASSIGN_OR_RETURN(const size_t version,
                        ReadCount(value, "version", "sweep report"));
  if (version != static_cast<size_t>(kFormatVersion)) {
    return Status::InvalidArgument(
        StrFormat("sweep report: unsupported version %zu (this build reads "
                  "version %d)",
                  version, kFormatVersion));
  }

  SweepReport report;
  FIXY_ASSIGN_OR_RETURN(report.scenarios,
                        ReadStringArray(value, "scenarios", "sweep report"));
  FIXY_ASSIGN_OR_RETURN(report.apps,
                        ReadStringArray(value, "apps", "sweep report"));
  FIXY_ASSIGN_OR_RETURN(report.top_k,
                        ReadCount(value, "top_k", "sweep report"));

  const json::Value* cells = value.Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return Status::InvalidArgument("sweep report.cells: expected an array");
  }
  size_t index = 0;
  for (const json::Value& item : cells->AsArray()) {
    const std::string path = StrFormat("sweep report.cells[%zu]", index);
    if (!item.is_object()) {
      return Status::InvalidArgument(path + ": expected an object");
    }
    SweepCell cell;
    FIXY_ASSIGN_OR_RETURN(cell.scenario, ReadString(item, "scenario", path));
    FIXY_ASSIGN_OR_RETURN(cell.app, ReadString(item, "app", path));
    FIXY_ASSIGN_OR_RETURN(cell.scenes, ReadCount(item, "scenes", path));
    FIXY_ASSIGN_OR_RETURN(cell.claimable, ReadCount(item, "claimable", path));
    FIXY_ASSIGN_OR_RETURN(cell.proposals, ReadCount(item, "proposals", path));
    FIXY_ASSIGN_OR_RETURN(cell.hits, ReadCount(item, "hits", path));
    FIXY_ASSIGN_OR_RETURN(cell.considered,
                          ReadCount(item, "considered", path));
    FIXY_ASSIGN_OR_RETURN(cell.precision_at_k,
                          ReadFraction(item, "precision_at_k", path));
    FIXY_ASSIGN_OR_RETURN(cell.found, ReadCount(item, "found", path));
    FIXY_ASSIGN_OR_RETURN(cell.recall, ReadFraction(item, "recall", path));
    report.cells.push_back(std::move(cell));
    ++index;
  }
  return report;
}

Status SaveSweepReport(const SweepReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << json::Write(SweepReportToJson(report), /*pretty=*/true) << "\n";
  out.close();
  if (!out.good()) return Status::IoError("failed writing: " + path);
  return Status::Ok();
}

Result<SweepReport> LoadSweepReport(const std::string& path) {
  std::string text;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(path, &text));
  const Result<json::Value> parsed = json::Parse(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(parsed.status().message()));
  }
  Result<SweepReport> report = SweepReportFromJson(*parsed);
  if (!report.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(report.status().message()));
  }
  return report;
}

std::string FormatSweepTable(const SweepReport& report) {
  eval::Table table({"scenario", "app", "scenes", "claimable", "proposals",
                     StrFormat("p@%zu", report.top_k), "recall"});
  for (const SweepCell& cell : report.cells) {
    table.AddRow({cell.scenario, cell.app, StrFormat("%zu", cell.scenes),
                  StrFormat("%zu", cell.claimable),
                  StrFormat("%zu", cell.proposals),
                  StrFormat("%.3f (%zu/%zu)", cell.precision_at_k, cell.hits,
                            cell.considered),
                  StrFormat("%.3f (%zu/%zu)", cell.recall, cell.found,
                            cell.claimable)});
  }
  return table.ToString();
}

std::vector<eval::MetricCell> SweepReportToRows(const SweepReport& report) {
  std::vector<eval::MetricCell> rows;
  for (const SweepCell& cell : report.cells) {
    eval::MetricCell row;
    row.row = cell.RowKey();
    row.values["scenes"] = static_cast<double>(cell.scenes);
    row.values["claimable"] = static_cast<double>(cell.claimable);
    row.values["proposals"] = static_cast<double>(cell.proposals);
    row.values["hits"] = static_cast<double>(cell.hits);
    row.values["considered"] = static_cast<double>(cell.considered);
    row.values["precision_at_k"] = cell.precision_at_k;
    row.values["found"] = static_cast<double>(cell.found);
    row.values["recall"] = cell.recall;
    rows.push_back(std::move(row));
  }
  return rows;
}

eval::CellDiffReport DiffSweepReports(const SweepReport& base,
                                      const SweepReport& current,
                                      double tolerance) {
  eval::CellDiffOptions options;
  options.tolerance = tolerance;
  options.higher_is_better = {"precision_at_k", "recall", "hits", "found"};
  return eval::DiffMetricCells(SweepReportToRows(base),
                               SweepReportToRows(current), options);
}

}  // namespace fixy::scenario
