// JSON serialization of the ground-truth error ledger, so a materialized
// scenario dataset carries its injected-error record next to the scene
// files — the sweep harness reloads it to score cached cells without
// regenerating.
#ifndef FIXY_SCENARIO_LEDGER_IO_H_
#define FIXY_SCENARIO_LEDGER_IO_H_

#include <string>

#include "common/result.h"
#include "json/json.h"
#include "sim/ledger.h"

namespace fixy::scenario {

json::Value LedgerToJson(const sim::GtLedger& ledger);

/// Inverse of LedgerToJson. Errors: InvalidArgument on a malformed
/// document (wrong format tag, unknown error type, missing fields).
Result<sim::GtLedger> LedgerFromJson(const json::Value& value);

/// Saves / loads the ledger at `path` (pretty-printed, atomic-enough for
/// the single-writer cache workflow: write then rename is not needed —
/// the lock file is written last and gates reuse).
Status SaveLedger(const sim::GtLedger& ledger, const std::string& path);
Result<sim::GtLedger> LoadLedger(const std::string& path);

/// `<directory>/gt_ledger.json`, the ledger file a materialized scenario
/// dataset carries.
std::string LedgerPath(const std::string& directory);

}  // namespace fixy::scenario

#endif  // FIXY_SCENARIO_LEDGER_IO_H_
