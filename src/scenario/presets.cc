#include "scenario/presets.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace fixy::scenario {
namespace {

// ---- Legacy profiles as specs. The field values are the frozen contract
// of the old hard-coded sim/profiles.cc: scenario_test pins them against
// an independent copy, and datasets generated from these specs must stay
// byte-identical to the pre-spec profiles. ----

ScenarioSpec LyftLikeSpec() {
  ScenarioSpec spec;
  // The spec name is the scene-name prefix, so it keeps the legacy
  // profile name (scene seeds hash the scene name).
  spec.name = "lyft_like";
  spec.description =
      "Noisy public-dataset conditions: high missing-label rates, an "
      "uncalibrated detector with frequent hallucinations.";

  spec.world.duration_seconds = 15.0;
  spec.world.frame_rate_hz = 10.0;
  spec.world.mean_object_count = 28.0;

  // "The open-sourced Lyft perception dataset has a number of vehicles
  // that were not labeled" — vendors miss ~1 in 8 objects, and half of the
  // briefly-visible ones.
  spec.labeler.missing_track_rate = 0.22;
  spec.labeler.short_visibility_miss_rate = 0.55;
  spec.labeler.missing_obs_rate = 0.0008;
  spec.labeler.center_jitter_m = 0.09;

  // Model trained on noisy labels: uncalibrated confidences, frequent
  // hallucinations.
  spec.detector.calibrated = false;
  spec.detector.uncalibrated_conf_mean = 0.75;
  spec.detector.uncalibrated_conf_sd = 0.22;
  spec.detector.high_conf_ghost_rate = 0.20;
  spec.detector.ghost_tracks_per_scene = 14.0;
  spec.detector.track_class_confusion_rate = 0.08;
  spec.detector.localization_error_rate = 0.07;
  spec.detector.center_noise_m = 0.08;
  spec.detector.base_recall = 0.94;
  return spec;
}

ScenarioSpec InternalLikeSpec() {
  ScenarioSpec spec;
  spec.name = "internal";
  spec.description =
      "Audited internal-dataset conditions: low missing-label rates, a "
      "calibrated detector with few (but subtle) hallucinations.";

  // The internal dataset samples at a different rate and sensor layout
  // (Section 8.1: "the class labels, sampling rate, and physical sensor
  // layout differ between the two datasets").
  spec.world.duration_seconds = 15.0;
  spec.world.frame_rate_hz = 5.0;
  spec.world.mean_object_count = 22.0;
  spec.sensor.max_range_meters = 85.0;

  // Audited labels: few missing tracks.
  spec.labeler.missing_track_rate = 0.04;
  spec.labeler.short_visibility_miss_rate = 0.30;
  spec.labeler.missing_obs_rate = 0.0005;
  spec.labeler.center_jitter_m = 0.05;

  // Model trained on audited data: calibrated, fewer hallucinations — but
  // the hallucinations it does produce are subtler (plausible geometry).
  spec.detector.calibrated = true;
  spec.detector.ghost_tracks_per_scene = 3.0;
  spec.detector.ghost_size_noise_frac = 0.20;
  spec.detector.track_class_confusion_rate = 0.015;
  spec.detector.localization_error_rate = 0.015;
  spec.detector.base_recall = 0.97;
  spec.detector.max_range = 85.0;
  return spec;
}

// ---- The diversity presets: conditions the paper's two datasets never
// exercised. ----

ScenarioSpec DenseUrbanIntersectionSpec() {
  ScenarioSpec spec;
  spec.name = "dense_urban_intersection";
  spec.description =
      "Crowded intersection: slow ego, pedestrian-heavy class mix, severe "
      "mutual occlusion, an overloaded labeling vendor.";

  spec.world.duration_seconds = 12.0;
  spec.world.frame_rate_hz = 10.0;
  spec.world.ego_speed_mps = 3.0;
  spec.world.mean_object_count = 55.0;
  spec.world.car_weight = 0.40;
  spec.world.truck_weight = 0.06;
  spec.world.pedestrian_weight = 0.42;
  spec.world.motorcycle_weight = 0.12;
  spec.world.spawn_behind_meters = 30.0;
  spec.world.spawn_ahead_meters = 45.0;

  // Crowds occlude each other aggressively; the sensor gives up earlier.
  spec.sensor.occlusion_visibility_threshold = 0.5;
  spec.sensor.max_range_meters = 60.0;

  // A vendor swamped by 50+ objects per scene misses more of everything,
  // especially the briefly visible.
  spec.labeler.missing_track_rate = 0.15;
  spec.labeler.short_visibility_miss_rate = 0.65;
  spec.labeler.missing_obs_rate = 0.002;
  spec.labeler.center_jitter_m = 0.11;

  spec.detector.base_recall = 0.92;
  spec.detector.occlusion_power = 2.0;
  spec.detector.ghost_tracks_per_scene = 8.0;
  spec.detector.track_class_confusion_rate = 0.05;
  return spec;
}

ScenarioSpec HighwayConvoySpec() {
  ScenarioSpec spec;
  spec.name = "highway_convoy";
  spec.description =
      "High-speed highway: fast ego, long sensor range, truck-heavy "
      "traffic, no pedestrians, recall dominated by distance falloff.";

  spec.world.duration_seconds = 20.0;
  spec.world.frame_rate_hz = 10.0;
  spec.world.ego_speed_mps = 28.0;
  spec.world.mean_object_count = 18.0;
  spec.world.car_weight = 0.62;
  spec.world.truck_weight = 0.34;
  spec.world.pedestrian_weight = 0.0;
  spec.world.motorcycle_weight = 0.04;
  spec.world.spawn_behind_meters = 80.0;
  spec.world.spawn_ahead_meters = 150.0;

  spec.sensor.max_range_meters = 100.0;
  spec.sensor.near_field_meters = 8.0;

  spec.labeler.missing_track_rate = 0.08;
  spec.labeler.short_visibility_miss_rate = 0.50;

  spec.detector.max_range = 100.0;
  spec.detector.range_falloff_start = 45.0;
  spec.detector.recall_at_max_range = 0.30;
  spec.detector.ghost_tracks_per_scene = 4.0;
  spec.detector.localization_error_rate = 0.03;
  return spec;
}

ScenarioSpec ParkingLotSpec() {
  ScenarioSpec spec;
  spec.name = "parking_lot";
  spec.description =
      "Creeping through a packed lot: near-static cars wall to wall, "
      "pedestrians between them, short range, dense near-field occlusion.";

  spec.world.duration_seconds = 15.0;
  spec.world.frame_rate_hz = 5.0;
  spec.world.ego_speed_mps = 2.0;
  spec.world.mean_object_count = 40.0;
  spec.world.car_weight = 0.86;
  spec.world.truck_weight = 0.02;
  spec.world.pedestrian_weight = 0.11;
  spec.world.motorcycle_weight = 0.01;
  spec.world.spawn_behind_meters = 20.0;
  spec.world.spawn_ahead_meters = 30.0;

  spec.sensor.max_range_meters = 40.0;
  spec.sensor.near_field_meters = 4.0;
  spec.sensor.occlusion_visibility_threshold = 0.7;

  // Static targets are easy to label — but the repetition invites skipped
  // interior boxes.
  spec.labeler.missing_track_rate = 0.06;
  spec.labeler.missing_obs_rate = 0.004;
  spec.labeler.center_jitter_m = 0.05;

  spec.detector.base_recall = 0.96;
  spec.detector.range_falloff_start = 15.0;
  spec.detector.max_range = 40.0;
  spec.detector.ghost_tracks_per_scene = 2.0;
  spec.detector.track_class_confusion_rate = 0.03;
  return spec;
}

ScenarioSpec NightLowRecallSpec() {
  ScenarioSpec spec;
  spec.name = "night_low_recall";
  spec.description =
      "Night shift: a model far outside its training distribution — low "
      "recall, uncalibrated confidences, many hallucinations — over labels "
      "from sleepy annotators.";

  spec.world.duration_seconds = 15.0;
  spec.world.frame_rate_hz = 10.0;
  spec.world.mean_object_count = 20.0;

  spec.sensor.max_range_meters = 55.0;

  spec.labeler.missing_track_rate = 0.30;
  spec.labeler.short_visibility_miss_rate = 0.70;
  spec.labeler.missing_obs_rate = 0.003;
  spec.labeler.center_jitter_m = 0.14;

  spec.detector.calibrated = false;
  spec.detector.base_recall = 0.78;
  spec.detector.recall_at_max_range = 0.20;
  spec.detector.range_falloff_start = 20.0;
  spec.detector.max_range = 55.0;
  spec.detector.uncalibrated_conf_mean = 0.68;
  spec.detector.uncalibrated_conf_sd = 0.26;
  spec.detector.ghost_tracks_per_scene = 11.0;
  spec.detector.high_conf_ghost_rate = 0.30;
  spec.detector.track_class_confusion_rate = 0.10;
  spec.detector.localization_error_rate = 0.09;
  spec.detector.center_noise_m = 0.20;
  return spec;
}

ScenarioSpec MultiSensorDisagreementSpec() {
  ScenarioSpec spec;
  spec.name = "multi_sensor_disagreement";
  spec.description =
      "Flaky sensor rig: periodic whole-sensor dropout windows plus a "
      "mislocalizing detector, so human and model tracks disagree in time "
      "and space.";

  spec.world.duration_seconds = 15.0;
  spec.world.frame_rate_hz = 10.0;
  spec.world.mean_object_count = 26.0;

  // Two blackouts per scene: every track alive across one gets a forced
  // gap in both label and prediction streams.
  spec.sensor.dropout_windows.push_back({3.0, 4.2});
  spec.sensor.dropout_windows.push_back({9.5, 10.5});

  spec.labeler.missing_track_rate = 0.12;
  spec.labeler.missing_obs_rate = 0.004;

  spec.detector.base_recall = 0.93;
  spec.detector.localization_error_rate = 0.12;
  spec.detector.localization_noise_m = 1.4;
  spec.detector.center_noise_m = 0.18;
  spec.detector.yaw_noise_rad = 0.08;
  spec.detector.ghost_tracks_per_scene = 6.0;
  spec.detector.track_class_confusion_rate = 0.05;
  return spec;
}

struct PresetEntry {
  const char* name;
  ScenarioSpec (*make)();
};

// Registry order is the `--presets all` / sweep-grid order; append-only
// so existing sweep reports stay comparable.
constexpr PresetEntry kPresets[] = {
    {"lyft-like", LyftLikeSpec},
    {"internal-like", InternalLikeSpec},
    {"dense-urban-intersection", DenseUrbanIntersectionSpec},
    {"highway-convoy", HighwayConvoySpec},
    {"parking-lot", ParkingLotSpec},
    {"night-low-recall", NightLowRecallSpec},
    {"multi-sensor-disagreement", MultiSensorDisagreementSpec},
};

}  // namespace

std::vector<std::string> PresetNames() {
  std::vector<std::string> names;
  for (const PresetEntry& entry : kPresets) names.push_back(entry.name);
  return names;
}

std::vector<std::string> PresetDescriptions() {
  std::vector<std::string> descriptions;
  for (const PresetEntry& entry : kPresets) {
    descriptions.push_back(entry.make().description);
  }
  return descriptions;
}

Result<ScenarioSpec> PresetByName(const std::string& name) {
  for (const PresetEntry& entry : kPresets) {
    if (name == entry.name) return entry.make();
  }
  std::string known;
  for (const PresetEntry& entry : kPresets) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  return Status::InvalidArgument("unknown preset: " + name +
                                 " (valid presets: " + known + ")");
}

}  // namespace fixy::scenario

namespace fixy::sim {

// The legacy profile entry points, re-homed onto the preset registry: the
// declarations stay in sim/profiles.h so every existing caller compiles
// unchanged, and the definitions are now one compile away from the
// lyft-like / internal-like specs — byte-identical by the frozen-contract
// test in scenario_test.
namespace {

SimProfile CompilePresetOrDie(const char* preset) {
  const Result<scenario::ScenarioSpec> spec = scenario::PresetByName(preset);
  if (spec.ok()) {
    Result<SimProfile> profile = scenario::CompileScenario(*spec);
    if (profile.ok()) return *std::move(profile);
    std::fprintf(stderr, "fatal: built-in preset '%s' does not compile: %s\n",
                 preset, profile.status().ToString().c_str());
  } else {
    std::fprintf(stderr, "fatal: built-in preset '%s' is not registered\n",
                 preset);
  }
  // Unreachable for the shipped registry (covered by scenario_test); a
  // broken built-in is a programming error, not an input error.
  std::abort();
}

}  // namespace

SimProfile LyftLikeProfile() { return CompilePresetOrDie("lyft-like"); }

SimProfile InternalLikeProfile() {
  return CompilePresetOrDie("internal-like");
}

}  // namespace fixy::sim
