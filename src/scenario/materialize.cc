#include "scenario/materialize.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "io/fxb.h"
#include "io/scene_io.h"
#include "json/json.h"
#include "obs/metrics.h"
#include "scenario/ledger_io.h"

namespace fixy::scenario {
namespace {

constexpr char kLockFormat[] = "fixy-scenario-lock";
constexpr int kLockVersion = 1;

json::Value LockJson(const ScenarioSpec& spec, int scene_count,
                     uint64_t seed) {
  json::Object root;
  root["format"] = kLockFormat;
  root["version"] = kLockVersion;
  root["scenes"] = scene_count;
  root["seed"] = seed;
  root["spec"] = ScenarioToJson(spec);
  return root;
}

Status WriteLock(const json::Value& lock, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << json::Write(lock, /*pretty=*/true) << "\n";
  out.close();
  if (!out.good()) return Status::IoError("failed writing: " + path);
  return Status::Ok();
}

/// True when the directory's lock file records exactly this recipe.
bool LockMatches(const std::string& directory, const json::Value& want) {
  std::string text;
  if (!io::ReadFileInto(ScenarioLockPath(directory), &text).ok()) return false;
  const Result<json::Value> have = json::Parse(text);
  return have.ok() && *have == want;
}

/// Reloads a previously materialized dataset: fresh FXB cache when
/// present, strict JSON load otherwise, plus the ledger.
Result<sim::GeneratedDataset> ReloadDataset(const std::string& directory) {
  sim::GeneratedDataset data;
  const Result<io::FxbReader> cache = io::OpenFreshCache(directory);
  if (cache.ok()) {
    data.dataset.name = cache->dataset_name();
    for (size_t i = 0; i < cache->scene_count(); ++i) {
      FIXY_ASSIGN_OR_RETURN(Scene scene, cache->DecodeScene(i));
      data.dataset.scenes.push_back(std::move(scene));
    }
  } else {
    FIXY_ASSIGN_OR_RETURN(data.dataset, io::LoadDataset(directory));
  }
  FIXY_ASSIGN_OR_RETURN(data.ledger, LoadLedger(LedgerPath(directory)));
  return data;
}

}  // namespace

Result<sim::GeneratedDataset> GenerateScenarioDataset(
    const ScenarioSpec& spec, int scene_count, std::optional<uint64_t> seed) {
  FIXY_ASSIGN_OR_RETURN(const sim::SimProfile profile, CompileScenario(spec));
  const int count = scene_count > 0 ? scene_count : spec.scene_count;
  const uint64_t use_seed = seed.value_or(spec.seed);
  const obs::ScopedStageTimer timer("scenario.generate");
  sim::GeneratedDataset data =
      sim::GenerateDataset(profile, profile.name, count, use_seed);
  obs::Count("scenario.scenes_generated", static_cast<uint64_t>(count));
  return data;
}

Result<MaterializedDataset> MaterializeScenarioDataset(
    const ScenarioSpec& spec, const std::string& directory,
    const MaterializeOptions& options) {
  const int count =
      options.scene_count > 0 ? options.scene_count : spec.scene_count;
  const uint64_t seed = options.seed.value_or(spec.seed);
  const json::Value lock = LockJson(spec, count, seed);

  MaterializedDataset result;
  if (options.reuse && LockMatches(directory, lock)) {
    Result<sim::GeneratedDataset> reloaded = ReloadDataset(directory);
    if (reloaded.ok()) {
      obs::Count("scenario.datasets_reused");
      result.data = *std::move(reloaded);
      result.reused = true;
      return result;
    }
    // A matching lock over an unloadable dataset (deleted scene files,
    // corrupt cache) falls through to regeneration.
  }

  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + directory + ": " +
                           ec.message());
  }
  // Drop a stale lock first: if anything below fails partway, the
  // directory reads as not-materialized rather than as the old recipe.
  std::filesystem::remove(ScenarioLockPath(directory), ec);

  FIXY_ASSIGN_OR_RETURN(result.data,
                        GenerateScenarioDataset(spec, count, seed));
  result.scenes_generated = count;
  FIXY_RETURN_IF_ERROR(io::SaveDataset(result.data.dataset, directory));
  if (options.write_fxb) {
    FIXY_RETURN_IF_ERROR(
        io::BuildFxbCacheFromDataset(result.data.dataset, directory).status());
  }
  FIXY_RETURN_IF_ERROR(SaveLedger(result.data.ledger, LedgerPath(directory)));
  FIXY_RETURN_IF_ERROR(WriteLock(lock, ScenarioLockPath(directory)));
  return result;
}

std::string ScenarioLockPath(const std::string& directory) {
  return directory + "/scenario.lock.json";
}

}  // namespace fixy::scenario
