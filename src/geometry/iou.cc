#include "geometry/iou.h"

#include <algorithm>

namespace fixy::geom {

ConvexPolygon BoxBevPolygon(const Box3d& box) {
  const auto corners = box.BevCorners();
  return ConvexPolygon(std::vector<Vec2>(corners.begin(), corners.end()));
}

double BevIntersectionArea(const Box3d& a, const Box3d& b) {
  if (!a.IsValid() || !b.IsValid()) return 0.0;
  return BoxBevPolygon(a).Intersect(BoxBevPolygon(b)).Area();
}

double BevIou(const Box3d& a, const Box3d& b) {
  if (!a.IsValid() || !b.IsValid()) return 0.0;
  const double inter = BevIntersectionArea(a, b);
  const double uni = a.BevArea() + b.BevArea() - inter;
  if (uni <= 0.0) return 0.0;
  return std::clamp(inter / uni, 0.0, 1.0);
}

double Iou3d(const Box3d& a, const Box3d& b) {
  if (!a.IsValid() || !b.IsValid()) return 0.0;
  const double bev_inter = BevIntersectionArea(a, b);
  const double z_overlap =
      std::max(0.0, std::min(a.ZMax(), b.ZMax()) - std::max(a.ZMin(), b.ZMin()));
  const double inter = bev_inter * z_overlap;
  const double uni = a.Volume() + b.Volume() - inter;
  if (uni <= 0.0) return 0.0;
  return std::clamp(inter / uni, 0.0, 1.0);
}

}  // namespace fixy::geom
