// Oriented 3D bounding boxes, the observation geometry used by Fixy.
#ifndef FIXY_GEOMETRY_BOX_H_
#define FIXY_GEOMETRY_BOX_H_

#include <array>

#include "geometry/vec.h"

namespace fixy::geom {

/// An oriented 3D bounding box: axis-aligned in z (gravity-aligned), rotated
/// by `yaw` radians about the vertical axis in the ground (x, y) plane. This
/// is the standard AV-perception box parameterization (as in the Lyft Level
/// 5 and nuScenes datasets).
struct Box3d {
  /// Center of the box in world coordinates (z is the vertical center).
  Vec3 center;
  /// Full extents: length (along heading), width (lateral), height
  /// (vertical). All must be non-negative.
  double length = 0.0;
  double width = 0.0;
  double height = 0.0;
  /// Heading angle in radians, counter-clockwise from +x.
  double yaw = 0.0;

  Box3d() = default;
  Box3d(const Vec3& center_in, double length_in, double width_in,
        double height_in, double yaw_in)
      : center(center_in),
        length(length_in),
        width(width_in),
        height(height_in),
        yaw(yaw_in) {}

  /// Volume in cubic meters.
  double Volume() const { return length * width * height; }

  /// Footprint area in the ground plane, in square meters.
  double BevArea() const { return length * width; }

  /// True if all extents are strictly positive.
  bool IsValid() const { return length > 0.0 && width > 0.0 && height > 0.0; }

  /// The four footprint corners in the ground plane, counter-clockwise
  /// starting from the front-left corner.
  std::array<Vec2, 4> BevCorners() const;

  /// Vertical interval occupied by the box: [center.z - h/2, center.z + h/2].
  double ZMin() const { return center.z - height / 2.0; }
  double ZMax() const { return center.z + height / 2.0; }

  /// Euclidean distance between the box center and `point` in the ground
  /// plane (the "distance to AV" used by the Distance feature).
  double BevCenterDistance(const Vec2& point) const {
    return (center.Xy() - point).Norm();
  }

  /// True if `point` lies inside (or on the edge of) the footprint.
  bool BevContains(const Vec2& point) const;
};

}  // namespace fixy::geom

#endif  // FIXY_GEOMETRY_BOX_H_
