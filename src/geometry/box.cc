#include "geometry/box.h"

#include <cmath>

namespace fixy::geom {

std::array<Vec2, 4> Box3d::BevCorners() const {
  const double hl = length / 2.0;
  const double hw = width / 2.0;
  // Local-frame corners, counter-clockwise starting at front-left.
  const std::array<Vec2, 4> local = {
      Vec2{hl, hw}, Vec2{-hl, hw}, Vec2{-hl, -hw}, Vec2{hl, -hw}};
  std::array<Vec2, 4> world;
  const Vec2 c = center.Xy();
  for (size_t i = 0; i < 4; ++i) {
    world[i] = c + local[i].Rotated(yaw);
  }
  return world;
}

bool Box3d::BevContains(const Vec2& point) const {
  // Transform into the box frame and compare against half extents.
  const Vec2 local = (point - center.Xy()).Rotated(-yaw);
  return std::abs(local.x) <= length / 2.0 + 1e-12 &&
         std::abs(local.y) <= width / 2.0 + 1e-12;
}

}  // namespace fixy::geom
