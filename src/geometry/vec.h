// 2D and 3D vector types used throughout the geometry and simulation code.
#ifndef FIXY_GEOMETRY_VEC_H_
#define FIXY_GEOMETRY_VEC_H_

#include <cmath>

namespace fixy::geom {

/// A 2D vector / point.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2& o) const {
    return x == o.x && y == o.y;
  }

  constexpr double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// Z-component of the 3D cross product; positive when `o` is
  /// counter-clockwise from this vector.
  constexpr double Cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::sqrt(x * x + y * y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }
  /// Rotates counter-clockwise by `angle` radians.
  Vec2 Rotated(double angle) const {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
};

inline constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

/// A 3D vector / point.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_in, double y_in, double z_in)
      : x(x_in), y(y_in), z(z_in) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }

  constexpr double Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  double Norm() const { return std::sqrt(x * x + y * y + z * z); }
  constexpr double SquaredNorm() const { return x * x + y * y + z * z; }
  /// Drops the z component.
  constexpr Vec2 Xy() const { return {x, y}; }
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

}  // namespace fixy::geom

#endif  // FIXY_GEOMETRY_VEC_H_
