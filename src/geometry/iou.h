// Intersection-over-union for oriented boxes. BEV IoU drives observation
// association (bundling and tracking) exactly as in the paper's worked
// example ("compute_iou(box1, box2) > 0.5").
#ifndef FIXY_GEOMETRY_IOU_H_
#define FIXY_GEOMETRY_IOU_H_

#include "geometry/box.h"
#include "geometry/polygon.h"

namespace fixy::geom {

/// Footprint polygon of `box` in the ground plane.
ConvexPolygon BoxBevPolygon(const Box3d& box);

/// Intersection area of the two box footprints (rotated rectangles).
double BevIntersectionArea(const Box3d& a, const Box3d& b);

/// Birds-eye-view IoU: footprint intersection / footprint union.
/// Returns 0 when either box has a degenerate footprint.
double BevIou(const Box3d& a, const Box3d& b);

/// Full 3D IoU: BEV intersection times vertical overlap, divided by the
/// union of the volumes. Returns 0 when either box is degenerate.
double Iou3d(const Box3d& a, const Box3d& b);

}  // namespace fixy::geom

#endif  // FIXY_GEOMETRY_IOU_H_
