// Convex polygon operations in the ground plane; the substrate for rotated
// bounding-box intersection (BEV IoU).
#ifndef FIXY_GEOMETRY_POLYGON_H_
#define FIXY_GEOMETRY_POLYGON_H_

#include <vector>

#include "geometry/vec.h"

namespace fixy::geom {

/// A convex polygon with vertices in counter-clockwise order. An empty
/// vertex list denotes the empty polygon.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;
  explicit ConvexPolygon(std::vector<Vec2> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Vec2>& vertices() const { return vertices_; }
  bool empty() const { return vertices_.size() < 3; }

  /// Signed area via the shoelace formula; counter-clockwise polygons have
  /// positive area. Returns 0 for degenerate polygons.
  double SignedArea() const;

  /// Absolute area.
  double Area() const { return std::abs(SignedArea()); }

  /// Intersection with another convex polygon (Sutherland-Hodgman clipping).
  /// Both polygons must be convex with counter-clockwise vertices.
  ConvexPolygon Intersect(const ConvexPolygon& clip) const;

 private:
  std::vector<Vec2> vertices_;
};

}  // namespace fixy::geom

#endif  // FIXY_GEOMETRY_POLYGON_H_
