#include "geometry/polygon.h"

#include <cmath>

namespace fixy::geom {

namespace {

// True if `p` is on the interior side (left) of the directed edge a->b,
// within tolerance.
bool Inside(const Vec2& p, const Vec2& a, const Vec2& b) {
  return (b - a).Cross(p - a) >= -1e-12;
}

// Intersection point of segment p1->p2 with the infinite line through a->b.
Vec2 LineIntersection(const Vec2& p1, const Vec2& p2, const Vec2& a,
                      const Vec2& b) {
  const Vec2 r = p2 - p1;
  const Vec2 s = b - a;
  const double denom = r.Cross(s);
  if (std::abs(denom) < 1e-15) {
    // Parallel within tolerance; fall back to the segment midpoint, which is
    // the best degenerate answer and keeps areas bounded.
    return (p1 + p2) * 0.5;
  }
  const double t = (a - p1).Cross(s) / denom;
  return p1 + r * t;
}

}  // namespace

double ConvexPolygon::SignedArea() const {
  if (vertices_.size() < 3) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2& p = vertices_[i];
    const Vec2& q = vertices_[(i + 1) % vertices_.size()];
    sum += p.Cross(q);
  }
  return sum / 2.0;
}

ConvexPolygon ConvexPolygon::Intersect(const ConvexPolygon& clip) const {
  if (empty() || clip.empty()) return ConvexPolygon();
  std::vector<Vec2> output = vertices_;
  const auto& clip_vertices = clip.vertices();
  for (size_t i = 0; i < clip_vertices.size() && !output.empty(); ++i) {
    const Vec2& a = clip_vertices[i];
    const Vec2& b = clip_vertices[(i + 1) % clip_vertices.size()];
    std::vector<Vec2> input = std::move(output);
    output.clear();
    for (size_t j = 0; j < input.size(); ++j) {
      const Vec2& current = input[j];
      const Vec2& prev = input[(j + input.size() - 1) % input.size()];
      const bool current_inside = Inside(current, a, b);
      const bool prev_inside = Inside(prev, a, b);
      if (current_inside) {
        if (!prev_inside) {
          output.push_back(LineIntersection(prev, current, a, b));
        }
        output.push_back(current);
      } else if (prev_inside) {
        output.push_back(LineIntersection(prev, current, a, b));
      }
    }
  }
  if (output.size() < 3) return ConvexPolygon();
  return ConvexPolygon(std::move(output));
}

}  // namespace fixy::geom
