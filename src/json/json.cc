#include "json/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace fixy::json {

Type Value::type() const {
  switch (data_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kNumber;
    case 3:
      return Type::kString;
    case 4:
      return Type::kArray;
    case 5:
      return Type::kObject;
  }
  return Type::kNull;
}

bool Value::AsBool() const {
  FIXY_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return std::get<bool>(data_);
}

double Value::AsDouble() const {
  FIXY_CHECK_MSG(is_number(), "JSON value is not a number");
  return std::get<double>(data_);
}

int64_t Value::AsInt64() const { return static_cast<int64_t>(AsDouble()); }

const std::string& Value::AsString() const {
  FIXY_CHECK_MSG(is_string(), "JSON value is not a string");
  return std::get<std::string>(data_);
}

const Array& Value::AsArray() const {
  FIXY_CHECK_MSG(is_array(), "JSON value is not an array");
  return std::get<Array>(data_);
}

Array& Value::AsArray() {
  FIXY_CHECK_MSG(is_array(), "JSON value is not an array");
  return std::get<Array>(data_);
}

const Object& Value::AsObject() const {
  FIXY_CHECK_MSG(is_object(), "JSON value is not an object");
  return std::get<Object>(data_);
}

Object& Value::AsObject() {
  FIXY_CHECK_MSG(is_object(), "JSON value is not an object");
  return std::get<Object>(data_);
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(data_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Result<bool> Value::GetBool(const std::string& key) const {
  const Value* v = Find(key);
  if (v == nullptr) return Status::NotFound("missing key: " + key);
  if (!v->is_bool()) {
    return Status::InvalidArgument("key is not a bool: " + key);
  }
  return v->AsBool();
}

Result<double> Value::GetDouble(const std::string& key) const {
  const Value* v = Find(key);
  if (v == nullptr) return Status::NotFound("missing key: " + key);
  if (!v->is_number()) {
    return Status::InvalidArgument("key is not a number: " + key);
  }
  return v->AsDouble();
}

Result<int64_t> Value::GetInt64(const std::string& key) const {
  FIXY_ASSIGN_OR_RETURN(double d, GetDouble(key));
  return static_cast<int64_t>(d);
}

Result<std::string> Value::GetString(const std::string& key) const {
  const Value* v = Find(key);
  if (v == nullptr) return Status::NotFound("missing key: " + key);
  if (!v->is_string()) {
    return Status::InvalidArgument("key is not a string: " + key);
  }
  return v->AsString();
}

namespace {

// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    FIXY_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& message) const {
    // Compute line and column for the error position.
    int line = 1;
    int col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::InvalidArgument(
        StrFormat("JSON parse error at line %d, column %d: %s", line, col,
                  message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char expected) {
    if (!AtEnd() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of input");
    if (++depth_ > kMaxDepth) {
      --depth_;
      return Error("maximum nesting depth exceeded");
    }
    Result<Value> result = ParseValueInner();
    --depth_;
    return result;
  }

  Result<Value> ParseValueInner() {
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        if (ConsumeLiteral("true")) return Value(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value(nullptr);
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    Consume('{');
    Object obj;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(obj));
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      FIXY_ASSIGN_OR_RETURN(Value key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      FIXY_ASSIGN_OR_RETURN(Value value, ParseValue());
      obj[key.AsString()] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(obj));
      return Error("expected ',' or '}' in object");
    }
  }

  // Bounded first-pass scan from just after '[': counts element-separating
  // commas (skipping strings and nested containers) up to the closing ']'
  // or the scan window, whichever comes first. The result is a capacity
  // hint — exact within the window, a lower bound past it — that lets
  // ParseArray reserve once instead of growth-doubling through the large
  // frame/observation arrays of scene files. Only used at shallow nesting
  // so hostile deeply-nested input cannot turn the scan quadratic.
  size_t EstimateArrayCount() const {
    size_t depth = 0;
    size_t commas = 0;
    bool in_string = false;
    bool escaped = false;
    const size_t end = std::min(text_.size(), pos_ + kArrayScanWindow);
    for (size_t i = pos_; i < end; ++i) {
      const char c = text_[i];
      if (in_string) {
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      switch (c) {
        case '"':
          in_string = true;
          break;
        case '[':
        case '{':
          ++depth;
          break;
        case ']':
          if (depth == 0) return commas + 1;
          --depth;
          break;
        case '}':
          if (depth > 0) --depth;
          break;
        case ',':
          if (depth == 0) ++commas;
          break;
        default:
          break;
      }
    }
    return commas + 1;
  }

  Result<Value> ParseArray() {
    Consume('[');
    Array arr;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(arr));
    if (depth_ <= kArrayScanMaxDepth) arr.reserve(EstimateArrayCount());
    for (;;) {
      FIXY_ASSIGN_OR_RETURN(Value value, ParseValue());
      arr.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(arr));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseString() {
    Consume('"');
    std::string out;
    // The distance to the next quote bounds the decoded length (escapes
    // only shrink it), so one find() sizes the string up front.
    const size_t close = text_.find('"', pos_);
    if (close != std::string_view::npos) out.reserve(close - pos_);
    while (!AtEnd()) {
      const char c = text_[pos_++];
      if (c == '"') return Value(std::move(out));
      if (c == '\\') {
        if (AtEnd()) return Error("unterminated escape sequence");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Error("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape digit");
              }
            }
            AppendUtf8(code, &out);
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("invalid number");
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("invalid number: " + token);
    }
    return Value(value);
  }

  static constexpr int kMaxDepth = 256;
  /// Capacity-hint scans only run this close to the document root (deep
  /// arrays are small in practice and rescanning them would compound).
  static constexpr int kArrayScanMaxDepth = 4;
  /// And never look further ahead than this many bytes, which also caps
  /// the reserve a lying prefix can provoke.
  static constexpr size_t kArrayScanWindow = size_t{1} << 16;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void WriteEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", static_cast<unsigned char>(c)));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void WriteNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no NaN/Infinity literal. Emitting them would produce a
    // document our own parser rejects; emit null instead (documented on
    // Write() in json.h).
    out->append("null");
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    // Integral value: emit without a decimal point.
    out->append(StrFormat("%lld", static_cast<long long>(d)));
  } else {
    out->append(DoubleToString(d, 17));
  }
}

void WriteValue(const Value& value, bool pretty, int indent,
                std::string* out) {
  const std::string pad(pretty ? static_cast<size_t>(indent) * 2 : 0, ' ');
  const std::string child_pad(pretty ? (static_cast<size_t>(indent) + 1) * 2
                                     : 0,
                              ' ');
  switch (value.type()) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(value.AsBool() ? "true" : "false");
      break;
    case Type::kNumber:
      WriteNumber(value.AsDouble(), out);
      break;
    case Type::kString:
      WriteEscaped(value.AsString(), out);
      break;
    case Type::kArray: {
      const Array& arr = value.AsArray();
      if (arr.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (pretty) {
          out->push_back('\n');
          out->append(child_pad);
        }
        WriteValue(arr[i], pretty, indent + 1, out);
      }
      if (pretty) {
        out->push_back('\n');
        out->append(pad);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& obj = value.AsObject();
      if (obj.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : obj) {
        if (!first) out->push_back(',');
        first = false;
        if (pretty) {
          out->push_back('\n');
          out->append(child_pad);
        }
        WriteEscaped(key, out);
        out->push_back(':');
        if (pretty) out->push_back(' ');
        WriteValue(member, pretty, indent + 1, out);
      }
      if (pretty) {
        out->push_back('\n');
        out->append(pad);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

std::string Write(const Value& value, bool pretty) {
  std::string out;
  WriteValue(value, pretty, 0, &out);
  return out;
}

}  // namespace fixy::json
