// A minimal, complete JSON library: value model, recursive-descent parser,
// and writer. Serialization substrate for the .fixy scene format (no
// third-party JSON dependency is available offline).
#ifndef FIXY_JSON_JSON_H_
#define FIXY_JSON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace fixy::json {

class Value;

using Array = std::vector<Value>;
/// Object keys are kept sorted (std::map) so serialization is canonical and
/// round-trips are stable.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// A JSON value. Numbers are stored as double (sufficient for this
/// library's data: coordinates, scores, counts, ids below 2^53).
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(int64_t i) : data_(static_cast<double>(i)) {}
  Value(uint64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; each aborts if the value has a different type. Use
  /// the Get* helpers below for fallible access.
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt64() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// Fallible object-member lookup with type checking. `context` names the
  /// object in error messages.
  Result<bool> GetBool(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<int64_t> GetInt64(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;

  /// Pointer to the member, or nullptr if absent (or if this is not an
  /// object).
  const Value* Find(const std::string& key) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document. Errors: InvalidArgument with a
/// line/column-annotated message on malformed input; trailing non-space
/// characters are an error.
Result<Value> Parse(std::string_view text);

/// Serializes `value`. With `pretty`, uses 2-space indentation.
///
/// Non-finite numbers (NaN, +/-Infinity) have no JSON representation and
/// are written as `null` — the emitted document always re-parses, and the
/// information loss is explicit at the reader (which sees a type mismatch
/// rather than a silently corrupted number).
std::string Write(const Value& value, bool pretty = false);

}  // namespace fixy::json

#endif  // FIXY_JSON_JSON_H_
