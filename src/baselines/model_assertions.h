// Ad-hoc model assertions — the baseline of Kang et al., "Model Assertions
// for Monitoring and Improving ML Models" (MLSys 2020), reimplemented as
// the paper's evaluation deploys them:
//
//   - consistency: objects predicted consistently by the model in
//     consecutive frames should have human labels (used to find missing
//     tracks, Section 8.2);
//   - appear: an observation should have observations in nearby timestamps
//     (flags very short tracks);
//   - flicker: an observation should not appear and disappear rapidly
//     (flags tracks with frame gaps);
//   - multibox: three or more boxes should not mutually overlap.
//
// MAs return flagged data with *ad-hoc severity scores*: the evaluation
// orders consistency flags randomly or by model confidence, which is
// exactly the calibration weakness LOA addresses.
#ifndef FIXY_BASELINES_MODEL_ASSERTIONS_H_
#define FIXY_BASELINES_MODEL_ASSERTIONS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/proposal.h"
#include "data/scene.h"
#include "dsl/track_builder.h"

namespace fixy::baselines {

/// How the consistency assertion orders its flags (the paper compares
/// "Ad-hoc MA (rand)" and "Ad-hoc MA (conf)").
enum class MaOrdering {
  kRandom = 0,
  kConfidence = 1,
};

struct MaOptions {
  TrackBuilderOptions track_builder;
  /// Minimum consecutive model detections for the consistency assertion.
  int consistency_min_length = 2;
  /// Pairwise BEV IoU above which boxes count as overlapping for multibox.
  double multibox_iou = 0.15;
  /// Maximum track length flagged by the appear assertion.
  int appear_max_observations = 2;
};

/// Consistency assertion: flags model-only tracks of at least
/// `consistency_min_length` detections that have no associated human
/// label, ordered randomly (seeded) or by mean model confidence.
Result<std::vector<ErrorProposal>> ConsistencyAssertion(
    const Scene& scene, MaOrdering ordering, uint64_t seed,
    const MaOptions& options = {});

/// Appear assertion: flags model tracks with at most
/// `appear_max_observations` observations.
Result<std::vector<ErrorProposal>> AppearAssertion(
    const Scene& scene, const MaOptions& options = {});

/// Flicker assertion: flags model tracks whose detections have frame gaps.
Result<std::vector<ErrorProposal>> FlickerAssertion(
    const Scene& scene, const MaOptions& options = {});

/// Multibox assertion: flags frames where three or more model boxes
/// mutually overlap; one proposal per offending group.
Result<std::vector<ErrorProposal>> MultiboxAssertion(
    const Scene& scene, const MaOptions& options = {});

}  // namespace fixy::baselines

#endif  // FIXY_BASELINES_MODEL_ASSERTIONS_H_
