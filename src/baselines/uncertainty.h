// Uncertainty sampling baseline (Section 8.4): "we sampled predictions
// around a confidence threshold", the standard active-learning heuristic.
// Predictions closest to the threshold rank first — which is exactly why
// it cannot surface the high-confidence (0.95) model errors Fixy finds.
#ifndef FIXY_BASELINES_UNCERTAINTY_H_
#define FIXY_BASELINES_UNCERTAINTY_H_

#include <vector>

#include "common/result.h"
#include "core/proposal.h"
#include "data/scene.h"
#include "dsl/track_builder.h"

namespace fixy::baselines {

struct UncertaintyOptions {
  /// The decision threshold predictions are sampled around.
  double confidence_threshold = 0.5;
  /// Group per assembled track and keep only each track's most uncertain
  /// prediction, so the top-k is not spent on one object.
  bool deduplicate_by_track = true;
  TrackBuilderOptions track_builder;
};

/// Ranks model predictions by closeness of their confidence to the
/// threshold (most uncertain first), as model-error proposals.
Result<std::vector<ErrorProposal>> UncertaintySampling(
    const Scene& scene, const UncertaintyOptions& options = {});

}  // namespace fixy::baselines

#endif  // FIXY_BASELINES_UNCERTAINTY_H_
