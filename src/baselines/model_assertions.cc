#include "baselines/model_assertions.h"

#include <algorithm>

#include "common/macros.h"
#include "common/random.h"
#include "core/ranker.h"
#include "geometry/iou.h"

namespace fixy::baselines {

namespace {

// Representative proposal for a track (closest-approach bundle).
ErrorProposal TrackProposal(const Scene& scene, const Track& track,
                            ProposalKind kind) {
  size_t best = 0;
  double best_distance = -1.0;
  for (size_t b = 0; b < track.bundles().size(); ++b) {
    const ObservationBundle& bundle = track.bundles()[b];
    const double d = (bundle.MeanCenter().Xy() - bundle.ego_position).Norm();
    if (best_distance < 0.0 || d < best_distance) {
      best = b;
      best_distance = d;
    }
  }
  const ObservationBundle& bundle = track.bundles()[best];
  const Observation* model = bundle.FindBySource(ObservationSource::kModel);
  const Observation& obs =
      model != nullptr ? *model : bundle.observations.front();

  ErrorProposal proposal;
  proposal.scene_name = scene.name();
  proposal.kind = kind;
  proposal.track_id = track.id();
  proposal.frame_index = bundle.frame_index;
  proposal.box = obs.box;
  proposal.object_class = track.MajorityClass().value_or(ObjectClass::kCar);
  proposal.model_confidence = track.MeanModelConfidence().value_or(0.0);
  proposal.first_frame = track.FirstFrame();
  proposal.last_frame = track.LastFrame();
  return proposal;
}

Result<TrackSet> BuildTracks(const Scene& scene, const MaOptions& options) {
  const TrackBuilder builder(options.track_builder);
  return builder.Build(scene);
}

Scene ModelOnlyScene(const Scene& scene) {
  Scene filtered(scene.name(), scene.frame_rate_hz());
  for (const Frame& frame : scene.frames()) {
    Frame copy = frame;
    copy.observations.clear();
    for (const Observation& obs : frame.observations) {
      if (obs.source == ObservationSource::kModel) {
        copy.observations.push_back(obs);
      }
    }
    filtered.AddFrame(std::move(copy));
  }
  return filtered;
}

}  // namespace

Result<std::vector<ErrorProposal>> ConsistencyAssertion(
    const Scene& scene, MaOrdering ordering, uint64_t seed,
    const MaOptions& options) {
  FIXY_ASSIGN_OR_RETURN(TrackSet tracks, BuildTracks(scene, options));
  Rng rng(seed);

  std::vector<ErrorProposal> proposals;
  for (const Track& track : tracks.tracks) {
    // The assertion fires on consistent model predictions lacking any
    // human label.
    if (track.HasSource(ObservationSource::kHuman)) continue;
    if (!track.HasSource(ObservationSource::kModel)) continue;
    if (static_cast<int>(track.TotalObservations()) <
        options.consistency_min_length) {
      continue;
    }
    ErrorProposal proposal =
        TrackProposal(scene, track, ProposalKind::kMissingTrack);
    // Ad-hoc severity: random or raw confidence — exactly the calibration
    // weakness the paper contrasts with LOA's learned scores.
    proposal.score = ordering == MaOrdering::kRandom
                         ? rng.Uniform()
                         : proposal.model_confidence;
    proposals.push_back(std::move(proposal));
  }
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ErrorProposal>> AppearAssertion(const Scene& scene,
                                                   const MaOptions& options) {
  const Scene model_scene = ModelOnlyScene(scene);
  FIXY_ASSIGN_OR_RETURN(TrackSet tracks, BuildTracks(model_scene, options));
  std::vector<ErrorProposal> proposals;
  for (const Track& track : tracks.tracks) {
    if (static_cast<int>(track.TotalObservations()) >
        options.appear_max_observations) {
      continue;
    }
    ErrorProposal proposal =
        TrackProposal(scene, track, ProposalKind::kModelError);
    // Shorter tracks are more severe.
    proposal.score =
        1.0 / (1.0 + static_cast<double>(track.TotalObservations()));
    proposals.push_back(std::move(proposal));
  }
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ErrorProposal>> FlickerAssertion(const Scene& scene,
                                                    const MaOptions& options) {
  const Scene model_scene = ModelOnlyScene(scene);
  FIXY_ASSIGN_OR_RETURN(TrackSet tracks, BuildTracks(model_scene, options));
  std::vector<ErrorProposal> proposals;
  for (const Track& track : tracks.tracks) {
    // Count frame gaps between consecutive bundles.
    int gaps = 0;
    const auto& bundles = track.bundles();
    for (size_t b = 0; b + 1 < bundles.size(); ++b) {
      if (bundles[b + 1].frame_index - bundles[b].frame_index > 1) ++gaps;
    }
    if (gaps == 0) continue;
    ErrorProposal proposal =
        TrackProposal(scene, track, ProposalKind::kModelError);
    proposal.score = static_cast<double>(gaps);
    proposals.push_back(std::move(proposal));
  }
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ErrorProposal>> MultiboxAssertion(
    const Scene& scene, const MaOptions& options) {
  std::vector<ErrorProposal> proposals;
  for (const Frame& frame : scene.frames()) {
    // Model boxes in this frame.
    std::vector<const Observation*> boxes;
    for (const Observation& obs : frame.observations) {
      if (obs.source == ObservationSource::kModel) boxes.push_back(&obs);
    }
    // Find any box overlapped by at least two others.
    for (size_t i = 0; i < boxes.size(); ++i) {
      int overlaps = 0;
      for (size_t j = 0; j < boxes.size(); ++j) {
        if (i == j) continue;
        if (geom::BevIou(boxes[i]->box, boxes[j]->box) >
            options.multibox_iou) {
          ++overlaps;
        }
      }
      if (overlaps < 2) continue;
      ErrorProposal proposal;
      proposal.scene_name = scene.name();
      proposal.kind = ProposalKind::kModelError;
      proposal.track_id = boxes[i]->id;  // no track context at frame level
      proposal.frame_index = frame.index;
      proposal.box = boxes[i]->box;
      proposal.object_class = boxes[i]->object_class;
      proposal.model_confidence = boxes[i]->confidence;
      proposal.first_frame = frame.index;
      proposal.last_frame = frame.index;
      proposal.score = static_cast<double>(overlaps);
      proposals.push_back(std::move(proposal));
    }
  }
  RankProposals(&proposals);
  return proposals;
}

}  // namespace fixy::baselines
