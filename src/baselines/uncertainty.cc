#include "baselines/uncertainty.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/macros.h"
#include "core/ranker.h"

namespace fixy::baselines {

Result<std::vector<ErrorProposal>> UncertaintySampling(
    const Scene& scene, const UncertaintyOptions& options) {
  // Assemble tracks over model predictions so proposals carry track spans
  // (needed for error matching) and can be deduplicated per object.
  Scene model_scene(scene.name(), scene.frame_rate_hz());
  for (const Frame& frame : scene.frames()) {
    Frame copy = frame;
    copy.observations.clear();
    for (const Observation& obs : frame.observations) {
      if (obs.source == ObservationSource::kModel) {
        copy.observations.push_back(obs);
      }
    }
    model_scene.AddFrame(std::move(copy));
  }
  const TrackBuilder builder(options.track_builder);
  FIXY_ASSIGN_OR_RETURN(TrackSet tracks, builder.Build(model_scene));

  std::vector<ErrorProposal> proposals;
  for (const Track& track : tracks.tracks) {
    ErrorProposal best;
    double best_score = -1.0;
    for (const ObservationBundle& bundle : track.bundles()) {
      for (const Observation& obs : bundle.observations) {
        // Uncertainty peaks at the threshold: score in (0, 1].
        const double score =
            1.0 - std::abs(obs.confidence - options.confidence_threshold);
        if (score <= best_score && options.deduplicate_by_track) continue;
        ErrorProposal proposal;
        proposal.scene_name = scene.name();
        proposal.kind = ProposalKind::kModelError;
        proposal.track_id = track.id();
        proposal.frame_index = bundle.frame_index;
        proposal.box = obs.box;
        proposal.object_class = obs.object_class;
        proposal.model_confidence = obs.confidence;
        proposal.first_frame = track.FirstFrame();
        proposal.last_frame = track.LastFrame();
        proposal.score = score;
        if (options.deduplicate_by_track) {
          best = std::move(proposal);
          best_score = score;
        } else {
          proposals.push_back(std::move(proposal));
        }
      }
    }
    if (options.deduplicate_by_track && best_score >= 0.0) {
      proposals.push_back(std::move(best));
    }
  }
  RankProposals(&proposals);
  return proposals;
}

}  // namespace fixy::baselines
