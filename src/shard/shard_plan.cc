#include "shard/shard_plan.h"

#include <utility>

#include "common/macros.h"

namespace fixy::shard {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// Bumped whenever the fingerprint's input set or the checkpoint payload
// encoding changes, so stale-format checkpoints can never be reused.
constexpr uint64_t kFingerprintFormatVersion = 1;

void MixBytes(uint64_t& hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

void MixU64(uint64_t& hash, uint64_t value) {
  // Mix the value byte-by-byte in a fixed (little-endian) order so the
  // hash is host-endianness independent.
  for (int i = 0; i < 8; ++i) {
    hash ^= static_cast<unsigned char>(value >> (8 * i));
    hash *= kFnvPrime;
  }
}

void MixString(uint64_t& hash, const std::string& text) {
  MixU64(hash, text.size());
  MixBytes(hash, text.data(), text.size());
}

}  // namespace

int ResolveScenesPerShard(size_t scene_count, int requested) {
  if (requested > 0) return requested;
  if (scene_count == 0) return 1;
  const size_t per_shard =
      (scene_count + kDefaultShardCount - 1) / kDefaultShardCount;
  return static_cast<int>(per_shard < 1 ? 1 : per_shard);
}

std::vector<ShardRange> PlanShards(size_t scene_count, int scenes_per_shard) {
  std::vector<ShardRange> shards;
  if (scene_count == 0 || scenes_per_shard < 1) return shards;
  const size_t step = static_cast<size_t>(scenes_per_shard);
  for (size_t begin = 0; begin < scene_count; begin += step) {
    const size_t end = begin + step < scene_count ? begin + step : scene_count;
    shards.push_back(ShardRange{begin, end});
  }
  return shards;
}

Result<ShardSource> OpenShardSource(const std::string& directory,
                                    bool no_cache) {
  ShardSource out;
  if (!no_cache) {
    Result<io::FxbReader> cache = io::OpenFreshCache(directory);
    if (cache.ok()) {
      out.source =
          std::make_unique<io::FxbSceneSource>(std::move(cache).value());
      out.from_cache = true;
      return out;
    }
    // NotFound / FailedPrecondition (stale) fall back to JSON, the same
    // ladder CmdRank uses; a present-but-corrupt cache surfaces here.
    const StatusCode code = cache.status().code();
    if (code != StatusCode::kNotFound &&
        code != StatusCode::kFailedPrecondition) {
      return cache.status();
    }
  }
  FIXY_ASSIGN_OR_RETURN(io::DirectorySceneSource dir_source,
                        io::DirectorySceneSource::Open(directory));
  out.source =
      std::make_unique<io::DirectorySceneSource>(std::move(dir_source));
  return out;
}

uint64_t ComputeRunFingerprint(const RunFingerprintInputs& inputs) {
  uint64_t hash = kFnvOffset;
  MixU64(hash, kFingerprintFormatVersion);
  MixU64(hash, inputs.source.file_count);
  MixU64(hash, inputs.source.total_bytes);
  MixU64(hash, inputs.source.max_mtime_ns);
  MixU64(hash, inputs.model_crc);
  MixU64(hash, inputs.model_bytes);
  MixU64(hash, inputs.apps.size());
  for (const std::string& app : inputs.apps) MixString(hash, app);
  MixU64(hash, static_cast<uint64_t>(inputs.top_k_per_class));
  MixU64(hash, inputs.scene_count);
  MixU64(hash, static_cast<uint64_t>(inputs.scenes_per_shard));
  return hash;
}

}  // namespace fixy::shard
