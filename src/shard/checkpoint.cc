#include "shard/checkpoint.h"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/crc32.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "io/scene_io.h"

namespace fixy::shard {
namespace {

static_assert(std::endian::native == std::endian::little,
              "checkpoint encode/decode assumes a little-endian host (like "
              "the FXB container)");

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendString(std::string* out, const std::string& text) {
  AppendPod(out, static_cast<uint32_t>(text.size()));
  out->append(text);
}

template <typename T>
void StorePod(std::string* out, size_t offset, const T& value) {
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

// Bounds-checked forward reader over the payload; every Read checks the
// remaining byte count, so truncated or lying payloads fail with a
// Status instead of reading out of bounds.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  Result<T> Read() {
    if (bytes_.size() - pos_ < sizeof(T)) {
      return Status::InvalidArgument("checkpoint payload truncated");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  Result<std::string> ReadString() {
    FIXY_ASSIGN_OR_RETURN(const uint32_t size, Read<uint32_t>());
    if (bytes_.size() - pos_ < size) {
      return Status::InvalidArgument("checkpoint payload truncated");
    }
    std::string text(bytes_.substr(pos_, size));
    pos_ += size;
    return text;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

void AppendProposal(std::string* out, const ErrorProposal& p) {
  AppendString(out, p.scene_name);
  AppendPod(out, static_cast<uint32_t>(p.kind));
  AppendPod(out, static_cast<uint64_t>(p.track_id));
  AppendPod(out, static_cast<int32_t>(p.frame_index));
  AppendPod(out, p.box.center.x);
  AppendPod(out, p.box.center.y);
  AppendPod(out, p.box.center.z);
  AppendPod(out, p.box.length);
  AppendPod(out, p.box.width);
  AppendPod(out, p.box.height);
  AppendPod(out, p.box.yaw);
  AppendPod(out, static_cast<uint32_t>(p.object_class));
  AppendPod(out, p.score);
  AppendPod(out, p.model_confidence);
  AppendPod(out, static_cast<int32_t>(p.first_frame));
  AppendPod(out, static_cast<int32_t>(p.last_frame));
}

Result<ErrorProposal> ReadProposal(Cursor& cursor) {
  ErrorProposal p;
  FIXY_ASSIGN_OR_RETURN(p.scene_name, cursor.ReadString());
  FIXY_ASSIGN_OR_RETURN(const uint32_t kind, cursor.Read<uint32_t>());
  if (kind > static_cast<uint32_t>(ProposalKind::kModelError)) {
    return Status::InvalidArgument("checkpoint proposal kind out of range");
  }
  p.kind = static_cast<ProposalKind>(kind);
  FIXY_ASSIGN_OR_RETURN(const uint64_t track_id, cursor.Read<uint64_t>());
  p.track_id = track_id;
  FIXY_ASSIGN_OR_RETURN(const int32_t frame, cursor.Read<int32_t>());
  p.frame_index = frame;
  FIXY_ASSIGN_OR_RETURN(p.box.center.x, cursor.Read<double>());
  FIXY_ASSIGN_OR_RETURN(p.box.center.y, cursor.Read<double>());
  FIXY_ASSIGN_OR_RETURN(p.box.center.z, cursor.Read<double>());
  FIXY_ASSIGN_OR_RETURN(p.box.length, cursor.Read<double>());
  FIXY_ASSIGN_OR_RETURN(p.box.width, cursor.Read<double>());
  FIXY_ASSIGN_OR_RETURN(p.box.height, cursor.Read<double>());
  FIXY_ASSIGN_OR_RETURN(p.box.yaw, cursor.Read<double>());
  FIXY_ASSIGN_OR_RETURN(const uint32_t cls, cursor.Read<uint32_t>());
  if (cls >= static_cast<uint32_t>(kNumObjectClasses)) {
    return Status::InvalidArgument("checkpoint object class out of range");
  }
  p.object_class = static_cast<ObjectClass>(cls);
  FIXY_ASSIGN_OR_RETURN(p.score, cursor.Read<double>());
  FIXY_ASSIGN_OR_RETURN(p.model_confidence, cursor.Read<double>());
  FIXY_ASSIGN_OR_RETURN(const int32_t first, cursor.Read<int32_t>());
  FIXY_ASSIGN_OR_RETURN(const int32_t last, cursor.Read<int32_t>());
  p.first_frame = first;
  p.last_frame = last;
  return p;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + tmp);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return Status::IoError("write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeMultiAppReport(const MultiAppReport& report) {
  std::string out;
  AppendPod(&out, static_cast<uint32_t>(report.apps.size()));
  for (const std::string& app : report.apps) AppendString(&out, app);
  for (const BatchReport& batch : report.reports) {
    AppendPod(&out, static_cast<uint32_t>(batch.outcomes.size()));
    for (const SceneOutcome& outcome : batch.outcomes) {
      AppendString(&out, outcome.scene_name);
      AppendPod(&out, static_cast<uint32_t>(outcome.status.code()));
      AppendString(&out, outcome.status.message());
      AppendPod(&out, outcome.wall_ms);
      AppendPod(&out, static_cast<uint32_t>(outcome.proposals.size()));
      for (const ErrorProposal& p : outcome.proposals) AppendProposal(&out, p);
    }
  }
  return out;
}

Result<MultiAppReport> DecodeMultiAppReport(std::string_view payload) {
  Cursor cursor(payload);
  MultiAppReport report;
  FIXY_ASSIGN_OR_RETURN(const uint32_t app_count, cursor.Read<uint32_t>());
  for (uint32_t a = 0; a < app_count; ++a) {
    FIXY_ASSIGN_OR_RETURN(std::string app, cursor.ReadString());
    report.apps.push_back(std::move(app));
  }
  report.reports.resize(app_count);
  for (uint32_t a = 0; a < app_count; ++a) {
    BatchReport& batch = report.reports[a];
    FIXY_ASSIGN_OR_RETURN(const uint32_t outcome_count,
                          cursor.Read<uint32_t>());
    for (uint32_t i = 0; i < outcome_count; ++i) {
      SceneOutcome outcome;
      FIXY_ASSIGN_OR_RETURN(outcome.scene_name, cursor.ReadString());
      FIXY_ASSIGN_OR_RETURN(const uint32_t code, cursor.Read<uint32_t>());
      if (code > static_cast<uint32_t>(StatusCode::kUnimplemented)) {
        return Status::InvalidArgument("checkpoint status code out of range");
      }
      FIXY_ASSIGN_OR_RETURN(std::string message, cursor.ReadString());
      outcome.status = Status(static_cast<StatusCode>(code),
                              std::move(message));
      FIXY_ASSIGN_OR_RETURN(outcome.wall_ms, cursor.Read<double>());
      FIXY_ASSIGN_OR_RETURN(const uint32_t proposal_count,
                            cursor.Read<uint32_t>());
      for (uint32_t p = 0; p < proposal_count; ++p) {
        FIXY_ASSIGN_OR_RETURN(ErrorProposal proposal, ReadProposal(cursor));
        outcome.proposals.push_back(std::move(proposal));
      }
      batch.outcomes.push_back(std::move(outcome));
    }
  }
  if (!cursor.exhausted()) {
    return Status::InvalidArgument("checkpoint payload has trailing bytes");
  }
  RecomputeReportSummary(report);
  return report;
}

std::string EncodeShardCheckpoint(const ShardCheckpoint& checkpoint) {
  const std::string payload = EncodeMultiAppReport(checkpoint.report);
  std::string out(kCheckpointHeaderSize, '\0');
  std::memcpy(out.data(), kCheckpointMagic, sizeof(kCheckpointMagic));
  StorePod(&out, kCheckpointVersionOffset, kCheckpointVersion);
  StorePod(&out, kCheckpointShardOffset, checkpoint.shard_index);
  StorePod(&out, kCheckpointBeginOffset,
           static_cast<uint32_t>(checkpoint.range.begin));
  StorePod(&out, kCheckpointEndOffset,
           static_cast<uint32_t>(checkpoint.range.end));
  StorePod(&out, kCheckpointFingerprintOffset, checkpoint.fingerprint);
  StorePod(&out, kCheckpointPayloadLenOffset,
           static_cast<uint64_t>(payload.size()));
  StorePod(&out, kCheckpointPayloadCrcOffset, Crc32(payload));
  StorePod(&out, kCheckpointHeaderCrcOffset,
           Crc32(out.data(), kCheckpointHeaderCrcOffset));
  out += payload;
  return out;
}

Result<ShardCheckpoint> DecodeShardCheckpoint(std::string_view blob) {
  if (blob.size() < kCheckpointHeaderSize) {
    return Status::InvalidArgument("checkpoint shorter than its header");
  }
  if (std::memcmp(blob.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return Status::InvalidArgument("checkpoint has a bad magic");
  }
  auto load_u32 = [&blob](size_t offset) {
    uint32_t value;
    std::memcpy(&value, blob.data() + offset, sizeof(value));
    return value;
  };
  auto load_u64 = [&blob](size_t offset) {
    uint64_t value;
    std::memcpy(&value, blob.data() + offset, sizeof(value));
    return value;
  };
  const uint32_t header_crc = load_u32(kCheckpointHeaderCrcOffset);
  if (Crc32(blob.data(), kCheckpointHeaderCrcOffset) != header_crc) {
    return Status::InvalidArgument("checkpoint header CRC mismatch");
  }
  const uint32_t version = load_u32(kCheckpointVersionOffset);
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument(
        StrFormat("checkpoint format version %u unsupported (expected %u)",
                  version, kCheckpointVersion));
  }
  ShardCheckpoint checkpoint;
  checkpoint.shard_index = load_u32(kCheckpointShardOffset);
  checkpoint.range.begin = load_u32(kCheckpointBeginOffset);
  checkpoint.range.end = load_u32(kCheckpointEndOffset);
  checkpoint.fingerprint = load_u64(kCheckpointFingerprintOffset);
  if (checkpoint.range.end < checkpoint.range.begin) {
    return Status::InvalidArgument("checkpoint scene range is inverted");
  }
  const uint64_t payload_len = load_u64(kCheckpointPayloadLenOffset);
  if (payload_len != blob.size() - kCheckpointHeaderSize) {
    return Status::InvalidArgument(
        "checkpoint payload length does not match the file size");
  }
  const std::string_view payload = blob.substr(kCheckpointHeaderSize);
  if (Crc32(payload) != load_u32(kCheckpointPayloadCrcOffset)) {
    return Status::InvalidArgument("checkpoint payload CRC mismatch");
  }
  FIXY_ASSIGN_OR_RETURN(checkpoint.report, DecodeMultiAppReport(payload));
  for (const BatchReport& batch : checkpoint.report.reports) {
    if (batch.outcomes.size() != checkpoint.range.size()) {
      return Status::InvalidArgument(
          "checkpoint outcome count does not match its scene range");
    }
  }
  return checkpoint;
}

std::string ShardCheckpointPath(const std::string& checkpoint_dir,
                                size_t shard_index) {
  return checkpoint_dir + "/" +
         StrFormat("shard-%04zu.fxc", shard_index);
}

Status WriteShardCheckpoint(const std::string& checkpoint_dir,
                            const ShardCheckpoint& checkpoint) {
  std::error_code ec;
  std::filesystem::create_directories(checkpoint_dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint directory " +
                           checkpoint_dir + ": " + ec.message());
  }
  return WriteFileAtomic(
      ShardCheckpointPath(checkpoint_dir, checkpoint.shard_index),
      EncodeShardCheckpoint(checkpoint));
}

Result<ShardCheckpoint> LoadShardCheckpoint(const std::string& path) {
  std::string blob;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(path, &blob));
  return DecodeShardCheckpoint(blob);
}

}  // namespace fixy::shard
