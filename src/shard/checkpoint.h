// Shard checkpoints: the durable unit of progress for the sharded,
// multi-process ranking pipeline.
//
// A worker that finishes its shard serializes the shard's MultiAppReport
// slice and writes it — atomically, via a tmp file + rename — to
// `<checkpoint-dir>/shard-NNNN.fxc`. A resumed run reuses a checkpoint
// only when every validation gate passes: magic, version, header CRC,
// payload CRC, payload decode, and the run fingerprint + scene range
// match. Anything else (truncation, bit rot, a checkpoint from different
// inputs) means the shard is re-ranked — a corrupt checkpoint is never
// trusted.
//
// On-disk layout (all integers and doubles little-endian; byte table in
// DESIGN.md §12):
//
//   offset size field
//   0      4    magic "FXC1"
//   4      4    u32 format version (1)
//   8      4    u32 shard index
//   12     4    u32 scene range begin
//   16     4    u32 scene range end (exclusive)
//   20     4    u32 reserved (0)
//   24     8    u64 run fingerprint (shard_plan.h)
//   32     8    u64 payload length
//   40     4    u32 payload CRC32
//   44     4    u32 header CRC32 over bytes [0, 44)
//   48     ..   payload: EncodeMultiAppReport bytes
//
// The payload is the canonical byte serialization of a MultiAppReport's
// outcome data (apps, per-scene outcomes with status and proposals,
// doubles bit-exact). It deliberately excludes the metrics snapshot and
// the summary counters — the former measures one particular run, the
// latter are recomputed from the outcomes — so "byte-identical payloads"
// is exactly the determinism guarantee the shard tests assert.
#ifndef FIXY_SHARD_CHECKPOINT_H_
#define FIXY_SHARD_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/engine.h"
#include "shard/shard_plan.h"

namespace fixy::shard {

// ---- Layout constants (exported for DESIGN.md §12, tests, and the
// checkpoint corruptor in src/testing). ----
inline constexpr char kCheckpointMagic[4] = {'F', 'X', 'C', '1'};
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr size_t kCheckpointHeaderSize = 48;
inline constexpr size_t kCheckpointVersionOffset = 4;       // u32
inline constexpr size_t kCheckpointShardOffset = 8;         // u32
inline constexpr size_t kCheckpointBeginOffset = 12;        // u32
inline constexpr size_t kCheckpointEndOffset = 16;          // u32
inline constexpr size_t kCheckpointReservedOffset = 20;     // u32, 0
inline constexpr size_t kCheckpointFingerprintOffset = 24;  // u64
inline constexpr size_t kCheckpointPayloadLenOffset = 32;   // u64
inline constexpr size_t kCheckpointPayloadCrcOffset = 40;   // u32
inline constexpr size_t kCheckpointHeaderCrcOffset = 44;    // u32 of [0,44)

/// One shard's durable result.
struct ShardCheckpoint {
  uint32_t shard_index = 0;
  ShardRange range;
  uint64_t fingerprint = 0;
  /// The shard's slice of the run: outcomes for scenes [range.begin,
  /// range.end), one BatchReport per app. Metrics are always empty.
  MultiAppReport report;
};

/// Canonical byte serialization of a MultiAppReport's outcome data. Two
/// reports serialize identically iff they carry the same apps and, per
/// scene, the same name, status, wall time, and bit-exact proposals —
/// this is the comparator the byte-identical-merge tests use.
std::string EncodeMultiAppReport(const MultiAppReport& report);

/// Inverse of EncodeMultiAppReport; bounds-checked throughout. The
/// decoded report's summary counters are recomputed from the outcomes.
/// Errors: InvalidArgument on any malformed payload.
Result<MultiAppReport> DecodeMultiAppReport(std::string_view payload);

/// Serializes a whole checkpoint (header + payload, CRCs computed).
std::string EncodeShardCheckpoint(const ShardCheckpoint& checkpoint);

/// Parses and validates a checkpoint blob: magic, version, header CRC,
/// payload length vs blob size, payload CRC, payload decode. Fingerprint
/// and range agreement with the *current* run are the caller's check
/// (the coordinator's reuse gate). Errors: InvalidArgument.
Result<ShardCheckpoint> DecodeShardCheckpoint(std::string_view blob);

/// `<dir>/shard-NNNN.fxc`.
std::string ShardCheckpointPath(const std::string& checkpoint_dir,
                                size_t shard_index);

/// Atomically writes `checkpoint` to its path under `checkpoint_dir`
/// (tmp file + rename, so a kill mid-write leaves either the previous
/// file or none — never a torn one). Creates the directory if needed.
Status WriteShardCheckpoint(const std::string& checkpoint_dir,
                            const ShardCheckpoint& checkpoint);

/// Reads + DecodeShardCheckpoint. Errors: IoError when the file cannot
/// be read, InvalidArgument when it fails validation.
Result<ShardCheckpoint> LoadShardCheckpoint(const std::string& path);

}  // namespace fixy::shard

#endif  // FIXY_SHARD_CHECKPOINT_H_
