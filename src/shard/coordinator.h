// The shard coordinator: the parent-process half of the sharded ranking
// pipeline behind `fixy_cli rank --workers N`.
//
// The coordinator plans shards over the dataset, spawns up to N worker
// processes (fork/exec of `<worker_binary> rank-shard ...`), supervises
// them through the stdout frame channel (wire.h) with a heartbeat
// timeout, retries a failed shard on a fresh worker with capped
// exponential backoff, and quarantines it after K attempts while healthy
// shards keep flowing — PR 2's per-scene quarantine ladder promoted one
// level, to shards and processes.
//
// Durability: a completed shard exists as a CRC-protected checkpoint
// file *before* its worker reports success, so a killed or OOM'd run
// (coordinator included) resumes from the last completed shard with
// --resume. Reuse is gated on the full validation ladder in
// checkpoint.h plus a run-fingerprint + range match; anything less
// re-ranks the shard. Quarantine is deliberately NOT durable — a
// resumed run retries previously quarantined shards from scratch.
//
// Determinism: shard ranges partition [0, scene_count) in order, each
// worker's slice is byte-identical to the corresponding slice of a
// single-process keep-going run (scenes are scored independently; the
// streaming pipeline already proves slot-level determinism), and the
// merge concatenates slices in shard order. Hence the merged report is
// byte-identical to the uninterrupted single-process run at any worker
// count, any kill point, and any resume boundary — the property
// tests/shard_test.cc asserts with EncodeMultiAppReport.
#ifndef FIXY_SHARD_COORDINATOR_H_
#define FIXY_SHARD_COORDINATOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "shard/shard_plan.h"

namespace fixy::shard {

/// Supervision and durability knobs for one sharded run.
struct ShardOptions {
  /// Concurrent worker processes.
  int workers = 1;
  /// Scenes per shard; 0 = auto (ResolveScenesPerShard).
  int scenes_per_shard = 0;
  /// K: a shard failing this many attempts is quarantined.
  int max_attempts = 3;
  /// Retry backoff: base * 2^(attempt-1) ms, capped.
  int backoff_base_ms = 100;
  int backoff_cap_ms = 5000;
  /// A worker silent (no frame of any kind) for this long is killed.
  int heartbeat_timeout_ms = 30000;
  /// Reuse valid checkpoints from a previous run instead of re-ranking.
  bool resume = false;
  /// Where checkpoints live; "" = <data_dir>/.fixy-shards.
  std::string checkpoint_dir;
  /// The worker executable (a fixy_cli binary); "" = /proc/self/exe.
  std::string worker_binary;
  /// Rank threads per worker (0 = hardware concurrency).
  int worker_threads = 1;
  /// Forwarded to workers: ApplicationOptions::top_k_per_class.
  int top_k_per_class = 0;
  /// Forwarded to workers: ignore dataset.fxb.
  bool no_cache = false;
  /// Worker heartbeat send interval.
  int heartbeat_interval_ms = 100;
  /// Test hook: abort the run (Status::Internal) once this many shards
  /// completed, simulating a killed coordinator. 0 = disabled.
  size_t stop_after_shards = 0;
};

/// What happened to one shard.
struct ShardOutcome {
  ShardRange range;
  /// Worker processes spawned for this shard (0 when its checkpoint was
  /// reused).
  int attempts = 0;
  bool reused_checkpoint = false;
  bool quarantined = false;
  /// Ok for a completed shard; the last failure for a quarantined one.
  Status status;
};

/// The result of a sharded run.
struct ShardRunReport {
  /// Per-shard reports merged in shard order. Scenes of quarantined
  /// shards carry error outcomes (like quarantined scenes in a
  /// keep-going batch); all other scenes are byte-identical to a
  /// single-process run.
  MultiAppReport merged;
  std::vector<ShardOutcome> shards;
  size_t shards_completed = 0;
  size_t shards_quarantined = 0;
  size_t checkpoints_reused = 0;

  bool all_failed() const {
    return !shards.empty() && shards_quarantined == shards.size();
  }
};

/// Runs the sharded pipeline over `data_dir` with the model at
/// `model_path` and the given *resolved* application names. Shard-level
/// failures are quarantined, never fatal: the call fails only for setup
/// errors (bad directory, unspawnable worker binary, invalid options) or
/// the stop_after_shards test hook. Records shard.* metrics on the
/// ambient collector.
Result<ShardRunReport> RankDatasetSharded(const std::string& data_dir,
                                          const std::string& model_path,
                                          const std::vector<std::string>& apps,
                                          const ShardOptions& options);

/// Records every shard.* counter, timer, and gauge at zero on the calling
/// thread's collector, so metric snapshots carry a stable key set whether
/// or not a run was sharded (the schema golden depends on this).
void RecordShardMetricsSchema();

}  // namespace fixy::shard

#endif  // FIXY_SHARD_COORDINATOR_H_
