// The coordinator↔worker pipe protocol: length-prefixed, CRC-checked
// frames over the worker's stdout, in the spirit of the FXB container's
// framing (every structure bounds-checked and checksummed, every parse
// error a Status, never a crash).
//
// Frame layout (little-endian):
//
//   offset size field
//   0      1    u8 frame type (FrameType)
//   1      4    u32 payload length
//   5      ..   payload bytes
//   5+n    4    u32 CRC32 over (type byte + payload)
//
// The worker is the only writer; the coordinator parses incrementally
// with FrameParser (reads from a non-blocking pipe arrive in arbitrary
// chunks). Any framing violation — unknown type, oversized payload, CRC
// mismatch — marks the stream corrupt, and the coordinator treats the
// worker as failed; it does not try to resynchronize.
//
// The protocol carries *liveness and status only*. Shard results travel
// through the checkpoint file, never the pipe, so a worker whose pipe
// dies after the checkpoint rename has still durably completed.
#ifndef FIXY_SHARD_WIRE_H_
#define FIXY_SHARD_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fixy::shard {

enum class FrameType : uint8_t {
  /// First frame a worker sends: payload u32 shard index.
  kHello = 1,
  /// Periodic liveness signal while ranking; empty payload.
  kHeartbeat = 2,
  /// Progress note: payload u32 scenes completed so far.
  kProgress = 3,
  /// The shard completed and its checkpoint is durably renamed into
  /// place; empty payload.
  kDone = 4,
  /// The worker failed: payload u32 StatusCode + message bytes.
  kError = 5,
  /// Daemon request: payload is a JSON-encoded daemon::Request. Sent by
  /// fixyd clients; never appears on the coordinator↔worker pipe.
  kRequest = 6,
  /// Daemon response: payload is a JSON-encoded daemon::Response.
  kResponse = 7,
};

/// type(1) + length(4) + crc(4).
inline constexpr size_t kFrameOverhead = 9;
/// Frames carry status, not scene data; anything bigger is corruption.
inline constexpr size_t kMaxFramePayload = 1 << 20;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Serializes one frame.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Convenience payload codecs.
std::string EncodeU32Payload(uint32_t value);
Result<uint32_t> DecodeU32Payload(std::string_view payload);
std::string EncodeErrorPayload(const Status& status);
/// Malformed payloads decode to an Internal status (never fail) so an
/// error report garbled in transit still reads as an error.
Status DecodeErrorPayload(std::string_view payload);

/// Incremental frame parser for the coordinator's non-blocking reads.
class FrameParser {
 public:
  /// Appends `bytes` to the internal buffer and returns every frame they
  /// complete. Once the stream is corrupt, returns nothing further.
  std::vector<Frame> Consume(std::string_view bytes);

  /// True when a framing violation was seen (CRC mismatch, unknown type,
  /// oversized payload).
  bool corrupt() const { return corrupt_; }

 private:
  std::string buffer_;
  bool corrupt_ = false;
};

}  // namespace fixy::shard

#endif  // FIXY_SHARD_WIRE_H_
