#include "shard/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define FIXY_HAVE_FORK 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/macros.h"
#include "common/process.h"
#include "common/string_util.h"
#include "io/scene_io.h"
#include "obs/metrics.h"
#include "shard/checkpoint.h"
#include "shard/wire.h"

namespace fixy::shard {

void RecordShardMetricsSchema() {
  obs::Count("shard.shards", 0);
  obs::Count("shard.workers_spawned", 0);
  obs::Count("shard.completed", 0);
  obs::Count("shard.retries", 0);
  obs::Count("shard.quarantined", 0);
  obs::Count("shard.heartbeat_kills", 0);
  obs::Count("shard.checkpoints_reused", 0);
  obs::Count("shard.checkpoints_rejected", 0);
  obs::AddTimeNs("shard.total", 0);
  obs::SetGauge("shard.workers", 0.0);
}

#if FIXY_HAVE_FORK

namespace {

using Clock = std::chrono::steady_clock;

struct ShardState {
  enum class Phase { kPending, kRunning, kDone, kQuarantined };

  ShardRange range;
  Phase phase = Phase::kPending;
  int attempts = 0;
  Clock::time_point ready_at = Clock::time_point::min();  // backoff gate
  bool reused_checkpoint = false;
  MultiAppReport part;  // valid when kDone
  Status last_error;
};

struct RunningWorker {
  pid_t pid = -1;
  int fd = -1;
  size_t shard = 0;
  Clock::time_point last_frame;
  FrameParser parser;
  bool done_frame = false;
  bool error_frame = false;
  Status error;
  bool eof = false;
};

std::string ErrnoText() { return std::string(std::strerror(errno)); }

// The reuse gate, shared by the --resume scan and the post-success load:
// a checkpoint is trusted only when it decodes cleanly AND describes
// exactly this run (fingerprint, shard, range, app list).
bool CheckpointUsable(const Result<ShardCheckpoint>& loaded, size_t shard,
                      const ShardRange& range, uint64_t fingerprint,
                      const std::vector<std::string>& apps,
                      std::string* why) {
  if (!loaded.ok()) {
    *why = loaded.status().ToString();
    return false;
  }
  const ShardCheckpoint& cp = loaded.value();
  if (cp.fingerprint != fingerprint) {
    *why = "run fingerprint mismatch (inputs or options changed)";
    return false;
  }
  if (cp.shard_index != shard || cp.range != range) {
    *why = "shard index or scene range mismatch";
    return false;
  }
  if (cp.report.apps != apps) {
    *why = "application list mismatch";
    return false;
  }
  return true;
}

class Coordinator {
 public:
  Coordinator(const std::string& data_dir, const std::string& model_path,
              std::vector<std::string> apps, const ShardOptions& options)
      : data_dir_(data_dir),
        model_path_(model_path),
        apps_(std::move(apps)),
        options_(options) {}

  ~Coordinator() { KillAllRunning(); }

  Result<ShardRunReport> Run();

 private:
  Status Setup();
  void ScanCheckpoints();
  Status Supervise();
  Status SpawnShard(size_t shard);
  void ReadWorker(RunningWorker& worker);
  void FinalizeWorker(RunningWorker& worker, const Status& override_error);
  void FailShard(size_t shard, Status why);
  void KillWorker(RunningWorker& worker);
  void KillAllRunning();
  Result<ShardRunReport> BuildReport();

  size_t RemainingShards() const {
    size_t remaining = 0;
    for (const ShardState& state : states_) {
      if (state.phase == ShardState::Phase::kPending ||
          state.phase == ShardState::Phase::kRunning) {
        ++remaining;
      }
    }
    return remaining;
  }

  const std::string data_dir_;
  const std::string model_path_;
  const std::vector<std::string> apps_;
  const ShardOptions options_;

  ShardSource source_;
  std::vector<ShardState> states_;
  std::vector<RunningWorker> running_;
  int scenes_per_shard_ = 1;
  uint64_t fingerprint_ = 0;
  std::string checkpoint_dir_;
  std::string worker_binary_;
  size_t completed_this_run_ = 0;
};

Result<ShardRunReport> Coordinator::Run() {
  FIXY_RETURN_IF_ERROR(Setup());
  if (options_.resume) ScanCheckpoints();
  FIXY_RETURN_IF_ERROR(Supervise());
  return BuildReport();
}

Status Coordinator::Setup() {
  if (options_.workers < 1) {
    return Status::InvalidArgument("--workers must be >= 1");
  }
  if (options_.max_attempts < 1) {
    return Status::InvalidArgument("--max-attempts must be >= 1");
  }
  if (apps_.empty()) {
    return Status::InvalidArgument("no applications requested");
  }
  FIXY_ASSIGN_OR_RETURN(source_,
                        OpenShardSource(data_dir_, options_.no_cache));
  const size_t scene_count = source_.source->scene_count();
  scenes_per_shard_ =
      ResolveScenesPerShard(scene_count, options_.scenes_per_shard);
  const std::vector<ShardRange> plan =
      PlanShards(scene_count, scenes_per_shard_);
  states_.resize(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) states_[i].range = plan[i];

  RunFingerprintInputs fp_inputs;
  FIXY_ASSIGN_OR_RETURN(fp_inputs.source,
                        io::ComputeSourceFingerprint(data_dir_));
  std::string model_bytes;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(model_path_, &model_bytes));
  fp_inputs.model_crc = Crc32(model_bytes);
  fp_inputs.model_bytes = model_bytes.size();
  fp_inputs.apps = apps_;
  fp_inputs.top_k_per_class = options_.top_k_per_class;
  fp_inputs.scene_count = scene_count;
  fp_inputs.scenes_per_shard = scenes_per_shard_;
  fingerprint_ = ComputeRunFingerprint(fp_inputs);

  checkpoint_dir_ = options_.checkpoint_dir.empty()
                        ? data_dir_ + "/.fixy-shards"
                        : options_.checkpoint_dir;
  std::error_code ec;
  std::filesystem::create_directories(checkpoint_dir_, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint directory " +
                           checkpoint_dir_ + ": " + ec.message());
  }
  worker_binary_ =
      options_.worker_binary.empty() ? "/proc/self/exe" : options_.worker_binary;

  obs::Count("shard.shards", states_.size());
  obs::SetGauge("shard.workers", static_cast<double>(options_.workers));
  return Status::Ok();
}

void Coordinator::ScanCheckpoints() {
  for (size_t i = 0; i < states_.size(); ++i) {
    const std::string path = ShardCheckpointPath(checkpoint_dir_, i);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) continue;
    Result<ShardCheckpoint> loaded = LoadShardCheckpoint(path);
    std::string why;
    if (CheckpointUsable(loaded, i, states_[i].range, fingerprint_, apps_,
                         &why)) {
      states_[i].phase = ShardState::Phase::kDone;
      states_[i].reused_checkpoint = true;
      states_[i].part = std::move(loaded.value().report);
      obs::Count("shard.checkpoints_reused");
    } else {
      // Corrupt, stale, or foreign: never trusted — the shard re-ranks
      // and its worker atomically overwrites the file.
      obs::Count("shard.checkpoints_rejected");
    }
  }
}

Status Coordinator::SpawnShard(size_t shard) {
  // argv is fully materialized before fork so the child only dup2s and
  // execs (no allocation between fork and exec).
  std::vector<std::string> args = {
      worker_binary_,
      "rank-shard",
      "--data", data_dir_,
      "--model", model_path_,
      "--apps", StrJoin(apps_, ","),
      "--shard", StrFormat("%zu", shard),
      "--shard-scenes", StrFormat("%d", scenes_per_shard_),
      "--checkpoint-dir", checkpoint_dir_,
      "--top-k", StrFormat("%d", options_.top_k_per_class),
      "--threads", StrFormat("%d", options_.worker_threads),
      "--heartbeat-ms", StrFormat("%d", options_.heartbeat_interval_ms),
  };
  if (options_.no_cache) args.push_back("--no-cache");
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal("pipe() failed: " + ErrnoText());
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::Internal("fork() failed: " + ErrnoText());
  }
  if (pid == 0) {
    // Child: frame channel on stdout, then become the worker.
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the parent sees EOF + exit code 127
  }
  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);

  RunningWorker worker;
  worker.pid = pid;
  worker.fd = fds[0];
  worker.shard = shard;
  worker.last_frame = Clock::now();
  running_.push_back(std::move(worker));
  states_[shard].phase = ShardState::Phase::kRunning;
  ++states_[shard].attempts;
  obs::Count("shard.workers_spawned");
  return Status::Ok();
}

void Coordinator::ReadWorker(RunningWorker& worker) {
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(worker.fd, buffer, sizeof(buffer));
    if (n > 0) {
      const std::vector<Frame> frames =
          worker.parser.Consume(std::string_view(buffer, static_cast<size_t>(n)));
      if (!frames.empty()) worker.last_frame = Clock::now();
      for (const Frame& frame : frames) {
        switch (frame.type) {
          case FrameType::kDone:
            worker.done_frame = true;
            break;
          case FrameType::kError:
            worker.error_frame = true;
            worker.error = DecodeErrorPayload(frame.payload);
            break;
          case FrameType::kHello:
          case FrameType::kHeartbeat:
          case FrameType::kProgress:
          case FrameType::kRequest:   // daemon-only types; a worker sending
          case FrameType::kResponse:  // them is at least alive
            break;  // liveness only
        }
      }
      if (worker.parser.corrupt()) {
        // Garbage on the frame channel: the worker is not speaking the
        // protocol (or something else owns its stdout). Kill and retry.
        KillWorker(worker);
        worker.eof = true;
        return;
      }
      continue;
    }
    if (n == 0) {
      worker.eof = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    worker.eof = true;  // unexpected read error: treat as a dead pipe
    return;
  }
}

void Coordinator::KillWorker(RunningWorker& worker) {
  if (worker.pid > 0) ::kill(worker.pid, SIGKILL);
}

void Coordinator::FailShard(size_t shard, Status why) {
  ShardState& state = states_[shard];
  state.last_error = std::move(why);
  if (state.attempts >= options_.max_attempts) {
    state.phase = ShardState::Phase::kQuarantined;
    obs::Count("shard.quarantined");
    return;
  }
  // Capped exponential backoff before the next fresh worker: base * 2^n
  // doubles per failed attempt, so a persistently sick shard backs off
  // while healthy shards keep the worker slots busy.
  const int64_t base = std::max(1, options_.backoff_base_ms);
  const int shift = std::min(state.attempts - 1, 20);
  const int64_t delay =
      std::min<int64_t>(base << shift, std::max(1, options_.backoff_cap_ms));
  state.phase = ShardState::Phase::kPending;
  state.ready_at = Clock::now() + std::chrono::milliseconds(delay);
  obs::Count("shard.retries");
}

void Coordinator::FinalizeWorker(RunningWorker& worker,
                                 const Status& override_error) {
  ::close(worker.fd);
  worker.fd = -1;
  int wstatus = 0;
  ::waitpid(worker.pid, &wstatus, 0);
  const bool exited_ok = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
  const size_t shard = worker.shard;

  if (!override_error.ok()) {
    FailShard(shard, override_error);
    return;
  }
  if (worker.done_frame && exited_ok && !worker.parser.corrupt()) {
    // The worker says the checkpoint is durably in place; trust — but
    // verify through the exact same gate a resume would use.
    const std::string path = ShardCheckpointPath(checkpoint_dir_, shard);
    Result<ShardCheckpoint> loaded = LoadShardCheckpoint(path);
    std::string why;
    if (CheckpointUsable(loaded, shard, states_[shard].range, fingerprint_,
                         apps_, &why)) {
      states_[shard].phase = ShardState::Phase::kDone;
      states_[shard].part = std::move(loaded.value().report);
      states_[shard].last_error = Status::Ok();
      ++completed_this_run_;
      obs::Count("shard.completed");
      return;
    }
    FailShard(shard, Status::Internal(
                         "worker reported success but its checkpoint failed "
                         "validation: " +
                         why));
    return;
  }
  if (worker.error_frame) {
    FailShard(shard, worker.error);
    return;
  }
  if (worker.parser.corrupt()) {
    FailShard(shard,
              Status::Internal("worker frame stream was corrupt"));
    return;
  }
  std::string detail;
  if (WIFEXITED(wstatus)) {
    detail = StrFormat("exit code %d", WEXITSTATUS(wstatus));
  } else if (WIFSIGNALED(wstatus)) {
    detail = StrFormat("signal %d", WTERMSIG(wstatus));
  } else {
    detail = "unknown cause";
  }
  FailShard(shard, Status::Internal("worker died before completing its shard ("
                                    + detail + ")"));
}

void Coordinator::KillAllRunning() {
  for (RunningWorker& worker : running_) {
    KillWorker(worker);
    if (worker.fd >= 0) ::close(worker.fd);
    int wstatus = 0;
    ::waitpid(worker.pid, &wstatus, 0);
  }
  running_.clear();
}

Status Coordinator::Supervise() {
  const auto heartbeat_timeout =
      std::chrono::milliseconds(std::max(1, options_.heartbeat_timeout_ms));
  while (RemainingShards() > 0) {
    if (options_.stop_after_shards != 0 &&
        completed_this_run_ >= options_.stop_after_shards) {
      // Simulated coordinator death (tests): abandon the run exactly as
      // a kill -9 would — running workers reaped, checkpoints left on
      // disk for --resume to find.
      KillAllRunning();
      return Status::Internal(StrFormat(
          "shard run interrupted after %zu completed shards (test hook)",
          completed_this_run_));
    }
    const Clock::time_point now = Clock::now();

    // Fill free worker slots with ready shards, lowest index first (so
    // the merge order is also roughly the completion order).
    while (static_cast<int>(running_.size()) < options_.workers) {
      size_t pick = states_.size();
      for (size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].phase == ShardState::Phase::kPending &&
            states_[i].ready_at <= now) {
          pick = i;
          break;
        }
      }
      if (pick == states_.size()) break;
      FIXY_RETURN_IF_ERROR(SpawnShard(pick));
    }

    if (running_.empty()) {
      // Everything outstanding is in a backoff window; sleep toward the
      // earliest retry.
      Clock::time_point earliest = Clock::time_point::max();
      for (const ShardState& state : states_) {
        if (state.phase == ShardState::Phase::kPending) {
          earliest = std::min(earliest, state.ready_at);
        }
      }
      if (earliest == Clock::time_point::max()) continue;  // nothing left
      const auto wait = std::clamp<std::chrono::milliseconds>(
          std::chrono::duration_cast<std::chrono::milliseconds>(earliest -
                                                                now),
          std::chrono::milliseconds(1), std::chrono::milliseconds(100));
      std::this_thread::sleep_for(wait);
      continue;
    }

    // Poll timeout: the nearest of any worker's heartbeat deadline or a
    // pending shard's backoff expiry, clamped to keep the loop lively.
    int64_t timeout_ms = 200;
    for (const RunningWorker& worker : running_) {
      const auto deadline = worker.last_frame + heartbeat_timeout;
      const auto remain =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count();
      timeout_ms = std::min(timeout_ms, remain);
    }
    for (const ShardState& state : states_) {
      if (state.phase == ShardState::Phase::kPending) {
        const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                                state.ready_at - now)
                                .count();
        timeout_ms = std::min(timeout_ms, remain);
      }
    }
    timeout_ms = std::max<int64_t>(timeout_ms, 1);

    std::vector<pollfd> fds;
    fds.reserve(running_.size());
    for (const RunningWorker& worker : running_) {
      fds.push_back(pollfd{worker.fd, POLLIN, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(timeout_ms));
    if (rc < 0 && errno != EINTR) {
      KillAllRunning();
      return Status::Internal("poll() failed: " + ErrnoText());
    }

    for (size_t w = 0; w < running_.size(); ++w) {
      if (rc > 0 && (fds[w].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        ReadWorker(running_[w]);
      }
    }

    // Heartbeat deadline: a worker silent past the timeout is declared
    // dead (wedged decode, livelock, stopped) and killed; its shard goes
    // through the same retry ladder as a crash.
    const Clock::time_point after_read = Clock::now();
    for (RunningWorker& worker : running_) {
      if (!worker.eof && after_read - worker.last_frame > heartbeat_timeout) {
        KillWorker(worker);
        obs::Count("shard.heartbeat_kills");
        FinalizeWorker(
            worker,
            Status::Internal(StrFormat(
                "worker heartbeat timeout: silent for over %d ms",
                options_.heartbeat_timeout_ms)));
        worker.eof = true;
        worker.fd = -1;  // closed by FinalizeWorker
        worker.pid = -1;
      }
    }

    // Reap EOF'd workers and drop them from the running set.
    for (size_t w = 0; w < running_.size();) {
      if (running_[w].eof) {
        if (running_[w].pid > 0) {
          FinalizeWorker(running_[w], Status::Ok());
        }
        running_.erase(running_.begin() + static_cast<ptrdiff_t>(w));
      } else {
        ++w;
      }
    }
  }
  return Status::Ok();
}

Result<ShardRunReport> Coordinator::BuildReport() {
  ShardRunReport out;
  out.shards.reserve(states_.size());
  for (size_t i = 0; i < states_.size(); ++i) {
    ShardState& state = states_[i];
    ShardOutcome outcome;
    outcome.range = state.range;
    outcome.attempts = state.attempts;
    outcome.reused_checkpoint = state.reused_checkpoint;
    outcome.quarantined = state.phase == ShardState::Phase::kQuarantined;
    outcome.status = outcome.quarantined ? state.last_error : Status::Ok();
    if (outcome.quarantined) {
      ++out.shards_quarantined;
      // A quarantined shard surfaces exactly like quarantined scenes in
      // a keep-going batch: every scene of the range carries an error
      // outcome naming the shard-level cause; no proposals.
      MultiAppReport part;
      part.apps = apps_;
      part.reports.resize(apps_.size());
      const Status scene_status = Status::Internal(StrFormat(
          "shard %zu quarantined after %d attempts: %s", i, state.attempts,
          state.last_error.ToString().c_str()));
      for (BatchReport& report : part.reports) {
        for (size_t s = state.range.begin; s < state.range.end; ++s) {
          SceneOutcome scene;
          scene.scene_name = source_.source->scene_name(s);
          scene.status = scene_status;
          report.outcomes.push_back(std::move(scene));
        }
      }
      FIXY_RETURN_IF_ERROR(AppendShardReport(out.merged, std::move(part)));
    } else {
      ++out.shards_completed;
      if (state.reused_checkpoint) ++out.checkpoints_reused;
      FIXY_RETURN_IF_ERROR(
          AppendShardReport(out.merged, std::move(state.part)));
    }
    out.shards.push_back(std::move(outcome));
  }
  if (out.merged.apps.empty()) {
    // Empty dataset: an ok report with empty per-app outcomes, matching
    // RankDataset on an empty dataset.
    out.merged.apps = apps_;
    out.merged.reports.resize(apps_.size());
  }
  RecomputeReportSummary(out.merged);
  return out;
}

}  // namespace

Result<ShardRunReport> RankDatasetSharded(const std::string& data_dir,
                                          const std::string& model_path,
                                          const std::vector<std::string>& apps,
                                          const ShardOptions& options) {
  const obs::StageTimer total_timer;
  // A worker that dies between poll() and our next pipe write would
  // otherwise kill the coordinator with SIGPIPE instead of an IoError.
  IgnoreSigpipe();
  Coordinator coordinator(data_dir, model_path, apps, options);
  FIXY_ASSIGN_OR_RETURN(ShardRunReport report, coordinator.Run());
  obs::AddTimeNs("shard.total", total_timer.ElapsedNs());
  return report;
}

#else  // !FIXY_HAVE_FORK

Result<ShardRunReport> RankDatasetSharded(const std::string&,
                                          const std::string&,
                                          const std::vector<std::string>&,
                                          const ShardOptions&) {
  return Status::Unimplemented(
      "sharded ranking requires a POSIX platform (fork/exec)");
}

#endif  // FIXY_HAVE_FORK

}  // namespace fixy::shard
