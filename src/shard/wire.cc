#include "shard/wire.h"

#include <cstring>

#include "common/crc32.h"

namespace fixy::shard {
namespace {

bool KnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kResponse);
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameOverhead + payload.size());
  out.push_back(static_cast<char>(type));
  const uint32_t length = static_cast<uint32_t>(payload.size());
  out.append(reinterpret_cast<const char*>(&length), sizeof(length));
  out.append(payload);
  // CRC over the type byte + payload, contiguously.
  std::string covered;
  covered.reserve(1 + payload.size());
  covered.push_back(static_cast<char>(type));
  covered.append(payload);
  const uint32_t crc = Crc32(covered);
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return out;
}

std::string EncodeU32Payload(uint32_t value) {
  return std::string(reinterpret_cast<const char*>(&value), sizeof(value));
}

Result<uint32_t> DecodeU32Payload(std::string_view payload) {
  if (payload.size() != sizeof(uint32_t)) {
    return Status::InvalidArgument("frame payload is not a u32");
  }
  uint32_t value;
  std::memcpy(&value, payload.data(), sizeof(value));
  return value;
}

std::string EncodeErrorPayload(const Status& status) {
  std::string out;
  const uint32_t code = static_cast<uint32_t>(status.code());
  out.append(reinterpret_cast<const char*>(&code), sizeof(code));
  out.append(status.message());
  return out;
}

Status DecodeErrorPayload(std::string_view payload) {
  if (payload.size() < sizeof(uint32_t)) {
    return Status::Internal("worker sent a malformed error frame");
  }
  uint32_t code;
  std::memcpy(&code, payload.data(), sizeof(code));
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::Internal("worker sent an error frame with a bad code");
  }
  return Status(static_cast<StatusCode>(code),
                std::string(payload.substr(sizeof(code))));
}

std::vector<Frame> FrameParser::Consume(std::string_view bytes) {
  std::vector<Frame> frames;
  if (corrupt_) return frames;
  buffer_.append(bytes);
  size_t pos = 0;
  while (buffer_.size() - pos >= kFrameOverhead) {
    const uint8_t type = static_cast<uint8_t>(buffer_[pos]);
    uint32_t length;
    std::memcpy(&length, buffer_.data() + pos + 1, sizeof(length));
    if (!KnownFrameType(type) || length > kMaxFramePayload) {
      corrupt_ = true;
      break;
    }
    if (buffer_.size() - pos < kFrameOverhead + length) break;  // partial
    uint32_t crc;
    std::memcpy(&crc, buffer_.data() + pos + 5 + length, sizeof(crc));
    // CRC covers the type byte and payload (a lying length field
    // displaces the CRC bytes, so it cannot pass either).
    std::string covered;
    covered.reserve(1 + length);
    covered.push_back(static_cast<char>(type));
    covered.append(buffer_, pos + 5, length);
    if (Crc32(covered) != crc) {
      corrupt_ = true;
      break;
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload = buffer_.substr(pos + 5, length);
    frames.push_back(std::move(frame));
    pos += kFrameOverhead + length;
  }
  buffer_.erase(0, pos);
  return frames;
}

}  // namespace fixy::shard
