// Shard planning: splitting a dataset's scene range into independently
// rankable shards, and fingerprinting a ranking run so checkpoints written
// by one invocation are only ever trusted by an identical one.
//
// A shard is a contiguous [begin, end) scene-index range over the
// existing per-scene FXB section index (or the JSON manifest order) — no
// container format change. The shard layout is a pure function of the
// scene count and the scenes-per-shard setting, NEVER of the worker
// count, so a run resumed with a different --workers value still lines up
// with the checkpoints the killed run left behind.
#ifndef FIXY_SHARD_SHARD_PLAN_H_
#define FIXY_SHARD_SHARD_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/scene_source.h"
#include "io/fxb.h"

namespace fixy::shard {

/// Default number of shards a dataset is split into when the caller does
/// not pin --shard-scenes: small enough that per-shard process overhead
/// stays negligible, large enough that one quarantined shard loses at
/// most ~1/16 of the dataset.
inline constexpr size_t kDefaultShardCount = 16;

/// A contiguous scene-index range [begin, end).
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool operator==(const ShardRange&) const = default;
};

/// Resolves the scenes-per-shard setting: `requested` when positive,
/// otherwise ceil(scene_count / kDefaultShardCount), clamped to >= 1.
int ResolveScenesPerShard(size_t scene_count, int requested);

/// Splits [0, scene_count) into consecutive shards of `scenes_per_shard`
/// scenes (the last shard takes the remainder). Empty for an empty
/// dataset. Precondition: scenes_per_shard >= 1.
std::vector<ShardRange> PlanShards(size_t scene_count, int scenes_per_shard);

/// A SceneSource view of one shard: scene i of the view is scene
/// range.begin + i of the base source. The base source must outlive the
/// view. Feeding a view through RankDatasetStreaming yields outcomes
/// whose slots are exactly the base report's [begin, end) slice — the
/// core of the shard-merge determinism argument (DESIGN.md §12).
class ShardSceneView : public SceneSource {
 public:
  ShardSceneView(const SceneSource& base, ShardRange range)
      : base_(&base), range_(range) {}

  size_t scene_count() const override { return range_.size(); }
  std::string scene_name(size_t index) const override {
    return base_->scene_name(range_.begin + index);
  }
  Result<Scene> DecodeScene(size_t index) const override {
    return base_->DecodeScene(range_.begin + index);
  }

 private:
  const SceneSource* base_;
  ShardRange range_;
};

/// A dataset directory opened for shard ranking: the fresh FXB cache when
/// one exists (and caching was not opted out), the JSON directory source
/// otherwise. Both coordinator and workers open the directory through
/// this one helper so they agree on scene count, order, and names.
struct ShardSource {
  std::unique_ptr<SceneSource> source;
  bool from_cache = false;
};

/// Errors: whatever the cache open or manifest read fails with.
Result<ShardSource> OpenShardSource(const std::string& directory,
                                    bool no_cache);

/// Everything that must match between the run that wrote a checkpoint and
/// the run that wants to reuse it. Any difference — source files changed,
/// model re-learned, different app selection, pruning setting, or shard
/// layout — changes the fingerprint and invalidates the checkpoint.
struct RunFingerprintInputs {
  /// Fingerprint of the dataset's JSON source files (the same one the FXB
  /// staleness check uses), so edits to the data invalidate checkpoints
  /// whether or not a cache is in play.
  io::FxbSourceFingerprint source;
  /// CRC32 + byte size of the model file.
  uint32_t model_crc = 0;
  uint64_t model_bytes = 0;
  /// Resolved application names, in request order.
  std::vector<std::string> apps;
  /// ApplicationOptions::top_k_per_class (affects proposals).
  int top_k_per_class = 0;
  uint64_t scene_count = 0;
  int scenes_per_shard = 0;
};

/// FNV-1a 64 over a version tag and every field above (strings
/// length-prefixed), so the hash is stable across runs and platforms.
uint64_t ComputeRunFingerprint(const RunFingerprintInputs& inputs);

}  // namespace fixy::shard

#endif  // FIXY_SHARD_SHARD_PLAN_H_
