// The shard worker: the child-process half of the sharded ranking
// pipeline, invoked as `fixy_cli rank-shard` by the coordinator.
//
// A worker ranks exactly one shard's scene range with the existing
// streaming pipeline (fail_fast off, so per-scene failures quarantine
// scenes instead of the shard), writes the shard's MultiAppReport slice
// as a CRC-protected checkpoint (atomic rename), and only then reports
// kDone on its stdout frame channel. Heartbeat frames flow on a side
// thread the whole time, so the coordinator can tell "slow" from "dead".
//
// Kill/hang injection (tests and tools/check.sh only) is armed through
// environment variables, which fork/exec inherits for free:
//
//   FIXY_SHARD_KILL=<shard|*>:<pre-rank|mid-shard|post-checkpoint>[:<sentinel>]
//   FIXY_SHARD_HANG=<shard|*>[:<sentinel>]
//
// When a sentinel path is given the injection fires once — the worker
// creates the sentinel file just before acting, so the next attempt sees
// it and proceeds normally. Without a sentinel it fires on every attempt
// (the permanent-failure / quarantine scenario). A killed worker calls
// _exit, exactly like an OOM kill: no checkpoint, no error frame, just a
// dead pipe.
#ifndef FIXY_SHARD_WORKER_H_
#define FIXY_SHARD_WORKER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"

namespace fixy::shard {

/// The exit code an injected kill uses (distinguishable from a real
/// worker error, which exits 1 after sending an error frame).
inline constexpr int kInjectedKillExitCode = 42;

struct ShardWorkerConfig {
  std::string data_dir;
  std::string model_path;
  std::string checkpoint_dir;
  /// Resolved application names, in request order (the coordinator
  /// resolves them once; workers must agree exactly for the run
  /// fingerprint to match).
  std::vector<std::string> apps;
  size_t shard_index = 0;
  /// Resolved scenes-per-shard (> 0); must equal the coordinator's.
  int scenes_per_shard = 1;
  int top_k_per_class = 0;
  /// Rank threads inside this worker (0 = hardware concurrency).
  int threads = 1;
  bool no_cache = false;
  int heartbeat_interval_ms = 100;
  /// File descriptor for the frame channel; -1 disables frames (used by
  /// in-process tests that only want the checkpoint side effect).
  int out_fd = -1;
};

/// Runs one shard end-to-end: open source, plan shards, validate the
/// shard index, load the model, rank the range, write the checkpoint,
/// report kDone. On failure an error frame is sent (best effort) and the
/// Status returned. `options` supplies extra applications/features the
/// embedding CLI registers (the demo suspect-tracks app);
/// top_k_per_class is overridden from the config.
Status RunShardWorker(const ShardWorkerConfig& config, FixyOptions options);

}  // namespace fixy::shard

#endif  // FIXY_SHARD_WORKER_H_
