#include "shard/worker.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/macros.h"
#include "common/process.h"
#include "common/string_util.h"
#include "io/scene_io.h"
#include "shard/checkpoint.h"
#include "shard/wire.h"

namespace fixy::shard {
namespace {

// Serializes frame writes to the pipe. Write errors are deliberately
// swallowed: a dead coordinator (EPIPE) must not stop a worker that can
// still finish its shard and rename its checkpoint into place — the
// checkpoint, not the pipe, is the durable channel.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  void Send(FrameType type, std::string_view payload) {
#if defined(__unix__) || defined(__APPLE__)
    if (fd_ < 0) return;
    const std::string frame = EncodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(mutex_);
    size_t written = 0;
    while (written < frame.size()) {
      const ssize_t n =
          ::write(fd_, frame.data() + written, frame.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // best effort
      }
      written += static_cast<size_t>(n);
    }
#else
    (void)type;
    (void)payload;
#endif
  }

 private:
  int fd_;
  std::mutex mutex_;
};

// Sends kHeartbeat every `interval_ms` on a side thread until destroyed,
// so the coordinator sees liveness even while every worker thread is
// deep inside a long scene rank.
class HeartbeatPump {
 public:
  HeartbeatPump(FrameWriter& writer, int interval_ms)
      : writer_(writer),
        interval_(std::chrono::milliseconds(interval_ms < 1 ? 1 : interval_ms)),
        thread_([this] { Run(); }) {}

  ~HeartbeatPump() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (cv_.wait_for(lock, interval_, [this] { return stop_; })) return;
      lock.unlock();
      writer_.Send(FrameType::kHeartbeat, {});
      lock.lock();
    }
  }

  FrameWriter& writer_;
  const std::chrono::milliseconds interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// One parsed FIXY_SHARD_KILL / FIXY_SHARD_HANG spec.
struct Injection {
  bool armed = false;
  bool all_shards = false;
  size_t shard = 0;
  std::string point;     // kill only: pre-rank | mid-shard | post-checkpoint
  std::string sentinel;  // empty = fire every attempt
};

Injection ParseInjection(const char* spec, bool has_point) {
  Injection inj;
  if (spec == nullptr || *spec == '\0') return inj;
  const std::string text(spec);
  const size_t first = text.find(':');
  const std::string shard_part = text.substr(0, first);
  if (shard_part == "*") {
    inj.all_shards = true;
  } else {
    char* end = nullptr;
    inj.shard = std::strtoul(shard_part.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return inj;  // malformed: disarmed
  }
  std::string rest = first == std::string::npos ? "" : text.substr(first + 1);
  if (has_point) {
    const size_t second = rest.find(':');
    inj.point = rest.substr(0, second);
    rest = second == std::string::npos ? "" : rest.substr(second + 1);
    if (inj.point != "pre-rank" && inj.point != "mid-shard" &&
        inj.point != "post-checkpoint") {
      return inj;  // malformed point: disarmed
    }
  }
  inj.sentinel = rest;
  inj.armed = true;
  return inj;
}

bool ShouldFire(const Injection& inj, size_t shard_index,
                const std::string& point) {
  if (!inj.armed) return false;
  if (!inj.all_shards && inj.shard != shard_index) return false;
  if (!point.empty() && inj.point != point) return false;
  if (!inj.sentinel.empty() && std::filesystem::exists(inj.sentinel)) {
    return false;  // already fired once
  }
  return true;
}

// Marks a sentinel'd injection as spent so the next attempt proceeds.
void MarkFired(const Injection& inj) {
  if (inj.sentinel.empty()) return;
  std::ofstream touch(inj.sentinel, std::ios::trunc);
}

[[noreturn]] void InjectedKill() {
#if defined(__unix__) || defined(__APPLE__)
  ::_exit(kInjectedKillExitCode);
#else
  std::abort();
#endif
}

Status RunShardWorkerImpl(const ShardWorkerConfig& config, FixyOptions options,
                          FrameWriter& writer) {
  const Injection kill =
      ParseInjection(std::getenv("FIXY_SHARD_KILL"), /*has_point=*/true);
  const Injection hang =
      ParseInjection(std::getenv("FIXY_SHARD_HANG"), /*has_point=*/false);
  if (config.scenes_per_shard < 1) {
    return Status::InvalidArgument("--shard-scenes must be >= 1");
  }

  writer.Send(FrameType::kHello,
              EncodeU32Payload(static_cast<uint32_t>(config.shard_index)));

  // Hang injection: wedge *before* the heartbeat pump exists, so the
  // coordinator's heartbeat timeout — not a worker-side deadline — is
  // what ends this process.
  if (ShouldFire(hang, config.shard_index, "")) {
    MarkFired(hang);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }

  const HeartbeatPump pump(writer, config.heartbeat_interval_ms);

  if (ShouldFire(kill, config.shard_index, "pre-rank")) {
    MarkFired(kill);
    InjectedKill();
  }

  FIXY_ASSIGN_OR_RETURN(ShardSource shard_source,
                        OpenShardSource(config.data_dir, config.no_cache));
  const size_t scene_count = shard_source.source->scene_count();
  const std::vector<ShardRange> plan =
      PlanShards(scene_count, config.scenes_per_shard);
  if (config.shard_index >= plan.size()) {
    return Status::OutOfRange(StrFormat(
        "shard %zu out of range: %zu scenes make %zu shards of %d",
        config.shard_index, scene_count, plan.size(),
        config.scenes_per_shard));
  }
  const ShardRange range = plan[config.shard_index];

  RunFingerprintInputs fp_inputs;
  FIXY_ASSIGN_OR_RETURN(fp_inputs.source,
                        io::ComputeSourceFingerprint(config.data_dir));
  std::string model_bytes;
  FIXY_RETURN_IF_ERROR(io::ReadFileInto(config.model_path, &model_bytes));
  fp_inputs.model_crc = Crc32(model_bytes);
  fp_inputs.model_bytes = model_bytes.size();
  fp_inputs.apps = config.apps;
  fp_inputs.top_k_per_class = config.top_k_per_class;
  fp_inputs.scene_count = scene_count;
  fp_inputs.scenes_per_shard = config.scenes_per_shard;
  const uint64_t fingerprint = ComputeRunFingerprint(fp_inputs);

  options.application.top_k_per_class = config.top_k_per_class;
  Fixy fixy(std::move(options));
  FIXY_RETURN_IF_ERROR(fixy.LoadModel(config.model_path));

  // fail_fast off: a failing scene quarantines that scene inside the
  // shard (matching the coordinator's single-process keep-going
  // reference); only a shard-level failure (this function returning an
  // error, or the process dying) escalates to the retry/quarantine
  // ladder. Metrics stay off so checkpoint bytes are run-independent.
  BatchOptions batch;
  batch.num_threads = config.threads;
  batch.fail_fast = false;
  batch.collect_metrics = false;

  if (ShouldFire(kill, config.shard_index, "mid-shard")) {
    // Rank half the shard for real, then die without a checkpoint —
    // the partial work must be invisible to the resumed run.
    MarkFired(kill);
    const ShardRange half{range.begin, range.begin + range.size() / 2};
    const ShardSceneView half_view(*shard_source.source, half);
    (void)fixy.RankDatasetStreaming(half_view, config.apps, batch);
    InjectedKill();
  }

  const ShardSceneView view(*shard_source.source, range);
  FIXY_ASSIGN_OR_RETURN(MultiAppReport report,
                        fixy.RankDatasetStreaming(view, config.apps, batch));
  report.metrics = obs::PipelineMetrics{};

  ShardCheckpoint checkpoint;
  checkpoint.shard_index = static_cast<uint32_t>(config.shard_index);
  checkpoint.range = range;
  checkpoint.fingerprint = fingerprint;
  checkpoint.report = std::move(report);
  FIXY_RETURN_IF_ERROR(
      WriteShardCheckpoint(config.checkpoint_dir, checkpoint));

  if (ShouldFire(kill, config.shard_index, "post-checkpoint")) {
    // The checkpoint is durably renamed into place; dying here must cost
    // the run nothing but a retry that rediscovers it (or re-ranks).
    MarkFired(kill);
    InjectedKill();
  }

  writer.Send(FrameType::kProgress,
              EncodeU32Payload(static_cast<uint32_t>(range.size())));
  writer.Send(FrameType::kDone, {});
  return Status::Ok();
}

}  // namespace

Status RunShardWorker(const ShardWorkerConfig& config, FixyOptions options) {
  // A coordinator that died mid-run closes the pipe; the worker must keep
  // going to its checkpoint, not die of SIGPIPE.
  IgnoreSigpipe();
  FrameWriter writer(config.out_fd);
  const Status status = RunShardWorkerImpl(config, std::move(options), writer);
  if (!status.ok()) {
    writer.Send(FrameType::kError, EncodeErrorPayload(status));
  }
  return status;
}

}  // namespace fixy::shard
