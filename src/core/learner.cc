#include "core/learner.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "stats/discrete.h"
#include "stats/gaussian.h"
#include "stats/histogram.h"
#include "stats/kde.h"

namespace fixy {

namespace {

// Majority class of a bundle (empty bundles cannot occur in built tracks).
ObjectClass BundleClass(const ObservationBundle& bundle) {
  int counts[kNumObjectClasses] = {};
  for (const Observation& obs : bundle.observations) {
    ++counts[static_cast<int>(obs.object_class)];
  }
  int best = 0;
  for (int i = 1; i < kNumObjectClasses; ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<ObjectClass>(best);
}

// Keeps only observations from `source` in a copy of `scene`.
Scene FilterScene(const Scene& scene, ObservationSource source) {
  Scene filtered(scene.name(), scene.frame_rate_hz());
  for (const Frame& frame : scene.frames()) {
    Frame copy = frame;
    copy.observations.clear();
    for (const Observation& obs : frame.observations) {
      if (obs.source == source) copy.observations.push_back(obs);
    }
    filtered.AddFrame(std::move(copy));
  }
  return filtered;
}

}  // namespace

const char* EstimatorKindToString(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kKde:
      return "kde";
    case EstimatorKind::kHistogram:
      return "histogram";
    case EstimatorKind::kGaussian:
      return "gaussian";
    case EstimatorKind::kCategorical:
      return "categorical";
  }
  return "unknown";
}

DistributionLearner::DistributionLearner(LearnerOptions options)
    : options_(std::move(options)) {}

Result<stats::DistributionPtr> DistributionLearner::FitOne(
    std::vector<double> values) const {
  switch (options_.estimator) {
    case EstimatorKind::kKde: {
      FIXY_ASSIGN_OR_RETURN(stats::GaussianKde kde,
                            stats::GaussianKde::Fit(std::move(values)));
      return stats::DistributionPtr(
          std::make_shared<stats::GaussianKde>(std::move(kde)));
    }
    case EstimatorKind::kHistogram: {
      FIXY_ASSIGN_OR_RETURN(stats::HistogramDensity hist,
                            stats::HistogramDensity::Fit(values));
      return stats::DistributionPtr(
          std::make_shared<stats::HistogramDensity>(std::move(hist)));
    }
    case EstimatorKind::kGaussian: {
      FIXY_ASSIGN_OR_RETURN(stats::Gaussian gaussian,
                            stats::Gaussian::Fit(values));
      return stats::DistributionPtr(
          std::make_shared<stats::Gaussian>(std::move(gaussian)));
    }
    case EstimatorKind::kCategorical: {
      FIXY_ASSIGN_OR_RETURN(stats::Categorical categorical,
                            stats::Categorical::Fit(values));
      return stats::DistributionPtr(
          std::make_shared<stats::Categorical>(std::move(categorical)));
    }
  }
  return Status::Internal("unknown estimator kind");
}

Result<DistributionLearner::CollectedValues>
DistributionLearner::CollectValues(const Dataset& training,
                                   const Feature& feature) const {
  CollectedValues collected;
  const bool per_class = feature.class_conditional();
  const TrackBuilder builder(options_.track_builder);

  auto record = [&collected, per_class](std::optional<double> value,
                                        ObjectClass cls) {
    if (!value.has_value()) return;
    if (per_class) {
      collected.per_class[cls].push_back(*value);
    } else {
      collected.global.push_back(*value);
    }
  };

  for (const Scene& scene : training.scenes) {
    const Scene filtered =
        options_.all_sources ? scene : FilterScene(scene, options_.source);
    FIXY_ASSIGN_OR_RETURN(TrackSet tracks, builder.Build(filtered));
    for (const Track& track : tracks.tracks) {
      switch (feature.kind()) {
        case FeatureKind::kObservation: {
          const auto& f = static_cast<const ObservationFeature&>(feature);
          for (const ObservationBundle& bundle : track.bundles()) {
            FeatureContext ctx{bundle.ego_position, scene.frame_rate_hz()};
            for (const Observation& obs : bundle.observations) {
              record(f.Compute(obs, ctx), obs.object_class);
            }
          }
          break;
        }
        case FeatureKind::kBundle: {
          const auto& f = static_cast<const BundleFeature&>(feature);
          for (const ObservationBundle& bundle : track.bundles()) {
            FeatureContext ctx{bundle.ego_position, scene.frame_rate_hz()};
            record(f.Compute(bundle, ctx), BundleClass(bundle));
          }
          break;
        }
        case FeatureKind::kTransition: {
          const auto& f = static_cast<const TransitionFeature&>(feature);
          for (size_t b = 0; b + 1 < track.bundles().size(); ++b) {
            const ObservationBundle& from = track.bundles()[b];
            const ObservationBundle& to = track.bundles()[b + 1];
            FeatureContext ctx{from.ego_position, scene.frame_rate_hz()};
            record(f.Compute(from, to, ctx), BundleClass(from));
          }
          break;
        }
        case FeatureKind::kTrack: {
          const auto& f = static_cast<const TrackFeature&>(feature);
          if (track.bundles().empty()) break;
          FeatureContext ctx{track.bundles().front().ego_position,
                             scene.frame_rate_hz()};
          const auto cls = track.MajorityClass();
          record(f.Compute(track, ctx),
                 cls.value_or(ObjectClass::kCar));
          break;
        }
      }
    }
  }
  return collected;
}

Result<std::vector<FeatureDistribution>> DistributionLearner::Learn(
    const Dataset& training, const std::vector<FeaturePtr>& features) const {
  const obs::ScopedStageTimer fit_timer("learn.fit");
  std::vector<FeatureDistribution> learned;
  learned.reserve(features.size());
  for (const FeaturePtr& feature : features) {
    if (feature == nullptr) {
      return Status::InvalidArgument("null feature passed to learner");
    }
    FIXY_ASSIGN_OR_RETURN(CollectedValues collected,
                          CollectValues(training, *feature));
    if (obs::Enabled()) {
      size_t samples = collected.global.size();
      for (const auto& [cls, values] : collected.per_class) {
        samples += values.size();
      }
      obs::Count("learn.samples." + feature->name(), samples);
    }
    if (feature->class_conditional()) {
      std::map<ObjectClass, stats::DistributionPtr> per_class;
      for (auto& [cls, values] : collected.per_class) {
        if (values.size() < options_.min_samples) continue;
        FIXY_ASSIGN_OR_RETURN(stats::DistributionPtr dist,
                              FitOne(std::move(values)));
        per_class[cls] = std::move(dist);
      }
      if (per_class.empty()) {
        return Status::InvalidArgument(StrFormat(
            "feature '%s': no class reached %zu training samples",
            feature->name().c_str(), options_.min_samples));
      }
      learned.emplace_back(feature, std::move(per_class));
    } else {
      if (collected.global.size() < options_.min_samples) {
        return Status::InvalidArgument(StrFormat(
            "feature '%s': only %zu training samples (need %zu)",
            feature->name().c_str(), collected.global.size(),
            options_.min_samples));
      }
      FIXY_ASSIGN_OR_RETURN(stats::DistributionPtr dist,
                            FitOne(std::move(collected.global)));
      learned.emplace_back(feature, std::move(dist));
    }
  }
  return learned;
}

}  // namespace fixy
