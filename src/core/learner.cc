#include "core/learner.h"

#include <algorithm>
#include <future>
#include <optional>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "stats/discrete.h"
#include "stats/gaussian.h"
#include "stats/histogram.h"
#include "stats/kde.h"

namespace fixy {

namespace {

// Majority class of a bundle (empty bundles cannot occur in built tracks).
ObjectClass BundleClass(const ObservationBundle& bundle) {
  int counts[kNumObjectClasses] = {};
  for (const Observation& obs : bundle.observations) {
    ++counts[static_cast<int>(obs.object_class)];
  }
  int best = 0;
  for (int i = 1; i < kNumObjectClasses; ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<ObjectClass>(best);
}

// Keeps only observations from `source` in a copy of `scene`.
Scene FilterScene(const Scene& scene, ObservationSource source) {
  Scene filtered(scene.name(), scene.frame_rate_hz());
  for (const Frame& frame : scene.frames()) {
    Frame copy = frame;
    copy.observations.clear();
    for (const Observation& obs : frame.observations) {
      if (obs.source == source) copy.observations.push_back(obs);
    }
    filtered.AddFrame(std::move(copy));
  }
  return filtered;
}

}  // namespace

const char* EstimatorKindToString(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kKde:
      return "kde";
    case EstimatorKind::kHistogram:
      return "histogram";
    case EstimatorKind::kGaussian:
      return "gaussian";
    case EstimatorKind::kCategorical:
      return "categorical";
  }
  return "unknown";
}

Result<EstimatorKind> EstimatorKindFromString(const std::string& name) {
  if (name == "kde") return EstimatorKind::kKde;
  if (name == "histogram") return EstimatorKind::kHistogram;
  if (name == "gaussian") return EstimatorKind::kGaussian;
  if (name == "categorical") return EstimatorKind::kCategorical;
  return Status::InvalidArgument("unknown estimator kind: " + name);
}

DistributionLearner::DistributionLearner(LearnerOptions options)
    : options_(std::move(options)) {}

Result<DistributionLearner::CollectedValues>
DistributionLearner::CollectValues(const Dataset& training,
                                   const Feature& feature) const {
  CollectedValues collected;
  const bool per_class = feature.class_conditional();
  const TrackBuilder builder(options_.track_builder);

  auto record = [&collected, per_class](std::optional<double> value,
                                        ObjectClass cls) {
    if (!value.has_value()) return;
    if (per_class) {
      collected.per_class[cls].push_back(*value);
    } else {
      collected.global.push_back(*value);
    }
  };

  for (const Scene& scene : training.scenes) {
    const Scene filtered =
        options_.all_sources ? scene : FilterScene(scene, options_.source);
    FIXY_ASSIGN_OR_RETURN(TrackSet tracks, builder.Build(filtered));
    for (const Track& track : tracks.tracks) {
      switch (feature.kind()) {
        case FeatureKind::kObservation: {
          const auto& f = static_cast<const ObservationFeature&>(feature);
          for (const ObservationBundle& bundle : track.bundles()) {
            FeatureContext ctx{bundle.ego_position, scene.frame_rate_hz()};
            for (const Observation& obs : bundle.observations) {
              record(f.Compute(obs, ctx), obs.object_class);
            }
          }
          break;
        }
        case FeatureKind::kBundle: {
          const auto& f = static_cast<const BundleFeature&>(feature);
          for (const ObservationBundle& bundle : track.bundles()) {
            FeatureContext ctx{bundle.ego_position, scene.frame_rate_hz()};
            record(f.Compute(bundle, ctx), BundleClass(bundle));
          }
          break;
        }
        case FeatureKind::kTransition: {
          const auto& f = static_cast<const TransitionFeature&>(feature);
          for (size_t b = 0; b + 1 < track.bundles().size(); ++b) {
            const ObservationBundle& from = track.bundles()[b];
            const ObservationBundle& to = track.bundles()[b + 1];
            FeatureContext ctx{from.ego_position, scene.frame_rate_hz()};
            record(f.Compute(from, to, ctx), BundleClass(from));
          }
          break;
        }
        case FeatureKind::kTrack: {
          const auto& f = static_cast<const TrackFeature&>(feature);
          if (track.bundles().empty()) break;
          FeatureContext ctx{track.bundles().front().ego_position,
                             scene.frame_rate_hz()};
          const auto cls = track.MajorityClass();
          record(f.Compute(track, ctx),
                 cls.value_or(ObjectClass::kCar));
          break;
        }
      }
    }
  }
  return collected;
}

uint64_t SampleStats::n(EstimatorKind kind) const {
  switch (kind) {
    case EstimatorKind::kGaussian:
      return moments.n;
    case EstimatorKind::kHistogram:
    case EstimatorKind::kCategorical:
      return counts.total;
    case EstimatorKind::kKde:
      return reservoir.seen;
  }
  return 0;
}

void SampleStats::Add(double x, EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kGaussian:
      moments.Add(x);
      break;
    case EstimatorKind::kHistogram:
    case EstimatorKind::kCategorical:
      counts.Add(x);
      break;
    case EstimatorKind::kKde:
      reservoir.Add(x);
      break;
  }
}

SampleStats DistributionLearner::NewSampleStats() const {
  SampleStats stats;
  stats.reservoir.capacity = options_.kde_reservoir_capacity;
  stats.reservoir.seed = options_.kde_reservoir_seed;
  return stats;
}

Result<stats::DistributionPtr> DistributionLearner::FitFromStats(
    const SampleStats& stats, EstimatorKind kind) const {
  switch (kind) {
    case EstimatorKind::kKde: {
      FIXY_ASSIGN_OR_RETURN(stats::GaussianKde kde,
                            stats::GaussianKde::Fit(stats.reservoir.items));
      return stats::DistributionPtr(
          std::make_shared<stats::GaussianKde>(std::move(kde)));
    }
    case EstimatorKind::kHistogram: {
      FIXY_ASSIGN_OR_RETURN(stats::HistogramDensity hist,
                            stats::HistogramDensity::Fit(stats.counts.Expand()));
      return stats::DistributionPtr(
          std::make_shared<stats::HistogramDensity>(std::move(hist)));
    }
    case EstimatorKind::kGaussian: {
      FIXY_ASSIGN_OR_RETURN(
          stats::Gaussian gaussian,
          stats::Gaussian::FitFromMoments(stats.moments.n, stats.moments.sum,
                                          stats.moments.sum_sq));
      return stats::DistributionPtr(
          std::make_shared<stats::Gaussian>(std::move(gaussian)));
    }
    case EstimatorKind::kCategorical: {
      FIXY_ASSIGN_OR_RETURN(stats::Categorical categorical,
                            stats::Categorical::Fit(stats.counts.Expand()));
      return stats::DistributionPtr(
          std::make_shared<stats::Categorical>(std::move(categorical)));
    }
  }
  return Status::Internal("unknown estimator kind");
}

Result<FeatureDistribution> DistributionLearner::MaterializeOne(
    const FeaturePtr& feature, const FeatureStats& stats) const {
  if (stats.class_conditional) {
    std::map<ObjectClass, stats::DistributionPtr> per_class;
    for (const auto& [cls, sample_stats] : stats.per_class) {
      if (sample_stats.n(stats.estimator) < options_.min_samples) continue;
      FIXY_ASSIGN_OR_RETURN(stats::DistributionPtr dist,
                            FitFromStats(sample_stats, stats.estimator));
      per_class[cls] = std::move(dist);
    }
    if (per_class.empty()) {
      return Status::InvalidArgument(
          StrFormat("feature '%s': no class reached %zu training samples",
                    feature->name().c_str(), options_.min_samples));
    }
    return FeatureDistribution(feature, std::move(per_class));
  }
  const uint64_t n = stats.global.n(stats.estimator);
  if (n < options_.min_samples) {
    return Status::InvalidArgument(
        StrFormat("feature '%s': only %zu training samples (need %zu)",
                  feature->name().c_str(), static_cast<size_t>(n),
                  options_.min_samples));
  }
  FIXY_ASSIGN_OR_RETURN(stats::DistributionPtr dist,
                        FitFromStats(stats.global, stats.estimator));
  return FeatureDistribution(feature, std::move(dist));
}

Result<std::vector<FeatureDistribution>> DistributionLearner::Learn(
    const Dataset& training, const std::vector<FeaturePtr>& features) const {
  FIXY_ASSIGN_OR_RETURN(LearnedFeatureSet set,
                        LearnWithStats(training, features));
  return std::move(set.distributions);
}

Result<LearnedFeatureSet> DistributionLearner::LearnWithStats(
    const Dataset& training, const std::vector<FeaturePtr>& features) const {
  const obs::ScopedStageTimer fit_timer("learn.fit");
  LearnedFeatureSet set;
  set.distributions.reserve(features.size());
  set.stats.reserve(features.size());
  for (const FeaturePtr& feature : features) {
    if (feature == nullptr) {
      return Status::InvalidArgument("null feature passed to learner");
    }
    FIXY_ASSIGN_OR_RETURN(CollectedValues collected,
                          CollectValues(training, *feature));
    if (obs::Enabled()) {
      size_t samples = collected.global.size();
      for (const auto& [cls, values] : collected.per_class) {
        samples += values.size();
      }
      obs::Count("learn.samples." + feature->name(), samples);
    }
    FeatureStats stats;
    stats.estimator = options_.estimator;
    stats.class_conditional = feature->class_conditional();
    if (stats.class_conditional) {
      for (const auto& [cls, values] : collected.per_class) {
        SampleStats sample_stats = NewSampleStats();
        for (double value : values) sample_stats.Add(value, stats.estimator);
        stats.per_class[cls] = std::move(sample_stats);
      }
    } else {
      stats.global = NewSampleStats();
      for (double value : collected.global) {
        stats.global.Add(value, stats.estimator);
      }
    }
    FIXY_ASSIGN_OR_RETURN(FeatureDistribution dist,
                          MaterializeOne(feature, stats));
    set.distributions.push_back(std::move(dist));
    set.stats.push_back(std::move(stats));
  }
  return set;
}

Result<std::vector<FeatureDistribution>> DistributionLearner::Materialize(
    const std::vector<FeaturePtr>& features,
    const std::vector<FeatureStats>& stats) const {
  if (features.size() != stats.size()) {
    return Status::InvalidArgument(
        StrFormat("cannot materialize: %zu features but %zu stat sets",
                  features.size(), stats.size()));
  }
  std::vector<FeatureDistribution> learned;
  learned.reserve(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    if (features[i] == nullptr) {
      return Status::InvalidArgument("null feature passed to learner");
    }
    FIXY_ASSIGN_OR_RETURN(FeatureDistribution dist,
                          MaterializeOne(features[i], stats[i]));
    learned.push_back(std::move(dist));
  }
  return learned;
}

Result<std::vector<FeatureDistribution>> DistributionLearner::MaterializeDelta(
    const std::vector<FeaturePtr>& features, const LearnedFeatureSet& state,
    const std::vector<FeatureStats>& folded) const {
  if (features.size() != folded.size() ||
      state.stats.size() != folded.size() ||
      state.distributions.size() != folded.size()) {
    return Status::InvalidArgument(
        StrFormat("cannot materialize delta: %zu features, %zu stat sets, "
                  "%zu prior distributions",
                  features.size(), folded.size(),
                  state.distributions.size()));
  }
  // One cell per distribution to (re)fit: class-conditional features have
  // one per class at min_samples, the rest a single global cell. Cells
  // whose statistics the fold left untouched keep their existing
  // DistributionPtr; only the changed ones become fit jobs.
  struct Cell {
    size_t feature = 0;
    std::optional<ObjectClass> cls;
    const SampleStats* stats = nullptr;  // set only when a fit is needed
    stats::DistributionPtr reused;       // set only when reusing
  };
  std::vector<Cell> cells;
  size_t fits = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    const FeaturePtr& feature = features[i];
    if (feature == nullptr) {
      return Status::InvalidArgument("null feature passed to learner");
    }
    const FeatureStats& now = folded[i];
    const FeatureStats& before = state.stats[i];
    const FeatureDistribution& prior = state.distributions[i];
    if (now.class_conditional) {
      bool any = false;
      for (const auto& [cls, sample_stats] : now.per_class) {
        if (sample_stats.n(now.estimator) < options_.min_samples) continue;
        any = true;
        Cell cell;
        cell.feature = i;
        cell.cls = cls;
        const auto old_stats = before.per_class.find(cls);
        const auto old_dist = prior.per_class_distributions().find(cls);
        if (old_stats != before.per_class.end() &&
            old_stats->second == sample_stats &&
            old_dist != prior.per_class_distributions().end()) {
          cell.reused = old_dist->second;
        } else {
          cell.stats = &sample_stats;
          ++fits;
        }
        cells.push_back(std::move(cell));
      }
      if (!any) {
        return Status::InvalidArgument(
            StrFormat("feature '%s': no class reached %zu training samples",
                      feature->name().c_str(), options_.min_samples));
      }
    } else {
      const uint64_t n = now.global.n(now.estimator);
      if (n < options_.min_samples) {
        return Status::InvalidArgument(
            StrFormat("feature '%s': only %zu training samples (need %zu)",
                      feature->name().c_str(), static_cast<size_t>(n),
                      options_.min_samples));
      }
      Cell cell;
      cell.feature = i;
      if (now.global == before.global && prior.global_distribution()) {
        cell.reused = prior.global_distribution();
      } else {
        cell.stats = &now.global;
        ++fits;
      }
      cells.push_back(std::move(cell));
    }
  }
  // Fit every changed cell; each fit is independent (pure function of the
  // cell's stats), so they fan out across a pool. Results land in
  // cell-index slots and errors are reported in cell order, keeping the
  // outcome deterministic at any thread count.
  std::vector<Result<stats::DistributionPtr>> fitted(
      cells.size(), Status::Internal("fit not run"));
  const auto fit_cell = [&](size_t c) {
    fitted[c] = FitFromStats(*cells[c].stats, folded[cells[c].feature].estimator);
  };
  if (fits > 1) {
    ThreadPool pool(static_cast<int>(
        std::min(fits, static_cast<size_t>(
                           ThreadPool::ResolveThreadCount(0)))));
    std::vector<std::future<void>> pending;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].stats != nullptr) {
        pending.push_back(pool.Submit([&fit_cell, c] { fit_cell(c); }));
      }
    }
    for (std::future<void>& f : pending) f.get();
  } else {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].stats != nullptr) fit_cell(c);
    }
  }
  // Assemble per-feature distributions in feature order.
  std::vector<FeatureDistribution> learned;
  learned.reserve(features.size());
  size_t c = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    if (folded[i].class_conditional) {
      std::map<ObjectClass, stats::DistributionPtr> per_class;
      for (; c < cells.size() && cells[c].feature == i; ++c) {
        stats::DistributionPtr dist = cells[c].reused;
        if (dist == nullptr) {
          FIXY_RETURN_IF_ERROR(fitted[c].status());
          dist = std::move(*fitted[c]);
        }
        per_class[*cells[c].cls] = std::move(dist);
      }
      learned.push_back(FeatureDistribution(features[i], std::move(per_class)));
    } else {
      stats::DistributionPtr dist = cells[c].reused;
      if (dist == nullptr) {
        FIXY_RETURN_IF_ERROR(fitted[c].status());
        dist = std::move(*fitted[c]);
      }
      ++c;
      learned.push_back(FeatureDistribution(features[i], std::move(dist)));
    }
  }
  return learned;
}

Status DistributionLearner::Fold(const Dataset& delta,
                                 const std::vector<FeaturePtr>& features,
                                 LearnedFeatureSet& state) const {
  const obs::ScopedStageTimer fit_timer("learn.fit");
  if (features.size() != state.stats.size()) {
    return Status::InvalidArgument(
        StrFormat("cannot fold: %zu features but %zu stat sets",
                  features.size(), state.stats.size()));
  }
  // Fold into a copy so a failed materialization leaves `state` usable.
  std::vector<FeatureStats> folded = state.stats;
  for (size_t i = 0; i < features.size(); ++i) {
    const FeaturePtr& feature = features[i];
    if (feature == nullptr) {
      return Status::InvalidArgument("null feature passed to learner");
    }
    FeatureStats& stats = folded[i];
    if (stats.class_conditional != feature->class_conditional()) {
      return Status::InvalidArgument(StrFormat(
          "feature '%s': stats class-conditionality does not match",
          feature->name().c_str()));
    }
    FIXY_ASSIGN_OR_RETURN(CollectedValues collected,
                          CollectValues(delta, *feature));
    if (obs::Enabled()) {
      size_t samples = collected.global.size();
      for (const auto& [cls, values] : collected.per_class) {
        samples += values.size();
      }
      obs::Count("learn.samples." + feature->name(), samples);
    }
    if (stats.class_conditional) {
      for (const auto& [cls, values] : collected.per_class) {
        auto it = stats.per_class.find(cls);
        if (it == stats.per_class.end()) {
          it = stats.per_class.emplace(cls, NewSampleStats()).first;
        }
        for (double value : values) it->second.Add(value, stats.estimator);
      }
    } else {
      for (double value : collected.global) {
        stats.global.Add(value, stats.estimator);
      }
    }
  }
  FIXY_ASSIGN_OR_RETURN(std::vector<FeatureDistribution> learned,
                        MaterializeDelta(features, state, folded));
  state.stats = std::move(folded);
  state.distributions = std::move(learned);
  return Status::Ok();
}

}  // namespace fixy
