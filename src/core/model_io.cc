#include "core/model_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "core/features_std.h"
#include "stats/discrete.h"
#include "stats/gaussian.h"
#include "stats/histogram.h"
#include "stats/kde.h"

namespace fixy {

namespace {

constexpr const char* kModelMarker = "fixy-model";
constexpr int kModelVersion = 1;

}  // namespace

FeatureRegistry FeatureRegistry::Standard() {
  FeatureRegistry registry;
  registry.Register(std::make_shared<VolumeFeature>());
  registry.Register(std::make_shared<VelocityFeature>());
  registry.Register(std::make_shared<CountFeature>());
  registry.Register(std::make_shared<DistanceFeature>());
  registry.Register(std::make_shared<ModelOnlyFeature>());
  registry.Register(std::make_shared<ClassAgreementFeature>());
  return registry;
}

void FeatureRegistry::Register(FeaturePtr feature) {
  FIXY_CHECK(feature != nullptr);
  features_[feature->name()] = std::move(feature);
}

Result<FeaturePtr> FeatureRegistry::Find(const std::string& name) const {
  const auto it = features_.find(name);
  if (it == features_.end()) {
    return Status::NotFound("feature not registered: " + name);
  }
  return it->second;
}

Result<json::Value> DistributionToJson(const stats::Distribution& dist) {
  json::Object obj;
  if (const auto* kde = dynamic_cast<const stats::GaussianKde*>(&dist)) {
    obj["type"] = "kde";
    obj["bandwidth"] = kde->bandwidth();
    json::Array samples;
    samples.reserve(kde->samples().size());
    for (double s : kde->samples()) samples.push_back(s);
    obj["samples"] = std::move(samples);
    return json::Value(std::move(obj));
  }
  if (const auto* hist =
          dynamic_cast<const stats::HistogramDensity*>(&dist)) {
    obj["type"] = "histogram";
    obj["lo"] = hist->lower_bound();
    obj["bin_width"] = hist->bin_width();
    json::Array counts;
    for (int b = 0; b < hist->num_bins(); ++b) {
      counts.push_back(static_cast<uint64_t>(hist->bin_count(b)));
    }
    obj["counts"] = std::move(counts);
    return json::Value(std::move(obj));
  }
  if (const auto* gaussian = dynamic_cast<const stats::Gaussian*>(&dist)) {
    obj["type"] = "gaussian";
    obj["mean"] = gaussian->mean();
    obj["stddev"] = gaussian->stddev();
    return json::Value(std::move(obj));
  }
  if (const auto* bernoulli = dynamic_cast<const stats::Bernoulli*>(&dist)) {
    obj["type"] = "bernoulli";
    obj["p_one"] = bernoulli->p_one();
    return json::Value(std::move(obj));
  }
  if (const auto* categorical =
          dynamic_cast<const stats::Categorical*>(&dist)) {
    obj["type"] = "categorical";
    json::Object mass;
    for (const auto& [value, p] : categorical->mass()) {
      mass[std::to_string(value)] = p;
    }
    obj["mass"] = std::move(mass);
    return json::Value(std::move(obj));
  }
  return Status::Unimplemented("distribution type is not serializable: " +
                               dist.ToString());
}

Result<stats::DistributionPtr> DistributionFromJson(
    const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("distribution must be a JSON object");
  }
  FIXY_ASSIGN_OR_RETURN(std::string type, value.GetString("type"));
  if (type == "kde") {
    FIXY_ASSIGN_OR_RETURN(double bandwidth, value.GetDouble("bandwidth"));
    const json::Value* samples = value.Find("samples");
    if (samples == nullptr || !samples->is_array()) {
      return Status::InvalidArgument("kde missing samples array");
    }
    std::vector<double> xs;
    xs.reserve(samples->AsArray().size());
    for (const json::Value& s : samples->AsArray()) {
      if (!s.is_number()) {
        return Status::InvalidArgument("kde sample must be a number");
      }
      xs.push_back(s.AsDouble());
    }
    FIXY_ASSIGN_OR_RETURN(
        stats::GaussianKde kde,
        stats::GaussianKde::FitWithBandwidth(std::move(xs), bandwidth));
    return stats::DistributionPtr(
        std::make_shared<stats::GaussianKde>(std::move(kde)));
  }
  if (type == "histogram") {
    FIXY_ASSIGN_OR_RETURN(double lo, value.GetDouble("lo"));
    FIXY_ASSIGN_OR_RETURN(double bin_width, value.GetDouble("bin_width"));
    const json::Value* counts = value.Find("counts");
    if (counts == nullptr || !counts->is_array()) {
      return Status::InvalidArgument("histogram missing counts array");
    }
    std::vector<size_t> bins;
    for (const json::Value& c : counts->AsArray()) {
      if (!c.is_number() || c.AsDouble() < 0) {
        return Status::InvalidArgument("histogram count must be >= 0");
      }
      bins.push_back(static_cast<size_t>(c.AsDouble()));
    }
    FIXY_ASSIGN_OR_RETURN(
        stats::HistogramDensity hist,
        stats::HistogramDensity::FromParts(lo, bin_width, std::move(bins)));
    return stats::DistributionPtr(
        std::make_shared<stats::HistogramDensity>(std::move(hist)));
  }
  if (type == "gaussian") {
    FIXY_ASSIGN_OR_RETURN(double mean, value.GetDouble("mean"));
    FIXY_ASSIGN_OR_RETURN(double stddev, value.GetDouble("stddev"));
    FIXY_ASSIGN_OR_RETURN(stats::Gaussian gaussian,
                          stats::Gaussian::Create(mean, stddev));
    return stats::DistributionPtr(
        std::make_shared<stats::Gaussian>(std::move(gaussian)));
  }
  if (type == "bernoulli") {
    FIXY_ASSIGN_OR_RETURN(double p_one, value.GetDouble("p_one"));
    FIXY_ASSIGN_OR_RETURN(stats::Bernoulli bernoulli,
                          stats::Bernoulli::Create(p_one));
    return stats::DistributionPtr(
        std::make_shared<stats::Bernoulli>(std::move(bernoulli)));
  }
  if (type == "categorical") {
    const json::Value* mass = value.Find("mass");
    if (mass == nullptr || !mass->is_object()) {
      return Status::InvalidArgument("categorical missing mass object");
    }
    std::map<long, double> pm;
    for (const auto& [key, p] : mass->AsObject()) {
      if (!p.is_number()) {
        return Status::InvalidArgument("categorical mass must be a number");
      }
      // An empty key would satisfy the end-pointer check below (strtol
      // consumes zero characters and end == begin == begin + size), so it
      // must be rejected explicitly; and strtol signals overflow only via
      // errno, silently clamping to LONG_MAX/LONG_MIN otherwise.
      if (key.empty()) {
        return Status::InvalidArgument("categorical key must not be empty");
      }
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(key.c_str(), &end, 10);
      if (end != key.c_str() + key.size()) {
        return Status::InvalidArgument("categorical key must be an integer: " +
                                       key);
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("categorical key out of range: " + key);
      }
      pm[v] = p.AsDouble();
    }
    FIXY_ASSIGN_OR_RETURN(stats::Categorical categorical,
                          stats::Categorical::FromMass(std::move(pm)));
    return stats::DistributionPtr(
        std::make_shared<stats::Categorical>(std::move(categorical)));
  }
  return Status::InvalidArgument("unknown distribution type: " + type);
}

Result<json::Value> LearnedModelToJson(
    const std::vector<FeatureDistribution>& learned) {
  json::Array features;
  for (const FeatureDistribution& fd : learned) {
    json::Object entry;
    entry["feature"] = fd.feature().name();
    if (fd.global_distribution() != nullptr) {
      FIXY_ASSIGN_OR_RETURN(json::Value dist,
                            DistributionToJson(*fd.global_distribution()));
      entry["distribution"] = std::move(dist);
    } else {
      json::Object per_class;
      for (const auto& [cls, dist] : fd.per_class_distributions()) {
        FIXY_ASSIGN_OR_RETURN(json::Value dist_json,
                              DistributionToJson(*dist));
        per_class[ObjectClassToString(cls)] = std::move(dist_json);
      }
      entry["per_class"] = std::move(per_class);
    }
    features.push_back(std::move(entry));
  }
  json::Object doc;
  doc["format"] = kModelMarker;
  doc["version"] = kModelVersion;
  doc["features"] = std::move(features);
  return json::Value(std::move(doc));
}

Result<std::vector<FeatureDistribution>> LearnedModelFromJson(
    const json::Value& value, const FeatureRegistry& registry) {
  if (!value.is_object()) {
    return Status::InvalidArgument("model document must be an object");
  }
  FIXY_ASSIGN_OR_RETURN(std::string format, value.GetString("format"));
  if (format != kModelMarker) {
    return Status::InvalidArgument("not a fixy-model document");
  }
  FIXY_ASSIGN_OR_RETURN(int64_t version, value.GetInt64("version"));
  if (version != kModelVersion) {
    return Status::InvalidArgument("unsupported fixy-model version");
  }
  const json::Value* features = value.Find("features");
  if (features == nullptr || !features->is_array()) {
    return Status::InvalidArgument("model missing features array");
  }
  std::vector<FeatureDistribution> learned;
  for (const json::Value& entry : features->AsArray()) {
    FIXY_ASSIGN_OR_RETURN(std::string name, entry.GetString("feature"));
    FIXY_ASSIGN_OR_RETURN(FeaturePtr feature, registry.Find(name));
    if (const json::Value* dist = entry.Find("distribution");
        dist != nullptr) {
      FIXY_ASSIGN_OR_RETURN(stats::DistributionPtr loaded,
                            DistributionFromJson(*dist));
      learned.emplace_back(std::move(feature), std::move(loaded));
    } else if (const json::Value* per_class = entry.Find("per_class");
               per_class != nullptr && per_class->is_object()) {
      std::map<ObjectClass, stats::DistributionPtr> loaded;
      for (const auto& [cls_name, dist_json] : per_class->AsObject()) {
        FIXY_ASSIGN_OR_RETURN(ObjectClass cls,
                              ObjectClassFromString(cls_name));
        FIXY_ASSIGN_OR_RETURN(stats::DistributionPtr dist,
                              DistributionFromJson(dist_json));
        loaded[cls] = std::move(dist);
      }
      if (loaded.empty()) {
        return Status::InvalidArgument(
            "per_class distribution map is empty for feature: " + name);
      }
      learned.emplace_back(std::move(feature), std::move(loaded));
    } else {
      return Status::InvalidArgument(
          "feature entry needs 'distribution' or 'per_class': " + name);
    }
  }
  return learned;
}

Status SaveLearnedModel(const std::vector<FeatureDistribution>& learned,
                        const std::string& path) {
  FIXY_ASSIGN_OR_RETURN(json::Value doc, LearnedModelToJson(learned));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << json::Write(doc, /*pretty=*/true);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<FeatureDistribution>> LoadLearnedModel(
    const std::string& path, const FeatureRegistry& registry) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  FIXY_ASSIGN_OR_RETURN(json::Value doc, json::Parse(buffer.str()));
  return LearnedModelFromJson(doc, registry);
}

}  // namespace fixy
