#include "core/model_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "core/features_std.h"
#include "stats/discrete.h"
#include "stats/gaussian.h"
#include "stats/histogram.h"
#include "stats/kde.h"

namespace fixy {

namespace {

constexpr const char* kModelMarker = "fixy-model";
constexpr int kModelVersion = 1;

}  // namespace

FeatureRegistry FeatureRegistry::Standard() {
  FeatureRegistry registry;
  registry.Register(std::make_shared<VolumeFeature>());
  registry.Register(std::make_shared<VelocityFeature>());
  registry.Register(std::make_shared<CountFeature>());
  registry.Register(std::make_shared<DistanceFeature>());
  registry.Register(std::make_shared<ModelOnlyFeature>());
  registry.Register(std::make_shared<ClassAgreementFeature>());
  return registry;
}

void FeatureRegistry::Register(FeaturePtr feature) {
  FIXY_CHECK(feature != nullptr);
  features_[feature->name()] = std::move(feature);
}

Result<FeaturePtr> FeatureRegistry::Find(const std::string& name) const {
  const auto it = features_.find(name);
  if (it == features_.end()) {
    return Status::NotFound("feature not registered: " + name);
  }
  return it->second;
}

Result<json::Value> DistributionToJson(const stats::Distribution& dist) {
  json::Object obj;
  if (const auto* kde = dynamic_cast<const stats::GaussianKde*>(&dist)) {
    obj["type"] = "kde";
    obj["bandwidth"] = kde->bandwidth();
    json::Array samples;
    samples.reserve(kde->samples().size());
    for (double s : kde->samples()) samples.push_back(s);
    obj["samples"] = std::move(samples);
    return json::Value(std::move(obj));
  }
  if (const auto* hist =
          dynamic_cast<const stats::HistogramDensity*>(&dist)) {
    obj["type"] = "histogram";
    obj["lo"] = hist->lower_bound();
    obj["bin_width"] = hist->bin_width();
    json::Array counts;
    for (int b = 0; b < hist->num_bins(); ++b) {
      counts.push_back(static_cast<uint64_t>(hist->bin_count(b)));
    }
    obj["counts"] = std::move(counts);
    return json::Value(std::move(obj));
  }
  if (const auto* gaussian = dynamic_cast<const stats::Gaussian*>(&dist)) {
    obj["type"] = "gaussian";
    obj["mean"] = gaussian->mean();
    obj["stddev"] = gaussian->stddev();
    return json::Value(std::move(obj));
  }
  if (const auto* bernoulli = dynamic_cast<const stats::Bernoulli*>(&dist)) {
    obj["type"] = "bernoulli";
    obj["p_one"] = bernoulli->p_one();
    return json::Value(std::move(obj));
  }
  if (const auto* categorical =
          dynamic_cast<const stats::Categorical*>(&dist)) {
    obj["type"] = "categorical";
    json::Object mass;
    for (const auto& [value, p] : categorical->mass()) {
      mass[std::to_string(value)] = p;
    }
    obj["mass"] = std::move(mass);
    return json::Value(std::move(obj));
  }
  return Status::Unimplemented("distribution type is not serializable: " +
                               dist.ToString());
}

Result<stats::DistributionPtr> DistributionFromJson(
    const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("distribution must be a JSON object");
  }
  FIXY_ASSIGN_OR_RETURN(std::string type, value.GetString("type"));
  if (type == "kde") {
    FIXY_ASSIGN_OR_RETURN(double bandwidth, value.GetDouble("bandwidth"));
    const json::Value* samples = value.Find("samples");
    if (samples == nullptr || !samples->is_array()) {
      return Status::InvalidArgument("kde missing samples array");
    }
    std::vector<double> xs;
    xs.reserve(samples->AsArray().size());
    for (const json::Value& s : samples->AsArray()) {
      if (!s.is_number()) {
        return Status::InvalidArgument("kde sample must be a number");
      }
      xs.push_back(s.AsDouble());
    }
    FIXY_ASSIGN_OR_RETURN(
        stats::GaussianKde kde,
        stats::GaussianKde::FitWithBandwidth(std::move(xs), bandwidth));
    return stats::DistributionPtr(
        std::make_shared<stats::GaussianKde>(std::move(kde)));
  }
  if (type == "histogram") {
    FIXY_ASSIGN_OR_RETURN(double lo, value.GetDouble("lo"));
    FIXY_ASSIGN_OR_RETURN(double bin_width, value.GetDouble("bin_width"));
    const json::Value* counts = value.Find("counts");
    if (counts == nullptr || !counts->is_array()) {
      return Status::InvalidArgument("histogram missing counts array");
    }
    std::vector<size_t> bins;
    for (const json::Value& c : counts->AsArray()) {
      if (!c.is_number() || c.AsDouble() < 0) {
        return Status::InvalidArgument("histogram count must be >= 0");
      }
      bins.push_back(static_cast<size_t>(c.AsDouble()));
    }
    FIXY_ASSIGN_OR_RETURN(
        stats::HistogramDensity hist,
        stats::HistogramDensity::FromParts(lo, bin_width, std::move(bins)));
    return stats::DistributionPtr(
        std::make_shared<stats::HistogramDensity>(std::move(hist)));
  }
  if (type == "gaussian") {
    FIXY_ASSIGN_OR_RETURN(double mean, value.GetDouble("mean"));
    FIXY_ASSIGN_OR_RETURN(double stddev, value.GetDouble("stddev"));
    FIXY_ASSIGN_OR_RETURN(stats::Gaussian gaussian,
                          stats::Gaussian::Create(mean, stddev));
    return stats::DistributionPtr(
        std::make_shared<stats::Gaussian>(std::move(gaussian)));
  }
  if (type == "bernoulli") {
    FIXY_ASSIGN_OR_RETURN(double p_one, value.GetDouble("p_one"));
    FIXY_ASSIGN_OR_RETURN(stats::Bernoulli bernoulli,
                          stats::Bernoulli::Create(p_one));
    return stats::DistributionPtr(
        std::make_shared<stats::Bernoulli>(std::move(bernoulli)));
  }
  if (type == "categorical") {
    const json::Value* mass = value.Find("mass");
    if (mass == nullptr || !mass->is_object()) {
      return Status::InvalidArgument("categorical missing mass object");
    }
    std::map<long, double> pm;
    for (const auto& [key, p] : mass->AsObject()) {
      if (!p.is_number()) {
        return Status::InvalidArgument("categorical mass must be a number");
      }
      // An empty key would satisfy the end-pointer check below (strtol
      // consumes zero characters and end == begin == begin + size), so it
      // must be rejected explicitly; and strtol signals overflow only via
      // errno, silently clamping to LONG_MAX/LONG_MIN otherwise.
      if (key.empty()) {
        return Status::InvalidArgument("categorical key must not be empty");
      }
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(key.c_str(), &end, 10);
      if (end != key.c_str() + key.size()) {
        return Status::InvalidArgument("categorical key must be an integer: " +
                                       key);
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("categorical key out of range: " + key);
      }
      pm[v] = p.AsDouble();
    }
    FIXY_ASSIGN_OR_RETURN(stats::Categorical categorical,
                          stats::Categorical::FromMass(std::move(pm)));
    return stats::DistributionPtr(
        std::make_shared<stats::Categorical>(std::move(categorical)));
  }
  return Status::InvalidArgument("unknown distribution type: " + type);
}

namespace {

// One value stream's statistics; which members appear follows the
// estimator kind, mirroring SampleStats::Add.
Result<json::Value> SampleStatsToJson(const SampleStats& stats,
                                      EstimatorKind kind) {
  json::Object obj;
  switch (kind) {
    case EstimatorKind::kGaussian:
      obj["n"] = stats.moments.n;
      obj["sum"] = stats.moments.sum;
      obj["sum_sq"] = stats.moments.sum_sq;
      break;
    case EstimatorKind::kHistogram:
    case EstimatorKind::kCategorical: {
      obj["total"] = stats.counts.total;
      json::Array values;
      json::Array counts;
      for (const auto& [value, count] : stats.counts.counts) {
        values.push_back(value);
        counts.push_back(count);
      }
      obj["values"] = std::move(values);
      obj["counts"] = std::move(counts);
      break;
    }
    case EstimatorKind::kKde: {
      obj["seen"] = stats.reservoir.seen;
      obj["capacity"] = stats.reservoir.capacity;
      obj["seed"] = stats.reservoir.seed;
      json::Array items;
      items.reserve(stats.reservoir.items.size());
      for (double item : stats.reservoir.items) items.push_back(item);
      obj["items"] = std::move(items);
      break;
    }
  }
  return json::Value(std::move(obj));
}

Result<SampleStats> SampleStatsFromJson(const json::Value& value,
                                        EstimatorKind kind) {
  if (!value.is_object()) {
    return Status::InvalidArgument("sample stats must be a JSON object");
  }
  SampleStats stats;
  switch (kind) {
    case EstimatorKind::kGaussian: {
      FIXY_ASSIGN_OR_RETURN(int64_t n, value.GetInt64("n"));
      if (n < 0) return Status::InvalidArgument("moment stats n must be >= 0");
      FIXY_ASSIGN_OR_RETURN(stats.moments.sum, value.GetDouble("sum"));
      FIXY_ASSIGN_OR_RETURN(stats.moments.sum_sq, value.GetDouble("sum_sq"));
      stats.moments.n = static_cast<uint64_t>(n);
      break;
    }
    case EstimatorKind::kHistogram:
    case EstimatorKind::kCategorical: {
      FIXY_ASSIGN_OR_RETURN(int64_t total, value.GetInt64("total"));
      if (total < 0) {
        return Status::InvalidArgument("value counts total must be >= 0");
      }
      const json::Value* values = value.Find("values");
      const json::Value* counts = value.Find("counts");
      if (values == nullptr || !values->is_array() || counts == nullptr ||
          !counts->is_array() ||
          values->AsArray().size() != counts->AsArray().size()) {
        return Status::InvalidArgument(
            "value counts need parallel values/counts arrays");
      }
      uint64_t sum = 0;
      for (size_t i = 0; i < values->AsArray().size(); ++i) {
        const json::Value& v = values->AsArray()[i];
        const json::Value& c = counts->AsArray()[i];
        if (!v.is_number() || !c.is_number() || c.AsDouble() < 1) {
          return Status::InvalidArgument(
              "value counts entries must be numbers with counts >= 1");
        }
        const auto count = static_cast<uint64_t>(c.AsDouble());
        if (!stats.counts.counts.emplace(v.AsDouble(), count).second) {
          return Status::InvalidArgument("value counts has a duplicate value");
        }
        sum += count;
      }
      if (sum != static_cast<uint64_t>(total)) {
        return Status::InvalidArgument(
            "value counts total does not match the counts");
      }
      stats.counts.total = static_cast<uint64_t>(total);
      break;
    }
    case EstimatorKind::kKde: {
      FIXY_ASSIGN_OR_RETURN(int64_t seen, value.GetInt64("seen"));
      FIXY_ASSIGN_OR_RETURN(int64_t capacity, value.GetInt64("capacity"));
      FIXY_ASSIGN_OR_RETURN(int64_t seed, value.GetInt64("seed"));
      if (seen < 0 || capacity < 0 || seed < 0) {
        return Status::InvalidArgument("reservoir fields must be >= 0");
      }
      const json::Value* items = value.Find("items");
      if (items == nullptr || !items->is_array()) {
        return Status::InvalidArgument("reservoir missing items array");
      }
      stats.reservoir.seen = static_cast<uint64_t>(seen);
      stats.reservoir.capacity = static_cast<uint64_t>(capacity);
      stats.reservoir.seed = static_cast<uint64_t>(seed);
      stats.reservoir.items.reserve(items->AsArray().size());
      for (const json::Value& item : items->AsArray()) {
        if (!item.is_number()) {
          return Status::InvalidArgument("reservoir item must be a number");
        }
        stats.reservoir.items.push_back(item.AsDouble());
      }
      // Resumability invariant: the reservoir holds min(seen, capacity)
      // items — anything else cannot have come from ValueReservoir::Add.
      const uint64_t expected = std::min(stats.reservoir.seen,
                                         stats.reservoir.capacity);
      if (stats.reservoir.items.size() != expected) {
        return Status::InvalidArgument(
            "reservoir item count does not match seen/capacity");
      }
      break;
    }
  }
  return stats;
}

}  // namespace

Result<json::Value> FeatureStatsToJson(const FeatureStats& stats) {
  json::Object obj;
  obj["estimator"] = std::string(EstimatorKindToString(stats.estimator));
  obj["class_conditional"] = stats.class_conditional;
  if (stats.class_conditional) {
    json::Object per_class;
    for (const auto& [cls, sample_stats] : stats.per_class) {
      FIXY_ASSIGN_OR_RETURN(json::Value entry,
                            SampleStatsToJson(sample_stats, stats.estimator));
      per_class[ObjectClassToString(cls)] = std::move(entry);
    }
    obj["per_class"] = std::move(per_class);
  } else {
    FIXY_ASSIGN_OR_RETURN(json::Value global,
                          SampleStatsToJson(stats.global, stats.estimator));
    obj["global"] = std::move(global);
  }
  return json::Value(std::move(obj));
}

Result<FeatureStats> FeatureStatsFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("feature stats must be a JSON object");
  }
  FIXY_ASSIGN_OR_RETURN(std::string estimator, value.GetString("estimator"));
  FeatureStats stats;
  FIXY_ASSIGN_OR_RETURN(stats.estimator, EstimatorKindFromString(estimator));
  FIXY_ASSIGN_OR_RETURN(stats.class_conditional,
                        value.GetBool("class_conditional"));
  if (stats.class_conditional) {
    const json::Value* per_class = value.Find("per_class");
    if (per_class == nullptr || !per_class->is_object()) {
      return Status::InvalidArgument("feature stats missing per_class object");
    }
    for (const auto& [cls_name, entry] : per_class->AsObject()) {
      FIXY_ASSIGN_OR_RETURN(ObjectClass cls, ObjectClassFromString(cls_name));
      FIXY_ASSIGN_OR_RETURN(SampleStats sample_stats,
                            SampleStatsFromJson(entry, stats.estimator));
      stats.per_class[cls] = std::move(sample_stats);
    }
    if (stats.per_class.empty()) {
      return Status::InvalidArgument("per_class stats map is empty");
    }
  } else {
    const json::Value* global = value.Find("global");
    if (global == nullptr) {
      return Status::InvalidArgument("feature stats missing global object");
    }
    FIXY_ASSIGN_OR_RETURN(stats.global,
                          SampleStatsFromJson(*global, stats.estimator));
  }
  return stats;
}

Result<json::Value> LearnedModelToJson(
    const std::vector<FeatureDistribution>& learned) {
  return LearnedModelToJson(learned, {});
}

Result<json::Value> LearnedModelToJson(
    const std::vector<FeatureDistribution>& learned,
    const std::vector<FeatureStats>& stats) {
  if (!stats.empty() && stats.size() != learned.size()) {
    return Status::InvalidArgument(
        "model stats must be empty or parallel to the distributions");
  }
  json::Array features;
  for (size_t i = 0; i < learned.size(); ++i) {
    const FeatureDistribution& fd = learned[i];
    json::Object entry;
    entry["feature"] = fd.feature().name();
    if (fd.global_distribution() != nullptr) {
      FIXY_ASSIGN_OR_RETURN(json::Value dist,
                            DistributionToJson(*fd.global_distribution()));
      entry["distribution"] = std::move(dist);
    } else {
      json::Object per_class;
      for (const auto& [cls, dist] : fd.per_class_distributions()) {
        FIXY_ASSIGN_OR_RETURN(json::Value dist_json,
                              DistributionToJson(*dist));
        per_class[ObjectClassToString(cls)] = std::move(dist_json);
      }
      entry["per_class"] = std::move(per_class);
    }
    if (!stats.empty()) {
      FIXY_ASSIGN_OR_RETURN(json::Value stats_json,
                            FeatureStatsToJson(stats[i]));
      entry["stats"] = std::move(stats_json);
    }
    features.push_back(std::move(entry));
  }
  json::Object doc;
  doc["format"] = kModelMarker;
  doc["version"] = kModelVersion;
  doc["features"] = std::move(features);
  return json::Value(std::move(doc));
}

Result<std::vector<FeatureDistribution>> LearnedModelFromJson(
    const json::Value& value, const FeatureRegistry& registry) {
  FIXY_ASSIGN_OR_RETURN(LoadedModel model,
                        LearnedModelWithStatsFromJson(value, registry));
  return std::move(model.distributions);
}

Result<LoadedModel> LearnedModelWithStatsFromJson(
    const json::Value& value, const FeatureRegistry& registry) {
  if (!value.is_object()) {
    return Status::InvalidArgument("model document must be an object");
  }
  FIXY_ASSIGN_OR_RETURN(std::string format, value.GetString("format"));
  if (format != kModelMarker) {
    return Status::InvalidArgument("not a fixy-model document");
  }
  FIXY_ASSIGN_OR_RETURN(int64_t version, value.GetInt64("version"));
  if (version != kModelVersion) {
    return Status::InvalidArgument("unsupported fixy-model version");
  }
  const json::Value* features = value.Find("features");
  if (features == nullptr || !features->is_array()) {
    return Status::InvalidArgument("model missing features array");
  }
  LoadedModel model;
  size_t entries_with_stats = 0;
  for (const json::Value& entry : features->AsArray()) {
    FIXY_ASSIGN_OR_RETURN(std::string name, entry.GetString("feature"));
    FIXY_ASSIGN_OR_RETURN(FeaturePtr feature, registry.Find(name));
    if (const json::Value* dist = entry.Find("distribution");
        dist != nullptr) {
      FIXY_ASSIGN_OR_RETURN(stats::DistributionPtr loaded,
                            DistributionFromJson(*dist));
      model.distributions.emplace_back(std::move(feature), std::move(loaded));
    } else if (const json::Value* per_class = entry.Find("per_class");
               per_class != nullptr && per_class->is_object()) {
      std::map<ObjectClass, stats::DistributionPtr> loaded;
      for (const auto& [cls_name, dist_json] : per_class->AsObject()) {
        FIXY_ASSIGN_OR_RETURN(ObjectClass cls,
                              ObjectClassFromString(cls_name));
        FIXY_ASSIGN_OR_RETURN(stats::DistributionPtr dist,
                              DistributionFromJson(dist_json));
        loaded[cls] = std::move(dist);
      }
      if (loaded.empty()) {
        return Status::InvalidArgument(
            "per_class distribution map is empty for feature: " + name);
      }
      model.distributions.emplace_back(std::move(feature), std::move(loaded));
    } else {
      return Status::InvalidArgument(
          "feature entry needs 'distribution' or 'per_class': " + name);
    }
    if (const json::Value* stats_json = entry.Find("stats");
        stats_json != nullptr) {
      FIXY_ASSIGN_OR_RETURN(FeatureStats stats,
                            FeatureStatsFromJson(*stats_json));
      model.stats.push_back(std::move(stats));
      ++entries_with_stats;
    }
  }
  // Stats are all-or-nothing: a partial set cannot be folded into, so it
  // loads as a plain (non-incremental) model would — except a mix, which
  // indicates a damaged file.
  if (entries_with_stats != 0 &&
      entries_with_stats != model.distributions.size()) {
    return Status::InvalidArgument(
        "model carries stats for only some features");
  }
  return model;
}

Status SaveLearnedModel(const std::vector<FeatureDistribution>& learned,
                        const std::string& path) {
  return SaveLearnedModel(learned, {}, path);
}

Status SaveLearnedModel(const std::vector<FeatureDistribution>& learned,
                        const std::vector<FeatureStats>& stats,
                        const std::string& path) {
  FIXY_ASSIGN_OR_RETURN(json::Value doc, LearnedModelToJson(learned, stats));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << json::Write(doc, /*pretty=*/true);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<FeatureDistribution>> LoadLearnedModel(
    const std::string& path, const FeatureRegistry& registry) {
  FIXY_ASSIGN_OR_RETURN(LoadedModel model,
                        LoadLearnedModelWithStats(path, registry));
  return std::move(model.distributions);
}

Result<LoadedModel> LoadLearnedModelWithStats(const std::string& path,
                                              const FeatureRegistry& registry) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  FIXY_ASSIGN_OR_RETURN(json::Value doc, json::Parse(buffer.str()));
  return LearnedModelWithStatsFromJson(doc, registry);
}

}  // namespace fixy
