// Fixy: the system facade. Offline, Learn() fits feature distributions
// from existing labels (the organizational resource); online, the Find*
// methods rank potential errors in new scenes (Section 3's workflow).
//
// Quickstart:
//
//   Fixy fixy;
//   FIXY_RETURN_IF_ERROR(fixy.Learn(training_dataset));
//   FIXY_ASSIGN_OR_RETURN(auto errors, fixy.FindMissingTracks(scene));
//   for (const ErrorProposal& e : TopK(errors, 10)) { ... audit ... }
//
// Applications are open-ended: the engine ranks everything in its
// ApplicationRegistry (the three paper applications plus any AppSpecs
// registered through FixyOptions::extra_applications), and the
// name-addressed RankDataset overloads rank several applications from one
// pass over the dataset — one decode and one association per scene.
#ifndef FIXY_CORE_ENGINE_H_
#define FIXY_CORE_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/app_registry.h"
#include "core/applications.h"
#include "core/learner.h"
#include "core/proposal.h"
#include "data/scene.h"
#include "data/scene_source.h"
#include "obs/metrics.h"

namespace fixy {

/// Configuration of the full pipeline.
struct FixyOptions {
  LearnerOptions learner;
  ApplicationOptions application;

  /// Additional user-defined features to learn distributions for, beyond
  /// the standard volume and velocity (see examples/custom_features.cpp).
  std::vector<FeaturePtr> extra_features;

  /// Additional user-defined applications, registered alongside the three
  /// paper applications. A registered application ranks end-to-end —
  /// engine, batch and streaming APIs, CLI `--apps`, and per-app metrics —
  /// without modifying src/core. Registration errors (duplicate or invalid
  /// names, missing strategies) surface from the first ranking call.
  std::vector<AppSpec> extra_applications;
};

/// The three error-ranking applications of Section 7, as a selector for
/// the single-app batch API (kept for callers that predate the
/// name-addressed registry surface).
enum class Application {
  kMissingTracks = 0,
  kMissingObservations = 1,
  kModelErrors = 2,
};

/// The registry name of a paper application ("missing-tracks",
/// "missing-obs", "model-errors").
const char* ApplicationName(Application app);

/// Configuration of dataset-scale batch ranking.
struct BatchOptions {
  /// Worker threads to fan scenes out across. 0 (the default) uses
  /// hardware concurrency; 1 runs serially on the calling thread.
  int num_threads = 0;

  /// When true, RankDataset fails with the first failing scene's Status
  /// (in dataset order, regardless of thread count; within a scene, in
  /// requested-application order). When false (the default), failing
  /// scenes are quarantined: their outcome carries the error, every other
  /// scene ranks normally, and the call succeeds.
  bool fail_fast = false;

  /// When true, the batch records a PipelineMetrics snapshot: per-scene
  /// trace spans, stage timers (track build, per-application factor-graph
  /// compile), and counters (per-application proposals, KDE evaluations,
  /// quarantines). Counter values are deterministic — byte identical at
  /// every thread count — because each scene records into its own
  /// collector and the snapshots merge in dataset order. When false (the
  /// default) the batch records nothing, at any thread count.
  bool collect_metrics = false;
};

/// Configuration of the streaming ingestion pipeline
/// (RankDatasetStreaming).
struct StreamOptions {
  /// Threads decoding scenes from the SceneSource. 1 (the default) keeps
  /// a single loader feeding the rank workers; higher values overlap
  /// several decodes. Values < 1 are treated as 1.
  int decode_threads = 1;

  /// Capacity of the bounded decode→rank queue: at most this many decoded
  /// scenes wait in memory, so ingestion memory stays O(capacity) however
  /// far decode runs ahead. 0 (the default) uses 2× the rank thread
  /// count.
  size_t queue_capacity = 0;

  /// Stall detection. 0 (the default) waits forever, matching the old
  /// behavior. When > 0: if no scene reaches a rank worker for this many
  /// milliseconds while decodes are still outstanding, the run is
  /// declared stalled and fails with a Status instead of hanging on a
  /// wedged decode worker. The wedged decode thread cannot be joined —
  /// it is abandoned, parked on its leaked pool for the remainder of the
  /// process, still holding a reference to `source` (so a caller that
  /// sees the stall error should not destroy the source if it can avoid
  /// it). Pick a value comfortably above the worst-case gap between two
  /// scene decodes; a too-small value turns a slow decode into a
  /// spurious stall error.
  int stall_timeout_ms = 0;

  /// Hard ceiling on decoded-but-not-yet-ranked scenes: each loader takes
  /// a permit before decoding and the permit is released when a rank
  /// worker claims the scene, so at most this many decoded scenes exist
  /// outside the rank workers at any instant — including the ones loaders
  /// hold while blocked pushing into a full queue, which queue_capacity
  /// alone does not bound. 0 (the default) leaves residency bounded only
  /// by queue_capacity + decode_threads. Values > 0 smaller than the
  /// decode thread count simply idle the surplus loaders; no deadlock is
  /// possible because permits are freed by the pop side. The run records
  /// the observed peak as the stream.resident_scenes_peak gauge when
  /// metrics are collected.
  size_t max_resident_scenes = 0;
};

/// Outcome of ranking one scene within a batch.
struct SceneOutcome {
  std::string scene_name;
  /// Ok when the scene ranked; otherwise why it was quarantined.
  Status status;
  /// Ranked most-suspicious-first; empty when the scene failed.
  std::vector<ErrorProposal> proposals;
  /// Wall time spent ranking this scene, excluding queue wait. In a
  /// multi-application run the scene is ranked once for all applications
  /// (shared association), so every application's outcome carries the
  /// same shared wall time. Only populated when
  /// BatchOptions::collect_metrics is on.
  double wall_ms = 0.0;

  bool ok() const { return status.ok(); }
};

/// Per-scene outcomes of a RankDataset call, in dataset order (element i
/// corresponds to dataset.scenes[i]). A failing scene never perturbs the
/// other scenes' proposals: each scene is scored independently against the
/// shared immutable spec, so outcome i is byte-identical to what an
/// all-clean batch would produce for that scene.
struct BatchReport {
  std::vector<SceneOutcome> outcomes;

  /// Summary counters (kept consistent with `outcomes` by RankDataset).
  size_t scenes_ok = 0;
  size_t scenes_failed = 0;
  /// Failing scenes that were quarantined instead of poisoning the batch;
  /// equal to scenes_failed when fail_fast is off, 0 when it is on (a
  /// failure then fails the whole call instead).
  size_t scenes_quarantined = 0;

  /// Stage timers, counters, and gauges for the whole batch. Empty unless
  /// BatchOptions::collect_metrics was set. Counter values are identical
  /// at every thread count; timer values measure this particular run. In
  /// a MultiAppReport the run-wide snapshot lives on the MultiAppReport
  /// instead and the per-app reports leave this empty.
  obs::PipelineMetrics metrics;

  bool all_ok() const { return scenes_failed == 0; }
};

/// The result of ranking several applications from one pass over a
/// dataset: one BatchReport per requested application (in request order),
/// each byte-identical to what a solo run of that application would have
/// produced — same proposals, same outcome order, at any thread count.
struct MultiAppReport {
  /// Resolved application names, parallel to `reports`.
  std::vector<std::string> apps;
  std::vector<BatchReport> reports;

  /// The whole run's metrics snapshot (when collected): shared stage
  /// timers/counters (rank.track_build, rank.track_builds, batch.*) plus
  /// each application's rank.<name>.* keys. Per-app reports carry empty
  /// metrics — the pass is shared, so per-scene costs are not separable
  /// per application.
  obs::PipelineMetrics metrics;

  bool all_ok() const {
    for (const BatchReport& report : reports) {
      if (!report.all_ok()) return false;
    }
    return true;
  }
};

/// Appends the outcomes of `part` — a report over the next contiguous
/// slice of the dataset, ranked with the same applications — onto `into`,
/// preserving scene order. An empty `into` (no apps yet) adopts `part`'s
/// app list; afterwards the lists must match exactly. Summary counters
/// are NOT updated — call RecomputeReportSummary once after the last
/// append. Used by the shard coordinator to merge per-shard reports in
/// shard order; because shard ranges partition the dataset and scenes are
/// scored independently, the concatenation is byte-identical to a
/// single-process run. Errors: InvalidArgument on an app-list mismatch.
Status AppendShardReport(MultiAppReport& into, MultiAppReport&& part);

/// Recomputes every per-app report's scenes_ok / scenes_failed /
/// scenes_quarantined from its outcomes (failed == quarantined, the
/// keep-going convention).
void RecomputeReportSummary(MultiAppReport& report);

/// The Fixy engine.
class Fixy {
 public:
  explicit Fixy(FixyOptions options = {});

  /// Offline phase: learns the volume and velocity distributions (plus any
  /// extra features) from `training`'s human labels, and the track-count
  /// distribution used by the model-error application. Also retains the
  /// per-feature sufficient statistics the distributions materialized
  /// from, so LearnIncremental can fold new scenes in later.
  Status Learn(const Dataset& training);

  /// Folds the scenes of `delta` into the retained sufficient statistics
  /// and re-materializes every learned distribution — the amortized cost
  /// is proportional to `delta`, not to everything learned so far. For
  /// the exact estimators (gaussian moments, histogram/categorical
  /// counts) the result is identical to a full refit over the extended
  /// dataset; for KDE it is identical while the per-class sample streams
  /// fit in the reservoir (LearnerOptions::kde_reservoir_capacity) and
  /// divergence is bounded past it (DESIGN.md §14). On error the learned
  /// state is unchanged. Errors: FailedPrecondition before Learn() or
  /// when the model carries no statistics (loaded from a file saved
  /// before incremental learning); otherwise the learner's errors.
  Status LearnIncremental(const Dataset& delta);

  bool is_learned() const { return learned_flag_; }

  /// True when the engine holds the sufficient statistics
  /// LearnIncremental needs — after Learn(), or after LoadModel() of a
  /// file that carried stats.
  bool supports_incremental_learning() const { return has_stats_; }

  /// Online phase (each requires Learn() first; FailedPrecondition
  /// otherwise). Outputs are ranked most-suspicious-first.
  ///
  /// Ranks one registered application (by name) over one scene.
  /// InvalidArgument for an unknown name — the message lists the
  /// registered names.
  Result<std::vector<ErrorProposal>> Find(const Scene& scene,
                                          const std::string& app) const;

  /// Name-sugar facades for the paper applications.
  Result<std::vector<ErrorProposal>> FindMissingTracks(
      const Scene& scene) const;
  Result<std::vector<ErrorProposal>> FindMissingObservations(
      const Scene& scene) const;
  Result<std::vector<ErrorProposal>> FindModelErrors(
      const Scene& scene) const;

  /// Ranks every requested application over ONE scene from a single
  /// association pass (the same shared ScenePass the batch path uses), on
  /// the calling thread. The returned per-app reports each hold exactly
  /// one outcome and are byte-identical to a one-scene RankDataset — this
  /// is the daemon's single-scene request path, where the pool fans out
  /// across requests rather than within one. Same failure semantics as
  /// the quarantining batch default: a failing scene yields an ok report
  /// whose outcomes carry the error. Errors: InvalidArgument for an empty
  /// request or unknown/duplicated application name; FailedPrecondition
  /// before Learn().
  Result<MultiAppReport> RankScene(const Scene& scene,
                                   const std::vector<std::string>& apps) const;

  /// Dataset-scale multi-application batch ranking: runs every requested
  /// application over every scene of `dataset` from ONE pass — scenes fan
  /// out across a thread pool, and each worker runs association once per
  /// scene (ScenePass) and then compiles/scores each application against
  /// the shared track views and feature-score cache. Per-app reports are
  /// byte-identical to solo runs of each application, at every thread
  /// count (scenes are scored independently against shared immutable
  /// specs; nothing in the online phase draws randomness).
  ///
  /// Failure semantics: by default a failing (scene, application) pair is
  /// quarantined — its outcome carries the error Status, all other
  /// outcomes are unaffected, and the call returns an ok MultiAppReport.
  /// With BatchOptions::fail_fast the call instead returns the first
  /// failing scene's Status, in dataset order (then request order within
  /// the scene). An empty dataset yields an ok report with empty
  /// per-app outcomes. Errors: InvalidArgument for an empty request, an
  /// unknown or duplicated application name.
  Result<MultiAppReport> RankDataset(const Dataset& dataset,
                                     const std::vector<std::string>& apps,
                                     const BatchOptions& batch = {}) const;

  /// Single-application wrapper over the multi-app pass; the run-wide
  /// metrics land on the returned BatchReport.
  Result<BatchReport> RankDataset(const Dataset& dataset, Application app,
                                  const BatchOptions& batch = {}) const;

  /// Streaming variant of the multi-application RankDataset: scenes are
  /// decoded on demand from `source` by a loader pool and fed to the rank
  /// workers through a bounded queue, overlapping decode with ranking and
  /// keeping at most StreamOptions::queue_capacity decoded scenes in
  /// memory — each scene still decoded once and associated once for all
  /// applications. Outcomes land in pre-assigned dataset-order slots, so
  /// the report (outcomes, proposals, and every metrics counter) is
  /// byte-identical to RankDataset over the materialized dataset, at any
  /// combination of decode and rank thread counts. A scene whose *decode*
  /// fails is quarantined for every application exactly like a scene whose
  /// ranking fails (or, with fail_fast, fails the call with the first
  /// dataset-order error).
  Result<MultiAppReport> RankDatasetStreaming(
      const SceneSource& source, const std::vector<std::string>& apps,
      const BatchOptions& batch = {}, const StreamOptions& stream = {}) const;

  /// Single-application wrapper over the streaming multi-app pass.
  Result<BatchReport> RankDatasetStreaming(
      const SceneSource& source, Application app,
      const BatchOptions& batch = {}, const StreamOptions& stream = {}) const;

  /// The application registry this engine ranks against: the three paper
  /// applications plus FixyOptions::extra_applications.
  const ApplicationRegistry& applications() const { return registry_; }

  /// The learned feature distributions (volume, velocity, extras) — for
  /// inspection, tests, and the Figure 2 bench.
  const std::vector<FeatureDistribution>& learned_features() const {
    return learned_base_;
  }

  /// Persists the learned model (all fitted distributions) to `path` so
  /// the online phase can run in a different process. Requires Learn().
  Status SaveModel(const std::string& path) const;

  /// Restores a model saved with SaveModel, resolving feature names
  /// through the standard registry plus this engine's extra_features.
  /// Replaces any previously learned state.
  Status LoadModel(const std::string& path);

  const FixyOptions& options() const { return options_; }

 private:
  /// The applications and association views one ranking call runs.
  struct RunPlan {
    /// Indices into registry_.apps() / specs_, in request order.
    std::vector<size_t> app_indices;
    bool need_full = false;
    bool need_model = false;
  };

  Status CheckLearned() const;

  /// The standard learned feature list (volume + velocity + extras) —
  /// must be identical for Learn and LearnIncremental so folded stats
  /// stay parallel to the features they were collected for.
  std::vector<FeaturePtr> BaseFeatures() const;

  /// Learned-state + registry checks and name resolution shared by every
  /// ranking entry point.
  Result<RunPlan> PlanRun(const std::vector<std::string>& names) const;

  /// Rebuilds the cached per-application specs from the learned state.
  /// Called once after Learn()/LoadModel(); the ranking hot path then
  /// reuses the immutable specs instead of re-wrapping every
  /// FeatureDistribution (and re-allocating its shared_ptr features) per
  /// call.
  void RebuildSpecs();

  /// Runs one ScenePass over `scene` and every planned application against
  /// it, writing outcome `slot` of each report (reports are parallel to
  /// plan.app_indices). A pass failure fails every application's outcome.
  void RankSceneApps(const RunPlan& plan, const Scene& scene,
                     std::vector<BatchReport>& reports, size_t slot) const;

  FixyOptions options_;
  /// The paper applications + options_.extra_applications.
  ApplicationRegistry registry_;
  /// First error from registering extra_applications (surfaced by the
  /// first ranking call; construction itself cannot fail).
  Status registry_status_;
  bool learned_flag_ = false;
  /// Volume + velocity + extras, for the label-error applications.
  std::vector<FeatureDistribution> learned_base_;
  /// learned_base_ + learned track-count, for the model-error application
  /// (Section 8.4 adds "a track feature over the total number of
  /// observations").
  std::vector<FeatureDistribution> learned_with_count_;
  /// Sufficient statistics behind learned_base_ (parallel to it) and the
  /// count distribution; empty with has_stats_ false when the model was
  /// loaded from a stats-less file.
  std::vector<FeatureStats> stats_base_;
  std::vector<FeatureStats> stats_count_;
  bool has_stats_ = false;
  /// Cached specs, parallel to registry_.apps(), built by RebuildSpecs().
  /// Immutable between Learn()/LoadModel() calls and safe to share across
  /// the batch path's worker threads.
  std::vector<LoaSpec> specs_;
};

}  // namespace fixy

#endif  // FIXY_CORE_ENGINE_H_
