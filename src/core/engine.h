// Fixy: the system facade. Offline, Learn() fits feature distributions
// from existing labels (the organizational resource); online, the Find*
// methods rank potential errors in new scenes (Section 3's workflow).
//
// Quickstart:
//
//   Fixy fixy;
//   FIXY_RETURN_IF_ERROR(fixy.Learn(training_dataset));
//   FIXY_ASSIGN_OR_RETURN(auto errors, fixy.FindMissingTracks(scene));
//   for (const ErrorProposal& e : TopK(errors, 10)) { ... audit ... }
#ifndef FIXY_CORE_ENGINE_H_
#define FIXY_CORE_ENGINE_H_

#include <vector>

#include "common/result.h"
#include "core/applications.h"
#include "core/learner.h"
#include "core/proposal.h"
#include "data/scene.h"
#include "data/scene_source.h"
#include "obs/metrics.h"

namespace fixy {

/// Configuration of the full pipeline.
struct FixyOptions {
  LearnerOptions learner;
  ApplicationOptions application;

  /// Additional user-defined features to learn distributions for, beyond
  /// the standard volume and velocity (see examples/custom_features.cpp).
  std::vector<FeaturePtr> extra_features;
};

/// The three error-ranking applications of Section 7, as a selector for
/// the batch API.
enum class Application {
  kMissingTracks = 0,
  kMissingObservations = 1,
  kModelErrors = 2,
};

/// Configuration of dataset-scale batch ranking.
struct BatchOptions {
  /// Worker threads to fan scenes out across. 0 (the default) uses
  /// hardware concurrency; 1 runs serially on the calling thread.
  int num_threads = 0;

  /// When true, RankDataset fails with the first failing scene's Status
  /// (in dataset order, regardless of thread count). When false (the
  /// default), failing scenes are quarantined: their outcome carries the
  /// error, every other scene ranks normally, and the call succeeds.
  bool fail_fast = false;

  /// When true, the batch records a PipelineMetrics snapshot into
  /// BatchReport::metrics: per-scene trace spans, stage timers
  /// (track build, factor-graph compile), and counters (proposals, KDE
  /// evaluations, quarantines). Counter values are deterministic — byte
  /// identical at every thread count — because each scene records into
  /// its own collector and the snapshots merge in dataset order. When
  /// false (the default) the batch records nothing, at any thread count.
  bool collect_metrics = false;
};

/// Configuration of the streaming ingestion pipeline
/// (RankDatasetStreaming).
struct StreamOptions {
  /// Threads decoding scenes from the SceneSource. 1 (the default) keeps
  /// a single loader feeding the rank workers; higher values overlap
  /// several decodes. Values < 1 are treated as 1.
  int decode_threads = 1;

  /// Capacity of the bounded decode→rank queue: at most this many decoded
  /// scenes wait in memory, so ingestion memory stays O(capacity) however
  /// far decode runs ahead. 0 (the default) uses 2× the rank thread
  /// count.
  size_t queue_capacity = 0;
};

/// Outcome of ranking one scene within a batch.
struct SceneOutcome {
  std::string scene_name;
  /// Ok when the scene ranked; otherwise why it was quarantined.
  Status status;
  /// Ranked most-suspicious-first; empty when the scene failed.
  std::vector<ErrorProposal> proposals;
  /// Wall time spent ranking this scene, excluding queue wait. Only
  /// populated when BatchOptions::collect_metrics is on.
  double wall_ms = 0.0;

  bool ok() const { return status.ok(); }
};

/// Per-scene outcomes of a RankDataset call, in dataset order (element i
/// corresponds to dataset.scenes[i]). A failing scene never perturbs the
/// other scenes' proposals: each scene is scored independently against the
/// shared immutable spec, so outcome i is byte-identical to what an
/// all-clean batch would produce for that scene.
struct BatchReport {
  std::vector<SceneOutcome> outcomes;

  /// Summary counters (kept consistent with `outcomes` by RankDataset).
  size_t scenes_ok = 0;
  size_t scenes_failed = 0;
  /// Failing scenes that were quarantined instead of poisoning the batch;
  /// equal to scenes_failed when fail_fast is off, 0 when it is on (a
  /// failure then fails the whole call instead).
  size_t scenes_quarantined = 0;

  /// Stage timers, counters, and gauges for the whole batch. Empty unless
  /// BatchOptions::collect_metrics was set. Counter values are identical
  /// at every thread count; timer values measure this particular run.
  obs::PipelineMetrics metrics;

  bool all_ok() const { return scenes_failed == 0; }
};

/// The Fixy engine.
class Fixy {
 public:
  explicit Fixy(FixyOptions options = {});

  /// Offline phase: learns the volume and velocity distributions (plus any
  /// extra features) from `training`'s human labels, and the track-count
  /// distribution used by the model-error application.
  Status Learn(const Dataset& training);

  bool is_learned() const { return learned_flag_; }

  /// Online phase (each requires Learn() first; FailedPrecondition
  /// otherwise). Outputs are ranked most-suspicious-first.
  Result<std::vector<ErrorProposal>> FindMissingTracks(
      const Scene& scene) const;
  Result<std::vector<ErrorProposal>> FindMissingObservations(
      const Scene& scene) const;
  Result<std::vector<ErrorProposal>> FindModelErrors(
      const Scene& scene) const;

  /// Dataset-scale batch ranking: runs `app` over every scene of
  /// `dataset`, fanning scenes out across a thread pool and merging the
  /// per-scene outcomes back in dataset order. The output is identical for
  /// every thread count (scenes are scored independently against the
  /// shared immutable spec; nothing in the online phase draws randomness),
  /// so parallel runs are byte-for-byte reproducible.
  ///
  /// Failure semantics: by default a failing scene is quarantined — its
  /// outcome carries the error Status, the other scenes' proposals are
  /// unaffected, and the call returns an ok BatchReport (possibly with
  /// scenes_failed > 0). With BatchOptions::fail_fast the call instead
  /// returns the first failing scene's Status, in dataset order. An empty
  /// dataset yields an ok, empty report.
  Result<BatchReport> RankDataset(const Dataset& dataset, Application app,
                                  const BatchOptions& batch = {}) const;

  /// Streaming variant of RankDataset: scenes are decoded on demand from
  /// `source` by a loader pool and fed to the rank workers through a
  /// bounded queue, overlapping decode with ranking and keeping at most
  /// StreamOptions::queue_capacity decoded scenes in memory. Outcomes
  /// land in pre-assigned dataset-order slots, so the report (outcomes,
  /// proposals, and every metrics counter) is byte-identical to
  /// RankDataset over the materialized dataset, at any combination of
  /// decode and rank thread counts. A scene whose *decode* fails is
  /// quarantined exactly like a scene whose ranking fails (or, with
  /// fail_fast, fails the call with the first dataset-order error).
  Result<BatchReport> RankDatasetStreaming(const SceneSource& source,
                                           Application app,
                                           const BatchOptions& batch = {},
                                           const StreamOptions& stream = {}) const;

  /// The learned feature distributions (volume, velocity, extras) — for
  /// inspection, tests, and the Figure 2 bench.
  const std::vector<FeatureDistribution>& learned_features() const {
    return learned_base_;
  }

  /// Persists the learned model (all fitted distributions) to `path` so
  /// the online phase can run in a different process. Requires Learn().
  Status SaveModel(const std::string& path) const;

  /// Restores a model saved with SaveModel, resolving feature names
  /// through the standard registry plus this engine's extra_features.
  /// Replaces any previously learned state.
  Status LoadModel(const std::string& path);

  const FixyOptions& options() const { return options_; }

 private:
  Status CheckLearned() const;

  /// Rebuilds the cached per-application specs from the learned state.
  /// Called once after Learn()/LoadModel(); the Find* hot path then reuses
  /// the immutable specs instead of re-wrapping every FeatureDistribution
  /// (and re-allocating its shared_ptr features) per call.
  void RebuildSpecs();

  /// Runs one application over one scene against the cached specs.
  Result<std::vector<ErrorProposal>> RankScene(const Scene& scene,
                                               Application app) const;

  FixyOptions options_;
  bool learned_flag_ = false;
  /// Volume + velocity + extras, for the label-error applications.
  std::vector<FeatureDistribution> learned_base_;
  /// learned_base_ + learned track-count, for the model-error application
  /// (Section 8.4 adds "a track feature over the total number of
  /// observations").
  std::vector<FeatureDistribution> learned_with_count_;
  /// Cached specs, one per application, built by RebuildSpecs(). Immutable
  /// between Learn()/LoadModel() calls and safe to share across the batch
  /// path's worker threads.
  LoaSpec missing_tracks_spec_;
  LoaSpec missing_observations_spec_;
  LoaSpec model_errors_spec_;
};

}  // namespace fixy

#endif  // FIXY_CORE_ENGINE_H_
