// The standard feature library: the five features of Table 2 in the paper.
//
//   | Name       | Type   | Description                              |
//   |------------|--------|------------------------------------------|
//   | Volume     | Obs.   | Class-conditional box volume             |
//   | Distance   | Obs.   | Distance to AV                           |
//   | Model only | Bundle | Selects bundles with model preds only    |
//   | Velocity   | Trans. | Class-conditional object velocity        |
//   | Count      | Track  | Filters tracks with two or fewer obs.    |
//
// Volume and Velocity are *learned* from existing labels; Distance, Model
// only, and Count are *manually specified* severity/filter distributions
// (Section 8.1: "Model only and count were manually specified features").
#ifndef FIXY_CORE_FEATURES_STD_H_
#define FIXY_CORE_FEATURES_STD_H_

#include "dsl/feature.h"
#include "dsl/feature_distribution.h"
#include "stats/distribution.h"

namespace fixy {

/// Class-conditional box volume of an observation (cubic meters).
class VolumeFeature final : public ObservationFeature {
 public:
  std::string name() const override { return "volume"; }
  bool class_conditional() const override { return true; }
  std::optional<double> Compute(const Observation& obs,
                                const FeatureContext& ctx) const override;
};

/// BEV distance from the observation's box center to the ego vehicle
/// (meters).
class DistanceFeature final : public ObservationFeature {
 public:
  std::string name() const override { return "distance"; }
  std::optional<double> Compute(const Observation& obs,
                                const FeatureContext& ctx) const override;
};

/// 1.0 when the bundle contains only model predictions, 0.0 otherwise.
class ModelOnlyFeature final : public BundleFeature {
 public:
  std::string name() const override { return "model_only"; }
  std::optional<double> Compute(const ObservationBundle& bundle,
                                const FeatureContext& ctx) const override;
};

/// Class-conditional instantaneous speed estimated from the offset of
/// bundle centers between adjacent bundles (meters/second).
class VelocityFeature final : public TransitionFeature {
 public:
  std::string name() const override { return "velocity"; }
  bool class_conditional() const override { return true; }
  std::optional<double> Compute(const ObservationBundle& from,
                                const ObservationBundle& to,
                                const FeatureContext& ctx) const override;
};

/// 1.0 when all observations in a bundle agree on object class, 0.0
/// otherwise — the Section 5.1 example bundle feature ("observations
/// within bundles should agree on object class"; the learner fits the
/// Bernoulli probability of agreement). Strongly inconsistent bundles such
/// as Figure 7's person/truck overlap score low.
class ClassAgreementFeature final : public BundleFeature {
 public:
  std::string name() const override { return "class_agreement"; }
  std::optional<double> Compute(const ObservationBundle& bundle,
                                const FeatureContext& ctx) const override;
};

/// Total number of observations in a track.
class CountFeature final : public TrackFeature {
 public:
  std::string name() const override { return "count"; }
  std::optional<double> Compute(const Track& track,
                                const FeatureContext& ctx) const override;
};

/// Manual severity distribution for Distance: exp(-d / scale), so nearby
/// objects (the safety-relevant ones; the paper highlights errors within
/// 20-25 m of the AV) score close to 1 and far objects fade out.
stats::DistributionPtr MakeDistanceSeverityDistribution(
    double scale_meters = 25.0);

/// Manual distribution for ModelOnly: score 1 when the bundle is
/// model-only (value 1), score ~0 otherwise — the "AOF zeroes out any track
/// that contains any human proposals" behavior of Section 7, expressed as
/// a factor.
stats::DistributionPtr MakeModelOnlyDistribution();

/// Manual filter distribution for Count: score ~0 for tracks with
/// `min_observations` or fewer observations, 1 above (Table 2: "filters
/// tracks with two or fewer obs").
stats::DistributionPtr MakeCountFilterDistribution(int min_observations = 2);

}  // namespace fixy

#endif  // FIXY_CORE_FEATURES_STD_H_
