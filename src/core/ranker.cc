#include "core/ranker.h"

#include <algorithm>
#include <array>

#include "obs/metrics.h"

namespace fixy {

void RankProposals(std::vector<ErrorProposal>* proposals) {
  std::sort(proposals->begin(), proposals->end(),
            [](const ErrorProposal& a, const ErrorProposal& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.scene_name != b.scene_name) {
                return a.scene_name < b.scene_name;
              }
              if (a.track_id != b.track_id) return a.track_id < b.track_id;
              return a.frame_index < b.frame_index;
            });
}

std::vector<ErrorProposal> TopK(const std::vector<ErrorProposal>& ranked,
                                size_t k) {
  std::vector<ErrorProposal> top(ranked.begin(),
                                 ranked.begin() +
                                     std::min(k, ranked.size()));
  return top;
}

std::vector<ErrorProposal> TopKPerClass(
    const std::vector<ErrorProposal>& ranked, size_t k) {
  std::array<size_t, kNumObjectClasses> taken{};
  std::vector<ErrorProposal> top;
  for (const ErrorProposal& proposal : ranked) {
    // Proposals can arrive from outside the engine (a hand-edited or
    // future-version proposals file via proposal_io), so the class is not
    // trusted as an index: out-of-range values (including negative ones,
    // which the cast wraps far past the array) are skipped and counted
    // instead of indexing out of bounds.
    const size_t cls = static_cast<size_t>(proposal.object_class);
    if (cls >= taken.size()) {
      obs::Count("rank.invalid_class_proposals");
      continue;
    }
    size_t& count = taken[cls];
    if (count < k) {
      ++count;
      top.push_back(proposal);
    }
  }
  RankProposals(&top);
  return top;
}

}  // namespace fixy
