#include "core/ranker.h"

#include <algorithm>
#include <array>

namespace fixy {

void RankProposals(std::vector<ErrorProposal>* proposals) {
  std::sort(proposals->begin(), proposals->end(),
            [](const ErrorProposal& a, const ErrorProposal& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.scene_name != b.scene_name) {
                return a.scene_name < b.scene_name;
              }
              if (a.track_id != b.track_id) return a.track_id < b.track_id;
              return a.frame_index < b.frame_index;
            });
}

std::vector<ErrorProposal> TopK(const std::vector<ErrorProposal>& ranked,
                                size_t k) {
  std::vector<ErrorProposal> top(ranked.begin(),
                                 ranked.begin() +
                                     std::min(k, ranked.size()));
  return top;
}

std::vector<ErrorProposal> TopKPerClass(
    const std::vector<ErrorProposal>& ranked, size_t k) {
  std::array<size_t, kNumObjectClasses> taken{};
  std::vector<ErrorProposal> top;
  for (const ErrorProposal& proposal : ranked) {
    size_t& count = taken[static_cast<size_t>(proposal.object_class)];
    if (count < k) {
      ++count;
      top.push_back(proposal);
    }
  }
  RankProposals(&top);
  return top;
}

}  // namespace fixy
