// ScenePass: the shared, association-once stage of the two-stage ranking
// pipeline (DESIGN.md §10). One pass per scene runs TrackBuilder::BuildViews
// exactly once and owns a per-view FeatureScoreCache of raw pre-AOF feature
// scores; every requested application then compiles and scores against the
// shared views through RunApplicationOnPass.
#ifndef FIXY_CORE_SCENE_PASS_H_
#define FIXY_CORE_SCENE_PASS_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "core/app_spec.h"
#include "core/proposal.h"
#include "data/scene.h"
#include "dsl/feature_score_cache.h"
#include "dsl/track_builder.h"

namespace fixy {

/// One scene's association pass: the requested track views plus a lazily
/// shared feature-score cache per view. Not thread-safe — one pass lives
/// inside one batch worker (or one standalone Find* call).
class ScenePass {
 public:
  /// Runs association over `scene` for the requested views, recording the
  /// shared rank.track_build timer and rank.track_builds counter. Errors
  /// propagate from TrackBuilder::BuildViews (scene validation).
  static Result<ScenePass> Run(const Scene& scene,
                               const TrackBuilderOptions& options,
                               bool need_full, bool need_model_only);

  /// The requested view's tracks; aborts if the view was not built.
  const TrackSet& tracks(SceneView view) const { return views_.view(view); }

  /// The view's shared raw-score cache (never null for a built view).
  FeatureScoreCache* cache(SceneView view);

 private:
  ScenePass(AssociationViews views, double frame_rate_hz);

  AssociationViews views_;
  std::optional<FeatureScoreCache> full_cache_;
  std::optional<FeatureScoreCache> model_cache_;
};

/// Compiles and scores one application against the pass — Compile over the
/// application's view (raw likelihoods read through the pass's shared
/// cache), extract, deterministic rank — recorded under the application's
/// rank.<name>.* metric keys. The proposals are byte-identical to a
/// standalone single-application run over the same scene.
Result<std::vector<ErrorProposal>> RunApplicationOnPass(
    const AppSpec& app, const LoaSpec& spec, const Scene& scene,
    ScenePass& pass, const ApplicationOptions& options);

}  // namespace fixy

#endif  // FIXY_CORE_SCENE_PASS_H_
