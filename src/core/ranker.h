// Ranking utilities: Fixy's output is a ranked list of potential errors
// ("As output, Fixy returns a ranked list of observations, where higher
// ranked observations are ideally more likely to contain errors",
// Section 3).
#ifndef FIXY_CORE_RANKER_H_
#define FIXY_CORE_RANKER_H_

#include <vector>

#include "core/proposal.h"

namespace fixy {

/// Sorts proposals by score descending; ties broken by (scene, track id,
/// frame) so the order is deterministic.
void RankProposals(std::vector<ErrorProposal>* proposals);

/// The top k proposals of an already-ranked list (fewer if not available).
std::vector<ErrorProposal> TopK(const std::vector<ErrorProposal>& ranked,
                                size_t k);

/// Per-class top k: for each object class, up to k best proposals, ranked.
/// Mirrors the paper's per-class recall protocol ("finding 18 of the
/// missing tracks in the top 10 ranked errors per-class", Section 8.2).
std::vector<ErrorProposal> TopKPerClass(
    const std::vector<ErrorProposal>& ranked, size_t k);

}  // namespace fixy

#endif  // FIXY_CORE_RANKER_H_
