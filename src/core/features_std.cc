#include "core/features_std.h"

#include <cmath>

#include "stats/lambda_distribution.h"

namespace fixy {

std::optional<double> VolumeFeature::Compute(const Observation& obs,
                                             const FeatureContext&) const {
  if (!obs.box.IsValid()) return std::nullopt;
  return obs.box.Volume();
}

std::optional<double> DistanceFeature::Compute(const Observation& obs,
                                               const FeatureContext& ctx) const {
  return obs.box.BevCenterDistance(ctx.ego_position);
}

std::optional<double> ModelOnlyFeature::Compute(
    const ObservationBundle& bundle, const FeatureContext&) const {
  if (bundle.observations.empty()) return std::nullopt;
  for (const Observation& obs : bundle.observations) {
    if (obs.source != ObservationSource::kModel) return 0.0;
  }
  return 1.0;
}

std::optional<double> VelocityFeature::Compute(const ObservationBundle& from,
                                               const ObservationBundle& to,
                                               const FeatureContext&) const {
  const double dt = to.timestamp - from.timestamp;
  if (dt <= 0.0) return std::nullopt;
  const geom::Vec2 displacement =
      to.MeanCenter().Xy() - from.MeanCenter().Xy();
  return displacement.Norm() / dt;
}

std::optional<double> ClassAgreementFeature::Compute(
    const ObservationBundle& bundle, const FeatureContext&) const {
  if (bundle.observations.size() < 2) return std::nullopt;
  const ObjectClass first = bundle.observations.front().object_class;
  for (const Observation& obs : bundle.observations) {
    if (obs.object_class != first) return 0.0;
  }
  return 1.0;
}

std::optional<double> CountFeature::Compute(const Track& track,
                                            const FeatureContext&) const {
  return static_cast<double>(track.TotalObservations());
}

stats::DistributionPtr MakeDistanceSeverityDistribution(double scale_meters) {
  return std::make_shared<stats::LambdaDistribution>(
      "distance_severity", [scale_meters](double d) {
        return std::exp(-std::max(0.0, d) / scale_meters);
      });
}

stats::DistributionPtr MakeModelOnlyDistribution() {
  return std::make_shared<stats::LambdaDistribution>(
      "model_only", [](double x) { return x >= 0.5 ? 1.0 : 0.0; });
}

stats::DistributionPtr MakeCountFilterDistribution(int min_observations) {
  return std::make_shared<stats::LambdaDistribution>(
      "count_filter", [min_observations](double count) {
        return count > static_cast<double>(min_observations) ? 1.0 : 0.0;
      });
}

}  // namespace fixy
