#include "core/applications.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "core/features_std.h"
#include "core/scene_pass.h"
#include "graph/factor_graph.h"

namespace fixy {

namespace internal {

std::optional<size_t> ClosestApproachBundle(const Track& track) {
  std::optional<size_t> best;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t b = 0; b < track.bundles().size(); ++b) {
    const ObservationBundle& bundle = track.bundles()[b];
    if (bundle.observations.empty()) continue;
    const double d = (bundle.MeanCenter().Xy() - bundle.ego_position).Norm();
    if (!best.has_value() || d < best_distance) {
      best = b;
      best_distance = d;
    }
  }
  return best;
}

const Observation* RepresentativeObservation(const ObservationBundle& bundle) {
  const Observation* model = bundle.FindBySource(ObservationSource::kModel);
  if (model != nullptr) return model;
  return bundle.observations.empty() ? nullptr : &bundle.observations.front();
}

Scene FilterToModelOnly(const Scene& scene) {
  Scene filtered(scene.name(), scene.frame_rate_hz());
  for (const Frame& frame : scene.frames()) {
    Frame copy = frame;
    copy.observations.clear();
    for (const Observation& obs : frame.observations) {
      if (obs.source == ObservationSource::kModel) {
        copy.observations.push_back(obs);
      }
    }
    filtered.AddFrame(std::move(copy));
  }
  return filtered;
}

}  // namespace internal

namespace {

ErrorProposal MakeTrackProposal(const Scene& scene, const Track& track,
                                ProposalKind kind, double score) {
  ErrorProposal proposal;
  proposal.scene_name = scene.name();
  proposal.kind = kind;
  proposal.track_id = track.id();
  proposal.object_class =
      track.MajorityClass().value_or(ObjectClass::kCar);
  proposal.score = score;
  proposal.model_confidence = track.MeanModelConfidence().value_or(0.0);
  proposal.first_frame = track.FirstFrame();
  proposal.last_frame = track.LastFrame();
  // A track can in principle carry empty bundles (the compiled graph
  // rejects them, but this helper is also reachable with raw tracks):
  // without a representative box the proposal keeps its defaults.
  const std::optional<size_t> b = internal::ClosestApproachBundle(track);
  if (b.has_value()) {
    const ObservationBundle& bundle = track.bundles()[*b];
    const Observation* obs = internal::RepresentativeObservation(bundle);
    proposal.frame_index = bundle.frame_index;
    if (obs != nullptr) proposal.box = obs->box;
  }
  return proposal;
}

// Standalone facade shared by the three Find* entry points: one ScenePass
// over the scene, then the application's compile + extract stage.
Result<std::vector<ErrorProposal>> FindWithApp(
    const Scene& scene, const AppSpec& app, const LoaSpec& spec,
    const ApplicationOptions& options) {
  FIXY_ASSIGN_OR_RETURN(
      ScenePass pass,
      ScenePass::Run(scene, options.track_builder,
                     /*need_full=*/app.view == SceneView::kFull,
                     /*need_model_only=*/app.view == SceneView::kModelOnly));
  return RunApplicationOnPass(app, spec, scene, pass, options);
}

}  // namespace

LoaSpec BuildMissingTracksSpec(const std::vector<FeatureDistribution>& learned,
                               const ApplicationOptions& options) {
  // Spec: learned features with identity AOFs, plus the manual severity
  // and filter factors of Table 2.
  LoaSpec spec;
  for (const FeatureDistribution& fd : learned) {
    spec.feature_distributions.push_back(fd.WithAof(MakeIdentityAof()));
  }
  if (options.include_distance_severity) {
    spec.feature_distributions.emplace_back(
        std::make_shared<DistanceFeature>(),
        MakeDistanceSeverityDistribution(options.distance_scale_meters));
  }
  spec.feature_distributions.emplace_back(
      std::make_shared<ModelOnlyFeature>(), MakeModelOnlyDistribution());
  if (options.include_count_filter) {
    spec.feature_distributions.emplace_back(
        std::make_shared<CountFeature>(),
        MakeCountFilterDistribution(options.min_track_observations));
  }
  return spec;
}

LoaSpec BuildMissingObservationsSpec(
    const std::vector<FeatureDistribution>& learned,
    const ApplicationOptions& options) {
  LoaSpec spec;
  for (const FeatureDistribution& fd : learned) {
    spec.feature_distributions.push_back(fd.WithAof(MakeIdentityAof()));
  }
  if (options.include_distance_severity) {
    spec.feature_distributions.emplace_back(
        std::make_shared<DistanceFeature>(),
        MakeDistanceSeverityDistribution(options.distance_scale_meters));
  }
  return spec;
}

LoaSpec BuildModelErrorsSpec(const std::vector<FeatureDistribution>& learned) {
  // "The AOF inverts the probability of each feature" so that unlikely
  // tracks rank first. Distance and model-only are not deployed here
  // (Section 8.4).
  LoaSpec spec;
  for (const FeatureDistribution& fd : learned) {
    spec.feature_distributions.push_back(fd.WithAof(MakeInvertAof()));
  }
  return spec;
}

std::vector<ErrorProposal> ExtractMissingTracks(const AppContext& ctx) {
  std::vector<ErrorProposal> proposals;
  const TrackSet& tracks = ctx.graph.tracks();
  for (size_t t = 0; t < tracks.tracks.size(); ++t) {
    const Track& track = tracks.tracks[t];
    // AOF zero-out: any track containing a human proposal is not a missing
    // track; the remaining tracks contain only model predictions.
    if (track.HasSource(ObservationSource::kHuman)) continue;
    if (!track.HasSource(ObservationSource::kModel)) continue;
    const std::optional<double> score =
        ctx.graph.ScoreTrack(t, ctx.options.normalize_scores);
    if (!score.has_value()) continue;
    proposals.push_back(MakeTrackProposal(ctx.scene, track,
                                          ProposalKind::kMissingTrack,
                                          *score));
  }
  return proposals;
}

std::vector<ErrorProposal> ExtractMissingObservations(const AppContext& ctx) {
  std::vector<ErrorProposal> proposals;
  const TrackSet& tracks = ctx.graph.tracks();
  for (size_t t = 0; t < tracks.tracks.size(); ++t) {
    const Track& track = tracks.tracks[t];
    // AOF zero-out (Section 8.3): tracks without any human proposal are
    // zeroed, as are bundles that already contain a human proposal. The
    // remaining candidates are model-only predictions *interior* to the
    // human-labeled span of the track — a label missing "within" a track
    // (Figure 6) sits between human boxes; model-only bundles at the track
    // fringes are ordinary detection-span mismatch, not label errors.
    if (!track.HasSource(ObservationSource::kHuman)) continue;
    int first_human = -1;
    int last_human = -1;
    for (const ObservationBundle& bundle : track.bundles()) {
      if (bundle.HasSource(ObservationSource::kHuman)) {
        if (first_human < 0) first_human = bundle.frame_index;
        last_human = bundle.frame_index;
      }
    }
    for (size_t b = 0; b < track.bundles().size(); ++b) {
      const ObservationBundle& bundle = track.bundles()[b];
      if (bundle.HasSource(ObservationSource::kHuman)) continue;
      if (!bundle.HasSource(ObservationSource::kModel)) continue;
      if (bundle.frame_index <= first_human ||
          bundle.frame_index >= last_human) {
        continue;
      }
      const std::optional<double> score = ctx.graph.ScoreBundle(t, b);
      if (!score.has_value()) continue;
      const Observation* obs = internal::RepresentativeObservation(bundle);
      if (obs == nullptr) continue;
      ErrorProposal proposal;
      proposal.scene_name = ctx.scene.name();
      proposal.kind = ProposalKind::kMissingObservation;
      proposal.track_id = track.id();
      proposal.frame_index = bundle.frame_index;
      proposal.box = obs->box;
      proposal.object_class =
          track.MajorityClass().value_or(ObjectClass::kCar);
      proposal.score = *score;
      proposal.model_confidence = obs->confidence;
      proposal.first_frame = track.FirstFrame();
      proposal.last_frame = track.LastFrame();
      proposals.push_back(std::move(proposal));
    }
  }
  return proposals;
}

std::vector<ErrorProposal> ExtractModelErrors(const AppContext& ctx) {
  std::vector<ErrorProposal> proposals;
  const TrackSet& tracks = ctx.graph.tracks();
  for (size_t t = 0; t < tracks.tracks.size(); ++t) {
    const Track& track = tracks.tracks[t];
    if (track.bundles().empty()) continue;
    // Tracks of <= 2 observations are the appear assertion's territory
    // (Section 8.4 hunts errors that are "longer than two observations, so
    // will not trigger the appear assertion"); skipping them keeps Fixy
    // focused on the novel error class.
    if (track.TotalObservations() <=
        static_cast<size_t>(ctx.options.min_track_observations)) {
      continue;
    }
    const std::optional<double> score = ctx.graph.ScoreTrack(t);
    if (!score.has_value()) continue;
    proposals.push_back(MakeTrackProposal(ctx.scene, track,
                                          ProposalKind::kModelError, *score));
  }
  return proposals;
}

AppSpec MissingTracksApp() {
  AppSpec app;
  app.name = "missing-tracks";
  app.view = SceneView::kFull;
  app.build_spec = [](const LearnedState& learned,
                      const ApplicationOptions& options) {
    return BuildMissingTracksSpec(learned.base, options);
  };
  app.extract = ExtractMissingTracks;
  // Mirrors ExtractMissingTracks' candidate filter exactly — required by
  // the prunable_tracks contract (top-k pruning skips everything else).
  app.prunable_tracks = [](const Track& track, const ApplicationOptions&) {
    return !track.HasSource(ObservationSource::kHuman) &&
           track.HasSource(ObservationSource::kModel);
  };
  app.prune_normalize = [](const ApplicationOptions& options) {
    return options.normalize_scores;
  };
  return app;
}

AppSpec MissingObservationsApp() {
  AppSpec app;
  app.name = "missing-obs";
  app.view = SceneView::kFull;
  app.build_spec = [](const LearnedState& learned,
                      const ApplicationOptions& options) {
    return BuildMissingObservationsSpec(learned.base, options);
  };
  app.extract = ExtractMissingObservations;
  return app;
}

AppSpec ModelErrorsApp() {
  AppSpec app;
  app.name = "model-errors";
  app.view = SceneView::kModelOnly;
  app.build_spec = [](const LearnedState& learned,
                      const ApplicationOptions& options) {
    (void)options;
    // Section 8.4 adds "a track feature over the total number of
    // observations": the learned count distribution joins the spec here,
    // where the label-error applications use the manual count filter.
    return BuildModelErrorsSpec(learned.with_count);
  };
  app.extract = ExtractModelErrors;
  // Mirrors ExtractModelErrors' candidate filter; its ScoreTrack(t) call
  // always normalizes, independent of options.normalize_scores.
  app.prunable_tracks = [](const Track& track,
                           const ApplicationOptions& options) {
    return !track.bundles().empty() &&
           track.TotalObservations() >
               static_cast<size_t>(options.min_track_observations);
  };
  app.prune_normalize = [](const ApplicationOptions&) { return true; };
  return app;
}

Result<std::vector<ErrorProposal>> FindMissingTracks(
    const Scene& scene, const LoaSpec& spec,
    const ApplicationOptions& options) {
  return FindWithApp(scene, MissingTracksApp(), spec, options);
}

Result<std::vector<ErrorProposal>> FindMissingObservations(
    const Scene& scene, const LoaSpec& spec,
    const ApplicationOptions& options) {
  return FindWithApp(scene, MissingObservationsApp(), spec, options);
}

Result<std::vector<ErrorProposal>> FindModelErrors(
    const Scene& scene, const LoaSpec& spec,
    const ApplicationOptions& options) {
  return FindWithApp(scene, ModelErrorsApp(), spec, options);
}

}  // namespace fixy
