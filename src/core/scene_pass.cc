#include "core/scene_pass.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "core/ranker.h"
#include "graph/factor_graph.h"
#include "obs/metrics.h"

namespace fixy {

namespace {

// Mirrors MakeTrackProposal's class assignment so the pruning buckets line
// up with the classes TopKPerClass will see. -1 flags an out-of-enum class
// (possible with raw imported data); such tracks are never pruned — the
// final TopKPerClass drops their proposals either way.
int ClassIndexForTrack(const Track& track) {
  const int index =
      static_cast<int>(track.MajorityClass().value_or(ObjectClass::kCar));
  if (index < 0 || index >= kNumObjectClasses) return -1;
  return index;
}

// The cheap per-track score upper bound (DESIGN.md §11). Every factor
// score is post-AOF in (0, 1], so each factor contributes ln(score) <= 0:
//
//   - "cheap" feature distributions (no costly density — the manual
//     severity/filter factors) are evaluated exactly through the shared
//     cache: their engaged factors contribute the exact sum S <= 0 over
//     C_cheap factors;
//   - costly distributions (KDEs) are bounded by their best case, a
//     normalized score of 1 (density equal to the cached mode density),
//     i.e. ln <= 0 per factor, with at most C_costly factors — the
//     element count of the feature's kind.
//
// A normalized track score is mean(ln) over engaged factors; with S <= 0
// the mean is maximized when every costly factor exists and scores 1:
//   score <= S / (C_cheap + C_costly).
// Unnormalized, score <= S. A small relative inflation absorbs the
// summation-order difference between this accumulation and the graph's.
// Returns nullopt when the track can have no factors at all (it then
// cannot produce a proposal and is prunable outright).
std::optional<double> TrackScoreUpperBound(const LoaSpec& spec,
                                           const Track& track,
                                           size_t track_index,
                                           double frame_rate_hz,
                                           FeatureScoreCache* cache,
                                           bool normalize) {
  double cheap_sum = 0.0;
  size_t cheap_count = 0;
  size_t costly_count = 0;
  thread_local RawTrackScores local;
  for (const FeatureDistribution& fd : spec.feature_distributions) {
    bool costly = fd.global_distribution() != nullptr &&
                  fd.global_distribution()->CostlyDensity();
    for (const auto& [cls, dist] : fd.per_class_distributions()) {
      (void)cls;
      if (dist != nullptr && dist->CostlyDensity()) costly = true;
    }
    if (costly) {
      switch (fd.feature().kind()) {
        case FeatureKind::kObservation:
          costly_count += track.TotalObservations();
          break;
        case FeatureKind::kBundle:
          costly_count += track.bundles().size();
          break;
        case FeatureKind::kTransition:
          costly_count +=
              track.bundles().empty() ? 0 : track.bundles().size() - 1;
          break;
        case FeatureKind::kTrack:
          costly_count += track.bundles().empty() ? 0 : 1;
          break;
      }
      continue;
    }
    const RawTrackScores* raw = &local;
    if (cache != nullptr) {
      raw = &cache->Get(fd, track, track_index);
    } else {
      ComputeRawTrackScores(fd, track, frame_rate_hz, &local);
    }
    for (size_t i = 0; i < raw->size(); ++i) {
      if (raw->engaged[i] == 0) continue;
      cheap_sum += std::log(fd.ApplyAofAndFloor(raw->values[i]));
      ++cheap_count;
    }
  }
  const size_t max_factors = cheap_count + costly_count;
  if (max_factors == 0) return std::nullopt;
  double bound = normalize
                     ? cheap_sum / static_cast<double>(max_factors)
                     : cheap_sum;
  bound += 1e-9 * (1.0 + std::abs(bound));
  return bound;
}

Result<std::vector<ErrorProposal>> CompileAndExtract(
    const AppSpec& app, const LoaSpec& spec, const Scene& scene,
    ScenePass& pass, const ApplicationOptions& options,
    const std::vector<uint8_t>* track_mask, size_t* factor_count) {
  const TrackSet& tracks = pass.tracks(app.view);
  Result<FactorGraph> graph = Status::Internal("uncompiled");
  {
    const obs::ScopedStageTimer compile_timer("rank." + app.name + ".compile");
    graph = FactorGraph::Compile(tracks, spec, scene.frame_rate_hz(),
                                 pass.cache(app.view), track_mask);
  }
  FIXY_RETURN_IF_ERROR(graph.status());
  *factor_count = graph->factors().size();
  const AppContext ctx{*graph, scene, options};
  return app.extract(ctx);
}

// Per-class k-th best proposal score (descending), or nullopt when the
// class has fewer than k proposals — then nothing of that class may be
// pruned yet.
std::array<std::optional<double>, kNumObjectClasses> PerClassThresholds(
    const std::vector<ErrorProposal>& proposals, size_t k) {
  std::array<std::vector<double>, kNumObjectClasses> scores;
  for (const ErrorProposal& proposal : proposals) {
    const int index = static_cast<int>(proposal.object_class);
    if (index < 0 || index >= kNumObjectClasses) continue;
    scores[index].push_back(proposal.score);
  }
  std::array<std::optional<double>, kNumObjectClasses> thresholds;
  for (int c = 0; c < kNumObjectClasses; ++c) {
    if (scores[c].size() < k) continue;
    std::nth_element(scores[c].begin(), scores[c].begin() + (k - 1),
                     scores[c].end(), std::greater<double>());
    thresholds[c] = scores[c][k - 1];
  }
  return thresholds;
}

// The pruned path of RunApplicationOnPass (options.top_k_per_class > 0 and
// the application opted in). Two rounds, both sound:
//   1. compile only the per-class top-k candidates by upper bound (plus
//      nothing else — non-candidate tracks produce no proposals by the
//      prunable_tracks contract), establishing each class's k-th best
//      exact score;
//   2. re-compile adding every remaining candidate whose bound reaches its
//      class threshold. A candidate skipped in round 2 has
//      ub < theta_c <= final k-th best exact score, so its exact score
//      cannot enter the class's top k.
// The raw-score cache makes round 2 incremental: round-1 tracks' feature
// evaluations are already cached.
Result<std::vector<ErrorProposal>> RunPruned(const AppSpec& app,
                                             const LoaSpec& spec,
                                             const Scene& scene,
                                             ScenePass& pass,
                                             const ApplicationOptions& options) {
  const TrackSet& tracks = pass.tracks(app.view);
  const size_t num_tracks = tracks.tracks.size();
  const size_t k = static_cast<size_t>(options.top_k_per_class);
  const bool normalize =
      app.prune_normalize != nullptr ? app.prune_normalize(options) : true;

  std::vector<uint8_t> mask(num_tracks, 0);
  std::vector<double> bounds(num_tracks,
                             -std::numeric_limits<double>::infinity());
  std::array<std::vector<size_t>, kNumObjectClasses> buckets;
  std::vector<size_t> pending;
  size_t pruned = 0;
  for (size_t t = 0; t < num_tracks; ++t) {
    const Track& track = tracks.tracks[t];
    if (!app.prunable_tracks(track, options)) {
      // Not a candidate: by contract extract emits no proposal for it, so
      // its factors are never read and need not be compiled.
      continue;
    }
    const int cls = ClassIndexForTrack(track);
    if (cls < 0) {
      // Out-of-enum class: never pruned (see ClassIndexForTrack).
      mask[t] = 1;
      continue;
    }
    const std::optional<double> bound = TrackScoreUpperBound(
        spec, track, t, scene.frame_rate_hz(), pass.cache(app.view),
        normalize);
    if (!bound.has_value()) {
      // No factor can exist: the unpruned run would score it nullopt.
      ++pruned;
      continue;
    }
    bounds[t] = *bound;
    buckets[cls].push_back(t);
  }
  for (auto& bucket : buckets) {
    std::sort(bucket.begin(), bucket.end(), [&bounds](size_t a, size_t b) {
      if (bounds[a] != bounds[b]) return bounds[a] > bounds[b];
      return a < b;
    });
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (i < k) {
        mask[bucket[i]] = 1;
      } else {
        pending.push_back(bucket[i]);
      }
    }
  }

  size_t factor_count = 0;
  FIXY_ASSIGN_OR_RETURN(std::vector<ErrorProposal> proposals,
                        CompileAndExtract(app, spec, scene, pass, options,
                                          &mask, &factor_count));

  if (!pending.empty()) {
    const auto thresholds = PerClassThresholds(proposals, k);
    bool grew = false;
    for (size_t t : pending) {
      const int cls = ClassIndexForTrack(tracks.tracks[t]);
      if (thresholds[cls].has_value() && bounds[t] < *thresholds[cls]) {
        ++pruned;
        continue;
      }
      mask[t] = 1;
      grew = true;
    }
    if (grew) {
      FIXY_ASSIGN_OR_RETURN(proposals,
                            CompileAndExtract(app, spec, scene, pass, options,
                                              &mask, &factor_count));
    }
  }

  obs::Count("rank." + app.name + ".factors", factor_count);
  obs::Count("rank." + app.name + ".pruned_tracks", pruned);
  RankProposals(&proposals);
  obs::Count("rank." + app.name + ".proposals", proposals.size());
  return proposals;
}

}  // namespace

ScenePass::ScenePass(AssociationViews views, double frame_rate_hz)
    : views_(std::move(views)) {
  if (views_.full.has_value()) full_cache_.emplace(frame_rate_hz);
  if (views_.model_only.has_value()) model_cache_.emplace(frame_rate_hz);
}

Result<ScenePass> ScenePass::Run(const Scene& scene,
                                 const TrackBuilderOptions& options,
                                 bool need_full, bool need_model_only) {
  const obs::ScopedStageTimer timer("rank.track_build");
  obs::Count("rank.track_builds");
  const TrackBuilder builder(options);
  FIXY_ASSIGN_OR_RETURN(AssociationViews views,
                        builder.BuildViews(scene, need_full, need_model_only));
  return ScenePass(std::move(views), scene.frame_rate_hz());
}

FeatureScoreCache* ScenePass::cache(SceneView view) {
  switch (view) {
    case SceneView::kFull:
      return full_cache_.has_value() ? &*full_cache_ : nullptr;
    case SceneView::kModelOnly:
      return model_cache_.has_value() ? &*model_cache_ : nullptr;
  }
  return nullptr;
}

Result<std::vector<ErrorProposal>> RunApplicationOnPass(
    const AppSpec& app, const LoaSpec& spec, const Scene& scene,
    ScenePass& pass, const ApplicationOptions& options) {
  FIXY_CHECK_MSG(app.extract != nullptr,
                 "application '%s' has no extract strategy",
                 app.name.c_str());
  if (options.top_k_per_class > 0 && app.prunable_tracks != nullptr &&
      !pass.tracks(app.view).tracks.empty()) {
    return RunPruned(app, spec, scene, pass, options);
  }
  size_t factor_count = 0;
  FIXY_ASSIGN_OR_RETURN(std::vector<ErrorProposal> proposals,
                        CompileAndExtract(app, spec, scene, pass, options,
                                          /*track_mask=*/nullptr,
                                          &factor_count));
  obs::Count("rank." + app.name + ".factors", factor_count);
  RankProposals(&proposals);
  obs::Count("rank." + app.name + ".proposals", proposals.size());
  return proposals;
}

}  // namespace fixy
