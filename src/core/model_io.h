// Persistence for learned models: serializes fitted feature distributions
// to JSON and reloads them, so the offline phase (Learn) and the online
// phase (Find*) can run in different processes — e.g. learn once in a
// nightly job, rank in the labeling pipeline.
//
// Features themselves are code, not data, so deserialization resolves them
// by name through a FeatureRegistry; user-defined features are supported
// by registering them before loading.
//
// Serializable distribution types: GaussianKde, HistogramDensity,
// Gaussian, Bernoulli, Categorical (everything the learner fits). Manual
// Lambda distributions are application-side configuration and are never
// serialized.
#ifndef FIXY_CORE_MODEL_IO_H_
#define FIXY_CORE_MODEL_IO_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/learner.h"
#include "dsl/feature_distribution.h"
#include "json/json.h"

namespace fixy {

/// Maps feature names back to feature implementations at load time.
class FeatureRegistry {
 public:
  /// A registry pre-populated with the standard feature library (volume,
  /// velocity, count, distance, model_only, class_agreement).
  static FeatureRegistry Standard();

  /// Registers `feature` under feature->name(). Replaces any existing
  /// entry with the same name.
  void Register(FeaturePtr feature);

  /// Errors: NotFound if no feature with that name is registered.
  Result<FeaturePtr> Find(const std::string& name) const;

 private:
  std::map<std::string, FeaturePtr> features_;
};

/// Serializes one fitted distribution. Errors: Unimplemented for
/// non-serializable distribution types (e.g. LambdaDistribution).
Result<json::Value> DistributionToJson(const stats::Distribution& dist);

/// Reconstructs a distribution written by DistributionToJson.
Result<stats::DistributionPtr> DistributionFromJson(const json::Value& value);

/// Serializes one feature's sufficient statistics (core/learner.h) —
/// the mergeable state Fixy::LearnIncremental folds new scenes into.
Result<json::Value> FeatureStatsToJson(const FeatureStats& stats);

/// Reconstructs statistics written by FeatureStatsToJson.
Result<FeatureStats> FeatureStatsFromJson(const json::Value& value);

/// Serializes a learned model (a set of feature distributions). AOFs are
/// not serialized — they are per-application configuration.
Result<json::Value> LearnedModelToJson(
    const std::vector<FeatureDistribution>& learned);

/// Serializes a learned model together with the sufficient statistics it
/// materialized from (`stats` parallel to `learned`; pass an empty vector
/// to omit them). The document stays version 1: each feature entry just
/// gains a "stats" member, which pre-incremental readers ignore.
Result<json::Value> LearnedModelToJson(
    const std::vector<FeatureDistribution>& learned,
    const std::vector<FeatureStats>& stats);

/// Reconstructs a learned model; every feature name in the document must
/// resolve through `registry`.
Result<std::vector<FeatureDistribution>> LearnedModelFromJson(
    const json::Value& value, const FeatureRegistry& registry);

/// A loaded model, with sufficient statistics when the file carried them.
struct LoadedModel {
  std::vector<FeatureDistribution> distributions;
  /// Parallel to `distributions` when EVERY feature entry carried stats;
  /// empty otherwise (a model saved before incremental learning, which
  /// still ranks but cannot be folded into).
  std::vector<FeatureStats> stats;

  bool has_stats() const { return !stats.empty(); }
};

/// Like LearnedModelFromJson, but also recovers per-feature statistics.
/// A malformed "stats" member is an error (a file that claims stats must
/// carry valid ones); a file with no stats members loads with
/// `stats` empty.
Result<LoadedModel> LearnedModelWithStatsFromJson(
    const json::Value& value, const FeatureRegistry& registry);

/// File-level convenience wrappers.
Status SaveLearnedModel(const std::vector<FeatureDistribution>& learned,
                        const std::string& path);
Status SaveLearnedModel(const std::vector<FeatureDistribution>& learned,
                        const std::vector<FeatureStats>& stats,
                        const std::string& path);
Result<std::vector<FeatureDistribution>> LoadLearnedModel(
    const std::string& path, const FeatureRegistry& registry);
Result<LoadedModel> LoadLearnedModelWithStats(const std::string& path,
                                              const FeatureRegistry& registry);

}  // namespace fixy

#endif  // FIXY_CORE_MODEL_IO_H_
