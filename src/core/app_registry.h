// ApplicationRegistry: the name -> AppSpec table the engine ranks
// against. Standard() seeds the paper's three applications; user
// applications join through Register (FixyOptions::extra_applications)
// and rank end-to-end without touching src/core.
#ifndef FIXY_CORE_APP_REGISTRY_H_
#define FIXY_CORE_APP_REGISTRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/app_spec.h"

namespace fixy {

class ApplicationRegistry {
 public:
  /// An empty registry (for tests composing their own application set).
  ApplicationRegistry() = default;

  /// The paper applications, in their canonical order: missing-tracks,
  /// missing-obs, model-errors.
  static ApplicationRegistry Standard();

  /// Registers `app`. Errors (the table is untouched on failure):
  ///  - InvalidArgument: empty name, whitespace or comma in the name
  ///    (--apps splits on commas), or a missing strategy;
  ///  - AlreadyExists: a registered application has the same name.
  Status Register(AppSpec app);

  /// Registered applications, in registration order. Indices into this
  /// vector are what Resolve returns and what the engine caches specs by.
  const std::vector<AppSpec>& apps() const { return apps_; }

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// The registered application named `name`, or nullptr.
  const AppSpec* Find(const std::string& name) const;

  /// Maps requested names to indices into apps(), preserving request
  /// order. Errors: InvalidArgument for an empty request, a duplicated
  /// request entry, or an unknown name — the unknown-name message lists
  /// the registered names (the CLI surfaces it verbatim).
  Result<std::vector<size_t>> Resolve(
      const std::vector<std::string>& names) const;

 private:
  std::vector<AppSpec> apps_;
};

}  // namespace fixy

#endif  // FIXY_CORE_APP_REGISTRY_H_
