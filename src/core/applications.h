// The three applications of Section 7 of the paper, each a different
// configuration of association, feature distributions, and AOFs over the
// same compiled-graph scoring machinery:
//
//   - FindMissingTracks:        tracks the human labels missed entirely;
//   - FindMissingObservations:  missing human boxes within labeled tracks;
//   - FindModelErrors:          erroneous ML model predictions.
#ifndef FIXY_CORE_APPLICATIONS_H_
#define FIXY_CORE_APPLICATIONS_H_

#include <vector>

#include "common/result.h"
#include "core/proposal.h"
#include "data/scene.h"
#include "dsl/feature_distribution.h"
#include "dsl/track_builder.h"

namespace fixy {

/// Shared application knobs.
struct ApplicationOptions {
  /// Association configuration (bundler, linking thresholds).
  TrackBuilderOptions track_builder;

  /// Scale of the manual distance-severity distribution (Table 2's
  /// Distance feature).
  double distance_scale_meters = 25.0;

  /// The Count filter threshold: tracks with this many observations or
  /// fewer are filtered (Table 2: "two or fewer").
  int min_track_observations = 2;

  /// Ablation switches for the manual factors (Table 2's Distance and
  /// Count); on by default, matching the paper's deployment.
  bool include_distance_severity = true;
  bool include_count_filter = true;

  /// Section 6 score normalization (sum of factor log-likelihoods divided
  /// by factor count). Off only in the normalization ablation.
  bool normalize_scores = true;
};

/// Finds tracks entirely missed by human proposals (Section 7, "Finding
/// missing tracks"). `learned` are the learned feature distributions
/// (volume, velocity, plus any user features); the manual distance,
/// model-only, and count factors are added internally. Only tracks that
/// contain no human proposal are ranked (the AOF zero-out), by descending
/// plausibility: consistent model-only tracks are likely real objects.
Result<std::vector<ErrorProposal>> FindMissingTracks(
    const Scene& scene, const std::vector<FeatureDistribution>& learned,
    const ApplicationOptions& options);

/// Finds missing human labels within tracks that otherwise have human
/// proposals (Section 7, "Finding missing labels within tracks"): ranks
/// model-only bundles inside human-containing tracks by plausibility.
Result<std::vector<ErrorProposal>> FindMissingObservations(
    const Scene& scene, const std::vector<FeatureDistribution>& learned,
    const ApplicationOptions& options);

/// Finds erroneous ML model predictions (Section 7, "Finding erroneous ML
/// model predictions"). Human proposals are ignored; every learned feature
/// is wrapped in the inverting AOF so *unlikely* tracks rank first.
Result<std::vector<ErrorProposal>> FindModelErrors(
    const Scene& scene, const std::vector<FeatureDistribution>& learned,
    const ApplicationOptions& options);

}  // namespace fixy

#endif  // FIXY_CORE_APPLICATIONS_H_
