// The three applications of Section 7 of the paper, each a different
// configuration of association, feature distributions, and AOFs over the
// same compiled-graph scoring machinery:
//
//   - FindMissingTracks:        tracks the human labels missed entirely;
//   - FindMissingObservations:  missing human boxes within labeled tracks;
//   - FindModelErrors:          erroneous ML model predictions.
#ifndef FIXY_CORE_APPLICATIONS_H_
#define FIXY_CORE_APPLICATIONS_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "core/proposal.h"
#include "data/scene.h"
#include "dsl/feature_distribution.h"
#include "dsl/track_builder.h"

namespace fixy {

/// Shared application knobs.
struct ApplicationOptions {
  /// Association configuration (bundler, linking thresholds).
  TrackBuilderOptions track_builder;

  /// Scale of the manual distance-severity distribution (Table 2's
  /// Distance feature).
  double distance_scale_meters = 25.0;

  /// The Count filter threshold: tracks with this many observations or
  /// fewer are filtered (Table 2: "two or fewer").
  int min_track_observations = 2;

  /// Ablation switches for the manual factors (Table 2's Distance and
  /// Count); on by default, matching the paper's deployment.
  bool include_distance_severity = true;
  bool include_count_filter = true;

  /// Section 6 score normalization (sum of factor log-likelihoods divided
  /// by factor count). Off only in the normalization ablation.
  bool normalize_scores = true;
};

/// Spec builders: each application's LoaSpec is a pure function of the
/// learned distributions and the options, so callers ranking many scenes
/// (the Fixy engine, the batch path) build it once and reuse it instead of
/// re-wrapping every FeatureDistribution per scene. The specs are
/// immutable after construction and safe to share across threads.
///
/// Missing tracks: learned features with identity AOFs plus the manual
/// distance-severity, model-only, and count-filter factors of Table 2.
LoaSpec BuildMissingTracksSpec(const std::vector<FeatureDistribution>& learned,
                               const ApplicationOptions& options);

/// Missing observations: learned features with identity AOFs plus the
/// manual distance-severity factor.
LoaSpec BuildMissingObservationsSpec(
    const std::vector<FeatureDistribution>& learned,
    const ApplicationOptions& options);

/// Model errors: every learned feature wrapped in the inverting AOF so
/// *unlikely* tracks rank first (Section 8.4).
LoaSpec BuildModelErrorsSpec(const std::vector<FeatureDistribution>& learned);

/// Finds tracks entirely missed by human proposals (Section 7, "Finding
/// missing tracks"). `learned` are the learned feature distributions
/// (volume, velocity, plus any user features); the manual distance,
/// model-only, and count factors are added internally. Only tracks that
/// contain no human proposal are ranked (the AOF zero-out), by descending
/// plausibility: consistent model-only tracks are likely real objects.
Result<std::vector<ErrorProposal>> FindMissingTracks(
    const Scene& scene, const std::vector<FeatureDistribution>& learned,
    const ApplicationOptions& options);

/// As above, against a prebuilt spec (see BuildMissingTracksSpec).
Result<std::vector<ErrorProposal>> FindMissingTracks(
    const Scene& scene, const LoaSpec& spec,
    const ApplicationOptions& options);

/// Finds missing human labels within tracks that otherwise have human
/// proposals (Section 7, "Finding missing labels within tracks"): ranks
/// model-only bundles inside human-containing tracks by plausibility.
Result<std::vector<ErrorProposal>> FindMissingObservations(
    const Scene& scene, const std::vector<FeatureDistribution>& learned,
    const ApplicationOptions& options);

/// As above, against a prebuilt spec (see BuildMissingObservationsSpec).
Result<std::vector<ErrorProposal>> FindMissingObservations(
    const Scene& scene, const LoaSpec& spec,
    const ApplicationOptions& options);

/// Finds erroneous ML model predictions (Section 7, "Finding erroneous ML
/// model predictions"). Human proposals are ignored; every learned feature
/// is wrapped in the inverting AOF so *unlikely* tracks rank first.
Result<std::vector<ErrorProposal>> FindModelErrors(
    const Scene& scene, const std::vector<FeatureDistribution>& learned,
    const ApplicationOptions& options);

/// As above, against a prebuilt spec (see BuildModelErrorsSpec).
Result<std::vector<ErrorProposal>> FindModelErrors(
    const Scene& scene, const LoaSpec& spec,
    const ApplicationOptions& options);

namespace internal {

/// Index of the non-empty bundle whose consensus position comes closest to
/// the ego vehicle — the proposal's representative (safety-relevant) view.
/// Empty bundles are skipped; nullopt when every bundle is empty.
std::optional<size_t> ClosestApproachBundle(const Track& track);

/// Representative observation of a bundle: the model prediction when one
/// exists, otherwise the first member. nullptr for an empty bundle.
const Observation* RepresentativeObservation(const ObservationBundle& bundle);

}  // namespace internal

}  // namespace fixy

#endif  // FIXY_CORE_APPLICATIONS_H_
