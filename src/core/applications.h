// The three applications of Section 7 of the paper, each a different
// configuration of association, feature distributions, and AOFs over the
// same compiled-graph scoring machinery:
//
//   - missing-tracks:  tracks the human labels missed entirely;
//   - missing-obs:     missing human boxes within labeled tracks;
//   - model-errors:    erroneous ML model predictions.
//
// Each is packaged as an AppSpec (spec builder + extraction strategy) so
// it plugs into the ApplicationRegistry alongside user applications; the
// Find* facades below rank one scene standalone through the same
// ScenePass pipeline the batch engine uses.
#ifndef FIXY_CORE_APPLICATIONS_H_
#define FIXY_CORE_APPLICATIONS_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "core/app_spec.h"
#include "core/proposal.h"
#include "data/scene.h"
#include "dsl/feature_distribution.h"
#include "dsl/track_builder.h"

namespace fixy {

/// Spec builders: each application's LoaSpec is a pure function of the
/// learned distributions and the options, so callers ranking many scenes
/// (the Fixy engine, the batch path) build it once and reuse it instead of
/// re-wrapping every FeatureDistribution per scene. The specs are
/// immutable after construction and safe to share across threads.
///
/// Missing tracks: learned features with identity AOFs plus the manual
/// distance-severity, model-only, and count-filter factors of Table 2.
LoaSpec BuildMissingTracksSpec(const std::vector<FeatureDistribution>& learned,
                               const ApplicationOptions& options);

/// Missing observations: learned features with identity AOFs plus the
/// manual distance-severity factor.
LoaSpec BuildMissingObservationsSpec(
    const std::vector<FeatureDistribution>& learned,
    const ApplicationOptions& options);

/// Model errors: every learned feature wrapped in the inverting AOF so
/// *unlikely* tracks rank first (Section 8.4).
LoaSpec BuildModelErrorsSpec(const std::vector<FeatureDistribution>& learned);

/// The paper applications as registry entries. MissingTracksApp and
/// MissingObservationsApp build their specs from the count-augmented
/// learned set and associate over the full scene; ModelErrorsApp builds
/// from the continuous learned set and associates model predictions only.
AppSpec MissingTracksApp();
AppSpec MissingObservationsApp();
AppSpec ModelErrorsApp();

/// Extraction strategies (the AppSpec::extract of the factories above),
/// exposed for reuse by custom applications that remix them.
///
/// Missing tracks (Section 7, "Finding missing tracks"): ranks tracks that
/// contain no human proposal — the AOF zero-out — by descending
/// plausibility; consistent model-only tracks are likely real objects.
std::vector<ErrorProposal> ExtractMissingTracks(const AppContext& ctx);

/// Missing observations (Section 7, "Finding missing labels within
/// tracks"): ranks model-only bundles interior to the human-labeled span
/// of human-containing tracks.
std::vector<ErrorProposal> ExtractMissingObservations(const AppContext& ctx);

/// Model errors (Section 7, "Finding erroneous ML model predictions"):
/// ranks model tracks longer than the count threshold by descending
/// implausibility (the spec's inverting AOF).
std::vector<ErrorProposal> ExtractModelErrors(const AppContext& ctx);

/// Standalone single-scene facades over the ScenePass pipeline, against a
/// prebuilt spec (see the Build*Spec builders above). Equivalent to
/// registering the application and ranking a one-scene dataset.
Result<std::vector<ErrorProposal>> FindMissingTracks(
    const Scene& scene, const LoaSpec& spec,
    const ApplicationOptions& options);
Result<std::vector<ErrorProposal>> FindMissingObservations(
    const Scene& scene, const LoaSpec& spec,
    const ApplicationOptions& options);
Result<std::vector<ErrorProposal>> FindModelErrors(
    const Scene& scene, const LoaSpec& spec,
    const ApplicationOptions& options);

namespace internal {

/// Index of the non-empty bundle whose consensus position comes closest to
/// the ego vehicle — the proposal's representative (safety-relevant) view.
/// Empty bundles are skipped; nullopt when every bundle is empty.
std::optional<size_t> ClosestApproachBundle(const Track& track);

/// Representative observation of a bundle: the model prediction when one
/// exists, otherwise the first member. nullptr for an empty bundle.
const Observation* RepresentativeObservation(const ObservationBundle& bundle);

/// A copy of the scene containing only model predictions (Section 8.4's
/// view). Exposed so tests can assert that the shared association pass's
/// model-only view equals a from-scratch build over the filtered scene.
Scene FilterToModelOnly(const Scene& scene);

}  // namespace internal

}  // namespace fixy

#endif  // FIXY_CORE_APPLICATIONS_H_
