// ErrorProposal: one ranked potential error emitted by Fixy or a baseline,
// handed to auditors (or, in this reproduction, to the exact evaluation
// harness in src/eval).
#ifndef FIXY_CORE_PROPOSAL_H_
#define FIXY_CORE_PROPOSAL_H_

#include <string>
#include <vector>

#include "data/track.h"
#include "data/types.h"
#include "geometry/box.h"

namespace fixy {

/// The kind of error a proposal claims.
enum class ProposalKind {
  /// A whole object the human labels missed (Section 8.2).
  kMissingTrack = 0,
  /// A single missing human box within an otherwise-labeled track (8.3).
  kMissingObservation = 1,
  /// An erroneous ML model prediction (8.4).
  kModelError = 2,
};

const char* ProposalKindToString(ProposalKind kind);

/// One ranked potential error.
struct ErrorProposal {
  std::string scene_name;
  ProposalKind kind = ProposalKind::kMissingTrack;
  /// Id of the assembled track the proposal refers to.
  TrackId track_id = 0;
  /// Frame of the proposal's representative box; for kMissingObservation,
  /// the frame of the missing box.
  int frame_index = 0;
  /// Representative box (e.g. the track's closest-approach box).
  geom::Box3d box;
  ObjectClass object_class = ObjectClass::kCar;
  /// Ranking score; higher ranks first.
  double score = 0.0;
  /// Mean model confidence of the underlying predictions, when available.
  double model_confidence = 0.0;
  /// Frames spanned by the underlying track (for error matching).
  int first_frame = 0;
  int last_frame = 0;

  std::string ToString() const;
};

}  // namespace fixy

#endif  // FIXY_CORE_PROPOSAL_H_
