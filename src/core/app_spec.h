// AppSpec: one error-ranking application as data — a name, the scene view
// it associates over, and the two strategies that make it rankable (spec
// assembly from the learned state, and proposal extraction from a compiled
// factor graph). The paper's three applications (Section 7) and user
// applications are the same shape; the ApplicationRegistry maps names to
// these specs and the engine ranks whatever is registered.
#ifndef FIXY_CORE_APP_SPEC_H_
#define FIXY_CORE_APP_SPEC_H_

#include <functional>
#include <string>
#include <vector>

#include "core/proposal.h"
#include "data/scene.h"
#include "dsl/feature_distribution.h"
#include "dsl/track_builder.h"
#include "graph/factor_graph.h"

namespace fixy {

/// Options shared by every application's online phase.
struct ApplicationOptions {
  /// Association options for the shared scene pass.
  TrackBuilderOptions track_builder;

  /// Whether the label-error specs include the manual distance-severity
  /// factor of Table 2 ("errors closer to the AV are more severe").
  bool include_distance_severity = true;

  /// Scale (meters) of the distance-severity falloff.
  double distance_scale_meters = 25.0;

  /// Whether the missing-tracks spec includes the manual count filter
  /// (tracks shorter than min_track_observations are implausible).
  bool include_count_filter = true;

  /// Minimum observations for a track to clear the count filter, and the
  /// model-error application's "longer than the appear assertion's
  /// territory" threshold (Section 8.4).
  int min_track_observations = 2;

  /// Whether component scores are normalized by their factor count
  /// (Section 6). The ablation bench turns this off; everything else
  /// should leave it on.
  bool normalize_scores = true;

  /// When > 0, ranking may prune tracks that provably cannot enter the
  /// per-class top k of any scene (see DESIGN.md §11): applications that
  /// opt in (AppSpec::prunable_tracks) skip extraction for tracks whose
  /// cheap score upper bound falls below the scene's current k-th best
  /// score for every class they could land in. The surviving proposals
  /// are byte-identical to the unpruned run after TopKPerClass(.., k).
  /// 0 (the default) disables pruning and ranks every candidate.
  int top_k_per_class = 0;
};

/// The learned state applications build their specs from: the base
/// (label-error) distributions, and the count-augmented set the
/// model-error application uses (Section 8.4 adds "a track feature over
/// the total number of observations").
struct LearnedState {
  const std::vector<FeatureDistribution>& base;
  const std::vector<FeatureDistribution>& with_count;
};

/// Everything an extraction strategy sees: the compiled, scored factor
/// graph over the application's view, the scene it came from, and the
/// run's options.
struct AppContext {
  const FactorGraph& graph;
  const Scene& scene;
  const ApplicationOptions& options;
};

/// One application, as registered: strategies plus the metadata the
/// engine needs to run them through the shared scene pass.
struct AppSpec {
  /// Registry name ("missing-tracks"). Non-empty, no whitespace or commas
  /// (the CLI's --apps splits on commas).
  std::string name;

  /// The association view this application compiles over.
  SceneView view = SceneView::kFull;

  /// Builds the application's LoaSpec from the learned state. Pure: the
  /// engine calls it once per Learn()/LoadModel() and shares the result
  /// across scenes and threads.
  std::function<LoaSpec(const LearnedState&, const ApplicationOptions&)>
      build_spec;

  /// Turns a compiled graph into (unranked) proposals; the pipeline ranks
  /// them deterministically afterwards.
  std::function<std::vector<ErrorProposal>(const AppContext&)> extract;

  /// Top-k pruning contract (ApplicationOptions::top_k_per_class). When
  /// non-null, the application declares that its extract emits at most one
  /// proposal per track and that `prunable_tracks(track)` returns true
  /// exactly for the tracks extract would score — which lets the pipeline
  /// skip tracks whose score upper bound cannot reach the per-class top k.
  /// Null (the default) means "never prune me" (e.g. bundle-granularity
  /// applications like missing-obs, whose proposals are not track-level).
  std::function<bool(const Track&, const ApplicationOptions&)> prunable_tracks;

  /// Whether extract's track scores use factor-count normalization. Must
  /// match the ScoreTrack(normalize=...) calls inside extract so the
  /// pruning bound compares like with like. Ignored when prunable_tracks
  /// is null.
  std::function<bool(const ApplicationOptions&)> prune_normalize;
};

}  // namespace fixy

#endif  // FIXY_CORE_APP_SPEC_H_
