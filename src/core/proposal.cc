#include "core/proposal.h"

#include "common/string_util.h"

namespace fixy {

const char* ProposalKindToString(ProposalKind kind) {
  switch (kind) {
    case ProposalKind::kMissingTrack:
      return "missing_track";
    case ProposalKind::kMissingObservation:
      return "missing_observation";
    case ProposalKind::kModelError:
      return "model_error";
  }
  return "unknown";
}

std::string ErrorProposal::ToString() const {
  return StrFormat(
      "%s %s track=%llu frames=[%d..%d] class=%s score=%.4f conf=%.2f",
      scene_name.c_str(), ProposalKindToString(kind),
      static_cast<unsigned long long>(track_id), first_frame, last_frame,
      ObjectClassToString(object_class), score, model_confidence);
}

}  // namespace fixy
