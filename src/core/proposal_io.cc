#include "core/proposal_io.h"

#include <fstream>
#include <sstream>

#include "common/macros.h"

namespace fixy {

namespace {

constexpr const char* kMarker = "fixy-proposals";
constexpr int kVersion = 1;

const char* KindName(ProposalKind kind) { return ProposalKindToString(kind); }

Result<ProposalKind> KindFromName(const std::string& name) {
  if (name == "missing_track") return ProposalKind::kMissingTrack;
  if (name == "missing_observation") return ProposalKind::kMissingObservation;
  if (name == "model_error") return ProposalKind::kModelError;
  return Status::InvalidArgument("unknown proposal kind: " + name);
}

}  // namespace

json::Value ProposalsToJson(const std::vector<ErrorProposal>& proposals) {
  json::Array items;
  items.reserve(proposals.size());
  for (const ErrorProposal& p : proposals) {
    json::Object box;
    box["cx"] = p.box.center.x;
    box["cy"] = p.box.center.y;
    box["cz"] = p.box.center.z;
    box["l"] = p.box.length;
    box["w"] = p.box.width;
    box["h"] = p.box.height;
    box["yaw"] = p.box.yaw;

    json::Object item;
    item["scene"] = p.scene_name;
    item["kind"] = KindName(p.kind);
    item["track_id"] = static_cast<uint64_t>(p.track_id);
    item["frame"] = p.frame_index;
    item["first_frame"] = p.first_frame;
    item["last_frame"] = p.last_frame;
    item["class"] = ObjectClassToString(p.object_class);
    item["score"] = p.score;
    item["model_confidence"] = p.model_confidence;
    item["box"] = std::move(box);
    items.push_back(std::move(item));
  }
  json::Object doc;
  doc["format"] = kMarker;
  doc["version"] = kVersion;
  doc["proposals"] = std::move(items);
  return doc;
}

Result<std::vector<ErrorProposal>> ProposalsFromJson(
    const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("proposals document must be an object");
  }
  FIXY_ASSIGN_OR_RETURN(std::string format, value.GetString("format"));
  if (format != kMarker) {
    return Status::InvalidArgument("not a fixy-proposals document");
  }
  const json::Value* items = value.Find("proposals");
  if (items == nullptr || !items->is_array()) {
    return Status::InvalidArgument("document missing proposals array");
  }
  std::vector<ErrorProposal> proposals;
  proposals.reserve(items->AsArray().size());
  for (const json::Value& item : items->AsArray()) {
    ErrorProposal p;
    FIXY_ASSIGN_OR_RETURN(p.scene_name, item.GetString("scene"));
    FIXY_ASSIGN_OR_RETURN(std::string kind, item.GetString("kind"));
    FIXY_ASSIGN_OR_RETURN(p.kind, KindFromName(kind));
    FIXY_ASSIGN_OR_RETURN(int64_t track_id, item.GetInt64("track_id"));
    p.track_id = static_cast<TrackId>(track_id);
    FIXY_ASSIGN_OR_RETURN(int64_t frame, item.GetInt64("frame"));
    p.frame_index = static_cast<int>(frame);
    FIXY_ASSIGN_OR_RETURN(int64_t first, item.GetInt64("first_frame"));
    p.first_frame = static_cast<int>(first);
    FIXY_ASSIGN_OR_RETURN(int64_t last, item.GetInt64("last_frame"));
    p.last_frame = static_cast<int>(last);
    FIXY_ASSIGN_OR_RETURN(std::string cls, item.GetString("class"));
    FIXY_ASSIGN_OR_RETURN(p.object_class, ObjectClassFromString(cls));
    FIXY_ASSIGN_OR_RETURN(p.score, item.GetDouble("score"));
    FIXY_ASSIGN_OR_RETURN(p.model_confidence,
                          item.GetDouble("model_confidence"));
    const json::Value* box = item.Find("box");
    if (box == nullptr) {
      return Status::InvalidArgument("proposal missing box");
    }
    FIXY_ASSIGN_OR_RETURN(p.box.center.x, box->GetDouble("cx"));
    FIXY_ASSIGN_OR_RETURN(p.box.center.y, box->GetDouble("cy"));
    FIXY_ASSIGN_OR_RETURN(p.box.center.z, box->GetDouble("cz"));
    FIXY_ASSIGN_OR_RETURN(p.box.length, box->GetDouble("l"));
    FIXY_ASSIGN_OR_RETURN(p.box.width, box->GetDouble("w"));
    FIXY_ASSIGN_OR_RETURN(p.box.height, box->GetDouble("h"));
    FIXY_ASSIGN_OR_RETURN(p.box.yaw, box->GetDouble("yaw"));
    proposals.push_back(std::move(p));
  }
  return proposals;
}

Status SaveProposals(const std::vector<ErrorProposal>& proposals,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << json::Write(ProposalsToJson(proposals), /*pretty=*/true);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<ErrorProposal>> LoadProposals(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  FIXY_ASSIGN_OR_RETURN(json::Value doc, json::Parse(buffer.str()));
  return ProposalsFromJson(doc);
}

}  // namespace fixy
