#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <optional>
#include <utility>

#include "common/bounded_queue.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/features_std.h"
#include "core/model_io.h"

namespace fixy {

Fixy::Fixy(FixyOptions options) : options_(std::move(options)) {}

Status Fixy::Learn(const Dataset& training) {
  const obs::ScopedStageTimer learn_timer("learn.total");
  // Standard learned features (Table 2): class-conditional volume and
  // velocity, plus any user-provided extras.
  std::vector<FeaturePtr> features;
  features.push_back(std::make_shared<VolumeFeature>());
  features.push_back(std::make_shared<VelocityFeature>());
  for (const FeaturePtr& extra : options_.extra_features) {
    features.push_back(extra);
  }
  const DistributionLearner learner(options_.learner);
  FIXY_ASSIGN_OR_RETURN(learned_base_, learner.Learn(training, features));

  // Track-count distribution for the model-error application: counts are
  // discrete, so fit a categorical regardless of the main estimator.
  LearnerOptions count_options = options_.learner;
  count_options.estimator = EstimatorKind::kCategorical;
  const DistributionLearner count_learner(count_options);
  FIXY_ASSIGN_OR_RETURN(
      std::vector<FeatureDistribution> count_fd,
      count_learner.Learn(training, {std::make_shared<CountFeature>()}));

  learned_with_count_ = learned_base_;
  learned_with_count_.push_back(std::move(count_fd.front()));
  learned_flag_ = true;
  RebuildSpecs();
  return Status::Ok();
}

Status Fixy::SaveModel(const std::string& path) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  // learned_with_count_ = learned_base_ + the track-count distribution, so
  // serializing it captures the full learned state.
  return SaveLearnedModel(learned_with_count_, path);
}

Status Fixy::LoadModel(const std::string& path) {
  FeatureRegistry registry = FeatureRegistry::Standard();
  for (const FeaturePtr& extra : options_.extra_features) {
    registry.Register(extra);
  }
  FIXY_ASSIGN_OR_RETURN(learned_with_count_,
                        LoadLearnedModel(path, registry));
  // Split the count distribution back out: the label-error applications
  // use the manual count *filter* instead of the learned distribution.
  learned_base_.clear();
  bool has_count = false;
  for (const FeatureDistribution& fd : learned_with_count_) {
    if (fd.feature().kind() == FeatureKind::kTrack &&
        fd.feature().name() == "count") {
      has_count = true;
    } else {
      learned_base_.push_back(fd);
    }
  }
  if (!has_count) {
    learned_base_.clear();
    learned_with_count_.clear();
    return Status::InvalidArgument(
        "model file is missing the learned 'count' distribution");
  }
  learned_flag_ = true;
  RebuildSpecs();
  return Status::Ok();
}

void Fixy::RebuildSpecs() {
  const obs::ScopedStageTimer timer("learn.rebuild_specs");
  missing_tracks_spec_ =
      BuildMissingTracksSpec(learned_base_, options_.application);
  missing_observations_spec_ =
      BuildMissingObservationsSpec(learned_base_, options_.application);
  model_errors_spec_ = BuildModelErrorsSpec(learned_with_count_);
}

Status Fixy::CheckLearned() const {
  if (!learned_flag_) {
    return Status::FailedPrecondition(
        "Fixy::Learn() must succeed before ranking errors");
  }
  return Status::Ok();
}

Result<std::vector<ErrorProposal>> Fixy::FindMissingTracks(
    const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  return fixy::FindMissingTracks(scene, missing_tracks_spec_,
                                 options_.application);
}

Result<std::vector<ErrorProposal>> Fixy::FindMissingObservations(
    const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  return fixy::FindMissingObservations(scene, missing_observations_spec_,
                                       options_.application);
}

Result<std::vector<ErrorProposal>> Fixy::FindModelErrors(
    const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  return fixy::FindModelErrors(scene, model_errors_spec_,
                               options_.application);
}

Result<std::vector<ErrorProposal>> Fixy::RankScene(const Scene& scene,
                                                   Application app) const {
  switch (app) {
    case Application::kMissingTracks:
      return fixy::FindMissingTracks(scene, missing_tracks_spec_,
                                     options_.application);
    case Application::kMissingObservations:
      return fixy::FindMissingObservations(scene, missing_observations_spec_,
                                           options_.application);
    case Application::kModelErrors:
      return fixy::FindModelErrors(scene, model_errors_spec_,
                                   options_.application);
  }
  return Status::InvalidArgument("unknown application");
}

Result<BatchReport> Fixy::RankDataset(const Dataset& dataset, Application app,
                                      const BatchOptions& batch) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());

  const size_t scene_count = dataset.scenes.size();
  BatchReport report;
  report.outcomes.resize(scene_count);

  const bool collect = batch.collect_metrics;
  const obs::StageTimer total_timer;
  // One collector per scene, touched only by the worker that ranks the
  // scene: counters are exact per-scene event counts, and merging the
  // snapshots back in dataset order afterwards makes the batch totals
  // byte-identical at every thread count. With metrics off, a null scope
  // is installed instead so an ambient caller-installed collector sees
  // the same (empty) contribution from the serial and parallel paths.
  std::vector<obs::PipelineMetrics> scene_metrics(collect ? scene_count : 0);

  // Each scene is scored independently against the shared immutable specs,
  // so outcomes land in pre-assigned slots and the merged output is
  // identical for any thread count. The online phase draws no randomness;
  // any per-scene variation comes only from the scene itself. A failing
  // scene writes only its own slot, so it cannot poison its neighbours.
  auto rank_into_slot = [this, app, collect, &dataset, &report,
                         &scene_metrics](size_t i, uint64_t queue_wait_ns) {
    obs::MetricsCollector scene_collector;
    const obs::MetricsScope scope(collect ? &scene_collector : nullptr);
    const obs::StageTimer scene_timer;
    SceneOutcome& outcome = report.outcomes[i];
    outcome.scene_name = dataset.scenes[i].name();
    Result<std::vector<ErrorProposal>> proposals =
        RankScene(dataset.scenes[i], app);
    if (proposals.ok()) {
      outcome.proposals = std::move(proposals).value();
    } else {
      outcome.status = proposals.status();
    }
    if (collect) {
      const uint64_t wall_ns = scene_timer.ElapsedNs();
      outcome.wall_ms = static_cast<double>(wall_ns) * 1e-6;
      scene_collector.Count("span.scene.calls");
      scene_collector.AddTimeNs("span.scene", wall_ns);
      // Recorded even when zero (the serial path) so the snapshot schema
      // does not depend on the thread count.
      scene_collector.AddTimeNs("batch.queue_wait", queue_wait_ns);
      scene_metrics[i] = scene_collector.Snapshot();
    }
  };

  const int threads = ThreadPool::ResolveThreadCount(batch.num_threads);
  const bool parallel = threads > 1 && scene_count > 1;
  if (!parallel) {
    // Serial reference path: no pool, calling thread only.
    for (size_t i = 0; i < scene_count; ++i) rank_into_slot(i, 0);
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<void>> futures;
    futures.reserve(scene_count);
    for (size_t i = 0; i < scene_count; ++i) {
      const auto enqueued = std::chrono::steady_clock::now();
      futures.push_back(pool.Submit([&rank_into_slot, i, enqueued] {
        const auto waited = std::chrono::steady_clock::now() - enqueued;
        rank_into_slot(
            i, static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                       .count()));
      }));
    }
    for (std::future<void>& future : futures) future.get();
  }

  // Summary pass, and the fail-fast contract: the first failure in scene
  // order wins, so error reporting is as deterministic as the success path.
  for (const SceneOutcome& outcome : report.outcomes) {
    if (outcome.ok()) {
      ++report.scenes_ok;
      continue;
    }
    if (batch.fail_fast) {
      // Name the scene so callers can tell which one sank the batch.
      return Status(outcome.status.code(),
                    "scene '" + outcome.scene_name +
                        "': " + outcome.status.message());
    }
    ++report.scenes_failed;
    ++report.scenes_quarantined;
  }

  if (collect) {
    for (const obs::PipelineMetrics& m : scene_metrics) {
      report.metrics.MergeFrom(m);
    }
    report.metrics.counters["batch.scenes"] += scene_count;
    report.metrics.counters["batch.scenes_ok"] += report.scenes_ok;
    report.metrics.counters["batch.scenes_failed"] += report.scenes_failed;
    report.metrics.counters["batch.scenes_quarantined"] +=
        report.scenes_quarantined;
    report.metrics.timers_ms["batch.total"] = total_timer.ElapsedMs();
    report.metrics.gauges["batch.threads"] =
        static_cast<double>(parallel ? threads : 1);
    double scene_ms_max = 0.0;
    for (const SceneOutcome& outcome : report.outcomes) {
      scene_ms_max = std::max(scene_ms_max, outcome.wall_ms);
    }
    report.metrics.gauges["batch.scene_ms_max"] = scene_ms_max;
  }
  return report;
}

Result<BatchReport> Fixy::RankDatasetStreaming(
    const SceneSource& source, Application app, const BatchOptions& batch,
    const StreamOptions& stream) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());

  const size_t scene_count = source.scene_count();
  BatchReport report;
  report.outcomes.resize(scene_count);

  const bool collect = batch.collect_metrics;
  const obs::StageTimer total_timer;
  // Two collectors per scene — one filled by the loader that decodes it,
  // one by the worker that ranks it — merged back in dataset order, so
  // every counter total is byte-identical at any decode/rank thread
  // combination (same scheme as RankDataset).
  std::vector<obs::PipelineMetrics> decode_metrics(collect ? scene_count : 0);
  std::vector<obs::PipelineMetrics> scene_metrics(collect ? scene_count : 0);

  const int rank_threads = ThreadPool::ResolveThreadCount(batch.num_threads);
  const int decode_threads = std::max(1, stream.decode_threads);
  const size_t queue_capacity =
      stream.queue_capacity != 0 ? stream.queue_capacity
                                 : static_cast<size_t>(rank_threads) * 2;

  // A decoded (or failed-to-decode) scene in flight between the loader
  // pool and the rank workers.
  struct WorkItem {
    size_t index;
    Result<Scene> scene;
  };
  BoundedQueue<WorkItem> queue(queue_capacity);

  // Loader side: decode scene i and push it. Push blocks when the queue
  // is full — that back-pressure is what bounds ingestion memory.
  auto decode_one = [collect, &source, &decode_metrics, &queue](size_t i) {
    obs::MetricsCollector decode_collector;
    const obs::MetricsScope scope(collect ? &decode_collector : nullptr);
    Result<Scene> scene = source.DecodeScene(i);
    if (collect) decode_metrics[i] = decode_collector.Snapshot();
    queue.Push(WorkItem{i, std::move(scene)});
  };

  // Rank side: long-lived workers popping until the queue is closed and
  // drained. Outcomes land in pre-assigned slots, so arrival order —
  // which varies with scheduling — cannot reorder the report. A decode
  // failure flows through as that scene's outcome Status, exactly like a
  // ranking failure.
  auto rank_worker = [this, app, collect, &source, &report, &scene_metrics,
                      &queue] {
    for (;;) {
      const obs::StageTimer wait_timer;
      std::optional<WorkItem> item = queue.Pop();
      if (!item.has_value()) return;  // closed and drained
      const uint64_t wait_ns = wait_timer.ElapsedNs();
      const size_t i = item->index;
      obs::MetricsCollector scene_collector;
      const obs::MetricsScope scope(collect ? &scene_collector : nullptr);
      const obs::StageTimer scene_timer;
      SceneOutcome& outcome = report.outcomes[i];
      if (!item->scene.ok()) {
        outcome.scene_name = source.scene_name(i);
        outcome.status = item->scene.status();
      } else {
        const Scene& scene = item->scene.value();
        outcome.scene_name = scene.name();
        Result<std::vector<ErrorProposal>> proposals = RankScene(scene, app);
        if (proposals.ok()) {
          outcome.proposals = std::move(proposals).value();
        } else {
          outcome.status = proposals.status();
        }
      }
      if (collect) {
        const uint64_t wall_ns = scene_timer.ElapsedNs();
        outcome.wall_ms = static_cast<double>(wall_ns) * 1e-6;
        scene_collector.Count("span.scene.calls");
        scene_collector.AddTimeNs("span.scene", wall_ns);
        // The streaming path's wait is the pop on the decode→rank queue;
        // batch.queue_wait is recorded at zero so the snapshot key set
        // matches the non-streaming path.
        scene_collector.AddTimeNs("io.fxb.queue_wait", wait_ns);
        scene_collector.AddTimeNs("batch.queue_wait", 0);
        scene_metrics[i] = scene_collector.Snapshot();
      }
    }
  };

  {
    // Rank workers first so consumers exist before the first Push can
    // fill the queue; the loader pool drains itself before Close().
    ThreadPool rank_pool(rank_threads);
    std::vector<std::future<void>> rank_futures;
    rank_futures.reserve(static_cast<size_t>(rank_threads));
    for (int t = 0; t < rank_threads; ++t) {
      rank_futures.push_back(rank_pool.Submit(rank_worker));
    }
    {
      ThreadPool decode_pool(decode_threads);
      std::vector<std::future<void>> decode_futures;
      decode_futures.reserve(scene_count);
      for (size_t i = 0; i < scene_count; ++i) {
        decode_futures.push_back(
            decode_pool.Submit([&decode_one, i] { decode_one(i); }));
      }
      for (std::future<void>& future : decode_futures) future.get();
    }
    queue.Close();
    for (std::future<void>& future : rank_futures) future.get();
  }

  // Same summary pass and fail-fast contract as RankDataset: the first
  // failure in dataset order wins.
  for (const SceneOutcome& outcome : report.outcomes) {
    if (outcome.ok()) {
      ++report.scenes_ok;
      continue;
    }
    if (batch.fail_fast) {
      return Status(outcome.status.code(),
                    "scene '" + outcome.scene_name +
                        "': " + outcome.status.message());
    }
    ++report.scenes_failed;
    ++report.scenes_quarantined;
  }

  if (collect) {
    for (size_t i = 0; i < scene_count; ++i) {
      report.metrics.MergeFrom(decode_metrics[i]);
      report.metrics.MergeFrom(scene_metrics[i]);
    }
    report.metrics.counters["batch.scenes"] += scene_count;
    report.metrics.counters["batch.scenes_ok"] += report.scenes_ok;
    report.metrics.counters["batch.scenes_failed"] += report.scenes_failed;
    report.metrics.counters["batch.scenes_quarantined"] +=
        report.scenes_quarantined;
    report.metrics.timers_ms["batch.total"] = total_timer.ElapsedMs();
    report.metrics.gauges["batch.threads"] = static_cast<double>(rank_threads);
    double scene_ms_max = 0.0;
    for (const SceneOutcome& outcome : report.outcomes) {
      scene_ms_max = std::max(scene_ms_max, outcome.wall_ms);
    }
    report.metrics.gauges["batch.scene_ms_max"] = scene_ms_max;
  }
  return report;
}

}  // namespace fixy
