#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <future>
#include <iterator>
#include <memory>
#include <optional>
#include <utility>

#include "common/bounded_queue.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/features_std.h"
#include "core/model_io.h"
#include "core/scene_pass.h"

namespace fixy {

const char* ApplicationName(Application app) {
  switch (app) {
    case Application::kMissingTracks:
      return "missing-tracks";
    case Application::kMissingObservations:
      return "missing-obs";
    case Application::kModelErrors:
      return "model-errors";
  }
  return "unknown";
}

Status AppendShardReport(MultiAppReport& into, MultiAppReport&& part) {
  if (into.apps.empty() && into.reports.empty()) {
    into.apps = std::move(part.apps);
    into.reports.resize(into.apps.size());
  } else if (into.apps != part.apps) {
    return Status::InvalidArgument(
        "cannot merge shard reports ranked with different applications");
  }
  if (part.reports.size() != into.reports.size()) {
    return Status::InvalidArgument(
        "shard report has a different per-app report count");
  }
  for (size_t a = 0; a < into.reports.size(); ++a) {
    std::vector<SceneOutcome>& dst = into.reports[a].outcomes;
    std::vector<SceneOutcome>& src = part.reports[a].outcomes;
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
  }
  return Status::Ok();
}

void RecomputeReportSummary(MultiAppReport& report) {
  for (BatchReport& batch : report.reports) {
    batch.scenes_ok = 0;
    batch.scenes_failed = 0;
    batch.scenes_quarantined = 0;
    for (const SceneOutcome& outcome : batch.outcomes) {
      if (outcome.ok()) {
        ++batch.scenes_ok;
      } else {
        ++batch.scenes_failed;
        ++batch.scenes_quarantined;
      }
    }
  }
}

Fixy::Fixy(FixyOptions options)
    : options_(std::move(options)),
      registry_(ApplicationRegistry::Standard()) {
  for (const AppSpec& app : options_.extra_applications) {
    const Status status = registry_.Register(app);
    if (!status.ok() && registry_status_.ok()) registry_status_ = status;
  }
}

std::vector<FeaturePtr> Fixy::BaseFeatures() const {
  // Standard learned features (Table 2): class-conditional volume and
  // velocity, plus any user-provided extras.
  std::vector<FeaturePtr> features;
  features.push_back(std::make_shared<VolumeFeature>());
  features.push_back(std::make_shared<VelocityFeature>());
  for (const FeaturePtr& extra : options_.extra_features) {
    features.push_back(extra);
  }
  return features;
}

Status Fixy::Learn(const Dataset& training) {
  const obs::ScopedStageTimer learn_timer("learn.total");
  const std::vector<FeaturePtr> features = BaseFeatures();
  const DistributionLearner learner(options_.learner);
  FIXY_ASSIGN_OR_RETURN(LearnedFeatureSet base_set,
                        learner.LearnWithStats(training, features));

  // Track-count distribution for the model-error application: counts are
  // discrete, so fit a categorical regardless of the main estimator.
  LearnerOptions count_options = options_.learner;
  count_options.estimator = EstimatorKind::kCategorical;
  const DistributionLearner count_learner(count_options);
  FIXY_ASSIGN_OR_RETURN(
      LearnedFeatureSet count_set,
      count_learner.LearnWithStats(training,
                                   {std::make_shared<CountFeature>()}));

  learned_base_ = std::move(base_set.distributions);
  stats_base_ = std::move(base_set.stats);
  stats_count_ = std::move(count_set.stats);
  learned_with_count_ = learned_base_;
  learned_with_count_.push_back(std::move(count_set.distributions.front()));
  has_stats_ = true;
  learned_flag_ = true;
  RebuildSpecs();
  return Status::Ok();
}

Status Fixy::LearnIncremental(const Dataset& delta) {
  const obs::ScopedStageTimer learn_timer("learn.total");
  FIXY_RETURN_IF_ERROR(CheckLearned());
  if (!has_stats_) {
    return Status::FailedPrecondition(
        "model carries no sufficient statistics to fold into (saved before "
        "incremental learning?) — run a full Learn() instead");
  }
  const std::vector<FeaturePtr> features = BaseFeatures();
  const DistributionLearner learner(options_.learner);
  LearnedFeatureSet base_state{learned_base_, stats_base_};
  FIXY_RETURN_IF_ERROR(learner.Fold(delta, features, base_state));

  LearnerOptions count_options = options_.learner;
  count_options.estimator = EstimatorKind::kCategorical;
  const DistributionLearner count_learner(count_options);
  LearnedFeatureSet count_state{{learned_with_count_.back()}, stats_count_};
  FIXY_RETURN_IF_ERROR(count_learner.Fold(
      delta, {std::make_shared<CountFeature>()}, count_state));

  // Both folds succeeded — commit.
  learned_base_ = std::move(base_state.distributions);
  stats_base_ = std::move(base_state.stats);
  stats_count_ = std::move(count_state.stats);
  learned_with_count_ = learned_base_;
  learned_with_count_.push_back(std::move(count_state.distributions.front()));
  RebuildSpecs();
  return Status::Ok();
}

Status Fixy::SaveModel(const std::string& path) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  // learned_with_count_ = learned_base_ + the track-count distribution, so
  // serializing it captures the full learned state; the parallel stats
  // (when held) make the saved model foldable after a reload.
  std::vector<FeatureStats> stats;
  if (has_stats_) {
    stats = stats_base_;
    stats.insert(stats.end(), stats_count_.begin(), stats_count_.end());
  }
  return SaveLearnedModel(learned_with_count_, stats, path);
}

Status Fixy::LoadModel(const std::string& path) {
  FeatureRegistry registry = FeatureRegistry::Standard();
  for (const FeaturePtr& extra : options_.extra_features) {
    registry.Register(extra);
  }
  FIXY_ASSIGN_OR_RETURN(LoadedModel model,
                        LoadLearnedModelWithStats(path, registry));
  // Split the count distribution back out: the label-error applications
  // use the manual count *filter* instead of the learned distribution.
  // The stats (when present) are parallel to the distributions and split
  // the same way. learned_with_count_ is rebuilt count-last so the
  // learned state (and a subsequent SaveModel) is canonical whatever
  // order the file listed the features in.
  learned_base_.clear();
  stats_base_.clear();
  stats_count_.clear();
  const bool with_stats = model.has_stats();
  std::optional<FeatureDistribution> count_fd;
  for (size_t i = 0; i < model.distributions.size(); ++i) {
    FeatureDistribution& fd = model.distributions[i];
    if (fd.feature().kind() == FeatureKind::kTrack &&
        fd.feature().name() == "count") {
      count_fd = std::move(fd);
      if (with_stats) stats_count_.push_back(std::move(model.stats[i]));
    } else {
      learned_base_.push_back(std::move(fd));
      if (with_stats) stats_base_.push_back(std::move(model.stats[i]));
    }
  }
  if (!count_fd.has_value()) {
    learned_base_.clear();
    learned_with_count_.clear();
    stats_base_.clear();
    stats_count_.clear();
    has_stats_ = false;
    return Status::InvalidArgument(
        "model file is missing the learned 'count' distribution");
  }
  learned_with_count_ = learned_base_;
  learned_with_count_.push_back(std::move(*count_fd));
  has_stats_ = with_stats;
  learned_flag_ = true;
  RebuildSpecs();
  return Status::Ok();
}

void Fixy::RebuildSpecs() {
  const obs::ScopedStageTimer timer("learn.rebuild_specs");
  const LearnedState learned{learned_base_, learned_with_count_};
  specs_.clear();
  specs_.reserve(registry_.apps().size());
  for (const AppSpec& app : registry_.apps()) {
    specs_.push_back(app.build_spec(learned, options_.application));
  }
}

Status Fixy::CheckLearned() const {
  if (!learned_flag_) {
    return Status::FailedPrecondition(
        "Fixy::Learn() must succeed before ranking errors");
  }
  return Status::Ok();
}

Result<Fixy::RunPlan> Fixy::PlanRun(
    const std::vector<std::string>& names) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  FIXY_RETURN_IF_ERROR(registry_status_);
  RunPlan plan;
  FIXY_ASSIGN_OR_RETURN(plan.app_indices, registry_.Resolve(names));
  for (const size_t idx : plan.app_indices) {
    const SceneView view = registry_.apps()[idx].view;
    plan.need_full = plan.need_full || view == SceneView::kFull;
    plan.need_model = plan.need_model || view == SceneView::kModelOnly;
  }
  return plan;
}

Result<std::vector<ErrorProposal>> Fixy::Find(const Scene& scene,
                                              const std::string& app) const {
  FIXY_ASSIGN_OR_RETURN(RunPlan plan, PlanRun({app}));
  const size_t idx = plan.app_indices.front();
  FIXY_ASSIGN_OR_RETURN(
      ScenePass pass,
      ScenePass::Run(scene, options_.application.track_builder,
                     plan.need_full, plan.need_model));
  return RunApplicationOnPass(registry_.apps()[idx], specs_[idx], scene, pass,
                              options_.application);
}

Result<std::vector<ErrorProposal>> Fixy::FindMissingTracks(
    const Scene& scene) const {
  return Find(scene, ApplicationName(Application::kMissingTracks));
}

Result<std::vector<ErrorProposal>> Fixy::FindMissingObservations(
    const Scene& scene) const {
  return Find(scene, ApplicationName(Application::kMissingObservations));
}

Result<std::vector<ErrorProposal>> Fixy::FindModelErrors(
    const Scene& scene) const {
  return Find(scene, ApplicationName(Application::kModelErrors));
}

void Fixy::RankSceneApps(const RunPlan& plan, const Scene& scene,
                         std::vector<BatchReport>& reports,
                         size_t slot) const {
  // One association pass (and one lazily shared feature-score cache per
  // view) serves every application ranking this scene. A pass failure —
  // e.g. a scene that fails validation — fails every application's
  // outcome with the same Status.
  Result<ScenePass> pass =
      ScenePass::Run(scene, options_.application.track_builder,
                     plan.need_full, plan.need_model);
  for (size_t a = 0; a < plan.app_indices.size(); ++a) {
    SceneOutcome& outcome = reports[a].outcomes[slot];
    outcome.scene_name = scene.name();
    if (!pass.ok()) {
      outcome.status = pass.status();
      continue;
    }
    const size_t idx = plan.app_indices[a];
    Result<std::vector<ErrorProposal>> proposals =
        RunApplicationOnPass(registry_.apps()[idx], specs_[idx], scene,
                             pass.value(), options_.application);
    if (proposals.ok()) {
      outcome.proposals = std::move(proposals).value();
    } else {
      outcome.status = proposals.status();
    }
  }
}

Result<MultiAppReport> Fixy::RankScene(
    const Scene& scene, const std::vector<std::string>& apps) const {
  FIXY_ASSIGN_OR_RETURN(RunPlan plan, PlanRun(apps));
  const size_t app_count = plan.app_indices.size();
  MultiAppReport multi;
  multi.apps.reserve(app_count);
  for (const size_t idx : plan.app_indices) {
    multi.apps.push_back(registry_.apps()[idx].name);
  }
  multi.reports.resize(app_count);
  for (BatchReport& report : multi.reports) report.outcomes.resize(1);
  RankSceneApps(plan, scene, multi.reports, 0);
  for (BatchReport& report : multi.reports) {
    if (report.outcomes.front().ok()) {
      report.scenes_ok = 1;
    } else {
      report.scenes_failed = 1;
      report.scenes_quarantined = 1;
    }
  }
  return multi;
}

Result<MultiAppReport> Fixy::RankDataset(
    const Dataset& dataset, const std::vector<std::string>& apps,
    const BatchOptions& batch) const {
  FIXY_ASSIGN_OR_RETURN(RunPlan plan, PlanRun(apps));

  const size_t scene_count = dataset.scenes.size();
  const size_t app_count = plan.app_indices.size();
  MultiAppReport multi;
  multi.apps.reserve(app_count);
  for (const size_t idx : plan.app_indices) {
    multi.apps.push_back(registry_.apps()[idx].name);
  }
  multi.reports.resize(app_count);
  for (BatchReport& report : multi.reports) {
    report.outcomes.resize(scene_count);
  }

  const bool collect = batch.collect_metrics;
  const obs::StageTimer total_timer;
  // One collector per scene, touched only by the worker that ranks the
  // scene: counters are exact per-scene event counts, and merging the
  // snapshots back in dataset order afterwards makes the batch totals
  // byte-identical at every thread count. With metrics off, a null scope
  // is installed instead so an ambient caller-installed collector sees
  // the same (empty) contribution from the serial and parallel paths.
  std::vector<obs::PipelineMetrics> scene_metrics(collect ? scene_count : 0);

  // Each scene is scored independently against the shared immutable specs,
  // so outcomes land in pre-assigned slots and the merged output is
  // identical for any thread count. The online phase draws no randomness;
  // any per-scene variation comes only from the scene itself. A failing
  // scene writes only its own slots, so it cannot poison its neighbours.
  // All of a scene's applications run on one worker, in request order, so
  // per-app counters are deterministic too.
  auto rank_into_slot = [this, collect, &plan, &dataset, &multi,
                         &scene_metrics](size_t i, uint64_t queue_wait_ns) {
    obs::MetricsCollector scene_collector;
    const obs::MetricsScope scope(collect ? &scene_collector : nullptr);
    const obs::StageTimer scene_timer;
    RankSceneApps(plan, dataset.scenes[i], multi.reports, i);
    if (collect) {
      const uint64_t wall_ns = scene_timer.ElapsedNs();
      const double wall_ms = static_cast<double>(wall_ns) * 1e-6;
      for (BatchReport& report : multi.reports) {
        report.outcomes[i].wall_ms = wall_ms;
      }
      scene_collector.Count("span.scene.calls");
      scene_collector.AddTimeNs("span.scene", wall_ns);
      // Recorded even when zero (the serial path) so the snapshot schema
      // does not depend on the thread count.
      scene_collector.AddTimeNs("batch.queue_wait", queue_wait_ns);
      scene_metrics[i] = scene_collector.Snapshot();
    }
  };

  const int threads = ThreadPool::ResolveThreadCount(batch.num_threads);
  const bool parallel = threads > 1 && scene_count > 1;
  if (!parallel) {
    // Serial reference path: no pool, calling thread only.
    for (size_t i = 0; i < scene_count; ++i) rank_into_slot(i, 0);
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<void>> futures;
    futures.reserve(scene_count);
    for (size_t i = 0; i < scene_count; ++i) {
      const auto enqueued = std::chrono::steady_clock::now();
      futures.push_back(pool.Submit([&rank_into_slot, i, enqueued] {
        const auto waited = std::chrono::steady_clock::now() - enqueued;
        rank_into_slot(
            i, static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                       .count()));
      }));
    }
    for (std::future<void>& future : futures) future.get();
  }

  // Summary pass, and the fail-fast contract: the first failure in scene
  // order (then request order within a scene) wins, so error reporting is
  // as deterministic as the success path.
  size_t scenes_all_ok = 0;
  size_t scenes_any_failed = 0;
  for (size_t i = 0; i < scene_count; ++i) {
    bool any_failed = false;
    for (size_t a = 0; a < app_count; ++a) {
      const SceneOutcome& outcome = multi.reports[a].outcomes[i];
      if (outcome.ok()) {
        ++multi.reports[a].scenes_ok;
        continue;
      }
      if (batch.fail_fast) {
        // Name the scene so callers can tell which one sank the batch.
        return Status(outcome.status.code(),
                      "scene '" + outcome.scene_name +
                          "': " + outcome.status.message());
      }
      ++multi.reports[a].scenes_failed;
      ++multi.reports[a].scenes_quarantined;
      any_failed = true;
    }
    if (any_failed) {
      ++scenes_any_failed;
    } else {
      ++scenes_all_ok;
    }
  }

  if (collect) {
    for (const obs::PipelineMetrics& m : scene_metrics) {
      multi.metrics.MergeFrom(m);
    }
    // Scene-granularity batch counters: a scene counts as ok only when
    // every application ranked it (equals the per-app counters for a
    // single-application run).
    multi.metrics.counters["batch.scenes"] += scene_count;
    multi.metrics.counters["batch.scenes_ok"] += scenes_all_ok;
    multi.metrics.counters["batch.scenes_failed"] += scenes_any_failed;
    multi.metrics.counters["batch.scenes_quarantined"] += scenes_any_failed;
    multi.metrics.timers_ms["batch.total"] = total_timer.ElapsedMs();
    multi.metrics.gauges["batch.threads"] =
        static_cast<double>(parallel ? threads : 1);
    double scene_ms_max = 0.0;
    for (const SceneOutcome& outcome : multi.reports.front().outcomes) {
      scene_ms_max = std::max(scene_ms_max, outcome.wall_ms);
    }
    multi.metrics.gauges["batch.scene_ms_max"] = scene_ms_max;
  }
  return multi;
}

Result<BatchReport> Fixy::RankDataset(const Dataset& dataset, Application app,
                                      const BatchOptions& batch) const {
  FIXY_ASSIGN_OR_RETURN(MultiAppReport multi,
                        RankDataset(dataset, {ApplicationName(app)}, batch));
  BatchReport report = std::move(multi.reports.front());
  report.metrics = std::move(multi.metrics);
  return report;
}

Result<MultiAppReport> Fixy::RankDatasetStreaming(
    const SceneSource& source, const std::vector<std::string>& apps,
    const BatchOptions& batch, const StreamOptions& stream) const {
  FIXY_ASSIGN_OR_RETURN(RunPlan plan, PlanRun(apps));

  const size_t scene_count = source.scene_count();
  const size_t app_count = plan.app_indices.size();
  MultiAppReport multi;
  multi.apps.reserve(app_count);
  for (const size_t idx : plan.app_indices) {
    multi.apps.push_back(registry_.apps()[idx].name);
  }
  multi.reports.resize(app_count);
  for (BatchReport& report : multi.reports) {
    report.outcomes.resize(scene_count);
  }

  const bool collect = batch.collect_metrics;
  const obs::StageTimer total_timer;
  // Two collectors per scene — one filled by the loader that decodes it,
  // one by the worker that ranks it — merged back in dataset order, so
  // every counter total is byte-identical at any decode/rank thread
  // combination (same scheme as RankDataset).
  std::vector<obs::PipelineMetrics> scene_metrics(collect ? scene_count : 0);

  const int rank_threads = ThreadPool::ResolveThreadCount(batch.num_threads);
  const int decode_threads = std::max(1, stream.decode_threads);
  const size_t queue_capacity =
      stream.queue_capacity != 0 ? stream.queue_capacity
                                 : static_cast<size_t>(rank_threads) * 2;

  // A decoded (or failed-to-decode) scene in flight between the loader
  // pool and the rank workers. Each scene is decoded once however many
  // applications rank it.
  struct WorkItem {
    size_t index;
    Result<Scene> scene;
  };
  const int stall_ms = stream.stall_timeout_ms;
  // Everything a decode task touches after a stall abort must live on the
  // heap, shared with the task: if the run is declared stalled, the
  // decode pool is abandoned un-joined and its threads may still run.
  // (`source` is the one caller-owned exception — see StreamOptions.)
  struct StreamContext {
    StreamContext(size_t capacity, size_t metric_slots, size_t resident_limit)
        : queue(capacity),
          decode_metrics(metric_slots),
          resident_limit(resident_limit) {}
    BoundedQueue<WorkItem> queue;
    std::vector<obs::PipelineMetrics> decode_metrics;
    std::atomic<bool> cancelled{false};
    std::atomic<bool> stalled{false};

    // Residency gate (StreamOptions::max_resident_scenes): loaders take a
    // permit before decoding; the permit is freed when a rank worker
    // claims the scene. Limit 0 never blocks but still tracks the peak.
    const size_t resident_limit;
    std::mutex resident_mu;
    std::condition_variable resident_cv;
    size_t resident_now = 0;
    size_t resident_peak = 0;
    bool resident_closed = false;

    /// Blocks until a permit frees up; false once the gate is closed
    /// (stall shutdown), so a parked loader can bow out.
    bool AcquireResident() {
      std::unique_lock<std::mutex> lock(resident_mu);
      resident_cv.wait(lock, [this] {
        return resident_closed || resident_limit == 0 ||
               resident_now < resident_limit;
      });
      if (resident_closed) return false;
      ++resident_now;
      resident_peak = std::max(resident_peak, resident_now);
      return true;
    }
    void ReleaseResident() {
      {
        const std::lock_guard<std::mutex> lock(resident_mu);
        --resident_now;
      }
      resident_cv.notify_one();
    }
    void CloseResident() {
      {
        const std::lock_guard<std::mutex> lock(resident_mu);
        resident_closed = true;
      }
      resident_cv.notify_all();
    }
    size_t ResidentPeak() {
      const std::lock_guard<std::mutex> lock(resident_mu);
      return resident_peak;
    }
  };
  auto ctx = std::make_shared<StreamContext>(
      queue_capacity, collect ? scene_count : 0, stream.max_resident_scenes);
  BoundedQueue<WorkItem>& queue = ctx->queue;

  // Loader side: decode scene i and push it. Push blocks when the queue
  // is full — that back-pressure is what bounds ingestion memory — and
  // the residency gate is taken before the decode even starts, so a
  // loader blocked on a full queue still counts against the ceiling.
  // Captures ctx by value so abandoned tasks stay memory-safe.
  auto decode_one = [collect, &source, ctx](size_t i) {
    if (ctx->cancelled.load(std::memory_order_relaxed)) return;
    if (!ctx->AcquireResident()) return;
    obs::MetricsCollector decode_collector;
    const obs::MetricsScope scope(collect ? &decode_collector : nullptr);
    Result<Scene> scene = source.DecodeScene(i);
    if (collect) ctx->decode_metrics[i] = decode_collector.Snapshot();
    ctx->queue.Push(WorkItem{i, std::move(scene)});
  };

  // The pop the rank workers use: plain blocking Pop without a stall
  // deadline; with one, a queue empty for stall_ms flags the run as
  // stalled and the worker bows out (the flag, not the worker, fails the
  // run — items never sit unclaimed, because a timeout can only fire on
  // an empty queue). A claimed scene frees its residency permit: it now
  // belongs to the rank worker, not the ingestion window.
  auto pop_item = [ctx, stall_ms]() -> std::optional<WorkItem> {
    std::optional<WorkItem> item;
    if (stall_ms <= 0) {
      item = ctx->queue.Pop();
    } else {
      switch (ctx->queue.PopWithTimeout(stall_ms, &item)) {
        case BoundedQueue<WorkItem>::PopStatus::kItem:
          break;
        case BoundedQueue<WorkItem>::PopStatus::kClosed:
          return std::nullopt;
        case BoundedQueue<WorkItem>::PopStatus::kTimeout:
          ctx->stalled.store(true, std::memory_order_relaxed);
          return std::nullopt;
      }
    }
    if (item.has_value()) ctx->ReleaseResident();
    return item;
  };

  // Rank side: long-lived workers popping until the queue is closed and
  // drained. Outcomes land in pre-assigned slots, so arrival order —
  // which varies with scheduling — cannot reorder the report. A decode
  // failure flows through as every application's outcome Status for that
  // scene, exactly like a ranking failure.
  auto rank_worker = [this, collect, &plan, &source, &multi, &scene_metrics,
                      &pop_item] {
    for (;;) {
      const obs::StageTimer wait_timer;
      std::optional<WorkItem> item = pop_item();
      if (!item.has_value()) return;  // closed and drained, or stalled
      const uint64_t wait_ns = wait_timer.ElapsedNs();
      const size_t i = item->index;
      obs::MetricsCollector scene_collector;
      const obs::MetricsScope scope(collect ? &scene_collector : nullptr);
      const obs::StageTimer scene_timer;
      if (!item->scene.ok()) {
        for (BatchReport& report : multi.reports) {
          report.outcomes[i].scene_name = source.scene_name(i);
          report.outcomes[i].status = item->scene.status();
        }
      } else {
        RankSceneApps(plan, item->scene.value(), multi.reports, i);
      }
      if (collect) {
        const uint64_t wall_ns = scene_timer.ElapsedNs();
        const double wall_ms = static_cast<double>(wall_ns) * 1e-6;
        for (BatchReport& report : multi.reports) {
          report.outcomes[i].wall_ms = wall_ms;
        }
        scene_collector.Count("span.scene.calls");
        scene_collector.AddTimeNs("span.scene", wall_ns);
        // The streaming path's wait is the pop on the decode→rank queue;
        // batch.queue_wait is recorded at zero so the snapshot key set
        // matches the non-streaming path.
        scene_collector.AddTimeNs("io.fxb.queue_wait", wait_ns);
        scene_collector.AddTimeNs("batch.queue_wait", 0);
        scene_metrics[i] = scene_collector.Snapshot();
      }
    }
  };

  {
    // Rank workers first so consumers exist before the first Push can
    // fill the queue; the loader pool drains itself before Close().
    ThreadPool rank_pool(rank_threads);
    std::vector<std::future<void>> rank_futures;
    rank_futures.reserve(static_cast<size_t>(rank_threads));
    for (int t = 0; t < rank_threads; ++t) {
      rank_futures.push_back(rank_pool.Submit(rank_worker));
    }
    // The decode pool is abandoned (not destroyed) when the run stalls:
    // its destructor would join the wedged thread and hang forever.
    auto decode_pool = std::make_unique<ThreadPool>(decode_threads);
    std::vector<std::future<void>> decode_futures;
    decode_futures.reserve(scene_count);
    for (size_t i = 0; i < scene_count; ++i) {
      // decode_one copied by value: the task owns its ctx reference.
      decode_futures.push_back(
          decode_pool->Submit([decode_one, i] { decode_one(i); }));
    }
    bool stalled = false;
    if (stall_ms <= 0) {
      for (std::future<void>& future : decode_futures) future.get();
    } else {
      for (std::future<void>& future : decode_futures) {
        while (future.wait_for(std::chrono::milliseconds(50)) ==
               std::future_status::timeout) {
          if (ctx->stalled.load(std::memory_order_relaxed)) {
            stalled = true;
            break;
          }
        }
        if (stalled) break;
      }
    }
    if (stalled) {
      // Tell queued decode tasks to skip, unblock decoders mid-Push and
      // rank workers mid-Pop, then abandon the pool: every thread but the
      // wedged one winds down promptly, and the wedged one parks on the
      // leaked pool holding only ctx (and the caller's source) alive.
      ctx->cancelled.store(true, std::memory_order_relaxed);
      ctx->CloseResident();
      queue.Close();
      (void)decode_pool.release();
      for (std::future<void>& future : rank_futures) future.get();
      return Status::Internal(
          "streaming rank stalled: no scene reached a rank worker for over " +
          std::to_string(stall_ms) +
          " ms with decodes outstanding (wedged decode worker?)");
    }
    decode_pool.reset();  // drains and joins normally
    queue.Close();
    for (std::future<void>& future : rank_futures) future.get();
  }

  // Same summary pass and fail-fast contract as RankDataset: the first
  // failure in dataset order (then request order) wins.
  size_t scenes_all_ok = 0;
  size_t scenes_any_failed = 0;
  for (size_t i = 0; i < scene_count; ++i) {
    bool any_failed = false;
    for (size_t a = 0; a < app_count; ++a) {
      const SceneOutcome& outcome = multi.reports[a].outcomes[i];
      if (outcome.ok()) {
        ++multi.reports[a].scenes_ok;
        continue;
      }
      if (batch.fail_fast) {
        return Status(outcome.status.code(),
                      "scene '" + outcome.scene_name +
                          "': " + outcome.status.message());
      }
      ++multi.reports[a].scenes_failed;
      ++multi.reports[a].scenes_quarantined;
      any_failed = true;
    }
    if (any_failed) {
      ++scenes_any_failed;
    } else {
      ++scenes_all_ok;
    }
  }

  if (collect) {
    for (size_t i = 0; i < scene_count; ++i) {
      multi.metrics.MergeFrom(ctx->decode_metrics[i]);
      multi.metrics.MergeFrom(scene_metrics[i]);
    }
    multi.metrics.counters["batch.scenes"] += scene_count;
    multi.metrics.counters["batch.scenes_ok"] += scenes_all_ok;
    multi.metrics.counters["batch.scenes_failed"] += scenes_any_failed;
    multi.metrics.counters["batch.scenes_quarantined"] += scenes_any_failed;
    multi.metrics.timers_ms["batch.total"] = total_timer.ElapsedMs();
    multi.metrics.gauges["batch.threads"] = static_cast<double>(rank_threads);
    multi.metrics.gauges["stream.resident_scenes_peak"] =
        static_cast<double>(ctx->ResidentPeak());
    double scene_ms_max = 0.0;
    for (const SceneOutcome& outcome : multi.reports.front().outcomes) {
      scene_ms_max = std::max(scene_ms_max, outcome.wall_ms);
    }
    multi.metrics.gauges["batch.scene_ms_max"] = scene_ms_max;
  }
  return multi;
}

Result<BatchReport> Fixy::RankDatasetStreaming(
    const SceneSource& source, Application app, const BatchOptions& batch,
    const StreamOptions& stream) const {
  FIXY_ASSIGN_OR_RETURN(
      MultiAppReport multi,
      RankDatasetStreaming(source, {ApplicationName(app)}, batch, stream));
  BatchReport report = std::move(multi.reports.front());
  report.metrics = std::move(multi.metrics);
  return report;
}

}  // namespace fixy
