#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/features_std.h"
#include "core/model_io.h"

namespace fixy {

Fixy::Fixy(FixyOptions options) : options_(std::move(options)) {}

Status Fixy::Learn(const Dataset& training) {
  const obs::ScopedStageTimer learn_timer("learn.total");
  // Standard learned features (Table 2): class-conditional volume and
  // velocity, plus any user-provided extras.
  std::vector<FeaturePtr> features;
  features.push_back(std::make_shared<VolumeFeature>());
  features.push_back(std::make_shared<VelocityFeature>());
  for (const FeaturePtr& extra : options_.extra_features) {
    features.push_back(extra);
  }
  const DistributionLearner learner(options_.learner);
  FIXY_ASSIGN_OR_RETURN(learned_base_, learner.Learn(training, features));

  // Track-count distribution for the model-error application: counts are
  // discrete, so fit a categorical regardless of the main estimator.
  LearnerOptions count_options = options_.learner;
  count_options.estimator = EstimatorKind::kCategorical;
  const DistributionLearner count_learner(count_options);
  FIXY_ASSIGN_OR_RETURN(
      std::vector<FeatureDistribution> count_fd,
      count_learner.Learn(training, {std::make_shared<CountFeature>()}));

  learned_with_count_ = learned_base_;
  learned_with_count_.push_back(std::move(count_fd.front()));
  learned_flag_ = true;
  RebuildSpecs();
  return Status::Ok();
}

Status Fixy::SaveModel(const std::string& path) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  // learned_with_count_ = learned_base_ + the track-count distribution, so
  // serializing it captures the full learned state.
  return SaveLearnedModel(learned_with_count_, path);
}

Status Fixy::LoadModel(const std::string& path) {
  FeatureRegistry registry = FeatureRegistry::Standard();
  for (const FeaturePtr& extra : options_.extra_features) {
    registry.Register(extra);
  }
  FIXY_ASSIGN_OR_RETURN(learned_with_count_,
                        LoadLearnedModel(path, registry));
  // Split the count distribution back out: the label-error applications
  // use the manual count *filter* instead of the learned distribution.
  learned_base_.clear();
  bool has_count = false;
  for (const FeatureDistribution& fd : learned_with_count_) {
    if (fd.feature().kind() == FeatureKind::kTrack &&
        fd.feature().name() == "count") {
      has_count = true;
    } else {
      learned_base_.push_back(fd);
    }
  }
  if (!has_count) {
    learned_base_.clear();
    learned_with_count_.clear();
    return Status::InvalidArgument(
        "model file is missing the learned 'count' distribution");
  }
  learned_flag_ = true;
  RebuildSpecs();
  return Status::Ok();
}

void Fixy::RebuildSpecs() {
  const obs::ScopedStageTimer timer("learn.rebuild_specs");
  missing_tracks_spec_ =
      BuildMissingTracksSpec(learned_base_, options_.application);
  missing_observations_spec_ =
      BuildMissingObservationsSpec(learned_base_, options_.application);
  model_errors_spec_ = BuildModelErrorsSpec(learned_with_count_);
}

Status Fixy::CheckLearned() const {
  if (!learned_flag_) {
    return Status::FailedPrecondition(
        "Fixy::Learn() must succeed before ranking errors");
  }
  return Status::Ok();
}

Result<std::vector<ErrorProposal>> Fixy::FindMissingTracks(
    const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  return fixy::FindMissingTracks(scene, missing_tracks_spec_,
                                 options_.application);
}

Result<std::vector<ErrorProposal>> Fixy::FindMissingObservations(
    const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  return fixy::FindMissingObservations(scene, missing_observations_spec_,
                                       options_.application);
}

Result<std::vector<ErrorProposal>> Fixy::FindModelErrors(
    const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  return fixy::FindModelErrors(scene, model_errors_spec_,
                               options_.application);
}

Result<std::vector<ErrorProposal>> Fixy::RankScene(const Scene& scene,
                                                   Application app) const {
  switch (app) {
    case Application::kMissingTracks:
      return fixy::FindMissingTracks(scene, missing_tracks_spec_,
                                     options_.application);
    case Application::kMissingObservations:
      return fixy::FindMissingObservations(scene, missing_observations_spec_,
                                           options_.application);
    case Application::kModelErrors:
      return fixy::FindModelErrors(scene, model_errors_spec_,
                                   options_.application);
  }
  return Status::InvalidArgument("unknown application");
}

Result<BatchReport> Fixy::RankDataset(const Dataset& dataset, Application app,
                                      const BatchOptions& batch) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());

  const size_t scene_count = dataset.scenes.size();
  BatchReport report;
  report.outcomes.resize(scene_count);

  const bool collect = batch.collect_metrics;
  const obs::StageTimer total_timer;
  // One collector per scene, touched only by the worker that ranks the
  // scene: counters are exact per-scene event counts, and merging the
  // snapshots back in dataset order afterwards makes the batch totals
  // byte-identical at every thread count. With metrics off, a null scope
  // is installed instead so an ambient caller-installed collector sees
  // the same (empty) contribution from the serial and parallel paths.
  std::vector<obs::PipelineMetrics> scene_metrics(collect ? scene_count : 0);

  // Each scene is scored independently against the shared immutable specs,
  // so outcomes land in pre-assigned slots and the merged output is
  // identical for any thread count. The online phase draws no randomness;
  // any per-scene variation comes only from the scene itself. A failing
  // scene writes only its own slot, so it cannot poison its neighbours.
  auto rank_into_slot = [this, app, collect, &dataset, &report,
                         &scene_metrics](size_t i, uint64_t queue_wait_ns) {
    obs::MetricsCollector scene_collector;
    const obs::MetricsScope scope(collect ? &scene_collector : nullptr);
    const obs::StageTimer scene_timer;
    SceneOutcome& outcome = report.outcomes[i];
    outcome.scene_name = dataset.scenes[i].name();
    Result<std::vector<ErrorProposal>> proposals =
        RankScene(dataset.scenes[i], app);
    if (proposals.ok()) {
      outcome.proposals = std::move(proposals).value();
    } else {
      outcome.status = proposals.status();
    }
    if (collect) {
      const uint64_t wall_ns = scene_timer.ElapsedNs();
      outcome.wall_ms = static_cast<double>(wall_ns) * 1e-6;
      scene_collector.Count("span.scene.calls");
      scene_collector.AddTimeNs("span.scene", wall_ns);
      // Recorded even when zero (the serial path) so the snapshot schema
      // does not depend on the thread count.
      scene_collector.AddTimeNs("batch.queue_wait", queue_wait_ns);
      scene_metrics[i] = scene_collector.Snapshot();
    }
  };

  const int threads = ThreadPool::ResolveThreadCount(batch.num_threads);
  const bool parallel = threads > 1 && scene_count > 1;
  if (!parallel) {
    // Serial reference path: no pool, calling thread only.
    for (size_t i = 0; i < scene_count; ++i) rank_into_slot(i, 0);
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<void>> futures;
    futures.reserve(scene_count);
    for (size_t i = 0; i < scene_count; ++i) {
      const auto enqueued = std::chrono::steady_clock::now();
      futures.push_back(pool.Submit([&rank_into_slot, i, enqueued] {
        const auto waited = std::chrono::steady_clock::now() - enqueued;
        rank_into_slot(
            i, static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                       .count()));
      }));
    }
    for (std::future<void>& future : futures) future.get();
  }

  // Summary pass, and the fail-fast contract: the first failure in scene
  // order wins, so error reporting is as deterministic as the success path.
  for (const SceneOutcome& outcome : report.outcomes) {
    if (outcome.ok()) {
      ++report.scenes_ok;
      continue;
    }
    if (batch.fail_fast) {
      // Name the scene so callers can tell which one sank the batch.
      return Status(outcome.status.code(),
                    "scene '" + outcome.scene_name +
                        "': " + outcome.status.message());
    }
    ++report.scenes_failed;
    ++report.scenes_quarantined;
  }

  if (collect) {
    for (const obs::PipelineMetrics& m : scene_metrics) {
      report.metrics.MergeFrom(m);
    }
    report.metrics.counters["batch.scenes"] += scene_count;
    report.metrics.counters["batch.scenes_ok"] += report.scenes_ok;
    report.metrics.counters["batch.scenes_failed"] += report.scenes_failed;
    report.metrics.counters["batch.scenes_quarantined"] +=
        report.scenes_quarantined;
    report.metrics.timers_ms["batch.total"] = total_timer.ElapsedMs();
    report.metrics.gauges["batch.threads"] =
        static_cast<double>(parallel ? threads : 1);
    double scene_ms_max = 0.0;
    for (const SceneOutcome& outcome : report.outcomes) {
      scene_ms_max = std::max(scene_ms_max, outcome.wall_ms);
    }
    report.metrics.gauges["batch.scene_ms_max"] = scene_ms_max;
  }
  return report;
}

}  // namespace fixy
