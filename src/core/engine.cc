#include "core/engine.h"

#include "common/macros.h"
#include "core/features_std.h"
#include "core/model_io.h"

namespace fixy {

Fixy::Fixy(FixyOptions options) : options_(std::move(options)) {}

Status Fixy::Learn(const Dataset& training) {
  // Standard learned features (Table 2): class-conditional volume and
  // velocity, plus any user-provided extras.
  std::vector<FeaturePtr> features;
  features.push_back(std::make_shared<VolumeFeature>());
  features.push_back(std::make_shared<VelocityFeature>());
  for (const FeaturePtr& extra : options_.extra_features) {
    features.push_back(extra);
  }
  const DistributionLearner learner(options_.learner);
  FIXY_ASSIGN_OR_RETURN(learned_base_, learner.Learn(training, features));

  // Track-count distribution for the model-error application: counts are
  // discrete, so fit a categorical regardless of the main estimator.
  LearnerOptions count_options = options_.learner;
  count_options.estimator = EstimatorKind::kCategorical;
  const DistributionLearner count_learner(count_options);
  FIXY_ASSIGN_OR_RETURN(
      std::vector<FeatureDistribution> count_fd,
      count_learner.Learn(training, {std::make_shared<CountFeature>()}));

  learned_with_count_ = learned_base_;
  learned_with_count_.push_back(std::move(count_fd.front()));
  learned_flag_ = true;
  return Status::Ok();
}

Status Fixy::SaveModel(const std::string& path) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  // learned_with_count_ = learned_base_ + the track-count distribution, so
  // serializing it captures the full learned state.
  return SaveLearnedModel(learned_with_count_, path);
}

Status Fixy::LoadModel(const std::string& path) {
  FeatureRegistry registry = FeatureRegistry::Standard();
  for (const FeaturePtr& extra : options_.extra_features) {
    registry.Register(extra);
  }
  FIXY_ASSIGN_OR_RETURN(learned_with_count_,
                        LoadLearnedModel(path, registry));
  // Split the count distribution back out: the label-error applications
  // use the manual count *filter* instead of the learned distribution.
  learned_base_.clear();
  bool has_count = false;
  for (const FeatureDistribution& fd : learned_with_count_) {
    if (fd.feature().kind() == FeatureKind::kTrack &&
        fd.feature().name() == "count") {
      has_count = true;
    } else {
      learned_base_.push_back(fd);
    }
  }
  if (!has_count) {
    learned_base_.clear();
    learned_with_count_.clear();
    return Status::InvalidArgument(
        "model file is missing the learned 'count' distribution");
  }
  learned_flag_ = true;
  return Status::Ok();
}

Status Fixy::CheckLearned() const {
  if (!learned_flag_) {
    return Status::FailedPrecondition(
        "Fixy::Learn() must succeed before ranking errors");
  }
  return Status::Ok();
}

Result<std::vector<ErrorProposal>> Fixy::FindMissingTracks(
    const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  return fixy::FindMissingTracks(scene, learned_base_, options_.application);
}

Result<std::vector<ErrorProposal>> Fixy::FindMissingObservations(
    const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  return fixy::FindMissingObservations(scene, learned_base_,
                                       options_.application);
}

Result<std::vector<ErrorProposal>> Fixy::FindModelErrors(
    const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(CheckLearned());
  return fixy::FindModelErrors(scene, learned_with_count_,
                               options_.application);
}

}  // namespace fixy
