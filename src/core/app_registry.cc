#include "core/app_registry.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "core/applications.h"

namespace fixy {

namespace {

std::string JoinNames(const std::vector<AppSpec>& apps) {
  std::string joined;
  for (const AppSpec& app : apps) {
    if (!joined.empty()) joined += ", ";
    joined += app.name;
  }
  return joined;
}

}  // namespace

ApplicationRegistry ApplicationRegistry::Standard() {
  ApplicationRegistry registry;
  // Canonical order — Application enum values index into this.
  (void)registry.Register(MissingTracksApp());
  (void)registry.Register(MissingObservationsApp());
  (void)registry.Register(ModelErrorsApp());
  return registry;
}

Status ApplicationRegistry::Register(AppSpec app) {
  if (app.name.empty()) {
    return Status::InvalidArgument("application name must be non-empty");
  }
  for (const char c : app.name) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          "application name '" + app.name +
          "' must not contain whitespace or commas (--apps splits on them)");
    }
  }
  if (app.build_spec == nullptr || app.extract == nullptr) {
    return Status::InvalidArgument("application '" + app.name +
                                   "' is missing a strategy "
                                   "(build_spec and extract are required)");
  }
  if (Find(app.name) != nullptr) {
    return Status::AlreadyExists("application '" + app.name +
                                 "' is already registered");
  }
  apps_.push_back(std::move(app));
  return Status::Ok();
}

std::vector<std::string> ApplicationRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(apps_.size());
  for (const AppSpec& app : apps_) out.push_back(app.name);
  return out;
}

const AppSpec* ApplicationRegistry::Find(const std::string& name) const {
  for (const AppSpec& app : apps_) {
    if (app.name == name) return &app;
  }
  return nullptr;
}

Result<std::vector<size_t>> ApplicationRegistry::Resolve(
    const std::vector<std::string>& names) const {
  if (names.empty()) {
    return Status::InvalidArgument("no applications requested");
  }
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    const AppSpec* app = Find(name);
    if (app == nullptr) {
      return Status::InvalidArgument("unknown application '" + name +
                                     "' (registered: " + JoinNames(apps_) +
                                     ")");
    }
    const size_t index = static_cast<size_t>(app - apps_.data());
    if (std::find(indices.begin(), indices.end(), index) != indices.end()) {
      return Status::InvalidArgument("application '" + name +
                                     "' requested more than once");
    }
    indices.push_back(index);
  }
  return indices;
}

}  // namespace fixy
