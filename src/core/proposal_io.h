// Serialization of ranked error proposals — the artifact handed from the
// ranking pipeline to audit tooling ("flag problematic data ... so an
// expert auditor can verify", Sections 2-3).
#ifndef FIXY_CORE_PROPOSAL_IO_H_
#define FIXY_CORE_PROPOSAL_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/proposal.h"
#include "json/json.h"

namespace fixy {

/// Serializes a ranked proposal list (order preserved).
json::Value ProposalsToJson(const std::vector<ErrorProposal>& proposals);

/// Parses a document written by ProposalsToJson.
Result<std::vector<ErrorProposal>> ProposalsFromJson(
    const json::Value& value);

/// File-level convenience wrappers.
Status SaveProposals(const std::vector<ErrorProposal>& proposals,
                     const std::string& path);
Result<std::vector<ErrorProposal>> LoadProposals(const std::string& path);

}  // namespace fixy

#endif  // FIXY_CORE_PROPOSAL_IO_H_
