// Offline distribution learning (Section 5.2 of the paper): "Fixy first
// exhaustively generates the features over the data and collects the scalar
// values. Then, for each feature, Fixy executes the fitting function over
// the values."
//
// The learner consumes existing organizational resources — the (possibly
// noisy) human labels already present in a training dataset — and fits one
// distribution per feature (per object class for class-conditional
// features).
#ifndef FIXY_CORE_LEARNER_H_
#define FIXY_CORE_LEARNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/scene.h"
#include "dsl/feature_distribution.h"
#include "dsl/track_builder.h"
#include "stats/sufficient.h"

namespace fixy {

/// Which estimator the learner fits for learned features. The paper's
/// default is KDE; the others exist for the estimator ablation.
enum class EstimatorKind {
  kKde = 0,
  kHistogram = 1,
  kGaussian = 2,
  /// Add-one-smoothed categorical over rounded values; for inherently
  /// discrete features such as track observation counts.
  kCategorical = 3,
};

const char* EstimatorKindToString(EstimatorKind kind);

/// Inverse of EstimatorKindToString. Errors: InvalidArgument for an
/// unknown name.
Result<EstimatorKind> EstimatorKindFromString(const std::string& name);

struct LearnerOptions {
  EstimatorKind estimator = EstimatorKind::kKde;

  /// Observation source the distributions are learned from. The paper
  /// learns from already-present (human) labels.
  ObservationSource source = ObservationSource::kHuman;

  /// Learn from every source instead of `source` alone. Required for
  /// cross-source bundle features such as class agreement ("consistency
  /// between observations of the same object in a single time step",
  /// Section 5.1), whose bundles only exist when sources are combined.
  bool all_sources = false;

  /// Minimum sample count required to fit a distribution. Classes with
  /// fewer samples get no distribution (elements of that class contribute
  /// no factor for the feature).
  size_t min_samples = 5;

  /// How training observations are assembled into tracks before feature
  /// extraction.
  TrackBuilderOptions track_builder;

  /// Capacity of the per-(feature, class) sample reservoir the KDE
  /// estimator's sufficient statistics keep (stats/sufficient.h). While a
  /// stream fits inside the reservoir the incremental fit is exactly the
  /// full fit; past it the KDE is fit from a uniform subsample and
  /// incremental-vs-refit divergence is bounded (DESIGN.md §14).
  uint64_t kde_reservoir_capacity = stats::kDefaultReservoirCapacity;

  /// Seed of the reservoirs' counter-based randomness. Part of the
  /// persisted model: reloading and folding more scenes continues the
  /// exact subsampling stream.
  uint64_t kde_reservoir_seed = 0;
};

/// Mergeable sufficient statistics of one value stream (one feature, one
/// class slot). Only the member the estimator needs is populated: moments
/// for Gaussian, the value multiset for histogram/categorical, the
/// reservoir for KDE.
struct SampleStats {
  stats::MomentStats moments;
  stats::ValueCounts counts;
  stats::ValueReservoir reservoir;

  /// Total values ever folded in, whatever the estimator.
  uint64_t n(EstimatorKind kind) const;
  void Add(double x, EstimatorKind kind);

  bool operator==(const SampleStats&) const = default;
};

/// Sufficient statistics for one learned feature, from which its
/// FeatureDistribution materializes.
struct FeatureStats {
  EstimatorKind estimator = EstimatorKind::kKde;
  bool class_conditional = false;
  /// Used when !class_conditional.
  SampleStats global;
  /// Every class with at least one training sample is tracked — including
  /// classes still below min_samples, so a later fold can push them over
  /// the threshold and materialize a distribution for them.
  std::map<ObjectClass, SampleStats> per_class;

  bool operator==(const FeatureStats&) const = default;
};

/// A learned model together with the statistics it materialized from.
/// `stats` is parallel to `distributions`; keeping both lets
/// Fixy::LearnIncremental fold new scenes in and re-materialize without a
/// full refit.
struct LearnedFeatureSet {
  std::vector<FeatureDistribution> distributions;
  std::vector<FeatureStats> stats;
};

/// Learns feature distributions for the given features from a training
/// dataset.
class DistributionLearner {
 public:
  explicit DistributionLearner(LearnerOptions options = {});

  /// Fits one FeatureDistribution per feature. Features whose values never
  /// materialize (or never reach min_samples for any class) produce an
  /// InvalidArgument error, since scoring with them would be vacuous.
  Result<std::vector<FeatureDistribution>> Learn(
      const Dataset& training, const std::vector<FeaturePtr>& features) const;

  /// Like Learn, but also returns the sufficient statistics each
  /// distribution was materialized from. Learn() is this with the stats
  /// discarded — both paths fold values into statistics and fit from
  /// them, so a model refit from its own stats is byte-identical.
  Result<LearnedFeatureSet> LearnWithStats(
      const Dataset& training, const std::vector<FeaturePtr>& features) const;

  /// Folds `delta`'s feature values into `state.stats` (in dataset order,
  /// the same order LearnWithStats would have consumed them) and
  /// re-materializes every distribution from the updated statistics.
  /// `features` must be the list `state` was learned with (same size and
  /// class-conditionality). On error `state` is left unchanged. Errors:
  /// InvalidArgument on a feature/stats shape mismatch or when a feature
  /// still has no class at min_samples after the fold.
  Status Fold(const Dataset& delta, const std::vector<FeaturePtr>& features,
              LearnedFeatureSet& state) const;

  /// Materializes one distribution per feature from previously collected
  /// statistics, enforcing min_samples exactly like Learn. Used to turn a
  /// deserialized stats set back into a scoreable model.
  Result<std::vector<FeatureDistribution>> Materialize(
      const std::vector<FeaturePtr>& features,
      const std::vector<FeatureStats>& stats) const;

  /// Collects the raw feature values for one feature over the dataset,
  /// keyed by object class (class-conditional features) or all under
  /// ObjectClass::kCar slot 0 semantics is avoided: non-class-conditional
  /// features return a single entry with nullopt key semantics via the
  /// `global` output. Exposed for tests and the ablation benches.
  struct CollectedValues {
    /// Values for non-class-conditional features.
    std::vector<double> global;
    /// Values per class for class-conditional features.
    std::map<ObjectClass, std::vector<double>> per_class;
  };
  Result<CollectedValues> CollectValues(const Dataset& training,
                                        const Feature& feature) const;

 private:
  /// A SampleStats seeded with this learner's reservoir configuration.
  SampleStats NewSampleStats() const;

  /// Fits one distribution from sufficient statistics (the kind decides
  /// which member is read).
  Result<stats::DistributionPtr> FitFromStats(const SampleStats& stats,
                                              EstimatorKind kind) const;

  /// Materializes one feature's distribution from its stats, enforcing
  /// min_samples per class (or globally) with Learn's error messages.
  Result<FeatureDistribution> MaterializeOne(const FeaturePtr& feature,
                                             const FeatureStats& stats) const;

  /// Fold's materialization: like Materialize(features, folded), but a
  /// (feature, class) cell whose statistics are unchanged from
  /// `state.stats` reuses the already-fitted distribution from
  /// `state.distributions` (a fit is a pure function of its stats, so the
  /// reuse is byte-identical), and the cells that did change are fitted
  /// in parallel. This is what makes folding a small delta cost the
  /// delta's cells, not a full re-fit of every distribution.
  Result<std::vector<FeatureDistribution>> MaterializeDelta(
      const std::vector<FeaturePtr>& features, const LearnedFeatureSet& state,
      const std::vector<FeatureStats>& folded) const;

  LearnerOptions options_;
};

}  // namespace fixy

#endif  // FIXY_CORE_LEARNER_H_
