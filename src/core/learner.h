// Offline distribution learning (Section 5.2 of the paper): "Fixy first
// exhaustively generates the features over the data and collects the scalar
// values. Then, for each feature, Fixy executes the fitting function over
// the values."
//
// The learner consumes existing organizational resources — the (possibly
// noisy) human labels already present in a training dataset — and fits one
// distribution per feature (per object class for class-conditional
// features).
#ifndef FIXY_CORE_LEARNER_H_
#define FIXY_CORE_LEARNER_H_

#include <vector>

#include "common/result.h"
#include "data/scene.h"
#include "dsl/feature_distribution.h"
#include "dsl/track_builder.h"

namespace fixy {

/// Which estimator the learner fits for learned features. The paper's
/// default is KDE; the others exist for the estimator ablation.
enum class EstimatorKind {
  kKde = 0,
  kHistogram = 1,
  kGaussian = 2,
  /// Add-one-smoothed categorical over rounded values; for inherently
  /// discrete features such as track observation counts.
  kCategorical = 3,
};

const char* EstimatorKindToString(EstimatorKind kind);

struct LearnerOptions {
  EstimatorKind estimator = EstimatorKind::kKde;

  /// Observation source the distributions are learned from. The paper
  /// learns from already-present (human) labels.
  ObservationSource source = ObservationSource::kHuman;

  /// Learn from every source instead of `source` alone. Required for
  /// cross-source bundle features such as class agreement ("consistency
  /// between observations of the same object in a single time step",
  /// Section 5.1), whose bundles only exist when sources are combined.
  bool all_sources = false;

  /// Minimum sample count required to fit a distribution. Classes with
  /// fewer samples get no distribution (elements of that class contribute
  /// no factor for the feature).
  size_t min_samples = 5;

  /// How training observations are assembled into tracks before feature
  /// extraction.
  TrackBuilderOptions track_builder;
};

/// Learns feature distributions for the given features from a training
/// dataset.
class DistributionLearner {
 public:
  explicit DistributionLearner(LearnerOptions options = {});

  /// Fits one FeatureDistribution per feature. Features whose values never
  /// materialize (or never reach min_samples for any class) produce an
  /// InvalidArgument error, since scoring with them would be vacuous.
  Result<std::vector<FeatureDistribution>> Learn(
      const Dataset& training, const std::vector<FeaturePtr>& features) const;

  /// Collects the raw feature values for one feature over the dataset,
  /// keyed by object class (class-conditional features) or all under
  /// ObjectClass::kCar slot 0 semantics is avoided: non-class-conditional
  /// features return a single entry with nullopt key semantics via the
  /// `global` output. Exposed for tests and the ablation benches.
  struct CollectedValues {
    /// Values for non-class-conditional features.
    std::vector<double> global;
    /// Values per class for class-conditional features.
    std::map<ObjectClass, std::vector<double>> per_class;
  };
  Result<CollectedValues> CollectValues(const Dataset& training,
                                        const Feature& feature) const;

 private:
  Result<stats::DistributionPtr> FitOne(std::vector<double> values) const;

  LearnerOptions options_;
};

}  // namespace fixy

#endif  // FIXY_CORE_LEARNER_H_
