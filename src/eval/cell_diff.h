// Metrics-diff reporting between two evaluation runs: a generic,
// grid-agnostic diff over named metric cells (row key -> metric -> value)
// that highlights changed, regressed, added, and removed cells. The
// scenario sweep harness feeds its per-cell precision@k/recall table
// through this to compare two sweep runs; the module itself knows nothing
// about scenarios, so any future grid (estimator ablations, bench
// baselines) can reuse it.
#ifndef FIXY_EVAL_CELL_DIFF_H_
#define FIXY_EVAL_CELL_DIFF_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace fixy::eval {

/// One row of a metrics grid: a stable key (e.g. "scenario/app") and its
/// metric values.
struct MetricCell {
  std::string row;
  std::map<std::string, double> values;
};

/// One metric that differs between base and current beyond tolerance.
struct CellChange {
  std::string row;
  std::string metric;
  double base = 0.0;
  double current = 0.0;
  double delta = 0.0;
  /// True when the metric has a quality direction (options.higher_is_better)
  /// and the current value is worse.
  bool regressed = false;
};

struct CellDiffOptions {
  /// Differences at or below this magnitude are noise, not changes.
  double tolerance = 1e-9;
  /// Metrics where larger is better; a drop beyond tolerance in one of
  /// these marks the change as a regression.
  std::set<std::string> higher_is_better;
};

struct CellDiffReport {
  /// Rows present only in current / only in base (sorted by row key).
  std::vector<std::string> added_rows;
  std::vector<std::string> removed_rows;
  /// Changed metrics, sorted by (row, metric).
  std::vector<CellChange> changes;
  size_t rows_compared = 0;

  bool Empty() const {
    return added_rows.empty() && removed_rows.empty() && changes.empty();
  }
  bool HasRegression() const {
    for (const CellChange& change : changes) {
      if (change.regressed) return true;
    }
    return false;
  }
};

/// Diffs `current` against `base`. Row keys match cells across the runs;
/// a metric present on one side only is treated as 0 on the other (counts
/// and rates both read naturally that way). Output ordering is
/// deterministic regardless of input order.
CellDiffReport DiffMetricCells(const std::vector<MetricCell>& base,
                               const std::vector<MetricCell>& current,
                               const CellDiffOptions& options = {});

/// Human-readable report: one line per added/removed row, then a table of
/// changed metrics with REGRESSED / improved / changed markers; "no
/// differences" when empty.
std::string FormatCellDiff(const CellDiffReport& report);

}  // namespace fixy::eval

#endif  // FIXY_EVAL_CELL_DIFF_H_
