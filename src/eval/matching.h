// Matching ranked error proposals against the simulator's ground-truth
// error ledger — the mechanical replacement for the paper's manual
// verification ("we manually checked the top 10 potential errors").
#ifndef FIXY_EVAL_MATCHING_H_
#define FIXY_EVAL_MATCHING_H_

#include "core/proposal.h"
#include "sim/ledger.h"

namespace fixy::eval {

struct MatchOptions {
  /// Minimum BEV IoU between the proposal's box and the error's box at the
  /// matched frame. Loose, because proposal boxes carry detector noise.
  double iou_threshold = 0.1;
  /// A proposal may sit this many frames outside the error's span.
  int frame_slack = 3;
  /// Precision protocol. The paper's auditors verify each flagged item
  /// independently, so two proposals flagging the same truly-missing
  /// object both count as real errors (one_to_one = false, the default).
  /// Set true for strict greedy one-to-one matching, where duplicates of
  /// an already-claimed error count as false positives.
  bool one_to_one = false;
};

/// True if `proposal`'s kind can claim `error`'s type:
///   kMissingTrack       -> kMissingTrack
///   kMissingObservation -> kMissingObservation
///   kModelError         -> kGhostTrack | kClassificationError |
///                          kLocalizationError
bool KindMatchesType(ProposalKind kind, sim::GtErrorType type);

/// True if `proposal` correctly identifies `error`: same scene, compatible
/// kind, overlapping frame spans (within slack), and geometric overlap at
/// the proposal's representative frame.
bool ProposalMatchesError(const ErrorProposal& proposal,
                          const sim::GtError& error,
                          const MatchOptions& options = {});

}  // namespace fixy::eval

#endif  // FIXY_EVAL_MATCHING_H_
