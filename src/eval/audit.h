// The expert-auditor loop of the paper's deployment (Section 2): auditors
// review Fixy's top-ranked proposals, verify which are real, and patch the
// label set. Here the ground-truth ledger plays the auditor; the output is
// a corrected scene with auditor-source observations added for every
// verified missing label, plus audit statistics.
//
// This closes the paper's workflow: rank -> audit -> corrected labels ->
// (re)train on higher-quality data.
#ifndef FIXY_EVAL_AUDIT_H_
#define FIXY_EVAL_AUDIT_H_

#include <vector>

#include "core/proposal.h"
#include "data/scene.h"
#include "eval/matching.h"
#include "sim/ledger.h"

namespace fixy::eval {

/// Result of auditing the top proposals of one scene.
struct AuditResult {
  /// The scene with auditor observations added for each verified error.
  Scene corrected_scene;
  /// Proposals reviewed (min(top_k, available)).
  size_t reviewed = 0;
  /// Proposals that identified a real error.
  size_t verified = 0;
  /// Distinct ledger errors fixed (a verified error may be flagged by
  /// several proposals but is fixed once).
  size_t errors_fixed = 0;
  /// Auditor observations added to the corrected scene.
  size_t observations_added = 0;

  double Yield() const {
    return reviewed > 0 ? static_cast<double>(verified) /
                              static_cast<double>(reviewed)
                        : 0.0;
  }
};

struct AuditOptions {
  /// How many top proposals the auditor reviews ("organizations have
  /// limited resources to evaluate potential errors").
  size_t top_k = 10;
  MatchOptions match;
};

/// Audits `ranked` (already sorted, most suspicious first) against the
/// scene's ledger entries and produces the corrected scene: every frame
/// box of each verified error is added as an ObservationSource::kAuditor
/// observation. Errors: FailedPrecondition if the scene fails validation.
Result<AuditResult> AuditScene(const Scene& scene,
                               const std::vector<ErrorProposal>& ranked,
                               const sim::GtLedger& ledger,
                               const AuditOptions& options = {});

}  // namespace fixy::eval

#endif  // FIXY_EVAL_AUDIT_H_
