#include "eval/matching.h"

#include <algorithm>
#include <cstdlib>

#include "geometry/iou.h"

namespace fixy::eval {

bool KindMatchesType(ProposalKind kind, sim::GtErrorType type) {
  switch (kind) {
    case ProposalKind::kMissingTrack:
      return type == sim::GtErrorType::kMissingTrack;
    case ProposalKind::kMissingObservation:
      return type == sim::GtErrorType::kMissingObservation;
    case ProposalKind::kModelError:
      return type == sim::GtErrorType::kGhostTrack ||
             type == sim::GtErrorType::kClassificationError ||
             type == sim::GtErrorType::kLocalizationError;
  }
  return false;
}

bool ProposalMatchesError(const ErrorProposal& proposal,
                          const sim::GtError& error,
                          const MatchOptions& options) {
  if (proposal.scene_name != error.scene_name) return false;
  if (!KindMatchesType(proposal.kind, error.type)) return false;
  // Frame spans must overlap within the slack.
  if (proposal.last_frame < error.first_frame - options.frame_slack ||
      proposal.first_frame > error.last_frame + options.frame_slack) {
    return false;
  }
  if (error.boxes.empty()) return false;
  // Compare against the error's box at the frame nearest the proposal's
  // representative frame.
  auto it = error.boxes.lower_bound(proposal.frame_index);
  const geom::Box3d* nearest = nullptr;
  int nearest_gap = 0;
  if (it != error.boxes.end()) {
    nearest = &it->second;
    nearest_gap = std::abs(it->first - proposal.frame_index);
  }
  if (it != error.boxes.begin()) {
    const auto prev = std::prev(it);
    const int gap = std::abs(prev->first - proposal.frame_index);
    if (nearest == nullptr || gap < nearest_gap) {
      nearest = &prev->second;
      nearest_gap = gap;
    }
  }
  if (nearest == nullptr) return false;
  // Allow a small temporal gap: boxes drift as objects move, so grow the
  // acceptance as distance-in-time grows is NOT done; instead require the
  // match frame to be reasonably close.
  if (nearest_gap > options.frame_slack + 2) return false;
  return geom::BevIou(proposal.box, *nearest) > options.iou_threshold;
}

}  // namespace fixy::eval
