#include "eval/dataset_stats.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "dsl/track_builder.h"

namespace fixy::eval {

Result<DatasetStats> ComputeDatasetStats(const Dataset& dataset) {
  DatasetStats result;
  result.scenes = dataset.scenes.size();

  std::array<std::vector<double>, kNumObjectClasses> volumes;
  std::array<std::vector<double>, kNumObjectClasses> speeds;

  const TrackBuilder builder;
  for (const Scene& scene : dataset.scenes) {
    FIXY_RETURN_IF_ERROR(scene.Validate());
    result.frames += scene.frame_count();
    result.total_duration_seconds += scene.DurationSeconds();
    for (const Frame& frame : scene.frames()) {
      for (const Observation& obs : frame.observations) {
        ++result.by_source[static_cast<size_t>(obs.source)];
        if (obs.source == ObservationSource::kHuman) {
          volumes[static_cast<size_t>(obs.object_class)].push_back(
              obs.box.Volume());
        }
      }
    }
    // Speed estimates from assembled human tracks.
    Scene human_only(scene.name(), scene.frame_rate_hz());
    for (const Frame& frame : scene.frames()) {
      Frame copy = frame;
      copy.observations.clear();
      for (const Observation& obs : frame.observations) {
        if (obs.source == ObservationSource::kHuman) {
          copy.observations.push_back(obs);
        }
      }
      human_only.AddFrame(std::move(copy));
    }
    FIXY_ASSIGN_OR_RETURN(TrackSet tracks, builder.Build(human_only));
    for (const Track& track : tracks.tracks) {
      const auto cls = track.MajorityClass();
      if (!cls.has_value()) continue;
      const auto& bundles = track.bundles();
      for (size_t b = 0; b + 1 < bundles.size(); ++b) {
        const double dt = bundles[b + 1].timestamp - bundles[b].timestamp;
        if (dt <= 0.0) continue;
        const double speed =
            (bundles[b + 1].MeanCenter().Xy() - bundles[b].MeanCenter().Xy())
                .Norm() /
            dt;
        speeds[static_cast<size_t>(*cls)].push_back(speed);
      }
    }
  }

  for (int c = 0; c < kNumObjectClasses; ++c) {
    ClassStats& cs = result.human_by_class[static_cast<size_t>(c)];
    cs.observations = volumes[static_cast<size_t>(c)].size();
    cs.volume = stats::Summarize(std::move(volumes[static_cast<size_t>(c)]));
    cs.speed = stats::Summarize(std::move(speeds[static_cast<size_t>(c)]));
  }
  return result;
}

std::string FormatDatasetStats(const DatasetStats& stats) {
  std::string out = StrFormat(
      "%zu scenes, %zu frames, %.1f s total\nobservations: human=%zu "
      "model=%zu auditor=%zu\n",
      stats.scenes, stats.frames, stats.total_duration_seconds,
      stats.by_source[0], stats.by_source[1], stats.by_source[2]);
  out += "human labels by class (volume m^3, speed m/s):\n";
  for (int c = 0; c < kNumObjectClasses; ++c) {
    const ClassStats& cs = stats.human_by_class[static_cast<size_t>(c)];
    out += StrFormat(
        "  %-11s n=%-6zu volume median %6.2f [%5.2f..%6.2f]  speed median "
        "%5.2f max %5.2f\n",
        ObjectClassToString(static_cast<ObjectClass>(c)), cs.observations,
        cs.volume.median, cs.volume.min, cs.volume.max, cs.speed.median,
        cs.speed.max);
  }
  return out;
}

}  // namespace fixy::eval
