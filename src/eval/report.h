// Plain-text table rendering for the benchmark harness: every bench prints
// the same rows the paper reports, side by side with the paper's numbers.
#ifndef FIXY_EVAL_REPORT_H_
#define FIXY_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace fixy::eval {

/// A simple fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns and a header rule.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "69%"-style formatting of a fraction in [0, 1].
std::string Percent(double fraction);

}  // namespace fixy::eval

#endif  // FIXY_EVAL_REPORT_H_
