// Precision@k and recall over ranked proposals, computed against the
// ground-truth ledger with greedy one-to-one matching in rank order.
#ifndef FIXY_EVAL_METRICS_H_
#define FIXY_EVAL_METRICS_H_

#include <vector>

#include "core/proposal.h"
#include "eval/matching.h"
#include "sim/ledger.h"

namespace fixy::eval {

struct PrecisionResult {
  /// hits / considered; 0 when nothing was considered.
  double precision = 0.0;
  size_t hits = 0;
  /// min(k, proposals available) — the paper uses the maximum available
  /// when fewer than k errors were flagged.
  size_t considered = 0;
};

/// Precision among the top k proposals: the fraction that correctly
/// identify a real error. By default (the paper's audit protocol) every
/// proposal matching a real error counts; with options.one_to_one each
/// ledger error can be claimed by at most one proposal (greedy in rank
/// order).
PrecisionResult PrecisionAtK(const std::vector<ErrorProposal>& ranked,
                             const std::vector<const sim::GtError*>& errors,
                             size_t k, const MatchOptions& options = {});

struct RecallResult {
  double recall = 0.0;
  size_t found = 0;
  size_t total = 0;
};

/// Fraction of `errors` matched by at least one proposal.
RecallResult RecallOf(const std::vector<ErrorProposal>& proposals,
                      const std::vector<const sim::GtError*>& errors,
                      const MatchOptions& options = {});

/// Filters a ledger down to the errors a proposal kind can claim, within
/// one scene (empty scene name = all scenes).
std::vector<const sim::GtError*> ClaimableErrors(
    const sim::GtLedger& ledger, ProposalKind kind,
    const std::string& scene_name = "");

/// True if any proposal in `proposals` matches `error`. Used for the
/// Section 8.4 protocol of excluding errors already caught by ad-hoc MAs.
bool AnyProposalMatches(const std::vector<ErrorProposal>& proposals,
                        const sim::GtError& error,
                        const MatchOptions& options = {});

}  // namespace fixy::eval

#endif  // FIXY_EVAL_METRICS_H_
