#include "eval/cell_diff.h"

#include <cmath>
#include <utility>

#include "common/string_util.h"
#include "eval/report.h"

namespace fixy::eval {

CellDiffReport DiffMetricCells(const std::vector<MetricCell>& base,
                               const std::vector<MetricCell>& current,
                               const CellDiffOptions& options) {
  // Index both sides by row key; maps also give the deterministic output
  // order whatever order the cells arrived in.
  std::map<std::string, const MetricCell*> base_rows;
  std::map<std::string, const MetricCell*> current_rows;
  for (const MetricCell& cell : base) base_rows[cell.row] = &cell;
  for (const MetricCell& cell : current) current_rows[cell.row] = &cell;

  CellDiffReport report;
  for (const auto& [row, cell] : current_rows) {
    if (base_rows.count(row) == 0) report.added_rows.push_back(row);
  }
  for (const auto& [row, base_cell] : base_rows) {
    const auto current_it = current_rows.find(row);
    if (current_it == current_rows.end()) {
      report.removed_rows.push_back(row);
      continue;
    }
    ++report.rows_compared;
    const MetricCell* current_cell = current_it->second;
    // Union of metric names, sorted; absent reads as 0.
    std::map<std::string, std::pair<double, double>> merged;
    for (const auto& [metric, value] : base_cell->values) {
      merged[metric].first = value;
    }
    for (const auto& [metric, value] : current_cell->values) {
      merged[metric].second = value;
    }
    for (const auto& [metric, values] : merged) {
      const double delta = values.second - values.first;
      if (std::abs(delta) <= options.tolerance) continue;
      CellChange change;
      change.row = row;
      change.metric = metric;
      change.base = values.first;
      change.current = values.second;
      change.delta = delta;
      change.regressed =
          options.higher_is_better.count(metric) > 0 && delta < 0.0;
      report.changes.push_back(std::move(change));
    }
  }
  return report;
}

std::string FormatCellDiff(const CellDiffReport& report) {
  if (report.Empty()) {
    return StrFormat("no differences (%zu cells compared)\n",
                     report.rows_compared);
  }
  std::string out;
  for (const std::string& row : report.added_rows) {
    out += "ADDED   " + row + "\n";
  }
  for (const std::string& row : report.removed_rows) {
    out += "REMOVED " + row + "\n";
  }
  if (!report.changes.empty()) {
    Table table({"cell", "metric", "base", "current", "delta", ""});
    size_t regressions = 0;
    for (const CellChange& change : report.changes) {
      if (change.regressed) ++regressions;
      table.AddRow({change.row, change.metric,
                    StrFormat("%.6g", change.base),
                    StrFormat("%.6g", change.current),
                    StrFormat("%+.6g", change.delta),
                    change.regressed ? "REGRESSED" : "changed"});
    }
    out += table.ToString();
    out += StrFormat("%zu changed metric(s), %zu regression(s), %zu cells "
                     "compared\n",
                     report.changes.size(), regressions,
                     report.rows_compared);
  } else {
    out += StrFormat("%zu cells compared\n", report.rows_compared);
  }
  return out;
}

}  // namespace fixy::eval
