#include "eval/report.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace fixy::eval {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Percent(double fraction) {
  return StrFormat("%.0f%%", 100.0 * fraction);
}

}  // namespace fixy::eval
