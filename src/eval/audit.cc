#include "eval/audit.h"

#include <algorithm>

#include "common/macros.h"

namespace fixy::eval {

Result<AuditResult> AuditScene(const Scene& scene,
                               const std::vector<ErrorProposal>& ranked,
                               const sim::GtLedger& ledger,
                               const AuditOptions& options) {
  FIXY_RETURN_IF_ERROR(scene.Validate());

  AuditResult result;
  result.corrected_scene = scene;

  const std::vector<const sim::GtError*> errors =
      ledger.ErrorsInScene(scene.name());

  // Next free observation id for the auditor labels.
  ObservationId next_id = 0;
  for (const Frame& frame : scene.frames()) {
    for (const Observation& obs : frame.observations) {
      next_id = std::max(next_id, obs.id + 1);
    }
  }

  std::vector<bool> fixed(errors.size(), false);
  result.reviewed = std::min(options.top_k, ranked.size());
  for (size_t i = 0; i < result.reviewed; ++i) {
    const ErrorProposal& proposal = ranked[i];
    bool hit = false;
    for (size_t e = 0; e < errors.size(); ++e) {
      if (!ProposalMatchesError(proposal, *errors[e], options.match)) {
        continue;
      }
      hit = true;
      if (fixed[e]) continue;
      fixed[e] = true;
      ++result.errors_fixed;
      // Patch the label set: one auditor box per frame of the error.
      for (const auto& [frame_index, box] : errors[e]->boxes) {
        if (frame_index < 0 ||
            frame_index >=
                static_cast<int>(result.corrected_scene.frame_count())) {
          continue;
        }
        Frame& frame = result.corrected_scene
                           .frames()[static_cast<size_t>(frame_index)];
        Observation obs;
        obs.id = next_id++;
        obs.source = ObservationSource::kAuditor;
        obs.object_class = errors[e]->object_class;
        obs.box = box;
        obs.frame_index = frame_index;
        obs.timestamp = frame.timestamp;
        obs.confidence = 1.0;
        frame.observations.push_back(std::move(obs));
        ++result.observations_added;
      }
    }
    if (hit) ++result.verified;
  }
  FIXY_RETURN_IF_ERROR(result.corrected_scene.Validate());
  return result;
}

}  // namespace fixy::eval
