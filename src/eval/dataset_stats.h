// Dataset characterization: the per-class / per-source statistics the
// paper uses to describe its datasets (Section 8.1 — class mix, sampling
// rate, label density) plus the feature summaries (volume, speed) that the
// learned distributions are fitted to. Used by `fixy_cli info` and the
// examples.
#ifndef FIXY_EVAL_DATASET_STATS_H_
#define FIXY_EVAL_DATASET_STATS_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/scene.h"
#include "stats/summary.h"

namespace fixy::eval {

/// Aggregates for one object class within one source.
struct ClassStats {
  size_t observations = 0;
  stats::Summary volume;
  /// Estimated speeds from assembled tracks (m/s); empty when no
  /// transitions exist.
  stats::Summary speed;
};

/// Statistics over a dataset.
struct DatasetStats {
  size_t scenes = 0;
  size_t frames = 0;
  double total_duration_seconds = 0.0;
  /// Observation counts by source.
  std::array<size_t, kNumObservationSources> by_source{};
  /// Per-class stats over human labels (the data distributions are learned
  /// from).
  std::array<ClassStats, kNumObjectClasses> human_by_class{};
};

/// Computes statistics over `dataset` (assembles human tracks to estimate
/// speeds). Errors: FailedPrecondition if a scene fails validation.
Result<DatasetStats> ComputeDatasetStats(const Dataset& dataset);

/// Plain-text rendering, one block per class.
std::string FormatDatasetStats(const DatasetStats& stats);

}  // namespace fixy::eval

#endif  // FIXY_EVAL_DATASET_STATS_H_
