#include "eval/metrics.h"

#include <algorithm>

namespace fixy::eval {

PrecisionResult PrecisionAtK(const std::vector<ErrorProposal>& ranked,
                             const std::vector<const sim::GtError*>& errors,
                             size_t k, const MatchOptions& options) {
  PrecisionResult result;
  result.considered = std::min(k, ranked.size());
  std::vector<bool> claimed(errors.size(), false);
  for (size_t i = 0; i < result.considered; ++i) {
    for (size_t e = 0; e < errors.size(); ++e) {
      if (options.one_to_one && claimed[e]) continue;
      if (ProposalMatchesError(ranked[i], *errors[e], options)) {
        claimed[e] = true;
        ++result.hits;
        break;
      }
    }
  }
  if (result.considered > 0) {
    result.precision = static_cast<double>(result.hits) /
                       static_cast<double>(result.considered);
  }
  return result;
}

RecallResult RecallOf(const std::vector<ErrorProposal>& proposals,
                      const std::vector<const sim::GtError*>& errors,
                      const MatchOptions& options) {
  RecallResult result;
  result.total = errors.size();
  for (const sim::GtError* error : errors) {
    if (AnyProposalMatches(proposals, *error, options)) ++result.found;
  }
  if (result.total > 0) {
    result.recall =
        static_cast<double>(result.found) / static_cast<double>(result.total);
  }
  return result;
}

std::vector<const sim::GtError*> ClaimableErrors(
    const sim::GtLedger& ledger, ProposalKind kind,
    const std::string& scene_name) {
  std::vector<const sim::GtError*> result;
  for (const sim::GtError& error : ledger.errors) {
    if (!KindMatchesType(kind, error.type)) continue;
    if (!scene_name.empty() && error.scene_name != scene_name) continue;
    result.push_back(&error);
  }
  return result;
}

bool AnyProposalMatches(const std::vector<ErrorProposal>& proposals,
                        const sim::GtError& error,
                        const MatchOptions& options) {
  for (const ErrorProposal& proposal : proposals) {
    if (ProposalMatchesError(proposal, error, options)) return true;
  }
  return false;
}

}  // namespace fixy::eval
