#include "dsl/feature.h"

namespace fixy {

const char* FeatureKindToString(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kObservation:
      return "observation";
    case FeatureKind::kBundle:
      return "bundle";
    case FeatureKind::kTransition:
      return "transition";
    case FeatureKind::kTrack:
      return "track";
  }
  return "unknown";
}

}  // namespace fixy
