// FeatureDistribution: a feature bound to its learned distribution and an
// application objective function. The factor nodes of the compiled LOA
// graph (Section 4.3) reference these.
#ifndef FIXY_DSL_FEATURE_DISTRIBUTION_H_
#define FIXY_DSL_FEATURE_DISTRIBUTION_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dsl/aof.h"
#include "dsl/feature.h"
#include "stats/distribution.h"

namespace fixy {

struct RawTrackScores;

/// A feature together with the distribution(s) learned for it offline and
/// the AOF applied at scoring time.
///
/// For class-conditional features (feature->class_conditional()), one
/// distribution is stored per object class; elements whose class was never
/// seen at training time produce no factor (nullopt score).
class FeatureDistribution {
 public:
  /// Non-class-conditional: one distribution for all elements.
  FeatureDistribution(FeaturePtr feature, stats::DistributionPtr distribution,
                      AofPtr aof = nullptr);

  /// Class-conditional: one distribution per class.
  FeatureDistribution(
      FeaturePtr feature,
      std::map<ObjectClass, stats::DistributionPtr> per_class_distributions,
      AofPtr aof = nullptr);

  const Feature& feature() const { return *feature_; }
  FeaturePtr feature_ptr() const { return feature_; }
  const Aof& aof() const { return *aof_; }

  /// Replaces the AOF (applications re-target the same learned
  /// distributions with different objectives, Section 7).
  FeatureDistribution WithAof(AofPtr aof) const;

  /// Scores an element of the matching kind: computes the feature value,
  /// looks up the (per-class) distribution, converts the value to a
  /// normalized likelihood in (0, 1], and applies the AOF. Returns nullopt
  /// when the feature does not apply or no distribution is available for
  /// the element's class. Aborts if the feature kind does not match the
  /// element type.
  std::optional<double> ScoreObservation(const Observation& obs,
                                         const FeatureContext& ctx) const;

  /// Batch form of ScoreObservation for a kObservation feature: scores
  /// every observation of `track` in bundle-major order (the factor-graph
  /// compilation order), appending one entry per observation to `out`.
  /// Produces values identical to per-observation ScoreObservation calls;
  /// density evaluations are grouped per underlying distribution and
  /// routed through Distribution::DensityBatch, which is the KDE's fast
  /// path. Aborts if the feature kind is not kObservation.
  void ScoreTrackObservations(const Track& track, double frame_rate_hz,
                              std::vector<std::optional<double>>* out) const;

  std::optional<double> ScoreBundle(const ObservationBundle& bundle,
                                    const FeatureContext& ctx) const;
  std::optional<double> ScoreTransition(const ObservationBundle& from,
                                        const ObservationBundle& to,
                                        const FeatureContext& ctx) const;
  std::optional<double> ScoreTrack(const Track& track,
                                   const FeatureContext& ctx) const;

  /// Raw (pre-AOF) variants of the scoring entry points, used by the
  /// shared feature-score cache: the returned likelihoods depend only on
  /// the feature and its distributions, never on the AOF, so two specs
  /// that re-target the same learned distribution with different AOFs
  /// (WithAof) share them. Feeding a raw value through ApplyAofAndFloor
  /// reproduces the corresponding Score* result bit for bit. A degenerate
  /// (non-finite) feature value yields raw likelihood 0.0 — the same
  /// maximally-unlikely contract the scoring path applies before its AOF.
  ///
  /// The batch form overwrites `*out` with one entry per observation in
  /// bundle-major order, structure-of-arrays (see RawTrackScores): feature
  /// values are gathered into contiguous per-distribution buffers so the
  /// density evaluation runs the KDE's batched/SIMD path, and the scratch
  /// is thread-local, so steady-state scoring does not allocate.
  void RawScoreTrackObservations(const Track& track, double frame_rate_hz,
                                 RawTrackScores* out) const;
  std::optional<double> RawScoreBundle(const ObservationBundle& bundle,
                                       const FeatureContext& ctx) const;
  std::optional<double> RawScoreTransition(const ObservationBundle& from,
                                           const ObservationBundle& to,
                                           const FeatureContext& ctx) const;
  std::optional<double> RawScoreTrack(const Track& track,
                                      const FeatureContext& ctx) const;

  /// AOF application + the strict-positivity floor, shared by the scalar
  /// and batch scoring paths (and applied per application to cached raw
  /// likelihoods).
  double ApplyAofAndFloor(double likelihood) const;

  /// The raw (pre-AOF) likelihood of a feature value for the given class.
  /// nullopt when no distribution covers the class.
  std::optional<double> RawLikelihood(double value,
                                      std::optional<ObjectClass> cls) const;

  /// Underlying distributions (exposed for serialization). Exactly one of
  /// the two is populated: global_distribution() is null for
  /// class-conditional features.
  const stats::DistributionPtr& global_distribution() const {
    return global_distribution_;
  }
  const std::map<ObjectClass, stats::DistributionPtr>&
  per_class_distributions() const {
    return per_class_;
  }

 private:
  std::optional<double> Transform(std::optional<double> value,
                                  std::optional<ObjectClass> cls) const;

  /// Raw half of Transform: degenerate values map to likelihood 0.0,
  /// missing values/distributions to nullopt, everything else to the
  /// distribution's normalized likelihood. Transform is RawTransform
  /// followed by ApplyAofAndFloor.
  std::optional<double> RawTransform(std::optional<double> value,
                                     std::optional<ObjectClass> cls) const;

  /// The distribution covering `cls` (the global one, or the per-class
  /// entry); nullptr when none applies.
  const stats::Distribution* DistributionFor(
      std::optional<ObjectClass> cls) const;

  FeaturePtr feature_;
  stats::DistributionPtr global_distribution_;
  std::map<ObjectClass, stats::DistributionPtr> per_class_;
  AofPtr aof_;
};

/// The full LOA specification for one application: the set of feature
/// distributions that become factors in the compiled graph.
struct LoaSpec {
  std::vector<FeatureDistribution> feature_distributions;
};

}  // namespace fixy

#endif  // FIXY_DSL_FEATURE_DISTRIBUTION_H_
