// Application objective functions (AOFs), Section 5.3 of the paper.
//
// AOFs are numeric transformations applied to feature-distribution scores
// before they enter the factor-graph scoring: "the most common operations
// are taking the inverse and setting the probability to 0/1 under certain
// conditions". Searching for *likely* components (e.g. a consistent track
// the humans missed) uses the identity; searching for *unlikely* components
// (e.g. ghost model predictions) uses f(x) = 1 - x.
#ifndef FIXY_DSL_AOF_H_
#define FIXY_DSL_AOF_H_

#include <functional>
#include <memory>
#include <string>

namespace fixy {

/// A numeric transformation of a feature-distribution score in [0, 1].
class Aof {
 public:
  virtual ~Aof() = default;

  /// Maps a probability-like score to a transformed score. Implementations
  /// must map [0, 1] into [0, 1].
  virtual double Apply(double p) const = 0;

  virtual std::string name() const = 0;
};

using AofPtr = std::shared_ptr<const Aof>;

/// f(x) = x. Used when ranking components that *should* be likely.
class IdentityAof final : public Aof {
 public:
  double Apply(double p) const override { return p; }
  std::string name() const override { return "identity"; }
};

/// f(x) = 1 - x. Used when hunting unlikely components (Section 7,
/// "finding erroneous ML model predictions").
class InvertAof final : public Aof {
 public:
  double Apply(double p) const override { return 1.0 - p; }
  std::string name() const override { return "invert"; }
};

/// Wraps an arbitrary callable as an AOF (for user-supplied transforms).
class LambdaAof final : public Aof {
 public:
  LambdaAof(std::string name, std::function<double(double)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  double Apply(double p) const override { return fn_(p); }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<double(double)> fn_;
};

/// Convenience constructors.
AofPtr MakeIdentityAof();
AofPtr MakeInvertAof();

}  // namespace fixy

#endif  // FIXY_DSL_AOF_H_
