#include "dsl/feature_score_cache.h"

#include <utility>

namespace fixy {

namespace {

FeatureContext ContextForBundle(const ObservationBundle& bundle,
                                double frame_rate_hz) {
  FeatureContext ctx;
  ctx.ego_position = bundle.ego_position;
  ctx.frame_rate_hz = frame_rate_hz;
  return ctx;
}

}  // namespace

void ComputeRawTrackScores(const FeatureDistribution& fd, const Track& track,
                           double frame_rate_hz, RawTrackScores* out) {
  out->Clear();
  const auto& bundles = track.bundles();
  switch (fd.feature().kind()) {
    case FeatureKind::kObservation:
      fd.RawScoreTrackObservations(track, frame_rate_hz, out);
      break;
    case FeatureKind::kBundle:
      out->values.reserve(bundles.size());
      out->engaged.reserve(bundles.size());
      for (const ObservationBundle& b : bundles) {
        out->Push(fd.RawScoreBundle(b, ContextForBundle(b, frame_rate_hz)));
      }
      break;
    case FeatureKind::kTransition:
      for (size_t b = 0; b + 1 < bundles.size(); ++b) {
        out->Push(fd.RawScoreTransition(
            bundles[b], bundles[b + 1],
            ContextForBundle(bundles[b], frame_rate_hz)));
      }
      break;
    case FeatureKind::kTrack:
      if (!bundles.empty()) {
        out->Push(fd.RawScoreTrack(
            track, ContextForBundle(bundles.front(), frame_rate_hz)));
      }
      break;
  }
}

const RawTrackScores& FeatureScoreCache::Get(const FeatureDistribution& fd,
                                             const Track& track,
                                             size_t track_index) {
  const void* first_per_class = nullptr;
  if (!fd.per_class_distributions().empty()) {
    first_per_class = fd.per_class_distributions().begin()->second.get();
  }
  const Key key{&fd.feature(), fd.global_distribution().get(), first_per_class,
                track_index};
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, RawTrackScores{}).first;
    ComputeRawTrackScores(fd, track, frame_rate_hz_, &it->second);
  }
  return it->second;
}

}  // namespace fixy
