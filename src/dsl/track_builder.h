// TrackBuilder: assembles raw per-frame observations into observation
// bundles (within a frame) and tracks (across frames), Section 4.2 of the
// paper. "The analyst first associates observations within a time step
// (i.e., overlapping model predictions and human labels) and between
// adjacent timesteps (i.e., objects across time)."
#ifndef FIXY_DSL_TRACK_BUILDER_H_
#define FIXY_DSL_TRACK_BUILDER_H_

#include "common/result.h"
#include "data/scene.h"
#include "data/track.h"
#include "dsl/bundler.h"

namespace fixy {

/// Options controlling track assembly.
struct TrackBuilderOptions {
  /// Bundler used to group observations within a frame; defaults to
  /// IouBundler(0.5) when null.
  BundlerPtr bundler;

  /// Minimum BEV IoU for linking a bundle to the previous bundle of a
  /// track. Looser than the in-frame threshold because objects move
  /// between frames.
  double track_iou_threshold = 0.1;

  /// A track stays open for this many frames without a match before being
  /// closed; gaps let flickering detections land in one track (which the
  /// flicker baseline assertion then inspects).
  int max_gap_frames = 2;
};

/// Groups each frame's observations into bundles (connected components
/// under the bundler's association relation) and links bundles across
/// frames into tracks by greedy best-IoU matching.
///
/// Errors: FailedPrecondition if the scene fails Scene::Validate().
class TrackBuilder {
 public:
  explicit TrackBuilder(TrackBuilderOptions options = {});

  Result<TrackSet> Build(const Scene& scene) const;

 private:
  TrackBuilderOptions options_;
};

}  // namespace fixy

#endif  // FIXY_DSL_TRACK_BUILDER_H_
