// TrackBuilder: assembles raw per-frame observations into observation
// bundles (within a frame) and tracks (across frames), Section 4.2 of the
// paper. "The analyst first associates observations within a time step
// (i.e., overlapping model predictions and human labels) and between
// adjacent timesteps (i.e., objects across time)."
//
// Applications associate over different *views* of a scene: the label
// error applications see every observation, while the model-error
// application associates model predictions only (Section 8.4 assumes no
// human proposals). BuildViews derives both track sets from a single
// pairwise-association sweep per frame, so a multi-application pass runs
// association once per scene instead of once per application.
#ifndef FIXY_DSL_TRACK_BUILDER_H_
#define FIXY_DSL_TRACK_BUILDER_H_

#include <optional>

#include "common/result.h"
#include "data/scene.h"
#include "data/track.h"
#include "dsl/bundler.h"

namespace fixy {

/// Which observations of a scene participate in association.
enum class SceneView {
  /// Every observation (human labels and model predictions).
  kFull = 0,
  /// Model predictions only — the model-error application's view.
  kModelOnly = 1,
};

const char* SceneViewToString(SceneView view);

/// Options controlling track assembly.
struct TrackBuilderOptions {
  /// Bundler used to group observations within a frame; defaults to
  /// IouBundler(0.5) when null. Must be a pure function of the two
  /// observations: BuildViews evaluates each pair once and reuses the
  /// result for every view (and the batch path shares one bundler across
  /// worker threads).
  BundlerPtr bundler;

  /// Minimum BEV IoU for linking a bundle to the previous bundle of a
  /// track. Looser than the in-frame threshold because objects move
  /// between frames.
  double track_iou_threshold = 0.1;

  /// A track stays open for this many frames without a match before being
  /// closed; gaps let flickering detections land in one track (which the
  /// flicker baseline assertion then inspects).
  int max_gap_frames = 2;
};

/// The track sets one association pass produced, one per requested view.
/// The model-only view is byte-identical to Build() over a copy of the
/// scene filtered to model observations: the pairwise association relation
/// restricted to model observations is the induced subgraph of the full
/// relation, and the linking stage runs the identical algorithm per view.
struct AssociationViews {
  std::optional<TrackSet> full;
  std::optional<TrackSet> model_only;

  /// The requested view's tracks; aborts if the view was not built.
  const TrackSet& view(SceneView v) const;
};

/// Groups each frame's observations into bundles (connected components
/// under the bundler's association relation) and links bundles across
/// frames into tracks by greedy best-IoU matching.
///
/// Errors: FailedPrecondition if the scene fails Scene::Validate().
class TrackBuilder {
 public:
  explicit TrackBuilder(TrackBuilderOptions options = {});

  /// Single-view build over every observation (the kFull view).
  Result<TrackSet> Build(const Scene& scene) const;

  /// Builds the requested views from one association pass: each frame's
  /// observation pairs are evaluated against the bundler at most once,
  /// and every view's bundles and tracks are derived from those shared
  /// pair results. At least one view must be requested.
  Result<AssociationViews> BuildViews(const Scene& scene, bool need_full,
                                      bool need_model_only) const;

 private:
  TrackBuilderOptions options_;
};

}  // namespace fixy

#endif  // FIXY_DSL_TRACK_BUILDER_H_
