#include "dsl/bundler.h"

#include "geometry/iou.h"

namespace fixy {

bool IouBundler::IsAssociated(const Observation& a,
                              const Observation& b) const {
  return geom::BevIou(a.box, b.box) > iou_threshold_;
}

}  // namespace fixy
