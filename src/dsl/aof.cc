#include "dsl/aof.h"

namespace fixy {

AofPtr MakeIdentityAof() { return std::make_shared<IdentityAof>(); }

AofPtr MakeInvertAof() { return std::make_shared<InvertAof>(); }

}  // namespace fixy
