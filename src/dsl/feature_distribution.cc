#include "dsl/feature_distribution.h"

#include <cmath>

#include "common/logging.h"
#include "dsl/feature_score_cache.h"

namespace fixy {

namespace {

// Majority class of a bundle's member observations (nullopt when empty).
std::optional<ObjectClass> BundleClass(const ObservationBundle& bundle) {
  if (bundle.observations.empty()) return std::nullopt;
  int counts[kNumObjectClasses] = {};
  for (const Observation& obs : bundle.observations) {
    ++counts[static_cast<int>(obs.object_class)];
  }
  int best = 0;
  for (int i = 1; i < kNumObjectClasses; ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<ObjectClass>(best);
}

}  // namespace

FeatureDistribution::FeatureDistribution(FeaturePtr feature,
                                         stats::DistributionPtr distribution,
                                         AofPtr aof)
    : feature_(std::move(feature)),
      global_distribution_(std::move(distribution)),
      aof_(aof != nullptr ? std::move(aof) : MakeIdentityAof()) {
  FIXY_CHECK(feature_ != nullptr);
  FIXY_CHECK(global_distribution_ != nullptr);
}

FeatureDistribution::FeatureDistribution(
    FeaturePtr feature,
    std::map<ObjectClass, stats::DistributionPtr> per_class_distributions,
    AofPtr aof)
    : feature_(std::move(feature)),
      per_class_(std::move(per_class_distributions)),
      aof_(aof != nullptr ? std::move(aof) : MakeIdentityAof()) {
  FIXY_CHECK(feature_ != nullptr);
}

FeatureDistribution FeatureDistribution::WithAof(AofPtr aof) const {
  FeatureDistribution copy = *this;
  copy.aof_ = aof != nullptr ? std::move(aof) : MakeIdentityAof();
  return copy;
}

const stats::Distribution* FeatureDistribution::DistributionFor(
    std::optional<ObjectClass> cls) const {
  if (global_distribution_ != nullptr) return global_distribution_.get();
  if (cls.has_value()) {
    const auto it = per_class_.find(*cls);
    if (it != per_class_.end()) return it->second.get();
  }
  return nullptr;
}

std::optional<double> FeatureDistribution::RawLikelihood(
    double value, std::optional<ObjectClass> cls) const {
  const stats::Distribution* dist = DistributionFor(cls);
  if (dist == nullptr) return std::nullopt;
  return dist->NormalizedScore(value);
}

double FeatureDistribution::ApplyAofAndFloor(double likelihood) const {
  double transformed = aof_->Apply(likelihood);
  // Keep the score strictly positive and finite so ln(.) stays finite
  // downstream and ranking comparisons stay well-ordered. The !(>= floor)
  // form also maps a NaN from a misbehaving user AOF to the floor.
  if (!(transformed >= stats::kScoreFloor)) transformed = stats::kScoreFloor;
  if (transformed > 1.0) transformed = 1.0;
  return transformed;
}

std::optional<double> FeatureDistribution::RawTransform(
    std::optional<double> value, std::optional<ObjectClass> cls) const {
  if (!value.has_value()) return std::nullopt;
  if (!std::isfinite(*value)) {
    // Degenerate feature value (overflowed velocity, inf volume from a
    // huge-but-validated box): maximally unlikely. Feeding likelihood 0
    // through the AOF lets each application decide its rank — identity
    // AOFs score it at the floor, the model-error inverting AOF ranks it
    // first — instead of the non-finite value reaching an estimator,
    // where NaN comparisons are undefined.
    return 0.0;
  }
  return RawLikelihood(*value, cls);
}

std::optional<double> FeatureDistribution::Transform(
    std::optional<double> value, std::optional<ObjectClass> cls) const {
  const std::optional<double> raw = RawTransform(value, cls);
  if (!raw.has_value()) return std::nullopt;
  return ApplyAofAndFloor(*raw);
}

void FeatureDistribution::RawScoreTrackObservations(
    const Track& track, double frame_rate_hz, RawTrackScores* out) const {
  FIXY_CHECK(feature_->kind() == FeatureKind::kObservation);
  const auto* f = static_cast<const ObservationFeature*>(feature_.get());
  out->Clear();

  // One density-evaluation batch per distinct distribution (the global
  // distribution, or one per object class actually present). The batches
  // are flat parallel arrays reused across calls: a distinct distribution
  // appears at most once per track, so `used` stays small and slot reuse
  // (clearing, not destroying, the inner vectors) keeps steady-state
  // scoring allocation-free.
  struct Batch {
    const stats::Distribution* dist = nullptr;
    std::vector<size_t> out_indices;
    std::vector<double> values;
  };
  thread_local std::vector<Batch> batches;
  thread_local std::vector<double> densities;
  size_t used = 0;

  FeatureContext ctx;
  ctx.frame_rate_hz = frame_rate_hz;
  for (const ObservationBundle& bundle : track.bundles()) {
    ctx.ego_position = bundle.ego_position;
    for (const Observation& obs : bundle.observations) {
      const std::optional<double> value = f->Compute(obs, ctx);
      if (value.has_value() && !std::isfinite(*value)) {
        // Same degenerate-value contract as RawTransform(): maximally
        // unlikely, routed through the AOF by the caller, never into the
        // estimator.
        out->PushEngaged(0.0);
        continue;
      }
      const stats::Distribution* dist =
          value.has_value() ? DistributionFor(obs.object_class) : nullptr;
      if (!value.has_value() || dist == nullptr) {
        out->PushMissing();
        continue;
      }
      out->PushEngaged(0.0);  // placeholder; filled from the batch below
      Batch* batch = nullptr;
      for (size_t b = 0; b < used; ++b) {
        if (batches[b].dist == dist) {
          batch = &batches[b];
          break;
        }
      }
      if (batch == nullptr) {
        if (used == batches.size()) batches.emplace_back();
        batch = &batches[used++];
        batch->dist = dist;
        batch->out_indices.clear();
        batch->values.clear();
      }
      batch->out_indices.push_back(out->size() - 1);
      batch->values.push_back(*value);
    }
  }

  for (size_t b = 0; b < used; ++b) {
    const Batch& batch = batches[b];
    densities.resize(batch.values.size());
    batch.dist->DensityBatch(batch.values, densities);
    for (size_t i = 0; i < batch.values.size(); ++i) {
      out->values[batch.out_indices[i]] =
          batch.dist->NormalizedScoreFromDensity(densities[i]);
    }
  }
}

void FeatureDistribution::ScoreTrackObservations(
    const Track& track, double frame_rate_hz,
    std::vector<std::optional<double>>* out) const {
  thread_local RawTrackScores raw;
  RawScoreTrackObservations(track, frame_rate_hz, &raw);
  out->reserve(out->size() + raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw.engaged[i] != 0) {
      out->push_back(ApplyAofAndFloor(raw.values[i]));
    } else {
      out->push_back(std::nullopt);
    }
  }
}

std::optional<double> FeatureDistribution::RawScoreBundle(
    const ObservationBundle& bundle, const FeatureContext& ctx) const {
  FIXY_CHECK(feature_->kind() == FeatureKind::kBundle);
  const auto* f = static_cast<const BundleFeature*>(feature_.get());
  return RawTransform(f->Compute(bundle, ctx), BundleClass(bundle));
}

std::optional<double> FeatureDistribution::RawScoreTransition(
    const ObservationBundle& from, const ObservationBundle& to,
    const FeatureContext& ctx) const {
  FIXY_CHECK(feature_->kind() == FeatureKind::kTransition);
  const auto* f = static_cast<const TransitionFeature*>(feature_.get());
  return RawTransform(f->Compute(from, to, ctx), BundleClass(from));
}

std::optional<double> FeatureDistribution::RawScoreTrack(
    const Track& track, const FeatureContext& ctx) const {
  FIXY_CHECK(feature_->kind() == FeatureKind::kTrack);
  const auto* f = static_cast<const TrackFeature*>(feature_.get());
  return RawTransform(f->Compute(track, ctx), track.MajorityClass());
}

std::optional<double> FeatureDistribution::ScoreObservation(
    const Observation& obs, const FeatureContext& ctx) const {
  FIXY_CHECK(feature_->kind() == FeatureKind::kObservation);
  const auto* f = static_cast<const ObservationFeature*>(feature_.get());
  return Transform(f->Compute(obs, ctx), obs.object_class);
}

std::optional<double> FeatureDistribution::ScoreBundle(
    const ObservationBundle& bundle, const FeatureContext& ctx) const {
  FIXY_CHECK(feature_->kind() == FeatureKind::kBundle);
  const auto* f = static_cast<const BundleFeature*>(feature_.get());
  return Transform(f->Compute(bundle, ctx), BundleClass(bundle));
}

std::optional<double> FeatureDistribution::ScoreTransition(
    const ObservationBundle& from, const ObservationBundle& to,
    const FeatureContext& ctx) const {
  FIXY_CHECK(feature_->kind() == FeatureKind::kTransition);
  const auto* f = static_cast<const TransitionFeature*>(feature_.get());
  return Transform(f->Compute(from, to, ctx), BundleClass(from));
}

std::optional<double> FeatureDistribution::ScoreTrack(
    const Track& track, const FeatureContext& ctx) const {
  FIXY_CHECK(feature_->kind() == FeatureKind::kTrack);
  const auto* f = static_cast<const TrackFeature*>(feature_.get());
  return Transform(f->Compute(track, ctx), track.MajorityClass());
}

}  // namespace fixy
