// Feature interfaces of the LOA DSL (Section 5.1 of the paper).
//
// A feature maps an element of a scene to a scalar; Fixy learns a
// distribution over each feature from existing labels and scores new data
// by likelihood. The paper defines four feature types:
//   1. observation features   (e.g. box volume),
//   2. bundle features        (e.g. "only model predictions present"),
//   3. transition features    (e.g. velocity between adjacent bundles),
//   4. track features         (e.g. number of observations).
//
// Users extend Fixy exactly as in the paper's Python snippets: subclass the
// appropriate interface and override Compute (typically < 6 lines of code;
// see core/features_std.h for the paper's Table 2 features and
// examples/custom_features.cpp for a user-defined one).
#ifndef FIXY_DSL_FEATURE_H_
#define FIXY_DSL_FEATURE_H_

#include <memory>
#include <optional>
#include <string>

#include "data/observation.h"
#include "data/track.h"
#include "geometry/vec.h"

namespace fixy {

/// Context handed to feature computation: the ego pose at the element's
/// frame and the scene's frame rate (needed e.g. to convert per-frame
/// displacement into m/s).
struct FeatureContext {
  geom::Vec2 ego_position;
  double frame_rate_hz = 10.0;
};

/// Which scene element a feature applies to.
enum class FeatureKind {
  kObservation = 0,
  kBundle = 1,
  kTransition = 2,
  kTrack = 3,
};

const char* FeatureKindToString(FeatureKind kind);

/// Base class of all features.
class Feature {
 public:
  virtual ~Feature() = default;

  /// Stable name used to key learned distributions (e.g. "volume").
  virtual std::string name() const = 0;

  virtual FeatureKind kind() const = 0;

  /// If true, a separate distribution is learned per object class
  /// (Table 2 marks volume and velocity class-conditional).
  virtual bool class_conditional() const { return false; }
};

/// A feature over a single observation. Compute returns nullopt when the
/// feature does not apply to the given observation (such elements simply
/// contribute no factor).
class ObservationFeature : public Feature {
 public:
  FeatureKind kind() const final { return FeatureKind::kObservation; }

  virtual std::optional<double> Compute(const Observation& obs,
                                        const FeatureContext& ctx) const = 0;
};

/// A feature over an observation bundle (all observations of one object in
/// one frame).
class BundleFeature : public Feature {
 public:
  FeatureKind kind() const final { return FeatureKind::kBundle; }

  virtual std::optional<double> Compute(const ObservationBundle& bundle,
                                        const FeatureContext& ctx) const = 0;
};

/// A feature over two adjacent bundles within a track.
class TransitionFeature : public Feature {
 public:
  FeatureKind kind() const final { return FeatureKind::kTransition; }

  virtual std::optional<double> Compute(const ObservationBundle& from,
                                        const ObservationBundle& to,
                                        const FeatureContext& ctx) const = 0;
};

/// A feature over an entire track.
class TrackFeature : public Feature {
 public:
  FeatureKind kind() const final { return FeatureKind::kTrack; }

  virtual std::optional<double> Compute(const Track& track,
                                        const FeatureContext& ctx) const = 0;
};

using FeaturePtr = std::shared_ptr<const Feature>;

}  // namespace fixy

#endif  // FIXY_DSL_FEATURE_H_
