// FeatureScoreCache: per-scene memoization of raw (pre-AOF) feature
// likelihoods. Multiple applications compile factor graphs over the same
// shared track set (ScenePass); their specs differ only in AOFs and manual
// factors, so the expensive part of compilation — computing feature values
// and evaluating learned KDEs — is identical across applications and is
// computed once here.
#ifndef FIXY_DSL_FEATURE_SCORE_CACHE_H_
#define FIXY_DSL_FEATURE_SCORE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/track.h"
#include "dsl/feature_distribution.h"

namespace fixy {

/// The raw likelihoods of one FeatureDistribution over one track, in the
/// factor-graph compilation order for the feature's kind:
///   kObservation — bundle-major, one entry per observation;
///   kBundle      — one entry per bundle;
///   kTransition  — one entry per adjacent bundle pair;
///   kTrack       — a single entry (empty when the track has no bundles).
/// Structure-of-arrays: `values[i]` is the pre-AOF likelihood (ready for
/// FeatureDistribution::ApplyAofAndFloor) when `engaged[i]` is nonzero;
/// engaged[i] == 0 marks "no factor" (feature did not apply / no
/// distribution for the class) and values[i] is 0. The split keeps the
/// likelihoods contiguous for the batch/SIMD density path (DESIGN.md §11).
struct RawTrackScores {
  std::vector<double> values;
  std::vector<uint8_t> engaged;

  size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }

  void Clear() {
    values.clear();
    engaged.clear();
  }

  void PushEngaged(double value) {
    values.push_back(value);
    engaged.push_back(1);
  }

  void PushMissing() {
    values.push_back(0.0);
    engaged.push_back(0);
  }

  void Push(std::optional<double> value) {
    if (value.has_value()) {
      PushEngaged(*value);
    } else {
      PushMissing();
    }
  }

  /// Optional view of one entry (the pre-SoA interface, kept for tests
  /// and non-hot callers).
  std::optional<double> at(size_t i) const {
    if (engaged[i] == 0) return std::nullopt;
    return values[i];
  }
};

/// Computes `fd`'s raw likelihoods over `track` into `*out` (overwritten).
void ComputeRawTrackScores(const FeatureDistribution& fd, const Track& track,
                           double frame_rate_hz, RawTrackScores* out);

/// Memoizes ComputeRawTrackScores keyed on the identity of the feature and
/// its distributions plus the caller's track index. WithAof() copies share
/// feature and distribution pointers, so specs that re-target one learned
/// feature with different AOFs hit the same entries.
///
/// Not thread-safe: intended to live inside a per-scene, per-worker
/// ScenePass. Callers must present a stable track set — `track_index` must
/// always denote the same track across calls.
class FeatureScoreCache {
 public:
  explicit FeatureScoreCache(double frame_rate_hz)
      : frame_rate_hz_(frame_rate_hz) {}

  /// The raw scores of `fd` over `track`, computing them on first use.
  const RawTrackScores& Get(const FeatureDistribution& fd, const Track& track,
                            size_t track_index);

 private:
  // Feature ptr + global-distribution ptr + first per-class-distribution
  // ptr identify the learned (feature, distributions) pair; AOFs are
  // deliberately excluded.
  struct Key {
    const void* feature;
    const void* global_dist;
    const void* first_per_class;
    size_t track_index;

    bool operator==(const Key&) const = default;
  };

  struct KeyHash {
    size_t operator()(const Key& key) const {
      // FNV-1a over the key words; pointer identity is all that matters.
      uint64_t h = 1469598103934665603ull;
      const auto mix = [&h](uint64_t word) {
        h ^= word;
        h *= 1099511628211ull;
      };
      mix(reinterpret_cast<uintptr_t>(key.feature));
      mix(reinterpret_cast<uintptr_t>(key.global_dist));
      mix(reinterpret_cast<uintptr_t>(key.first_per_class));
      mix(key.track_index);
      return static_cast<size_t>(h);
    }
  };

  double frame_rate_hz_;
  std::unordered_map<Key, RawTrackScores, KeyHash> cache_;
};

}  // namespace fixy

#endif  // FIXY_DSL_FEATURE_SCORE_CACHE_H_
