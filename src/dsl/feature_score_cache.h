// FeatureScoreCache: per-scene memoization of raw (pre-AOF) feature
// likelihoods. Multiple applications compile factor graphs over the same
// shared track set (ScenePass); their specs differ only in AOFs and manual
// factors, so the expensive part of compilation — computing feature values
// and evaluating learned KDEs — is identical across applications and is
// computed once here.
#ifndef FIXY_DSL_FEATURE_SCORE_CACHE_H_
#define FIXY_DSL_FEATURE_SCORE_CACHE_H_

#include <cstddef>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "data/track.h"
#include "dsl/feature_distribution.h"

namespace fixy {

/// The raw likelihoods of one FeatureDistribution over one track, in the
/// factor-graph compilation order for the feature's kind:
///   kObservation — bundle-major, one entry per observation;
///   kBundle      — one entry per bundle;
///   kTransition  — one entry per adjacent bundle pair;
///   kTrack       — a single entry (empty when the track has no bundles).
/// nullopt marks "no factor" (feature did not apply / no distribution for
/// the class); an engaged value is the pre-AOF likelihood, ready for
/// FeatureDistribution::ApplyAofAndFloor.
struct RawTrackScores {
  std::vector<std::optional<double>> values;
};

/// Computes `fd`'s raw likelihoods over `track` (uncached form).
RawTrackScores ComputeRawTrackScores(const FeatureDistribution& fd,
                                     const Track& track,
                                     double frame_rate_hz);

/// Memoizes ComputeRawTrackScores keyed on the identity of the feature and
/// its distributions plus the caller's track index. WithAof() copies share
/// feature and distribution pointers, so specs that re-target one learned
/// feature with different AOFs hit the same entries.
///
/// Not thread-safe: intended to live inside a per-scene, per-worker
/// ScenePass. Callers must present a stable track set — `track_index` must
/// always denote the same track across calls.
class FeatureScoreCache {
 public:
  explicit FeatureScoreCache(double frame_rate_hz)
      : frame_rate_hz_(frame_rate_hz) {}

  /// The raw scores of `fd` over `track`, computing them on first use.
  const RawTrackScores& Get(const FeatureDistribution& fd, const Track& track,
                            size_t track_index);

 private:
  // Feature ptr + global-distribution ptr + first per-class-distribution
  // ptr identify the learned (feature, distributions) pair; AOFs are
  // deliberately excluded.
  using Key = std::tuple<const void*, const void*, const void*, size_t>;

  double frame_rate_hz_;
  std::map<Key, RawTrackScores> cache_;
};

}  // namespace fixy

#endif  // FIXY_DSL_FEATURE_SCORE_CACHE_H_
