// Bundler: decides whether two observations belong to the same object.
//
// Mirrors the paper's worked example (Section 3):
//
//   class TrackBundler(Bundler):
//     def is_associated(self, box1, box2):
//       return compute_iou(box1, box2) > 0.5
//
// The default IouBundler implements exactly that rule; users subclass
// Bundler to override the association criterion.
#ifndef FIXY_DSL_BUNDLER_H_
#define FIXY_DSL_BUNDLER_H_

#include <memory>

#include "data/observation.h"

namespace fixy {

/// Association predicate over pairs of observations.
class Bundler {
 public:
  virtual ~Bundler() = default;

  /// True if the two observations should be considered the same object.
  virtual bool IsAssociated(const Observation& a,
                            const Observation& b) const = 0;
};

using BundlerPtr = std::shared_ptr<const Bundler>;

/// Default bundler: birds-eye-view IoU above a threshold.
class IouBundler final : public Bundler {
 public:
  explicit IouBundler(double iou_threshold = 0.5)
      : iou_threshold_(iou_threshold) {}

  bool IsAssociated(const Observation& a, const Observation& b) const override;

  double iou_threshold() const { return iou_threshold_; }

 private:
  double iou_threshold_;
};

}  // namespace fixy

#endif  // FIXY_DSL_BUNDLER_H_
